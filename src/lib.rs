//! **im2col-winograd** — a Rust reproduction of *"Im2col-Winograd: An
//! Efficient and Flexible Fused-Winograd Convolution for NHWC Format on
//! GPUs"* (ICPP '24).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] — the paper's algorithm: `Γα(n, r)` convolution,
//!   deconvolution, filter gradients, the boundary planner, and the §4.2
//!   ND extension;
//! * [`engine`] — the dispatch surface: algorithm registry, per-shape plan
//!   cache (transformed-filter banks built once), arena-backed workspace
//!   pool, and the §5.7 selection policy;
//! * [`baselines`] — direct / im2col-GEMM / fused 2-D Winograd comparators;
//! * [`gemm`] — the packed, register-blocked SGEMM behind every GEMM-class
//!   path (Goto-style cache blocking, ISA-dispatched 6×16 register tile);
//! * [`indirect`] — the indirect-convolution backend: per-shape offset
//!   tables (stride/padding-aware, batch-relocatable) gathered straight
//!   into the packed SGEMM's A-panels — the engine's route for strided
//!   and extra-wide-filter shapes;
//! * [`transforms`] — exact Cook–Toom transform generation;
//! * [`tensor`] — NHWC tensors and shapes;
//! * [`gpu_sim`] — the RTX 3060 Ti / RTX 4090 cost model;
//! * [`nn`] — the CNN training framework of Experiment 3;
//! * [`serve`] — shape-bucketed batch serving: bounded admission, deadline
//!   expiry, and a coalescer that amortizes plan lookup across requests;
//! * [`simd`] — runtime-dispatched AVX2/NEON/scalar microkernels for the
//!   Γ hot path (all paths bit-for-bit identical);
//! * [`parallel`] / [`rational`] — infrastructure.
//!
//! # Convolution in five lines
//!
//! ```
//! use im2col_winograd::prelude::*;
//!
//! let shape = ConvShape::square(1, 12, 8, 8, 3); // batch, h=w, ic, oc, r
//! let x = Tensor4::<f32>::random(shape.x_dims(), 1, -1.0, 1.0);
//! let w = Tensor4::<f32>::random(shape.w_dims(), 2, -1.0, 1.0);
//! let y = conv2d(&x, &w, &shape);
//! assert_eq!(y.dims(), shape.y_dims());
//! ```
//!
//! # It really is Winograd
//!
//! The `F(2,3)` transforms match the classic minimal-filtering matrices:
//!
//! ```
//! use im2col_winograd::transforms::WinogradTransform;
//!
//! let t = WinogradTransform::generate(2, 3);
//! assert_eq!(t.alpha, 4);
//! // Four multiplications for two outputs of a 3-tap filter: Φ = 6/4.
//! assert_eq!(t.theoretical_speedup(), 1.5);
//! ```
//!
//! # And it agrees with the direct reference
//!
//! ```
//! use im2col_winograd::prelude::*;
//! use im2col_winograd::baselines::direct_conv_f64_ref;
//!
//! let shape = ConvShape::square(1, 10, 4, 4, 5);
//! let x = Tensor4::<f32>::random(shape.x_dims(), 3, 1.0, 2.0);
//! let w = Tensor4::<f32>::random(shape.w_dims(), 4, 1.0, 2.0);
//! let fast = conv2d(&x, &w, &shape);
//! let exact = direct_conv_f64_ref(&x, &w, &shape);
//! let err = ErrorStats::between(&fast, &exact);
//! assert!(err.mean < 1e-5); // Table 3 territory
//! ```

#![forbid(unsafe_code)]

pub use iwino_baselines as baselines;
pub use iwino_core as core;
pub use iwino_engine as engine;
pub use iwino_gemm as gemm;
pub use iwino_gpu_sim as gpu_sim;
pub use iwino_indirect as indirect;
pub use iwino_nn as nn;
pub use iwino_obs as obs;
pub use iwino_parallel as parallel;
pub use iwino_rational as rational;
pub use iwino_serve as serve;
pub use iwino_simd as simd;
pub use iwino_tensor as tensor;
pub use iwino_transforms as transforms;

/// The handful of names almost every user needs.
pub mod prelude {
    pub use iwino_core::{
        auto_options, conv1d, conv2d, conv2d_opts, conv3d, deconv2d, filter_grad, ConvOptions, GammaSpec, Variant,
    };
    pub use iwino_tensor::{Conv3dShape, ConvShape, ErrorStats, Tensor4, Tensor5};
}
