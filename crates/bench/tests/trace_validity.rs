//! Acceptance gate for `repro trace`: the flight-recorder export for the
//! Fig-8 Γ8(6,3) headline case must be a valid Chrome Trace Event document
//! — it parses, every `B` has a matching `E` on its own thread, and (on a
//! multi-lane pool) the worker chunks land on distinct per-worker tids.
//!
//! This binary holds a single test: the flight-recorder gate and rings are
//! process-global, and the capture must not interleave with other traced
//! work.

use iwino_bench::{record_trace, stage_bench_cases, validate_chrome_trace};
use iwino_obs::Json;

#[test]
fn fig8_gamma8_trace_exports_valid_chrome_trace_json() {
    let cases = stage_bench_cases();
    let case = &cases[0];
    assert_eq!(
        case.label, "g8_6_3_fig8_96x96x64_exact",
        "the Fig-8 headline case moved"
    );
    let doc = record_trace(case, 2);

    // Round-trip through the serialized form: validate what the file would
    // actually hold, not the in-memory tree.
    let text = doc.pretty();
    let parsed = Json::parse(&text).expect("exported trace must be valid JSON");
    let summary = validate_chrome_trace(&parsed).expect("exported trace must validate");
    assert!(summary.events > 0, "a real run must record spans");
    assert!(summary.events.is_multiple_of(2), "B/E events come in pairs");

    // The timeline story: with more than one pool lane, chunk work is
    // recorded on per-worker rings, so the document spans multiple tids
    // (the caller participates too, hence >= 2, not == lanes).
    if iwino_parallel::global().threads() > 1 {
        assert!(
            summary.tids > 1,
            "a {}-lane pool must produce a multi-worker timeline, got {} tid(s)",
            iwino_parallel::global().threads(),
            summary.tids
        );
    }

    // The capture is sized for the default ring; nothing may be refused.
    assert_eq!(summary.dropped, 0, "this capture must fit the ring");

    // The named pipeline stages of the Γ run all appear as events.
    let names: std::collections::BTreeSet<&str> = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for want in ["engine_plan", "engine_run", "gamma_segment", "worker_chunk", "total"] {
        assert!(names.contains(want), "missing {want} spans; saw {names:?}");
    }

    iwino_obs::reset_trace();
}
