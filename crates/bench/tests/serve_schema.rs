//! Schema and gate tests for `repro serve-bench`:
//!
//! * a tiny in-process run produces a document that round-trips through
//!   the `bench-compare` parser with its dispatch record intact;
//! * the committed `BENCH_serve_baseline.json` / `BENCH_serve_after.json`
//!   pair passes the 10% gate in the committed direction and FAILS it
//!   reversed — undoing the coalescer is a real regression the gate must
//!   catch, exactly like the kernel-level `BENCH_pr5` pair.

use iwino_bench::{compare, isa_parity, parse_bench_doc, run_serve_bench, ServeBenchConfig};
use std::sync::{Mutex, MutexGuard};

/// Serialize the tests in this binary (the in-process serve run spawns a
/// server; see `crates/serve/tests/stress.rs` for the obs-serialization
/// convention this follows).
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn committed(name: &str) -> String {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// The live document: valid JSON for the bench-compare reader, dispatch
/// record matching this host's runtime dispatch, serving columns riding
/// along without breaking the tolerant parser.
#[test]
fn serve_bench_document_round_trips_the_compare_parser() {
    let _g = guard();
    let report = run_serve_bench(&ServeBenchConfig {
        requests: 18,
        rate: 50_000.0,
        max_batch: 4,
        workers: 2,
        seed: 11,
    })
    .unwrap();
    let text = report.to_json().pretty();
    let doc = parse_bench_doc(&text).unwrap();
    assert_eq!(doc.schema_version, 3);
    assert_eq!(
        doc.isa.as_deref(),
        Some(iwino_simd::dispatch_info().isa),
        "the document must carry the dispatch record of the host that measured it"
    );
    assert_eq!(doc.cases.len(), report.cases.len());
    for (parsed, live) in doc.cases.iter().zip(&report.cases) {
        assert_eq!(parsed.label, live.label);
        assert!((parsed.gflops - live.gflops).abs() < 1e-9);
    }
    // A self-comparison is a clean pass at any threshold.
    assert!(compare(&doc, &doc, 0.0).passed());
}

/// The committed pair parses, agrees on ISA, and orders correctly:
/// baseline (coalescing off) → after (coalescing on) passes the 10% gate.
#[test]
fn committed_pair_passes_the_gate_forward() {
    let base = parse_bench_doc(&committed("BENCH_serve_baseline.json")).unwrap();
    let after = parse_bench_doc(&committed("BENCH_serve_after.json")).unwrap();
    isa_parity(&base, &after).unwrap();
    assert_eq!(base.cases.len(), 3);
    assert_eq!(after.cases.len(), 3);
    let report = compare(&base, &after, 10.0);
    assert!(report.passed(), "committed serve pair regressed: {:?}", report.cases);
    // The coalescer is a measured *improvement*, not merely within budget.
    for delta in &report.cases {
        assert!(delta.ratio > 1.0, "case {} did not improve: {:?}", delta.label, delta);
    }
}

/// Feeding the pair in reversed order — as if a change removed the
/// coalescer — must fail the same gate.
#[test]
fn committed_pair_reversed_fails_the_gate() {
    let base = parse_bench_doc(&committed("BENCH_serve_baseline.json")).unwrap();
    let after = parse_bench_doc(&committed("BENCH_serve_after.json")).unwrap();
    let reversed = compare(&after, &base, 10.0);
    assert!(!reversed.passed(), "reversing the pair must trip the gate");
    assert!(reversed.regressions().count() >= 1);
}
