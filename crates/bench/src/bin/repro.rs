//! `repro` — regenerate every table and figure of the Im2col-Winograd paper.
//!
//! See `iwino-bench`'s crate docs (or `repro help`) for the experiment
//! index. Results are printed as text tables and also written as JSON under
//! `repro_results/`.

use iwino_bench::{
    bench_backend_rates, bench_gemm_rates, bench_stage_rates, gemm_bench_cases, indirect_bench_cases, run_accuracy,
    run_histogram, run_panel, speedups, stage_bench_cases, validate_stage_model, PanelResult, FIG8, FIG9, TABLE3,
};
use iwino_core::{GammaSpec, Variant};
use iwino_gpu_sim::model::{Algorithm, Layout};
use iwino_gpu_sim::smem::{ds_store_gamma8, gs_load_gamma8, transactions_and_ideal, ys_store_gamma8};
use iwino_gpu_sim::DeviceSpec;
use iwino_nn::train::OptKind;
use iwino_nn::{
    resnet18, resnet34, train, vgg16, vgg16x5, vgg16x7, vgg19, Backend, Sequential, SyntheticDataset, TrainConfig,
    TrainReport,
};
use iwino_obs as obs;
use iwino_obs::{Json, MetricsReport};
use iwino_transforms::WinogradTransform;
use std::fs;
use std::time::Instant;

struct Mode {
    /// Quick mode: scaled batches / tiny training runs.
    quick: bool,
    /// Measure CPU kernels (in addition to the GPU simulation).
    measure: bool,
}

impl Mode {
    fn target_gflop(&self) -> f64 {
        if self.quick {
            1.0
        } else {
            f64::INFINITY
        }
    }

    fn reps(&self) -> usize {
        if self.quick {
            3
        } else {
            10
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    // `--force-scalar`: pin the Γ microkernel dispatch to the scalar
    // fallback (equivalent to IWINO_FORCE_SCALAR=1) before any kernel runs,
    // for A/B runs and for reproducing results from non-SIMD hosts.
    if args.iter().any(|a| a == "--force-scalar") {
        iwino_simd::set_force_scalar(true);
    }
    let mode = Mode {
        quick: !args.iter().any(|a| a == "--full"),
        measure: !args.iter().any(|a| a == "--sim-only"),
    };
    // `--metrics <path.json>`: profile the run with iwino-obs and write a
    // schema-versioned metrics document (stage times, roofline counters,
    // thread-pool utilization) next to the usual results.
    let metrics_flag = args.iter().position(|a| a == "--metrics");
    let metrics_path = metrics_flag
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned();
    if metrics_flag.is_some() && metrics_path.is_none() {
        eprintln!("error: --metrics requires a path argument (e.g. --metrics out.json)");
        std::process::exit(2);
    }
    if metrics_path.is_some() {
        obs::set_enabled(true);
        obs::reset();
        iwino_parallel::reset_global_stats();
    }
    let t0 = Instant::now();
    fs::create_dir_all("repro_results").ok();
    match cmd {
        "fig8" => fig_perf("fig8", FIG8, DeviceSpec::rtx3060ti(), &mode),
        "fig9" => fig_perf("fig9", FIG9, DeviceSpec::rtx4090(), &mode),
        "table2" => table2(),
        "table3" => table3(&mode),
        "fig10" => fig10(&mode),
        "validate-model" => validate_model(&mode),
        "bench-stages" => bench_stages(&args, &mode),
        "bench-compare" => bench_compare(&args),
        "serve-bench" => serve_bench_cmd(&args),
        "trace" => trace_cmd(&args),
        "engine" => engine(&mode),
        "train-cifar" => train_cifar(&mode),
        "train-imagenet" => train_imagenet(&mode),
        "ablation-banks" => ablation_banks(),
        "ablation-boundary" => ablation_boundary(),
        "ablation-precision" => ablation_precision(),
        "ablation-variants" => ablation_variants(),
        "ablation-transforms" => ablation_transforms(),
        "all" => {
            fig_perf("fig8", FIG8, DeviceSpec::rtx3060ti(), &mode);
            fig_perf("fig9", FIG9, DeviceSpec::rtx4090(), &mode);
            table2();
            table3(&mode);
            fig10(&mode);
            validate_model(&mode);
            ablation_banks();
            ablation_boundary();
            ablation_precision();
            ablation_variants();
            ablation_transforms();
            train_cifar(&mode);
            train_imagenet(&mode);
        }
        _ => {
            eprintln!(
                "usage: repro <fig8|fig9|table2|table3|fig10|validate-model|bench-stages|bench-compare|serve-bench|\
                 trace|engine|train-cifar|train-imagenet|ablation-banks|ablation-boundary|ablation-variants|\
                 ablation-transforms|all> \
                 [--full] [--sim-only] [--engine] [--force-scalar] [--metrics <path.json>] [--out <path.json>] \
                 [--baseline <path.json>] [--force]\n\
                 \n  repro bench-stages [winograd|gemm|indirect] [--backend <name>]   per-stage rate sweep\
                 \n  repro trace [<case-label>] [--out trace.json] [--reps N]   flight-recorder capture\
                 \n  repro bench-compare <baseline.json> <after.json> [--max-regression <pct>] [--force]\
                 \n  repro serve-bench [--out serve.json] [--requests N] [--rate R] [--max-batch B] \
                 [--workers W] [--no-coalesce]   open-loop serving load generator"
            );
            if cmd != "help" {
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = metrics_path {
        let report = MetricsReport::capture(cmd, t0.elapsed().as_nanos() as u64);
        match report.write(&path) {
            Ok(()) => println!(
                "\n[metrics: {path} — {:.2} Gflop/s, intensity {:.2} op/B]",
                report.gflops(),
                report.arithmetic_intensity()
            ),
            Err(e) => eprintln!("\n[failed to write metrics to {path}: {e}]"),
        }
        obs::set_enabled(false);
    }
}

fn save_json(name: &str, value: &Json) {
    let path = format!("repro_results/{name}.json");
    if fs::write(&path, value.pretty()).is_ok() {
        println!("  [saved {path}]");
    }
}

// ---------------------------------------------------------------------------
// Experiment 1: Figures 8/9 + Table 2
// ---------------------------------------------------------------------------

fn fig_perf(name: &str, panels: &[iwino_bench::Panel], dev: DeviceSpec, mode: &Mode) {
    println!("\n==== {name}: performance panels for {} ====", dev.name);
    if mode.quick && mode.measure {
        println!("(quick mode: CPU measurements use batch-scaled shapes; scale shown per row)");
    }
    let mut results: Vec<PanelResult> = Vec::new();
    for panel in panels {
        let pr = run_panel(panel, &dev, mode.measure, mode.target_gflop(), mode.reps());
        println!("\n-- {} --", pr.panel);
        // Collect the union of series labels for the header.
        let series: Vec<String> = pr.rows[0].points.iter().map(|p| p.series.clone()).collect();
        println!(
            "{:<22} {:>6} {}",
            "ofms (NxOHxOWxOC)",
            "scale",
            series.iter().map(|s| format!("{s:>34}")).collect::<String>()
        );
        for row in &pr.rows {
            let cells: String = series
                .iter()
                .map(|s| {
                    let v = row
                        .points
                        .iter()
                        .find(|p| &p.series == s)
                        .map(|p| p.gflops)
                        .unwrap_or(f64::NAN);
                    format!("{v:>34.0}")
                })
                .collect();
            println!("{:<22} {:>6.3} {}", row.ofms, row.batch_scale, cells);
        }
        results.push(pr);
    }
    save_json(name, &Json::Arr(results.iter().map(PanelResult::to_json).collect()));
}

fn table2() {
    println!("\n==== Table 2: speedup of Im2col-Winograd over cuDNN baselines (simulated) ====");
    for (name, panels, dev) in [
        ("RTX3060Ti", FIG8, DeviceSpec::rtx3060ti()),
        ("RTX4090", FIG9, DeviceSpec::rtx4090()),
    ] {
        println!("\n-- {name} --");
        let results: Vec<PanelResult> = panels
            .iter()
            .map(|p| run_panel(p, &dev, false, f64::INFINITY, 1))
            .collect();
        let rows = speedups(&results);
        println!(
            "{:<34} {:>22} {:>22}",
            "Algorithm", "vs fastest baseline", "vs NHWC GEMM"
        );
        for r in &rows {
            println!(
                "{:<34} {:>10.3}-{:<10.3} {:>10.3}-{:<10.3}",
                r.panel, r.vs_fastest.0, r.vs_fastest.1, r.vs_nhwc_gemm.0, r.vs_nhwc_gemm.1
            );
        }
        save_json(
            &format!("table2_{name}"),
            &Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
        );
    }
}

// ---------------------------------------------------------------------------
// Experiment 2: Table 3 + Figure 10
// ---------------------------------------------------------------------------

fn table3(mode: &Mode) {
    println!("\n==== Table 3: average relative error vs FP64-CPU convolution ====");
    println!("(ifms/filters ~ U[1,2); OW multiples of n; CuGEMM = im2col+GEMM f32)");
    let mut all = Vec::new();
    for t in TABLE3 {
        println!("\n-- {} --", t.label());
        println!(
            "{:<22} {:>6} {:>12} {:>12} {:>12}",
            "ofms",
            "scale",
            t.label(),
            "CuGEMM",
            "CuWinograd"
        );
        let rows = run_accuracy(t, if mode.quick { 0.3 } else { f64::INFINITY });
        for r in &rows {
            let cw = r.cuwinograd.map_or("-".to_string(), |v| format!("{v:.2e}"));
            println!(
                "{:<22} {:>6.3} {:>12.2e} {:>12.2e} {:>12}",
                r.ofms, r.batch_scale, r.gamma, r.cugemm, cw
            );
        }
        all.push((t.label(), rows));
    }
    let doc = Json::Arr(
        all.iter()
            .map(|(label, rows)| {
                Json::obj(vec![
                    ("kernel", Json::from(label.as_str())),
                    ("rows", Json::Arr(rows.iter().map(|r| r.to_json()).collect())),
                ])
            })
            .collect(),
    );
    save_json("table3", &doc);
}

fn fig10(mode: &Mode) {
    println!("\n==== Figure 10: relative-error distribution ====");
    let mut out = Vec::new();
    for idx in [8usize, 6] {
        // Γ16(8,9) and Γ16(10,7), like the figure.
        let t = &TABLE3[idx];
        let h = run_histogram(t, 12, 1.6e-4, if mode.quick { 0.3 } else { f64::INFINITY });
        println!("\n-- {} vs CuGEMM (bucket width {:.1e}) --", h.label, h.bucket_width);
        println!("{:>12} {:>10} {:>10}", "rel. error", h.label.as_str(), "CuGEMM");
        for (b, (g, c)) in h.gamma_pct.iter().zip(&h.cugemm_pct).enumerate() {
            let lo = b as f64 * h.bucket_width;
            println!("{lo:>12.2e} {g:>9.2}% {c:>9.2}%");
        }
        out.push(h);
    }
    save_json("fig10", &Json::Arr(out.iter().map(|h| h.to_json()).collect()));
}

// ---------------------------------------------------------------------------
// Model validation: measured CPU stage shares vs gpu-sim predictions
// ---------------------------------------------------------------------------

fn validate_model(mode: &Mode) {
    println!("\n==== validate-model: measured CPU stage shares vs gpu-sim op-count model ====");
    println!("(measured = iwino-obs stage timers, normalised over the five pipeline stages;");
    println!(" predicted = iwino_gpu_sim::model::predicted_stage_shares)");
    let d = iwino_simd::dispatch_info();
    println!(
        "(microkernels: {}{} — shares are only comparable across runs with the same ISA)",
        d.isa,
        if d.forced_scalar { " [forced]" } else { "" }
    );
    let cases: &[(&str, GammaSpec, iwino_tensor::ConvShape)] = &[
        (
            "Γ8(6,3), exact cover",
            GammaSpec::new(8, 6, 3, Variant::Standard),
            iwino_tensor::ConvShape::from_ofms(2, 48, 48, 64, 64, 3),
        ),
        (
            "Γ8(6,3), ragged OW=47",
            GammaSpec::new(8, 6, 3, Variant::Standard),
            iwino_tensor::ConvShape::from_ofms(2, 48, 47, 64, 64, 3),
        ),
        (
            "Γ16(8,9), exact cover",
            GammaSpec::new(16, 8, 9, Variant::Standard),
            iwino_tensor::ConvShape::from_ofms(1, 32, 32, 32, 32, 9),
        ),
    ];
    let reps = if mode.quick { 2 } else { 5 };
    let mut doc = Vec::new();
    for (label, spec, shape) in cases {
        let rows = validate_stage_model(shape, *spec, reps);
        println!("\n-- {label} --");
        println!(
            "{:<18} {:>10} {:>10} {:>11}",
            "stage", "measured", "predicted", "divergence"
        );
        for r in &rows {
            println!(
                "{:<18} {:>9.1}% {:>9.1}% {:>10.1}pp",
                r.stage,
                100.0 * r.measured,
                100.0 * r.predicted,
                100.0 * r.divergence()
            );
        }
        let max_div = rows.iter().map(|r| r.divergence()).fold(0.0, f64::max);
        println!("max divergence: {:.1}pp", 100.0 * max_div);
        doc.push(Json::obj(vec![
            ("case", Json::from(*label)),
            ("stages", Json::Arr(rows.iter().map(|r| r.to_json()).collect())),
            ("max_divergence", Json::from(max_div)),
        ]));
    }
    println!("\n(the CPU profile includes gather/memory time inside input_transform, which the");
    println!(" pure op-count model does not charge — divergence there is expected, §5.4)");
    save_json("validate_model", &Json::Arr(doc));
}

// ---------------------------------------------------------------------------
// Stage-rate benchmark: the BENCH_*.json performance trajectory
// ---------------------------------------------------------------------------

/// The pretty-printed dispatch section shared by bench-stages documents.
fn dispatch_json() -> Json {
    let d = iwino_simd::dispatch_info();
    Json::obj(vec![
        ("isa", Json::from(d.isa)),
        ("lane_width", Json::from(d.lane_width)),
        ("forced_scalar", Json::from(d.forced_scalar)),
        (
            "features",
            Json::Arr(d.features.iter().map(|&f| Json::from(f)).collect()),
        ),
    ])
}

/// Positional (non-flag) arguments after the subcommand, skipping the
/// values consumed by value-carrying flags.
fn positional_args(args: &[String]) -> Vec<String> {
    let mut pos = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" | "--out" | "--baseline" | "--reps" | "--max-regression" | "--requests" | "--rate"
            | "--max-batch" | "--workers" | "--seed" | "--backend" => i += 2,
            a if a.starts_with("--") => i += 1,
            a => {
                pos.push(a.to_string());
                i += 1;
            }
        }
    }
    pos
}

/// The value of a `--flag <value>` pair, when present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .map(String::as_str)
}

fn bench_stages(args: &[String], mode: &Mode) {
    let via_engine = args.iter().any(|a| a == "--engine");
    // Optional positional case-set filter: `winograd` runs only the Γ stage
    // cases, `gemm` only the im2col-GEMM sweep (the BENCH_pr9_* document),
    // `indirect` the small-OW/strided frontier sweep (the BENCH_pr10_*
    // document); no filter runs the winograd + gemm sets into one document.
    let set = positional_args(args).into_iter().next();
    let (run_winograd, run_gemm, run_indirect) = match set.as_deref() {
        None => (true, true, false),
        Some("winograd") => (true, false, false),
        Some("gemm") => (false, true, false),
        Some("indirect") => (false, false, true),
        Some(other) => {
            eprintln!("error: unknown bench-stages case set {other:?} (expected winograd|gemm|indirect)");
            std::process::exit(2);
        }
    };
    // `--backend <name>`: which registry backend drives the `indirect` case
    // set. The default measures the indirect path itself; the committed
    // baseline arm re-runs the same shapes through `im2col-gemm-nhwc`.
    let indirect_backend = flag_value(args, "--backend").unwrap_or("im2col-indirect").to_string();
    if flag_value(args, "--backend").is_some() && !run_indirect {
        eprintln!("error: --backend only applies to the `indirect` case set");
        std::process::exit(2);
    }
    println!("\n==== bench-stages: per-stage effective GFLOP/s ====");
    println!("(gflops = whole-run paper-convention FLOPs / time attributed to the stage;");
    println!(" the ratio of a stage's gflops across two commits is that stage's speedup)");
    if via_engine {
        println!("(--engine: reps run plan-cached through iwino-engine; the filter transform");
        println!(" is paid once at warm-up, so it drops out of the measured profile)");
    }
    let out = flag_value(args, "--out")
        .unwrap_or("repro_results/stage_bench.json")
        .to_string();
    let d = iwino_simd::dispatch_info();
    println!(
        "(microkernels: {}{}, lane width {}; features: {})",
        d.isa,
        if d.forced_scalar { " [forced]" } else { "" },
        d.lane_width,
        d.features.join(", ")
    );
    let reps = if mode.quick { 5 } else { 20 };
    let mut doc = Vec::new();
    let mut report = |r: &iwino_bench::StageBenchResult| {
        println!("\n-- {} ({}, ofms {}) --", r.label, r.kernel, r.shape);
        println!(
            "{:<18} {:>14} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "stage", "ns", "share", "gflops", "p50", "p90", "p99"
        );
        for s in &r.stages {
            println!(
                "{:<18} {:>14} {:>7.1}% {:>12.2} {:>10} {:>10} {:>10}",
                s.stage,
                s.ns,
                100.0 * s.share,
                s.gflops,
                s.p50_ns,
                s.p90_ns,
                s.p99_ns
            );
        }
        println!("end-to-end: {:.2} Gflop/s over {} reps", r.gflops, r.reps);
        doc.push(r.to_json());
    };
    if run_winograd {
        for case in stage_bench_cases() {
            report(&bench_stage_rates(&case, reps, via_engine));
        }
    }
    if run_gemm {
        for case in gemm_bench_cases() {
            report(&bench_gemm_rates(&case, reps));
        }
    }
    if run_indirect {
        for case in indirect_bench_cases() {
            report(&bench_backend_rates(&case, reps, &indirect_backend));
        }
    }
    // Schema v3: v2 added the top-level `dispatch` record (cross-ISA diff
    // detection); v3 adds per-stage latency percentiles (p50/p90/p99 ns
    // from the obs log2 histograms). `repro bench-compare` reads v1-v3.
    let json = Json::obj(vec![
        ("schema_version", Json::from(3u64)),
        ("dispatch", dispatch_json()),
        ("cases", Json::Arr(doc)),
    ]);
    match fs::write(&out, json.pretty()) {
        Ok(()) => println!("\n[saved {out}]"),
        Err(e) => eprintln!("\n[failed to write {out}: {e}]"),
    }
    // `--baseline <file>`: guard a cross-commit comparison. Stage rates
    // are only meaningful against a baseline measured on the same
    // microkernel ISA; refuse anything else unless `--force`d.
    if let Some(base_path) = flag_value(args, "--baseline") {
        let ours = iwino_simd::dispatch_info().isa;
        let parsed = match fs::read_to_string(base_path) {
            Ok(text) => iwino_bench::parse_bench_doc(&text),
            Err(e) => {
                eprintln!("error: cannot read baseline {base_path}: {e}");
                std::process::exit(2);
            }
        };
        match parsed.map(|d| d.isa) {
            Ok(Some(base_isa)) if base_isa == ours => {
                println!("[baseline {base_path}: same ISA ({ours}) — stage rates comparable]");
            }
            Ok(Some(base_isa)) => {
                eprintln!(
                    "error: baseline {base_path} was measured on '{base_isa}' but this run dispatched \
                     '{ours}'; cross-ISA stage rates are not comparable (pass --force to override)"
                );
                if !args.iter().any(|a| a == "--force") {
                    std::process::exit(2);
                }
                println!("[--force: comparing across ISAs anyway]");
            }
            Ok(None) => {
                eprintln!(
                    "error: baseline {base_path} has no dispatch record (schema v1?); \
                     cannot verify ISA parity (pass --force to override)"
                );
                if !args.iter().any(|a| a == "--force") {
                    std::process::exit(2);
                }
                println!("[--force: comparing against unverifiable baseline anyway]");
            }
            Err(e) => {
                eprintln!("error: baseline {base_path}: {e}");
                std::process::exit(2);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Perf-regression gate: bench-compare over two bench-stages documents
// ---------------------------------------------------------------------------

/// `repro bench-compare <baseline.json> <after.json>`: exit 0 when every
/// case's end-to-end rate holds within `--max-regression` percent of the
/// baseline, 1 on a regression (or a dropped case), 2 on unusable input
/// (unreadable/malformed files, or un`--force`d ISA mismatch).
fn bench_compare(args: &[String]) {
    let pos = positional_args(args);
    let [base_path, after_path] = pos.as_slice() else {
        eprintln!("usage: repro bench-compare <baseline.json> <after.json> [--max-regression <pct>] [--force]");
        std::process::exit(2);
    };
    let max_pct: f64 = match flag_value(args, "--max-regression").map(str::parse) {
        None => 5.0,
        Some(Ok(p)) if p >= 0.0 => p,
        Some(_) => {
            eprintln!("error: --max-regression takes a non-negative percentage");
            std::process::exit(2);
        }
    };
    let load = |path: &str| match fs::read_to_string(path) {
        Ok(text) => iwino_bench::parse_bench_doc(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let base = load(base_path);
    let after = load(after_path);
    println!("\n==== bench-compare: {base_path} → {after_path} (budget {max_pct}%) ====");
    if let Err(msg) = iwino_bench::isa_parity(&base, &after) {
        if args.iter().any(|a| a == "--force") {
            println!("[--force: {msg} — comparing anyway]");
        } else {
            eprintln!("error: {msg} (pass --force to override)");
            std::process::exit(2);
        }
    }
    let report = iwino_bench::compare(&base, &after, max_pct);
    println!(
        "{:<32} {:>12} {:>12} {:>8}  verdict",
        "case", "base Gflop/s", "after", "ratio"
    );
    for c in &report.cases {
        println!(
            "{:<32} {:>12.2} {:>12.2} {:>7.3}x  {}",
            c.label,
            c.base_gflops,
            c.after_gflops,
            c.ratio,
            if c.regressed { "REGRESSED" } else { "ok" }
        );
        // Stage-level shifts are diagnostic context, not gated: attribution
        // is noisier than the end-to-end wall clock.
        let shifts: Vec<String> = c.stage_ratios.iter().map(|(s, r)| format!("{s} {r:.2}x")).collect();
        if !shifts.is_empty() {
            println!("    stages: {}", shifts.join(", "));
        }
    }
    for label in &report.missing_after {
        println!(
            "{label:<32} {:>12} {:>12} {:>8}  MISSING from after-document",
            "-", "-", "-"
        );
    }
    if report.passed() {
        println!("\nPASS: no case regressed more than {max_pct}%");
    } else {
        let n = report.regressions().count() + report.missing_after.len();
        eprintln!("\nFAIL: {n} case(s) regressed past the {max_pct}% budget");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Serving throughput/latency frontier: the BENCH_serve_*.json pair
// ---------------------------------------------------------------------------

/// `repro serve-bench`: drive `iwino-serve` with an open-loop Poisson load
/// and export the throughput/latency frontier as a bench-compare-gatable
/// document. `--no-coalesce` (or `--max-batch 1`) is the baseline arm of
/// the committed `BENCH_serve_baseline/after.json` pair. Exits non-zero
/// when the run violates the amortization contract (plan-cache misses must
/// stay at one per bucket no matter how many requests are served).
fn serve_bench_cmd(args: &[String]) {
    let mut cfg = iwino_bench::ServeBenchConfig::default();
    let parse_or_die = |flag: &str, v: Option<&str>| -> Option<f64> {
        v.map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} takes a number, got {v:?}");
                std::process::exit(2);
            })
        })
    };
    if let Some(n) = parse_or_die("--requests", flag_value(args, "--requests")) {
        cfg.requests = n as usize;
    }
    if let Some(r) = parse_or_die("--rate", flag_value(args, "--rate")) {
        cfg.rate = r;
    }
    if let Some(b) = parse_or_die("--max-batch", flag_value(args, "--max-batch")) {
        cfg.max_batch = (b as usize).max(1);
    }
    if let Some(w) = parse_or_die("--workers", flag_value(args, "--workers")) {
        cfg.workers = (w as usize).max(1);
    }
    if let Some(s) = parse_or_die("--seed", flag_value(args, "--seed")) {
        cfg.seed = s as u64;
    }
    if args.iter().any(|a| a == "--no-coalesce") {
        cfg.max_batch = 1;
    }
    let out = flag_value(args, "--out").unwrap_or("repro_results/serve_bench.json");
    println!("\n==== serve-bench: open-loop serving frontier ====");
    println!(
        "({} requests at {:.0} req/s over {} buckets; max_batch {}, {} pool lanes{})",
        cfg.requests,
        cfg.rate,
        iwino_bench::serve_bench_buckets().len(),
        cfg.max_batch,
        cfg.workers,
        if cfg.max_batch == 1 { " — coalescing OFF" } else { "" }
    );
    let report = match iwino_bench::run_serve_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-bench FAILED: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:<24} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "bucket", "served", "batches", "coalesce", "p50 µs", "p99 µs", "Gflop/s"
    );
    for c in &report.cases {
        println!(
            "{:<24} {:>8} {:>8} {:>9.2}x {:>10.1} {:>10.1} {:>10.3}",
            c.label,
            c.served,
            c.batches,
            c.coalesce_factor,
            c.p50_e2e_ns as f64 / 1e3,
            c.p99_e2e_ns as f64 / 1e3,
            c.gflops
        );
    }
    println!(
        "end-to-end: {} served in {:.1} ms — {:.0} req/s; plan cache {} hits / {} misses ({} buckets)",
        report.served(),
        report.wall_ns as f64 / 1e6,
        report.throughput_rps,
        report.plan_hits,
        report.plan_misses,
        report.buckets
    );
    match fs::write(out, report.to_json().pretty()) {
        Ok(()) => println!("[saved {out}]"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(2);
        }
    }
    if let Some(reason) = report.amortization_failure() {
        eprintln!("serve-bench FAILED amortization self-check: {reason}");
        std::process::exit(1);
    }
    println!("[amortization self-check: one plan miss per bucket, every admitted request served]");
}

// ---------------------------------------------------------------------------
// Flight recorder: Chrome Trace export of a stage-bench case
// ---------------------------------------------------------------------------

/// `repro trace [<case-label>]`: fly the recorder over one stage-bench case
/// (default: the Fig-8 Γ8(6,3) headline case) and write a Chrome Trace
/// Event document for Perfetto (<https://ui.perfetto.dev>).
fn trace_cmd(args: &[String]) {
    let cases = stage_bench_cases();
    let pos = positional_args(args);
    let case = match pos.first() {
        None => &cases[0],
        Some(label) => cases.iter().find(|c| &c.label == label).unwrap_or_else(|| {
            let known: Vec<&str> = cases.iter().map(|c| c.label.as_str()).collect();
            eprintln!("error: unknown trace case '{label}'; available: {}", known.join(", "));
            std::process::exit(2);
        }),
    };
    let reps: usize = match flag_value(args, "--reps").map(str::parse) {
        None => 3,
        Some(Ok(r)) => r,
        Some(Err(_)) => {
            eprintln!("error: --reps takes an integer");
            std::process::exit(2);
        }
    };
    let out = flag_value(args, "--out").unwrap_or("repro_results/trace.json");
    println!(
        "\n==== trace: {} ({}, ofms {:?}) ====",
        case.label, case.spec, case.shape
    );
    println!("(rep 1 shows the engine_plan span — filter transform included; later reps");
    println!(" are plan-cache hits whose worker chunks land on each pool lane's ring)");
    let doc = iwino_bench::record_trace(case, reps);
    let summary = iwino_bench::validate_chrome_trace(&doc).unwrap_or_else(|e| {
        eprintln!("internal error: exported trace failed validation: {e}");
        std::process::exit(1);
    });
    if let Err(e) = fs::write(out, doc.pretty()) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(2);
    }
    println!(
        "[saved {out}: {} events across {} threads, {} dropped — open in https://ui.perfetto.dev \
         or chrome://tracing]",
        summary.events, summary.tids, summary.dropped
    );
    if summary.dropped > 0 {
        println!("(dropped events mean the per-thread ring filled; the recorder never overwrites)");
    }
    iwino_obs::reset_trace();
}

// ---------------------------------------------------------------------------
// Engine smoke: every registry backend vs the f64 reference + cache stats
// ---------------------------------------------------------------------------

fn engine(mode: &Mode) {
    println!("\n==== engine: registry smoke over every backend ====");
    println!("(each backend runs by name through iwino-engine on the first shape it");
    println!(" supports, is checked against the FP64 direct reference, and is timed");
    println!(" on the plan-cached hot path)");
    let reps = mode.reps();
    let rows = match iwino_bench::engine_smoke(reps) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("engine smoke FAILED: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:<20} {:<14} {:>12} {:>12}",
        "backend", "shape", "max error", "Gflop/s"
    );
    for r in &rows {
        println!(
            "{:<20} {:<14} {:>12.2e} {:>12.2}",
            r.backend, r.shape, r.max_error, r.gflops
        );
    }
    let st = iwino_engine::Engine::global().stats();
    println!(
        "\nplan cache: {} hits / {} misses / {} evictions; {} plans resident ({} KB)",
        st.plan_hits,
        st.plan_misses,
        st.plan_evictions,
        st.plans_cached,
        st.plan_resident_bytes / 1024
    );
    println!(
        "arena: {} hits / {} misses; high water {} KB",
        st.arena.hits,
        st.arena.misses,
        st.arena.bytes_high_water / 1024
    );
    let doc = Json::obj(vec![
        (
            "backends",
            Json::Arr(rows.iter().map(iwino_bench::EngineSmokeRow::to_json).collect()),
        ),
        (
            "engine_stats",
            Json::obj(vec![
                ("plan_hits", Json::from(st.plan_hits)),
                ("plan_misses", Json::from(st.plan_misses)),
                ("plan_evictions", Json::from(st.plan_evictions)),
                ("plans_cached", Json::from(st.plans_cached)),
                ("plan_resident_bytes", Json::from(st.plan_resident_bytes)),
                ("arena_hits", Json::from(st.arena.hits)),
                ("arena_misses", Json::from(st.arena.misses)),
                ("arena_high_water_bytes", Json::from(st.arena.bytes_high_water)),
            ]),
        ),
    ]);
    save_json("engine_smoke", &doc);
}

// ---------------------------------------------------------------------------
// Experiment 3: training (Figures 11/12, Tables 4/5)
// ---------------------------------------------------------------------------

struct TrainSpec {
    name: &'static str,
    opt: OptKind,
    epochs_full: usize,
    build: fn(usize, Backend) -> Sequential,
}

fn run_training(title: &str, json_name: &str, data: &SyntheticDataset, specs: &[TrainSpec], mode: &Mode, batch: usize) {
    println!("\n==== {title} ====");
    println!(
        "(synthetic {}x{}x{} / {} classes; Alpha = Im2col-Winograd backend, PyTorch-arm = GEMM backend; \
         width/epoch scaling printed per row)",
        data.hw, data.hw, data.channels, data.classes
    );
    let width = if mode.quick { 8 } else { 64 };
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "Network", "Optimiser", "Alpha s/ep", "GEMM s/ep", "Accel", "acc(A)", "acc(G)", "act-mem(A)", "weights"
    );
    let mut all_reports: Vec<(String, TrainReport, TrainReport)> = Vec::new();
    for spec in specs {
        let epochs = if mode.quick { 2 } else { spec.epochs_full };
        let cfg = TrainConfig {
            epochs,
            batch,
            lr: 1e-3,
            opt: spec.opt,
            log_every: if mode.quick { 1 } else { 10 },
        };
        let mut alpha_model = (spec.build)(width, Backend::ImcolWinograd);
        let mut gemm_model = (spec.build)(width, Backend::Gemm);
        let ra = train(&mut alpha_model, data, &cfg);
        let rg = train(&mut gemm_model, data, &cfg);
        let accel = rg.mean_epoch_seconds() / ra.mean_epoch_seconds().max(1e-9);
        println!(
            "{:<12} {:>10} {:>13.2}s {:>13.2}s {:>7.3}x {:>9.1}% {:>9.1}% {:>11}KB {:>11}KB",
            spec.name,
            format!("{:?}", spec.opt),
            ra.mean_epoch_seconds(),
            rg.mean_epoch_seconds(),
            accel,
            100.0 * ra.test_accuracy,
            100.0 * rg.test_accuracy,
            ra.peak_activation_bytes / 1024,
            ra.weight_bytes / 1024,
        );
        // Loss-curve agreement summary (the Figure 11/12 claim).
        let max_gap = ra
            .losses
            .iter()
            .zip(&rg.losses)
            .map(|(&(_, a), &(_, b))| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "    loss curve: start {:.3} → end {:.3} (Alpha) vs {:.3} → {:.3} (GEMM); max |Δ| {:.4}",
            ra.losses.first().map(|l| l.1).unwrap_or(f32::NAN),
            ra.final_loss(),
            rg.losses.first().map(|l| l.1).unwrap_or(f32::NAN),
            rg.final_loss(),
            max_gap
        );
        println!("    Alpha {}", sparkline(&ra.losses));
        println!("    GEMM  {}", sparkline(&rg.losses));
        all_reports.push((format!("{} {:?}", spec.name, spec.opt), ra, rg));
    }
    let losses = |l: &[(usize, f32)]| {
        Json::Arr(
            l.iter()
                .map(|&(step, loss)| Json::Arr(vec![Json::from(step), Json::from(loss as f64)]))
                .collect(),
        )
    };
    let entries = Json::Arr(
        all_reports
            .into_iter()
            .map(|(config, a, g)| {
                Json::obj(vec![
                    ("config", Json::from(config)),
                    ("alpha_epoch_s", Json::from(a.mean_epoch_seconds())),
                    ("gemm_epoch_s", Json::from(g.mean_epoch_seconds())),
                    ("alpha_test_acc", Json::from(a.test_accuracy)),
                    ("gemm_test_acc", Json::from(g.test_accuracy)),
                    ("weight_bytes", Json::from(a.weight_bytes)),
                    ("alpha_losses", losses(&a.losses)),
                    ("gemm_losses", losses(&g.losses)),
                ])
            })
            .collect(),
    );
    save_json(json_name, &entries);
}

fn train_cifar(mode: &Mode) {
    // Figure 12's ten configurations (epochs are the paper's; quick mode
    // shrinks them).
    let specs: Vec<TrainSpec> = vec![
        TrainSpec {
            name: "ResNet18",
            opt: OptKind::Adam,
            epochs_full: 25,
            build: |w, b| resnet18(3, 10, w, b),
        },
        TrainSpec {
            name: "ResNet18",
            opt: OptKind::Sgdm,
            epochs_full: 35,
            build: |w, b| resnet18(3, 10, w, b),
        },
        TrainSpec {
            name: "ResNet34",
            opt: OptKind::Adam,
            epochs_full: 30,
            build: |w, b| resnet34(3, 10, w, b),
        },
        TrainSpec {
            name: "ResNet34",
            opt: OptKind::Sgdm,
            epochs_full: 40,
            build: |w, b| resnet34(3, 10, w, b),
        },
        TrainSpec {
            name: "VGG16",
            opt: OptKind::Adam,
            epochs_full: 35,
            build: |w, b| vgg16(32, 3, 10, w, b),
        },
        TrainSpec {
            name: "VGG16",
            opt: OptKind::Sgdm,
            epochs_full: 35,
            build: |w, b| vgg16(32, 3, 10, w, b),
        },
        TrainSpec {
            name: "VGG19",
            opt: OptKind::Adam,
            epochs_full: 40,
            build: |w, b| vgg19(32, 3, 10, w, b),
        },
        TrainSpec {
            name: "VGG19",
            opt: OptKind::Sgdm,
            epochs_full: 40,
            build: |w, b| vgg19(32, 3, 10, w, b),
        },
        TrainSpec {
            name: "VGG16x5",
            opt: OptKind::Adam,
            epochs_full: 40,
            build: |w, b| vgg16x5(32, 3, 10, w, b),
        },
        TrainSpec {
            name: "VGG16x5",
            opt: OptKind::Sgdm,
            epochs_full: 40,
            build: |w, b| vgg16x5(32, 3, 10, w, b),
        },
    ];
    let (train_len, test_len, batch) = if mode.quick {
        (160, 80, 16)
    } else {
        (50_000, 10_000, 512)
    };
    let data = SyntheticDataset::cifar10_like(train_len, test_len);
    run_training(
        "Figure 12 + Table 5: Cifar10-like training",
        "train_cifar",
        &data,
        &specs,
        mode,
        batch,
    );
}

fn train_imagenet(mode: &Mode) {
    // Figure 11's six configurations.
    let specs: Vec<TrainSpec> = vec![
        TrainSpec {
            name: "ResNet18",
            opt: OptKind::Adam,
            epochs_full: 50,
            build: |w, b| resnet18(3, 100, w, b),
        },
        TrainSpec {
            name: "ResNet34",
            opt: OptKind::Adam,
            epochs_full: 50,
            build: |w, b| resnet34(3, 100, w, b),
        },
        TrainSpec {
            name: "VGG16",
            opt: OptKind::Adam,
            epochs_full: 30,
            build: |w, b| vgg16(64, 3, 100, w, b),
        },
        TrainSpec {
            name: "VGG19",
            opt: OptKind::Adam,
            epochs_full: 40,
            build: |w, b| vgg19(64, 3, 100, w, b),
        },
        TrainSpec {
            name: "VGG16x5",
            opt: OptKind::Adam,
            epochs_full: 40,
            build: |w, b| vgg16x5(64, 3, 100, w, b),
        },
        TrainSpec {
            name: "VGG16x7",
            opt: OptKind::Sgdm,
            epochs_full: 30,
            build: |w, b| vgg16x7(64, 3, 100, w, b),
        },
    ];
    let (train_len, test_len, batch) = if mode.quick {
        (120, 60, 12)
    } else {
        (100_000, 10_000, 256)
    };
    let data = SyntheticDataset::imagenet_like(train_len, test_len);
    run_training(
        "Figure 11 + Table 4: ILSVRC-like training",
        "train_imagenet",
        &data,
        &specs,
        mode,
        batch,
    );
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// A tiny unicode sparkline of a loss series (Figures 11/12 in one line).
fn sparkline(losses: &[(usize, f32)]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if losses.is_empty() {
        return String::new();
    }
    let lo = losses.iter().map(|&(_, l)| l).fold(f32::INFINITY, f32::min);
    let hi = losses.iter().map(|&(_, l)| l).fold(f32::NEG_INFINITY, f32::max);
    let span = (hi - lo).max(1e-9);
    losses
        .iter()
        .map(|&(_, l)| BARS[(((l - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn ablation_banks() {
    println!("\n==== Ablation A1 (§5.2): shared-memory bank conflicts ====");
    println!(
        "{:<34} {:>12} {:>12} {:>9}",
        "access pattern", "transactions", "ideal", "slowdown"
    );
    let rows: Vec<(&str, Vec<_>)> = vec![
        ("Ys store, unpadded", ys_store_gamma8(false)),
        ("Ys store, padded [8][33][20]", ys_store_gamma8(true)),
        ("Ds store, naive Xi", ds_store_gamma8(false)),
        ("Ds store, Xi←(Xi+4Xk)%32", ds_store_gamma8(true)),
        ("Gs 128-bit load, linear lanes", gs_load_gamma8(false)),
        ("Gs 128-bit load, Z-shaped lanes", gs_load_gamma8(true)),
    ];
    let mut json = Vec::new();
    for (label, patterns) in rows {
        let (actual, ideal) = transactions_and_ideal(&patterns);
        println!(
            "{label:<34} {actual:>12} {ideal:>12} {:>8.2}x",
            actual as f64 / ideal as f64
        );
        json.push(Json::obj(vec![
            ("pattern", Json::from(label)),
            ("transactions", Json::from(actual)),
            ("ideal", Json::from(ideal)),
        ]));
    }
    save_json("ablation_banks", &Json::Arr(json));
}

fn ablation_boundary() {
    use iwino_core::{conv2d_opts, default_kernel_prefs, ConvOptions, SegmentPlan};
    use iwino_tensor::{ConvShape, Tensor4};
    println!("\n==== Ablation (§5.5): boundary treatment vs conditional tiles ====");
    println!("Γ8(6,3); 'conditional waste' = fraction of tile FLOPs a conditional-store");
    println!("kernel would discard; 'planner' = this library's segment composition.");
    println!(
        "{:<6} {:>18} {:>22} {:>16}",
        "OW", "conditional waste", "planner segments", "GEMM columns"
    );
    let prefs = default_kernel_prefs(3, false);
    for ow in [7usize, 12, 13, 23, 47, 48, 97, 224] {
        let n = 6usize;
        let tiles = ow.div_ceil(n);
        let conditional_waste = (tiles * n - ow) as f64 / (tiles * n) as f64;
        let plan = SegmentPlan::build(ow, &prefs);
        let gemm_cols: usize = plan
            .segments
            .iter()
            .filter(|s| s.kernel == iwino_core::KernelChoice::Gemm)
            .map(|s| s.len)
            .sum();
        println!(
            "{:<6} {:>17.1}% {:>22} {:>16}",
            ow,
            100.0 * conditional_waste,
            plan.segments.len(),
            gemm_cols
        );
    }
    // Measured: exact cover vs ragged width on this CPU.
    let exact = ConvShape::square(2, 48, 32, 32, 3);
    let ragged = ConvShape::from_ofms(2, 48, 47, 32, 32, 3);
    let opts = ConvOptions::default();
    let mut gf = Vec::new();
    for s in [exact, ragged] {
        let x = Tensor4::<f32>::random(s.x_dims(), 1, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 2, -1.0, 1.0);
        let _ = conv2d_opts(&x, &w, &s, &opts);
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            let _ = conv2d_opts(&x, &w, &s, &opts);
        }
        gf.push(s.flops() * 3.0 / t0.elapsed().as_secs_f64() / 1e9);
    }
    println!(
        "measured (CPU): OW=48 exact cover {:.1} Gflop/s vs OW=47 ragged {:.1} Gflop/s ({:+.1}%)",
        gf[0],
        gf[1],
        100.0 * (gf[1] / gf[0] - 1.0)
    );
}

fn ablation_precision() {
    use iwino_core::{error_decomposition, GammaSpec, Variant};
    use iwino_tensor::ConvShape;
    println!("\n==== Ablation (§6.2.2): error decomposition — algorithm vs datatype ====");
    println!("(mean relative error; 'algorithmic' = f64-Winograd vs f64-direct,");
    println!(" 'datatype' = f32-Winograd vs f64-Winograd, 'total' = Table 3's metric)");
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "kernel", "algorithmic", "datatype", "total"
    );
    let mut json = Vec::new();
    for (alpha, n, r) in [
        (4usize, 2usize, 3usize),
        (8, 6, 3),
        (8, 4, 5),
        (8, 2, 7),
        (16, 10, 7),
        (16, 8, 9),
    ] {
        let spec = GammaSpec::new(alpha, n, r, Variant::Standard);
        let shape = ConvShape::square(1, 2 * n.max(4), 16, 16, r);
        let d = error_decomposition(&shape, spec, 42);
        println!(
            "{:<14} {:>14.2e} {:>14.2e} {:>14.2e}",
            format!("Γ{alpha}({n},{r})"),
            d.algorithmic,
            d.datatype,
            d.total
        );
        json.push(Json::obj(vec![
            ("kernel", Json::from(format!("Γ{alpha}({n},{r})"))),
            ("algorithmic", Json::from(d.algorithmic)),
            ("datatype", Json::from(d.datatype)),
            ("total", Json::from(d.total)),
        ]));
    }
    println!("⟹ the algorithm is exact to f64 ulps; Table 3's error is datatype-induced,");
    println!("  growing with α exactly as §6.2.2 argues.");
    save_json("ablation_precision", &Json::Arr(json));
}

fn ablation_variants() {
    println!("\n==== Ablation A2 (§5.4/§5.6): ruse and c64 variants ====");
    use iwino_core::{GammaSpec, Variant};
    use iwino_gpu_sim::model::arithmetic_intensity;
    let dev = DeviceSpec::rtx3060ti();
    println!(
        "{:<24} {:>12} {:>16} {:>16}",
        "kernel", "intensity", "C=128 Gflop/s", "C=512 Gflop/s"
    );
    println!("(3060Ti; exact-cover OW; large channels spill L2 — where ruse/c64 pull ahead, §6.1.2)");
    let mut json = Vec::new();
    for (alpha, n, r) in [
        (8usize, 4usize, 5usize),
        (8, 3, 6),
        (8, 2, 7),
        (16, 10, 7),
        (16, 9, 8),
        (16, 8, 9),
    ] {
        for variant in [Variant::Standard, Variant::Ruse, Variant::C64] {
            if variant == Variant::C64 && alpha != 16 {
                continue;
            }
            let spec = GammaSpec::new(alpha, n, r, variant);
            let (bn, bm) = match (alpha, variant) {
                (4, _) => (64, 64),
                (8, _) => (64, 32),
                (16, Variant::C64) => (64, 32),
                _ => (32, 32),
            };
            let intensity = arithmetic_intensity(alpha, r, bn, bm, variant == Variant::Ruse);
            // Exact-cover shape: OW a multiple of n.
            let ow = n * 4;
            let small = iwino_tensor::ConvShape::from_ofms(128, 32, ow, 128, 128, r);
            let big = iwino_tensor::ConvShape::from_ofms(128, 32, ow, 512, 512, r);
            let algo = Algorithm::Gamma {
                spec,
                include_transpose: false,
            };
            let gf_small = iwino_gpu_sim::estimate(&dev, &small, &algo).gflops;
            let gf_big = iwino_gpu_sim::estimate(&dev, &big, &algo).gflops;
            println!(
                "{:<24} {:>12.2} {:>16.0} {:>16.0}",
                format!("{spec}"),
                intensity,
                gf_small,
                gf_big
            );
            json.push(Json::obj(vec![
                ("kernel", Json::from(format!("{spec}"))),
                ("intensity", Json::from(intensity)),
                ("gflops_c128", Json::from(gf_small)),
                ("gflops_c512", Json::from(gf_big)),
            ]));
        }
    }
    // GEMM reference point.
    let shape = iwino_tensor::ConvShape::from_ofms(128, 32, 32, 128, 128, 3);
    let g = iwino_gpu_sim::estimate(&dev, &shape, &Algorithm::ImplicitGemm { layout: Layout::Nhwc });
    println!("{:<24} {:>12.2} {:>16.0}", "Implicit-GEMM-NHWC", 16.0, g.gflops);
    save_json("ablation_variants", &Json::Arr(json));
}

fn ablation_transforms() {
    println!("\n==== Ablation A3 (§5.3): simplified data transformations ====");
    println!(
        "{:<12} {:>14} {:>14} {:>10}  (multiplications per transformed Dᵀ tile)",
        "F(n,r)", "dense muls", "paired muls", "saving"
    );
    let mut json = Vec::new();
    for (n, r) in [
        (6usize, 3usize),
        (4, 5),
        (5, 4),
        (3, 6),
        (2, 7),
        (7, 2),
        (10, 7),
        (9, 8),
        (8, 9),
    ] {
        let t = WinogradTransform::generate(n, r);
        let dense = t.dt.mul_count();
        let paired = t.dt_paired().mul_count();
        let saving = 1.0 - paired as f64 / dense as f64;
        println!("F({n},{r}){:<6} {dense:>14} {paired:>14} {:>9.1}%", "", 100.0 * saving);
        json.push(Json::obj(vec![
            ("transform", Json::from(format!("F({n},{r})"))),
            ("dense_muls", Json::from(dense)),
            ("paired_muls", Json::from(paired)),
        ]));
    }
    save_json("ablation_transforms", &Json::Arr(json));
}
