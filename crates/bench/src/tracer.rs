//! `repro trace`: fly the flight recorder over one stage-bench case and
//! export the Chrome Trace Event document Perfetto renders as a per-worker
//! timeline.
//!
//! The capture drives the case through a private [`Engine`] so the timeline
//! shows the deployment shape of a run: one `engine_plan` span (with the
//! filter transform inside) on the calling thread for the first rep, then
//! plan-cache-hit `engine_run` spans whose `worker_chunk` / `gamma_segment`
//! events land on each pool lane's own ring.
//!
//! [`validate_chrome_trace`] is the schema check shared by the binary and
//! the `trace_validity` integration test: structural validity (every event
//! carries `name`/`ph`/`pid`/`tid`, phases are only `B`/`E`/`M`) plus the
//! recorder's own invariant — per-thread `B`/`E` events nest and balance,
//! which the ring's reservation rule guarantees even under overflow.

use crate::figures::StageBenchCase;
use iwino_core::Epilogue;
use iwino_engine::{ConvAlgorithm, Engine, Handle, WinogradBackend};
use iwino_obs::{self as obs, Json};
use iwino_tensor::Tensor4;
use std::sync::Arc;

/// What [`validate_chrome_trace`] measured while checking the document.
#[derive(Clone, Copy, Debug)]
pub struct TraceSummary {
    /// `B`/`E` events (metadata records excluded).
    pub events: usize,
    /// Distinct threads that recorded at least one span.
    pub tids: usize,
    /// Events refused because a ring was full, per the embedded trace_meta.
    pub dropped: u64,
}

/// Run `case` for `reps` calls with the flight recorder on and return the
/// exported Chrome Trace document. The recorder is reset first so the
/// timeline holds exactly this capture, and disabled again afterwards.
pub fn record_trace(case: &StageBenchCase, reps: usize) -> Json {
    let shape = &case.shape;
    let x = Tensor4::<f32>::random(shape.x_dims(), 61, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 62, -1.0, 1.0);
    let opts = iwino_core::ConvOptions {
        force_kernels: Some(vec![case.spec]),
        ..Default::default()
    };
    // A private engine: the first traced rep deliberately shows the plan
    // build, so it must not find a plan some earlier run already cached.
    let eng = Engine::new();
    let algo: Arc<dyn ConvAlgorithm> = Arc::new(WinogradBackend::with_options(opts));
    let handle = Handle::default();
    let was_enabled = obs::enabled();
    obs::set_enabled(true);
    obs::reset_trace();
    obs::set_trace_enabled(true);
    obs::set_trace_thread_label("repro-main");
    for _ in 0..reps.max(1) {
        drop(
            eng.conv_with(&algo, handle.filter_id(), &x, &w, shape, &Epilogue::None)
                .unwrap_or_else(|e| panic!("{}: {e}", case.label)),
        );
    }
    obs::set_trace_enabled(false);
    obs::set_enabled(was_enabled);
    obs::export_chrome_trace()
}

/// Check that `doc` is a structurally valid Chrome Trace Event document
/// with balanced, properly nested begin/end pairs on every thread.
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = std::collections::BTreeMap::new();
    let mut span_events = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        e.get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        match ph {
            "M" => continue, // metadata (thread names) carries no ts
            "B" | "E" => {
                let ts = e
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("event {i}: bad ts {ts}"));
                }
                if name == "unknown" {
                    return Err(format!("event {i}: stage id did not decode"));
                }
                span_events += 1;
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    stack.push(name.to_string());
                } else if stack.pop().as_deref() != Some(name) {
                    return Err(format!("event {i}: E '{name}' without matching B on tid {tid}"));
                }
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    let tids = stacks.len();
    for (tid, stack) in stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid} left unclosed spans: {stack:?}"));
        }
    }
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("trace_meta"))
        .and_then(|m| m.get("trace_events_dropped"))
        .and_then(Json::as_u64)
        .ok_or("missing otherData.trace_meta.trace_events_dropped")?;
    Ok(TraceSummary {
        events: span_events,
        tids,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_rejects_broken_documents() {
        let cases = [
            (r#"{"displayTimeUnit": "ms"}"#, "traceEvents"),
            (
                r#"{"traceEvents": [{"name": "x", "ph": "B", "pid": 1, "tid": 7, "ts": 1.0}]}"#,
                "unclosed",
            ),
            (
                r#"{"traceEvents": [{"name": "x", "ph": "E", "pid": 1, "tid": 7, "ts": 1.0}]}"#,
                "without matching B",
            ),
            (
                r#"{"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 7, "ts": 1.0}]}"#,
                "unexpected ph",
            ),
            (
                r#"{"traceEvents": [{"ph": "B", "pid": 1, "tid": 7, "ts": 1.0}]}"#,
                "missing name",
            ),
        ];
        for (text, want) in cases {
            let err = validate_chrome_trace(&Json::parse(text).unwrap()).unwrap_err();
            assert!(err.contains(want), "{text}: {err}");
        }
    }

    #[test]
    fn validator_accepts_a_minimal_balanced_document() {
        let text = r#"{
            "traceEvents": [
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": 7, "args": {"name": "w0"}},
                {"name": "total", "ph": "B", "pid": 1, "tid": 7, "ts": 0.5},
                {"name": "worker_chunk", "ph": "B", "pid": 1, "tid": 9, "ts": 1.0},
                {"name": "worker_chunk", "ph": "E", "pid": 1, "tid": 9, "ts": 2.0},
                {"name": "total", "ph": "E", "pid": 1, "tid": 7, "ts": 3.0}
            ],
            "otherData": {"trace_meta": {"trace_events_dropped": 0}}
        }"#;
        let s = validate_chrome_trace(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(s.events, 4);
        assert_eq!(s.tids, 2);
        assert_eq!(s.dropped, 0);
    }
}
