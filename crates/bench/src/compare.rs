//! `repro bench-compare`: the perf-regression gate over two `bench-stages`
//! JSON documents.
//!
//! The gate is the *end-to-end* rate: a case regresses when its achieved
//! Gflop/s in the after-document falls more than `max_regression_pct` below
//! the baseline's, or when a baseline case is missing entirely (a silently
//! dropped case must not read as a pass). Per-stage rate shifts are
//! reported alongside for diagnosis but never gate on their own — stage
//! attribution is noisier than the end-to-end wall clock, and a stage can
//! legitimately slow down while the pipeline it feeds speeds up.
//!
//! Cross-ISA refusal rides along from PR 5: stage and end-to-end rates are
//! only comparable between runs that dispatched the same microkernel ISA,
//! so [`isa_parity`] rejects mismatched (or unverifiable schema-v1)
//! document pairs unless the caller `--force`s the diff.

use iwino_obs::Json;

/// A parsed `bench-stages` document (any schema version ≥ 1).
#[derive(Clone, Debug)]
pub struct BenchDoc {
    pub schema_version: u64,
    /// Microkernel ISA of the run. `None` for schema-v1 documents, which
    /// predate the dispatch record and cannot prove ISA parity.
    pub isa: Option<String>,
    pub cases: Vec<BenchCase>,
}

/// One benchmark case of a [`BenchDoc`].
#[derive(Clone, Debug)]
pub struct BenchCase {
    pub label: String,
    /// End-to-end achieved Gflop/s — the gated quantity.
    pub gflops: f64,
    /// Per-stage effective rates, in document order (informational).
    pub stages: Vec<(String, f64)>,
}

impl BenchDoc {
    fn case(&self, label: &str) -> Option<&BenchCase> {
        self.cases.iter().find(|c| c.label == label)
    }
}

/// Parse a `bench-stages` document. Tolerant across schema versions: v1
/// has no `dispatch` record, v3 adds per-stage percentiles this reader
/// simply does not touch.
pub fn parse_bench_doc(text: &str) -> Result<BenchDoc, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema_version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    let isa = doc
        .get("dispatch")
        .and_then(|d| d.get("isa"))
        .and_then(Json::as_str)
        .map(str::to_string);
    let cases_json = doc.get("cases").and_then(Json::as_arr).ok_or("missing cases array")?;
    let mut cases = Vec::with_capacity(cases_json.len());
    for c in cases_json {
        let label = c
            .get("label")
            .and_then(Json::as_str)
            .ok_or("case without a label")?
            .to_string();
        let gflops = c
            .get("gflops")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("case {label}: missing gflops"))?;
        let stages = c
            .get("stages")
            .and_then(Json::as_obj)
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|(name, v)| Some((name.clone(), v.get("gflops").and_then(Json::as_f64)?)))
                    .collect()
            })
            .unwrap_or_default();
        cases.push(BenchCase { label, gflops, stages });
    }
    Ok(BenchDoc {
        schema_version,
        isa,
        cases,
    })
}

/// Check that two documents were measured on the same microkernel ISA.
/// `Err` carries the refusal message; the caller decides whether `--force`
/// overrides it.
pub fn isa_parity(base: &BenchDoc, after: &BenchDoc) -> Result<(), String> {
    match (&base.isa, &after.isa) {
        (Some(b), Some(a)) if b == a => Ok(()),
        (Some(b), Some(a)) => Err(format!(
            "baseline dispatched '{b}' but the after-document dispatched '{a}'; \
             cross-ISA rates are not comparable"
        )),
        (None, _) => Err(format!(
            "baseline has no dispatch record (schema v{}); cannot verify ISA parity",
            base.schema_version
        )),
        (_, None) => Err(format!(
            "after-document has no dispatch record (schema v{}); cannot verify ISA parity",
            after.schema_version
        )),
    }
}

/// One case's baseline-vs-after outcome.
#[derive(Clone, Debug)]
pub struct CaseDelta {
    pub label: String,
    pub base_gflops: f64,
    pub after_gflops: f64,
    /// after / baseline end-to-end rate (> 1.0 is a speedup).
    pub ratio: f64,
    pub regressed: bool,
    /// Per-stage after/baseline rate ratios for stages present on both
    /// sides (informational — never gated).
    pub stage_ratios: Vec<(String, f64)>,
}

/// Outcome of [`compare`]: per-case deltas plus baseline cases the
/// after-document dropped (each of which fails the gate).
#[derive(Clone, Debug)]
pub struct CompareReport {
    pub max_regression_pct: f64,
    pub cases: Vec<CaseDelta>,
    pub missing_after: Vec<String>,
}

impl CompareReport {
    pub fn regressions(&self) -> impl Iterator<Item = &CaseDelta> {
        self.cases.iter().filter(|c| c.regressed)
    }

    /// True when no case regressed past the threshold and none vanished.
    pub fn passed(&self) -> bool {
        self.missing_after.is_empty() && self.regressions().next().is_none()
    }
}

/// Diff `after` against `base`, flagging every case whose end-to-end rate
/// fell more than `max_regression_pct` percent.
pub fn compare(base: &BenchDoc, after: &BenchDoc, max_regression_pct: f64) -> CompareReport {
    let floor = 1.0 - max_regression_pct / 100.0;
    let mut cases = Vec::new();
    let mut missing_after = Vec::new();
    for b in &base.cases {
        let Some(a) = after.case(&b.label) else {
            missing_after.push(b.label.clone());
            continue;
        };
        let ratio = if b.gflops > 0.0 {
            a.gflops / b.gflops
        } else {
            f64::INFINITY
        };
        let stage_ratios = b
            .stages
            .iter()
            .filter_map(|(name, bg)| {
                let (_, ag) = a.stages.iter().find(|(n, _)| n == name)?;
                (*bg > 0.0).then(|| (name.clone(), ag / bg))
            })
            .collect();
        cases.push(CaseDelta {
            label: b.label.clone(),
            base_gflops: b.gflops,
            after_gflops: a.gflops,
            ratio,
            regressed: ratio < floor,
            stage_ratios,
        });
    }
    CompareReport {
        max_regression_pct,
        cases,
        missing_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed PR-5 trajectory pair at the repo root — the exact
    /// files `scripts/check.sh` feeds to `repro bench-compare`.
    fn committed_pair() -> (BenchDoc, BenchDoc) {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let read = |name: &str| std::fs::read_to_string(format!("{root}/{name}")).unwrap();
        (
            parse_bench_doc(&read("BENCH_pr5_baseline.json")).unwrap(),
            parse_bench_doc(&read("BENCH_pr5_after.json")).unwrap(),
        )
    }

    fn doc(cases: &[(&str, f64)]) -> BenchDoc {
        BenchDoc {
            schema_version: 3,
            isa: Some("avx2+fma".into()),
            cases: cases
                .iter()
                .map(|&(label, gflops)| BenchCase {
                    label: label.into(),
                    gflops,
                    stages: vec![("outer_product".into(), gflops * 1.5)],
                })
                .collect(),
        }
    }

    #[test]
    fn committed_trajectory_pair_parses_and_passes() {
        let (base, after) = committed_pair();
        assert_eq!(base.schema_version, 1);
        assert!(base.isa.is_none(), "v1 predates the dispatch record");
        assert_eq!(after.schema_version, 2);
        assert_eq!(after.isa.as_deref(), Some("avx2+fma"));
        assert_eq!(base.cases.len(), after.cases.len());
        assert!(base.cases.iter().all(|c| !c.stages.is_empty()));
        // PR 5's SIMD microkernels sped every case up; the forward diff is
        // green even at a tight threshold…
        let report = compare(&base, &after, 5.0);
        assert!(report.passed(), "{report:?}");
        assert!(report.cases.iter().all(|c| c.ratio > 1.0));
        // …and the reversed diff is the artificial regression: undoing a
        // ~1.5× speedup trips any sane threshold.
        let reversed = compare(&after, &base, 10.0);
        assert!(!reversed.passed());
        assert!(reversed.regressions().count() >= 1);
    }

    #[test]
    fn isa_parity_requires_matching_dispatch_records() {
        let (base, after) = committed_pair();
        assert!(isa_parity(&base, &after).unwrap_err().contains("schema v1"));
        assert!(isa_parity(&after, &after).is_ok());
        let mut neon = after.clone();
        neon.isa = Some("neon".into());
        assert!(isa_parity(&after, &neon).unwrap_err().contains("not comparable"));
    }

    #[test]
    fn threshold_separates_noise_from_regression() {
        let base = doc(&[("a", 100.0), ("b", 50.0)]);
        // 3% down on one case: inside a 5% budget, outside a 2% one.
        let after = doc(&[("a", 97.0), ("b", 55.0)]);
        assert!(compare(&base, &after, 5.0).passed());
        let tight = compare(&base, &after, 2.0);
        assert!(!tight.passed());
        let bad: Vec<&str> = tight.regressions().map(|c| c.label.as_str()).collect();
        assert_eq!(bad, ["a"]);
        let delta = &tight.cases[0];
        assert!((delta.ratio - 0.97).abs() < 1e-12);
        assert_eq!(delta.stage_ratios.len(), 1, "common stages are diffed too");
    }

    #[test]
    fn dropped_case_fails_the_gate() {
        let base = doc(&[("a", 100.0), ("b", 50.0)]);
        let after = doc(&[("a", 120.0)]);
        let report = compare(&base, &after, 5.0);
        assert!(!report.passed());
        assert_eq!(report.missing_after, ["b"]);
        assert_eq!(report.regressions().count(), 0, "the surviving case is fine");
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        assert!(parse_bench_doc("{").unwrap_err().contains("not valid JSON"));
        assert!(parse_bench_doc("{}").unwrap_err().contains("schema_version"));
        let no_gflops = r#"{"schema_version": 3, "cases": [{"label": "x"}]}"#;
        assert!(parse_bench_doc(no_gflops).unwrap_err().contains("missing gflops"));
    }
}
