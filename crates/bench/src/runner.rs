//! Measurement and simulation drivers shared by the `repro` binary and the
//! criterion benches.

use crate::figures::{scale_batch, AccuracyTable, Panel};
use iwino_baselines::{direct_conv_f64_ref, im2col_conv_nhwc, winograd2d_conv, Im2colPlan};
use iwino_core::{conv2d_opts, ConvError, ConvOptions, Epilogue, GammaSpec};
use iwino_engine::{ConvAlgorithm, Engine, Handle, WinogradBackend};
use iwino_gpu_sim::model::{Algorithm, Layout};
use iwino_gpu_sim::DeviceSpec;
use iwino_obs::Json;
use iwino_tensor::{relative_error_histogram, ConvShape, ErrorStats, Tensor4};
use std::sync::Arc;
use std::time::Instant;

/// One plotted point: series label → Gflop/s.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    pub series: String,
    pub gflops: f64,
}

/// One x-axis position of a figure panel.
#[derive(Clone, Debug)]
pub struct PanelRow {
    pub ofms: String,
    /// Batch scaling applied in quick mode (1.0 = paper size).
    pub batch_scale: f64,
    pub points: Vec<SeriesPoint>,
}

/// A regenerated figure panel.
#[derive(Clone, Debug)]
pub struct PanelResult {
    pub panel: String,
    pub rows: Vec<PanelRow>,
}

impl PanelResult {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("panel", Json::from(self.panel.as_str())),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| {
                            Json::obj(vec![
                                ("ofms", Json::from(row.ofms.as_str())),
                                ("batch_scale", Json::from(row.batch_scale)),
                                (
                                    "points",
                                    Json::Arr(
                                        row.points
                                            .iter()
                                            .map(|p| {
                                                Json::obj(vec![
                                                    ("series", Json::from(p.series.as_str())),
                                                    ("gflops", Json::from(p.gflops)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn time_reps(mut f: impl FnMut(), reps: usize) -> f64 {
    f(); // warm-up ("each algorithm was executed once to optimize performance")
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Measured CPU Gflop/s of `Γ` with a forced primary kernel.
pub fn measure_gamma(shape: &ConvShape, spec: GammaSpec, reps: usize) -> f64 {
    let x = Tensor4::<f32>::random(shape.x_dims(), 11, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 12, -1.0, 1.0);
    let opts = ConvOptions {
        force_kernels: Some(vec![spec]),
        ..Default::default()
    };
    let dt = time_reps(|| drop(conv2d_opts(&x, &w, shape, &opts)), reps);
    shape.flops() / dt / 1e9
}

/// Measured CPU Gflop/s of a registry backend driven by name through the
/// engine — the plan is built (and cached) on warm-up and every timed rep
/// is a plan-cache hit, which is the deployment hot path `nn::Conv2d`
/// exercises. Errors surface before the timed loop starts.
pub fn measure_engine_backend(name: &str, shape: &ConvShape, reps: usize) -> Result<f64, ConvError> {
    let eng = Engine::global();
    let algo = eng.algorithm(name)?;
    // A fresh handle per measurement: its unique filter-id keeps this run's
    // plan from colliding with any earlier sweep over the same shape.
    let h = Handle::default();
    let x = Tensor4::<f32>::random(shape.x_dims(), 13, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 14, -1.0, 1.0);
    eng.conv_with(&algo, h.filter_id(), &x, &w, shape, &Epilogue::None)?;
    let dt = time_reps(
        || {
            drop(
                eng.conv_with(&algo, h.filter_id(), &x, &w, shape, &Epilogue::None)
                    .expect("pre-flight call succeeded"),
            )
        },
        reps,
    );
    Ok(shape.flops() / dt / 1e9)
}

/// Measured CPU Gflop/s of the im2col+GEMM baselines, driven through the
/// engine registry (NCHW pays its layout conversions at the tensor edges,
/// which is exactly the §6.1 point about NHWC being the native layout).
pub fn measure_im2col(shape: &ConvShape, layout: Layout, reps: usize) -> f64 {
    let name = match layout {
        Layout::Nhwc => "im2col-gemm-nhwc",
        Layout::Nchw => "im2col-gemm-nchw",
    };
    measure_engine_backend(name, shape, reps).unwrap_or_else(|e| panic!("{name} on {shape:?}: {e}"))
}

/// Measured CPU Gflop/s of the fused 2-D Winograd baseline (r = 3 only),
/// driven through the engine registry.
pub fn measure_winograd2d(shape: &ConvShape, reps: usize) -> f64 {
    measure_engine_backend("winograd2d", shape, reps).unwrap_or_else(|e| panic!("winograd2d on {shape:?}: {e}"))
}

/// Regenerate one figure panel: GPU-simulated series for every variant and
/// baseline, plus CPU-measured series when `measure` is set.
pub fn run_panel(panel: &Panel, dev: &DeviceSpec, measure: bool, target_gflop: f64, reps: usize) -> PanelResult {
    let mut rows = Vec::new();
    for &ofms in panel.shapes {
        let full_shape = panel.conv_shape(ofms);
        let mut points = Vec::new();
        // Simulated GPU series (both with and without the filter-transpose
        // charge, like the figures' paired series).
        for &variant in panel.variants {
            let spec = panel.spec(variant);
            for include_transpose in [true, false] {
                let algo = Algorithm::Gamma {
                    spec,
                    include_transpose,
                };
                let r = iwino_gpu_sim::estimate(dev, &full_shape, &algo);
                points.push(SeriesPoint {
                    series: format!("sim:{}", algo.label()),
                    gflops: r.gflops,
                });
            }
        }
        for layout in [Layout::Nchw, Layout::Nhwc] {
            let algo = Algorithm::ImplicitGemm { layout };
            let r = iwino_gpu_sim::estimate(dev, &full_shape, &algo);
            points.push(SeriesPoint {
                series: format!("sim:{}", algo.label()),
                gflops: r.gflops,
            });
        }
        if panel.fused_winograd {
            let r = iwino_gpu_sim::estimate(dev, &full_shape, &Algorithm::FusedWinograd2d);
            points.push(SeriesPoint {
                series: "sim:cuDNN-Fused-Winograd".into(),
                gflops: r.gflops,
            });
        }
        // CPU-measured series on the (possibly batch-scaled) shape.
        let (scaled_n, batch_scale) = scale_batch(ofms, panel.r, target_gflop);
        if measure {
            let (_, oh, ow, oc) = ofms;
            let shape = ConvShape::from_ofms(scaled_n, oh, ow, oc, oc, panel.r);
            for &variant in panel.variants {
                let spec = panel.spec(variant);
                let gf = measure_gamma(&shape, spec, reps);
                points.push(SeriesPoint {
                    series: format!("cpu:Im2col-Winograd-{spec}"),
                    gflops: gf,
                });
            }
            points.push(SeriesPoint {
                series: "cpu:Im2col-GEMM-NHWC".into(),
                gflops: measure_im2col(&shape, Layout::Nhwc, reps),
            });
            points.push(SeriesPoint {
                series: "cpu:Im2col-GEMM-NCHW".into(),
                gflops: measure_im2col(&shape, Layout::Nchw, reps),
            });
            if panel.fused_winograd {
                points.push(SeriesPoint {
                    series: "cpu:Fused-Winograd-2D".into(),
                    gflops: measure_winograd2d(&shape, reps),
                });
            }
        }
        let (n, oh, ow, oc) = ofms;
        rows.push(PanelRow {
            ofms: format!("{n}x{oh}x{ow}x{oc}"),
            batch_scale,
            points,
        });
    }
    PanelResult {
        panel: format!("Im2col-Winograd-{}", panel.label()),
        rows,
    }
}

/// Table 2: per-panel speedup range of the best Γ series over (a) the
/// fastest baseline and (b) the NHWC GEMM, computed from simulated series.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    pub panel: String,
    pub vs_fastest: (f64, f64),
    pub vs_nhwc_gemm: (f64, f64),
}

impl SpeedupRow {
    pub fn to_json(&self) -> Json {
        let pair = |(lo, hi): (f64, f64)| Json::Arr(vec![Json::from(lo), Json::from(hi)]);
        Json::obj(vec![
            ("panel", Json::from(self.panel.as_str())),
            ("vs_fastest", pair(self.vs_fastest)),
            ("vs_nhwc_gemm", pair(self.vs_nhwc_gemm)),
        ])
    }
}

pub fn speedups(results: &[PanelResult]) -> Vec<SpeedupRow> {
    results
        .iter()
        .map(|pr| {
            let mut vs_fast: Vec<f64> = Vec::new();
            let mut vs_nhwc: Vec<f64> = Vec::new();
            for row in &pr.rows {
                // Best Γ series *including* transpose (the conservative one),
                // matching Table 2 which uses the non-starred series.
                let best_gamma = row
                    .points
                    .iter()
                    .filter(|p| p.series.starts_with("sim:Im2col-Winograd") && !p.series.ends_with('*'))
                    .map(|p| p.gflops)
                    .fold(0.0, f64::max);
                let nhwc = row
                    .points
                    .iter()
                    .find(|p| p.series == "sim:cuDNN-Implicit-Precomp-GEMM-NHWC")
                    .map(|p| p.gflops)
                    .unwrap_or(f64::NAN);
                let fastest_baseline = row
                    .points
                    .iter()
                    .filter(|p| p.series.starts_with("sim:cuDNN"))
                    .map(|p| p.gflops)
                    .fold(0.0, f64::max);
                if best_gamma > 0.0 && fastest_baseline > 0.0 {
                    vs_fast.push(best_gamma / fastest_baseline);
                    vs_nhwc.push(best_gamma / nhwc);
                }
            }
            let range = |v: &[f64]| {
                (
                    v.iter().copied().fold(f64::INFINITY, f64::min),
                    v.iter().copied().fold(0.0, f64::max),
                )
            };
            SpeedupRow {
                panel: pr.panel.clone(),
                vs_fastest: range(&vs_fast),
                vs_nhwc_gemm: range(&vs_nhwc),
            }
        })
        .collect()
}

/// Table 3 row: mean relative error of each algorithm vs the FP64 CPU
/// reference on uniform-[1,2) data.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    pub ofms: String,
    pub batch_scale: f64,
    pub gamma: f64,
    pub cugemm: f64,
    pub cuwinograd: Option<f64>,
}

impl AccuracyRow {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ofms", Json::from(self.ofms.as_str())),
            ("batch_scale", Json::from(self.batch_scale)),
            ("gamma", Json::from(self.gamma)),
            ("cugemm", Json::from(self.cugemm)),
            ("cuwinograd", self.cuwinograd.map_or(Json::Null, Json::from)),
        ])
    }
}

pub fn run_accuracy(table: &AccuracyTable, target_gflop: f64) -> Vec<AccuracyRow> {
    table
        .shapes
        .iter()
        .map(|&ofms| {
            let (scaled_n, batch_scale) = scale_batch(ofms, table.r, target_gflop);
            let (_, oh, ow, oc) = ofms;
            let shape = ConvShape::from_ofms(scaled_n, oh, ow, oc, oc, table.r);
            // §6.2.1: ifms/filters uniform in [1, 2).
            let x = Tensor4::<f32>::random(shape.x_dims(), 21, 1.0, 2.0);
            let w = Tensor4::<f32>::random(shape.w_dims(), 22, 1.0, 2.0);
            let truth = direct_conv_f64_ref(&x, &w, &shape);
            let opts = ConvOptions {
                force_kernels: Some(vec![table.spec()]),
                ..Default::default()
            };
            let gamma = ErrorStats::between(&conv2d_opts(&x, &w, &shape, &opts), &truth).mean;
            let plan = Im2colPlan::new(&shape);
            let cugemm = ErrorStats::between(&im2col_conv_nhwc(&x, &w, &plan), &truth).mean;
            let cuwinograd = table
                .fused_winograd
                .then(|| ErrorStats::between(&winograd2d_conv(&x, &w, &shape, 2), &truth).mean);
            let (n, ..) = ofms;
            AccuracyRow {
                ofms: format!("{n}x{oh}x{ow}x{oc}"),
                batch_scale,
                gamma,
                cugemm,
                cuwinograd,
            }
        })
        .collect()
}

/// Figure 10: relative-error distribution (percent per bucket) for a Γ
/// kernel vs the GEMM baseline on one shape.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub label: String,
    pub bucket_width: f64,
    pub gamma_pct: Vec<f64>,
    pub cugemm_pct: Vec<f64>,
}

impl Histogram {
    pub fn to_json(&self) -> Json {
        let pct = |v: &[f64]| Json::Arr(v.iter().map(|&p| Json::from(p)).collect());
        Json::obj(vec![
            ("label", Json::from(self.label.as_str())),
            ("bucket_width", Json::from(self.bucket_width)),
            ("gamma_pct", pct(&self.gamma_pct)),
            ("cugemm_pct", pct(&self.cugemm_pct)),
        ])
    }
}

pub fn run_histogram(table: &AccuracyTable, bins: usize, hi: f64, target_gflop: f64) -> Histogram {
    let ofms = table.shapes[0];
    let (scaled_n, _) = scale_batch(ofms, table.r, target_gflop);
    let (_, oh, ow, oc) = ofms;
    let shape = ConvShape::from_ofms(scaled_n, oh, ow, oc, oc, table.r);
    let x = Tensor4::<f32>::random(shape.x_dims(), 31, 1.0, 2.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 32, 1.0, 2.0);
    let truth = direct_conv_f64_ref(&x, &w, &shape);
    let opts = ConvOptions {
        force_kernels: Some(vec![table.spec()]),
        ..Default::default()
    };
    let gamma = conv2d_opts(&x, &w, &shape, &opts);
    let plan = Im2colPlan::new(&shape);
    let gemm = im2col_conv_nhwc(&x, &w, &plan);
    Histogram {
        label: table.label(),
        bucket_width: hi / bins as f64,
        gamma_pct: relative_error_histogram(&gamma, &truth, bins, hi),
        cugemm_pct: relative_error_histogram(&gemm, &truth, bins, hi),
    }
}

/// Effective rate of one pipeline stage over a stage-bench case: the
/// paper-convention FLOPs of the whole run divided by the time attributed
/// to this stage alone. The FLOP convention is fixed per shape, so the
/// ratio of `gflops` across two commits is exactly the stage's speedup —
/// this is the number `BENCH_*.json` trajectories compare.
#[derive(Clone, Debug)]
pub struct StageRate {
    pub stage: &'static str,
    pub ns: u64,
    pub share: f64,
    pub gflops: f64,
    /// Per-span latency percentiles from the obs log2 histogram (upper
    /// bucket bounds, so p50 ≤ p90 ≤ p99 by construction). The mean hides
    /// the tail; these are what the serving-latency story is about.
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
}

/// Outcome of one [`StageBenchCase`](crate::figures::StageBenchCase).
#[derive(Clone, Debug)]
pub struct StageBenchResult {
    pub label: String,
    pub shape: String,
    pub kernel: String,
    pub reps: usize,
    pub wall_ns: u64,
    /// End-to-end achieved GFLOP/s across the reps.
    pub gflops: f64,
    /// Whether the reps ran through the engine's plan cache (filter
    /// transformed once at warm-up) instead of re-planning per call.
    pub via_engine: bool,
    /// Microkernel ISA dispatched for this run (`iwino_simd::dispatch_info`).
    /// Stage rates from different ISAs are not comparable; `repro
    /// bench-stages --baseline` refuses the diff unless `--force`d.
    pub isa: String,
    pub stages: Vec<StageRate>,
}

impl StageBenchResult {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::from(self.label.as_str())),
            ("shape", Json::from(self.shape.as_str())),
            ("kernel", Json::from(self.kernel.as_str())),
            ("reps", Json::from(self.reps)),
            ("wall_ns", Json::from(self.wall_ns)),
            ("gflops", Json::from(self.gflops)),
            ("via_engine", Json::from(self.via_engine)),
            ("isa", Json::from(self.isa.as_str())),
            (
                "stages",
                Json::Obj(
                    self.stages
                        .iter()
                        .map(|s| {
                            (
                                s.stage.to_string(),
                                Json::obj(vec![
                                    ("ns", Json::from(s.ns)),
                                    ("share", Json::from(s.share)),
                                    ("gflops", Json::from(s.gflops)),
                                    ("p50_ns", Json::from(s.p50_ns)),
                                    ("p90_ns", Json::from(s.p90_ns)),
                                    ("p99_ns", Json::from(s.p99_ns)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The effective rate of one stage (0.0 when the stage never ran).
    pub fn stage_gflops(&self, stage: &str) -> f64 {
        self.stages.iter().find(|s| s.stage == stage).map_or(0.0, |s| s.gflops)
    }
}

/// Run one stage-bench case with profiling on and derive per-stage rates.
/// The warm-up rep runs before the counters are reset, so the transform
/// caches and the thread pool are hot when measurement starts.
///
/// With `via_engine`, the reps run through an [`Engine`] instead of the
/// plan-per-call `conv2d_opts` path: the warm-up builds (and caches) the
/// plan, so the measured window holds only cache hits and the
/// `filter_transform` stage drops out of the profile entirely — the ratio
/// against a non-engine run of the same case is the plan cache's payoff.
pub fn bench_stage_rates(case: &crate::figures::StageBenchCase, reps: usize, via_engine: bool) -> StageBenchResult {
    use iwino_obs as obs;
    let shape = &case.shape;
    let x = Tensor4::<f32>::random(shape.x_dims(), 41, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 42, -1.0, 1.0);
    let opts = ConvOptions {
        force_kernels: Some(vec![case.spec]),
        ..Default::default()
    };
    // A private engine keeps the cache statistics (and the plan built for
    // this forced kernel) out of the global engine other code shares.
    let eng = Engine::new();
    let algo: Arc<dyn ConvAlgorithm> = Arc::new(WinogradBackend::with_options(opts.clone()));
    let handle = Handle::default();
    let run_once = || {
        if via_engine {
            drop(
                eng.conv_with(&algo, handle.filter_id(), &x, &w, shape, &Epilogue::None)
                    .unwrap_or_else(|e| panic!("{}: {e}", case.label)),
            );
        } else {
            drop(conv2d_opts(&x, &w, shape, &opts));
        }
    };
    run_once(); // warm-up (and, via the engine, the plan build)
    let reps = reps.max(1);
    let was_enabled = obs::enabled();
    obs::set_enabled(true);
    obs::reset();
    iwino_parallel::reset_global_stats();
    let t0 = Instant::now();
    for _ in 0..reps {
        run_once();
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let snap = obs::snapshot();
    obs::set_enabled(was_enabled);
    if via_engine {
        let st = eng.stats();
        assert_eq!(
            st.plan_misses, 1,
            "engine-mode bench must plan exactly once (at warm-up)"
        );
        assert_eq!(
            st.plan_hits as usize, reps,
            "every measured rep must hit the plan cache"
        );
    }

    let flops = snap.counter(iwino_obs::Counter::Flops) as f64;
    let pipeline = [
        iwino_obs::Stage::FilterTransform,
        iwino_obs::Stage::InputTransform,
        iwino_obs::Stage::OuterProduct,
        iwino_obs::Stage::OutputTransform,
        iwino_obs::Stage::GemmRemainder,
    ];
    let attributed: u64 = pipeline.iter().map(|&s| snap.stage_ns(s)).sum();
    let stages = pipeline
        .iter()
        .filter(|&&s| snap.stage_ns(s) > 0)
        .map(|&s| {
            let ns = snap.stage_ns(s);
            let hist = snap.histogram(iwino_obs::HistSite::Stage(s));
            StageRate {
                stage: s.name(),
                ns,
                share: if attributed > 0 {
                    ns as f64 / attributed as f64
                } else {
                    0.0
                },
                gflops: flops / ns as f64,
                p50_ns: hist.p50_ns(),
                p90_ns: hist.p90_ns(),
                p99_ns: hist.p99_ns(),
            }
        })
        .collect();
    let (n, oh, ow, oc) = (shape.n, shape.oh(), shape.ow(), shape.oc);
    StageBenchResult {
        label: case.label.clone(),
        shape: format!("{n}x{oh}x{ow}x{oc}"),
        kernel: format!("{}", case.spec),
        reps,
        wall_ns,
        gflops: if wall_ns > 0 { flops / wall_ns as f64 } else { 0.0 },
        via_engine,
        isa: iwino_simd::dispatch_info().isa.to_string(),
        stages,
    }
}

/// Run one im2col-GEMM case plan-cached through a private engine and derive
/// per-stage rates — shorthand for [`bench_backend_rates`] on the
/// `im2col-gemm-nhwc` backend (the `BENCH_pr9_*` trajectory).
pub fn bench_gemm_rates(case: &crate::figures::GemmBenchCase, reps: usize) -> StageBenchResult {
    bench_backend_rates(case, reps, "im2col-gemm-nhwc")
}

/// Run one GEMM-class case plan-cached through a private engine and derive
/// per-stage rates for the named registry backend. The warm-up builds (and
/// caches) the plan — the HWIO filter reshape, filter-side packing, and
/// (for `im2col-indirect`) the indirection-table build are paid once — so
/// the measured window holds only cache hits drawing gather/patch scratch
/// from the engine's arena: the steady-state serving path the `BENCH_pr9_*`
/// and `BENCH_pr10_*` trajectories compare across commits.
pub fn bench_backend_rates(case: &crate::figures::GemmBenchCase, reps: usize, backend: &str) -> StageBenchResult {
    use iwino_obs as obs;
    let shape = &case.shape;
    let x = Tensor4::<f32>::random(shape.x_dims(), 43, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 44, -1.0, 1.0);
    let eng = Engine::new();
    let algo = eng.algorithm(backend).unwrap_or_else(|e| panic!("{}: {e}", case.label));
    let handle = Handle::default();
    let run_once = || {
        drop(
            eng.conv_with(&algo, handle.filter_id(), &x, &w, shape, &Epilogue::None)
                .unwrap_or_else(|e| panic!("{}: {e}", case.label)),
        );
    };
    run_once(); // warm-up: plan build + arena first-touch
    let reps = reps.max(1);
    let was_enabled = obs::enabled();
    obs::set_enabled(true);
    obs::reset();
    iwino_parallel::reset_global_stats();
    let t0 = Instant::now();
    for _ in 0..reps {
        run_once();
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let snap = obs::snapshot();
    obs::set_enabled(was_enabled);
    let st = eng.stats();
    assert_eq!(st.plan_misses, 1, "backend bench must plan exactly once (at warm-up)");
    assert_eq!(
        st.plan_hits as usize, reps,
        "every measured rep must hit the plan cache"
    );

    let flops = snap.counter(obs::Counter::Flops) as f64;
    // `baseline` is the whole conv call; the GEMM sub-stages nest inside
    // it, so only `baseline` counts toward the attributed total.
    // `indirect_setup` only fires on a table (re)build — steady-state reps
    // never touch it, so a nonzero reading here flags a caching bug.
    let pipeline = [
        obs::Stage::Baseline,
        obs::Stage::IndirectSetup,
        obs::Stage::GemmPack,
        obs::Stage::GemmKernel,
    ];
    let attributed = snap.stage_ns(obs::Stage::Baseline);
    let stages = pipeline
        .iter()
        .filter(|&&s| snap.stage_ns(s) > 0)
        .map(|&s| {
            let ns = snap.stage_ns(s);
            let hist = snap.histogram(obs::HistSite::Stage(s));
            StageRate {
                stage: s.name(),
                ns,
                share: if attributed > 0 {
                    ns as f64 / attributed as f64
                } else {
                    0.0
                },
                gflops: flops / ns as f64,
                p50_ns: hist.p50_ns(),
                p90_ns: hist.p90_ns(),
                p99_ns: hist.p99_ns(),
            }
        })
        .collect();
    let (n, oh, ow, oc) = (shape.n, shape.oh(), shape.ow(), shape.oc);
    StageBenchResult {
        label: case.label.clone(),
        shape: format!("{n}x{oh}x{ow}x{oc}"),
        kernel: backend.to_string(),
        reps,
        wall_ns,
        gflops: if wall_ns > 0 { flops / wall_ns as f64 } else { 0.0 },
        via_engine: true,
        isa: iwino_simd::dispatch_info().isa.to_string(),
        stages,
    }
}

/// One row of `repro engine`: a registry backend smoke-tested end to end —
/// conformance against the f64 direct reference plus an achieved rate.
#[derive(Clone, Debug)]
pub struct EngineSmokeRow {
    pub backend: &'static str,
    pub shape: String,
    pub max_error: f64,
    pub gflops: f64,
}

impl EngineSmokeRow {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("backend", Json::from(self.backend)),
            ("shape", Json::from(self.shape.as_str())),
            ("max_error", Json::from(self.max_error)),
            ("gflops", Json::from(self.gflops)),
        ])
    }
}

/// Drive every registered backend by name through the engine on the first
/// shape it supports, check the output against `direct_conv_f64_ref`, and
/// measure its plan-cached rate. Errors (a backend failing to plan/run, or
/// disagreeing with the reference) come back as a message naming the
/// backend — the CI smoke step turns that into a nonzero exit.
pub fn engine_smoke(reps: usize) -> Result<Vec<EngineSmokeRow>, String> {
    let eng = Engine::global();
    let candidates = [
        ConvShape::square(1, 12, 4, 8, 3), // unit-stride 3×3: every backend
        ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 11, 3, 4, 3)
        },
    ];
    let mut rows = Vec::new();
    for name in iwino_engine::BACKEND_NAMES {
        let algo = eng.algorithm(name).map_err(|e| format!("{name}: {e}"))?;
        let shape = candidates
            .iter()
            .find(|s| algo.supports(s))
            .ok_or_else(|| format!("{name}: no smoke shape supported"))?;
        let x = Tensor4::<f32>::random(shape.x_dims(), 81, -1.0, 1.0);
        let w = Tensor4::<f32>::random(shape.w_dims(), 82, -1.0, 1.0);
        let h = Handle::default();
        let y = eng
            .conv_with(&algo, h.filter_id(), &x, &w, shape, &Epilogue::None)
            .map_err(|e| format!("{name} on {shape:?}: {e}"))?;
        let want = direct_conv_f64_ref(&x, &w, shape);
        let max_error = iwino_tensor::max_mixed_error(&y, &want);
        if max_error >= 1e-3 {
            return Err(format!(
                "{name} on {shape:?}: max error {max_error:.2e} vs f64 reference"
            ));
        }
        let gflops = measure_engine_backend(name, shape, reps).map_err(|e| format!("{name}: {e}"))?;
        let (n, oh, ow, oc) = (shape.n, shape.oh(), shape.ow(), shape.oc);
        rows.push(EngineSmokeRow {
            backend: name,
            shape: format!("{n}x{oh}x{ow}x{oc}"),
            max_error,
            gflops,
        });
    }
    Ok(rows)
}

/// One row of `repro validate-model`: a pipeline stage with its measured
/// (CPU, via `iwino-obs`) and predicted (gpu-sim op-count model) share.
#[derive(Clone, Debug)]
pub struct StageComparison {
    pub stage: &'static str,
    pub measured: f64,
    pub predicted: f64,
}

impl StageComparison {
    pub fn divergence(&self) -> f64 {
        (self.measured - self.predicted).abs()
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stage", Json::from(self.stage)),
            ("measured", Json::from(self.measured)),
            ("predicted", Json::from(self.predicted)),
            ("divergence", Json::from(self.divergence())),
        ])
    }
}

/// Run `spec` over `shape` with profiling on and compare the measured
/// per-stage time shares against [`predicted_stage_shares`]'s op-count
/// prediction. Shares on both sides are normalised over the five pipeline
/// stages the model covers, so they are directly comparable.
///
/// [`predicted_stage_shares`]: iwino_gpu_sim::model::predicted_stage_shares
pub fn validate_stage_model(shape: &ConvShape, spec: GammaSpec, reps: usize) -> Vec<StageComparison> {
    use iwino_gpu_sim::model::predicted_stage_shares;
    use iwino_obs as obs;

    let was_enabled = obs::enabled();
    obs::set_enabled(true);
    obs::reset();
    iwino_parallel::reset_global_stats();
    let x = Tensor4::<f32>::random(shape.x_dims(), 51, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 52, -1.0, 1.0);
    let opts = ConvOptions {
        force_kernels: Some(vec![spec]),
        ..Default::default()
    };
    for _ in 0..reps.max(1) {
        drop(conv2d_opts(&x, &w, shape, &opts));
    }
    let snap = obs::snapshot();
    obs::set_enabled(was_enabled);

    let predicted = predicted_stage_shares(shape, &spec);
    let stages = [
        (obs::Stage::FilterTransform, predicted.filter_transform),
        (obs::Stage::InputTransform, predicted.input_transform),
        (obs::Stage::OuterProduct, predicted.outer_product),
        (obs::Stage::OutputTransform, predicted.output_transform),
        (obs::Stage::GemmRemainder, predicted.gemm_remainder),
    ];
    let total_ns: u64 = stages.iter().map(|&(s, _)| snap.stage_ns(s)).sum();
    stages
        .iter()
        .map(|&(s, predicted)| StageComparison {
            stage: s.name(),
            measured: if total_ns > 0 {
                snap.stage_ns(s) as f64 / total_ns as f64
            } else {
                0.0
            },
            predicted,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::AccuracyTable;
    use crate::figures::{stage_bench_cases, FIG8};

    #[test]
    fn panel_simulation_produces_all_series() {
        let dev = DeviceSpec::rtx3060ti();
        let pr = run_panel(&FIG8[3], &dev, false, 0.5, 1); // Γ8(6,3), sim only
        assert_eq!(pr.rows.len(), 10);
        let first = &pr.rows[0];
        // Std variant ×2 (with/without transpose) + 2 GEMM + fused-winograd.
        assert_eq!(first.points.len(), 5, "{:?}", first.points);
        assert!(first.points.iter().all(|p| p.gflops.is_finite() && p.gflops > 0.0));
    }

    #[test]
    fn accuracy_rows_have_paper_error_ordering() {
        // Γ8 ≈ 1e-7-ish mean relative error, far below the f32 GEMM. A tiny
        // custom sub-table keeps the debug-mode f64 reference fast; the full
        // Table 3 shapes run via `repro table3`.
        let tiny = AccuracyTable {
            alpha: 8,
            n: 6,
            r: 3,
            fused_winograd: true,
            shapes: &[(1, 24, 24, 32), (1, 12, 12, 64)],
        };
        let rows = run_accuracy(&tiny, f64::INFINITY);
        for r in &rows {
            assert!(r.gamma < 5e-6, "{r:?}");
            assert!(r.gamma < r.cugemm * 50.0, "{r:?}"); // GEMM is much worse
            assert!(r.cuwinograd.is_some());
        }
    }

    #[test]
    fn speedup_ranges_are_sane() {
        let dev = DeviceSpec::rtx3060ti();
        let results: Vec<_> = [3usize, 8]
            .iter()
            .map(|&i| run_panel(&FIG8[i], &dev, false, 0.5, 1))
            .collect();
        let rows = speedups(&results);
        for row in &rows {
            assert!(row.vs_fastest.0 > 0.2 && row.vs_fastest.1 < 20.0, "{row:?}");
            assert!(row.vs_fastest.0 <= row.vs_fastest.1);
        }
    }

    #[test]
    fn validate_model_compares_normalised_shares() {
        use iwino_core::Variant;
        let shape = ConvShape::square(1, 24, 16, 16, 3);
        let rows = validate_stage_model(&shape, GammaSpec::new(8, 6, 3, Variant::Standard), 2);
        assert_eq!(rows.len(), 5);
        let measured: f64 = rows.iter().map(|r| r.measured).sum();
        let predicted: f64 = rows.iter().map(|r| r.predicted).sum();
        assert!((measured - 1.0).abs() < 1e-9, "measured shares sum to {measured}");
        assert!((predicted - 1.0).abs() < 1e-9, "predicted shares sum to {predicted}");
        let op = rows.iter().find(|r| r.stage == "outer_product").unwrap();
        assert!(op.measured > 0.0, "outer products must show up in the profile");
        assert!(op.predicted > 0.0);
        for r in &rows {
            assert!(r.divergence() <= 1.0, "{r:?}");
        }
    }

    #[test]
    fn engine_mode_amortises_the_filter_transform() {
        let case = &stage_bench_cases()[0];
        let per_call = bench_stage_rates(case, 2, false);
        let engined = bench_stage_rates(case, 2, true);
        assert!(
            per_call.stages.iter().any(|s| s.stage == "filter_transform"),
            "plan-per-call reps re-transform the filter: {:?}",
            per_call.stages
        );
        assert!(
            engined.stages.iter().all(|s| s.stage != "filter_transform"),
            "plan-cached reps must not touch the filter transform: {:?}",
            engined.stages
        );
        assert!(engined.via_engine && !per_call.via_engine);
        // Every reported stage must carry ordered, populated percentiles
        // (the schema-v3 addition bench-compare readers may rely on).
        for s in per_call.stages.iter().chain(&engined.stages) {
            assert!(s.p50_ns > 0, "{}: histogram never recorded", s.stage);
            assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns, "{s:?}");
        }
    }

    #[test]
    fn backend_bench_runs_indirect_plan_cached() {
        // A strided miniature of the BENCH_pr10 cases: the table is built
        // at warm-up (inside the plan), so no measured rep may re-enter
        // `indirect_setup`, and the kernel column must name the backend.
        let case = crate::figures::GemmBenchCase {
            label: "ind_smoke_s2".into(),
            shape: ConvShape {
                sh: 2,
                sw: 2,
                ..ConvShape::square(1, 16, 8, 8, 3)
            },
        };
        let r = bench_backend_rates(&case, 2, "im2col-indirect");
        assert_eq!(r.kernel, "im2col-indirect");
        assert!(r.via_engine);
        assert!(
            r.stages.iter().all(|s| s.stage != "indirect_setup"),
            "steady-state reps rebuilt the indirection table: {:?}",
            r.stages
        );
        assert!(r.stages.iter().any(|s| s.stage == "baseline"), "{:?}", r.stages);
        assert!(r.gflops > 0.0);
    }

    #[test]
    fn engine_smoke_covers_every_backend() {
        let rows = engine_smoke(1).expect("smoke must pass");
        let names: Vec<&str> = rows.iter().map(|r| r.backend).collect();
        assert_eq!(names, iwino_engine::BACKEND_NAMES.to_vec());
        assert!(rows.iter().all(|r| r.gflops > 0.0 && r.max_error < 1e-3));
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let tiny = AccuracyTable {
            alpha: 16,
            n: 8,
            r: 9,
            fused_winograd: false,
            shapes: &[(1, 16, 16, 32)],
        };
        let h = run_histogram(&tiny, 12, 1.5e-4, 0.02);
        let s: f64 = h.gamma_pct.iter().sum();
        assert!((s - 100.0).abs() < 1e-6);
        let s: f64 = h.cugemm_pct.iter().sum();
        assert!((s - 100.0).abs() < 1e-6);
    }
}
