//! `repro serve-bench`: an open-loop load generator for `iwino-serve`.
//!
//! Requests arrive on a Poisson schedule (seeded exponential inter-arrival
//! times — open-loop, so the generator does not slow down when the server
//! falls behind) and round-robin across a fixed set of recurring shape
//! buckets. The run's throughput/latency frontier is exported as a
//! `bench-compare`-compatible document: one case per bucket whose `gflops`
//! is that bucket's served FLOPs over the whole-run wall clock, plus the
//! serving-specific columns (coalesce factor, p50/p99 end-to-end latency).
//! The committed `BENCH_serve_baseline.json` (coalescing disabled,
//! `max_batch = 1`) / `BENCH_serve_after.json` (`max_batch = 8`) pair is
//! gated by `repro bench-compare` exactly like the kernel-level `BENCH_*`
//! trajectory.
//!
//! The amortization claim of the serving layer is self-checked: after a
//! run, engine plan-cache misses must equal the bucket count (one
//! transformed-filter-bank build per bucket, ever) and every admitted
//! request must be answered. [`ServeBenchReport::amortization_failure`]
//! reports a violation; the CLI exits non-zero on it.

use iwino_obs::Json;
use iwino_serve::{ServeConfig, ServerBuilder};
use iwino_tensor::{ConvShape, Tensor4};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    /// Total requests to generate across all buckets.
    pub requests: usize,
    /// Mean arrival rate, requests per second (open-loop Poisson).
    pub rate: f64,
    /// Coalescer batch bound; 1 disables coalescing (the baseline arm).
    pub max_batch: usize,
    /// Batch-pool execution lanes.
    pub workers: usize,
    /// Seed for the arrival schedule and the input tensors.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            requests: 160,
            rate: 4000.0,
            max_batch: 8,
            workers: iwino_parallel::default_threads(),
            seed: 42,
        }
    }
}

/// The recurring-shape mix: tiny single-image requests, covering both the
/// fused-Winograd path (3×3 and 5×5 unit stride) and the GEMM fallback
/// (strided). Deliberately small — serving many concurrent small requests
/// is the regime where per-call dispatch cost is first-order and the
/// coalescer's per-batch amortization shows up in throughput. Labels are
/// stable — they are the `bench-compare` case keys.
pub fn serve_bench_buckets() -> Vec<(String, ConvShape)> {
    vec![
        ("serve_g8_6_3_4x4x8".to_string(), ConvShape::square(1, 4, 8, 8, 3)),
        ("serve_g8_4_5_4x4x4".to_string(), ConvShape::square(1, 4, 4, 8, 5)),
        (
            "serve_gemm_s2_5x5x8".to_string(),
            ConvShape {
                sh: 2,
                sw: 2,
                ..ConvShape::square(1, 5, 8, 8, 3)
            },
        ),
    ]
}

/// One bucket's outcome.
#[derive(Clone, Debug)]
pub struct ServeBenchCase {
    pub label: String,
    pub shape: ConvShape,
    pub admitted: u64,
    pub served: u64,
    pub rejected: u64,
    pub expired: u64,
    pub batches: u64,
    pub coalesce_factor: f64,
    pub max_batch_seen: u64,
    pub queue_depth_high_water: u64,
    pub p50_e2e_ns: u64,
    pub p99_e2e_ns: u64,
    /// Served FLOPs over the whole-run wall clock — the gated quantity.
    pub gflops: f64,
}

/// A whole run: per-bucket cases plus run-level accounting.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    pub config: ServeBenchConfig,
    pub cases: Vec<ServeBenchCase>,
    pub wall_ns: u64,
    pub throughput_rps: f64,
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub buckets: u64,
}

impl ServeBenchReport {
    pub fn served(&self) -> u64 {
        self.cases.iter().map(|c| c.served).sum()
    }

    pub fn admitted(&self) -> u64 {
        self.cases.iter().map(|c| c.admitted).sum()
    }

    /// `Some(reason)` when the run violates the serving layer's
    /// amortization/accounting promises.
    pub fn amortization_failure(&self) -> Option<String> {
        if self.plan_misses != self.buckets {
            return Some(format!(
                "expected exactly one plan-cache miss per bucket ({}), saw {}",
                self.buckets, self.plan_misses
            ));
        }
        let batches: u64 = self.cases.iter().map(|c| c.batches).sum();
        if self.plan_hits != batches.saturating_sub(self.buckets) {
            return Some(format!(
                "expected plan hits = batches − buckets = {}, saw {}",
                batches.saturating_sub(self.buckets),
                self.plan_hits
            ));
        }
        for c in &self.cases {
            if c.admitted != c.served + c.rejected + c.expired {
                return Some(format!(
                    "bucket {}: admitted {} ≠ served {} + rejected {} + expired {}",
                    c.label, c.admitted, c.served, c.rejected, c.expired
                ));
            }
            if c.served != c.admitted {
                return Some(format!(
                    "bucket {}: lost throughput — {} of {} admitted requests not served",
                    c.label,
                    c.admitted - c.served,
                    c.admitted
                ));
            }
        }
        None
    }

    /// The `bench-compare`-compatible document (schema v3 like
    /// `bench-stages`: top-level `schema_version` + `dispatch` + `cases`
    /// with `label`/`gflops`; the serving columns ride along as extra
    /// per-case fields the parser ignores).
    pub fn to_json(&self) -> Json {
        let d = iwino_simd::dispatch_info();
        Json::obj(vec![
            ("schema_version", Json::from(3u64)),
            ("kind", Json::from("serve-bench")),
            (
                "dispatch",
                Json::obj(vec![
                    ("isa", Json::from(d.isa)),
                    ("lane_width", Json::from(d.lane_width)),
                    ("forced_scalar", Json::from(d.forced_scalar)),
                    (
                        "features",
                        Json::Arr(d.features.iter().map(|&f| Json::from(f)).collect()),
                    ),
                ]),
            ),
            (
                "config",
                Json::obj(vec![
                    ("requests", Json::from(self.config.requests)),
                    ("rate_rps", Json::from(self.config.rate)),
                    ("max_batch", Json::from(self.config.max_batch)),
                    ("workers", Json::from(self.config.workers)),
                    ("seed", Json::from(self.config.seed)),
                ]),
            ),
            ("wall_ns", Json::from(self.wall_ns)),
            ("throughput_rps", Json::from(self.throughput_rps)),
            (
                "engine",
                Json::obj(vec![
                    ("plan_hits", Json::from(self.plan_hits)),
                    ("plan_misses", Json::from(self.plan_misses)),
                    ("buckets", Json::from(self.buckets)),
                ]),
            ),
            (
                "cases",
                Json::Arr(
                    self.cases
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("label", Json::from(c.label.as_str())),
                                ("gflops", Json::from(c.gflops)),
                                ("admitted", Json::from(c.admitted)),
                                ("served", Json::from(c.served)),
                                ("rejected", Json::from(c.rejected)),
                                ("expired", Json::from(c.expired)),
                                ("batches", Json::from(c.batches)),
                                ("coalesce_factor", Json::from(c.coalesce_factor)),
                                ("max_batch_seen", Json::from(c.max_batch_seen)),
                                ("queue_depth_high_water", Json::from(c.queue_depth_high_water)),
                                ("p50_e2e_ns", Json::from(c.p50_e2e_ns)),
                                ("p99_e2e_ns", Json::from(c.p99_e2e_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Run the load generator. Queue capacity is sized to the request count so
/// the run measures the pure throughput/latency frontier (no admission
/// loss); overload behaviour has its own tests in `iwino-serve`.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> Result<ServeBenchReport, iwino_serve::ServeError> {
    let buckets = serve_bench_buckets();
    let mut builder = ServerBuilder::new(ServeConfig {
        queue_capacity: cfg.requests.max(1),
        max_batch: cfg.max_batch,
        workers: cfg.workers,
        start_paused: false,
    });
    for (i, (label, shape)) in buckets.iter().enumerate() {
        let w = Tensor4::<f32>::random(shape.w_dims(), cfg.seed.wrapping_add(i as u64), -1.0, 1.0);
        builder = builder.bucket(label, *shape, w);
    }
    let mut server = builder.build()?;

    // Pre-generate the whole workload (inputs + arrival offsets) so tensor
    // fills are excluded from the measured window.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut schedule: Vec<(usize, Duration, Tensor4<f32>)> = Vec::with_capacity(cfg.requests);
    let mut at = 0.0f64;
    for k in 0..cfg.requests {
        let b = k % buckets.len();
        let u: f64 = rng.gen();
        at += -(1.0 - u).ln() / cfg.rate.max(1.0);
        let x = Tensor4::<f32>::random(buckets[b].1.x_dims(), cfg.seed ^ ((k as u64) << 8), -1.0, 1.0);
        schedule.push((b, Duration::from_secs_f64(at), x));
    }

    // Open loop: submit on the precomputed arrival clock, never waiting for
    // responses. Tickets are collected and awaited after generation ends.
    // Sub-millisecond inter-arrival gaps are finished with a spin —
    // `thread::sleep` granularity would otherwise throttle the generator
    // and hide the server's saturation point.
    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(cfg.requests);
    for (b, arrival, x) in schedule {
        while let Some(remaining) = arrival.checked_sub(t0.elapsed()) {
            if remaining > Duration::from_micros(300) {
                std::thread::sleep(remaining - Duration::from_micros(200));
            } else {
                std::hint::spin_loop();
            }
        }
        tickets.push(server.submit(&buckets[b].0, x, None)?);
    }
    for t in tickets {
        t.wait()?;
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let stats = server.shutdown();
    let engine = server.engine_stats();

    let wall_s = (wall_ns as f64 / 1e9).max(1e-12);
    let cases = stats
        .buckets
        .iter()
        .zip(&buckets)
        .map(|(b, (_, shape))| ServeBenchCase {
            label: b.label.clone(),
            shape: *shape,
            admitted: b.admitted,
            served: b.served,
            rejected: b.rejected,
            expired: b.expired,
            batches: b.batches,
            coalesce_factor: b.coalesce_factor(),
            max_batch_seen: b.max_batch,
            queue_depth_high_water: b.queue_depth_high_water,
            p50_e2e_ns: b.e2e.p50_ns(),
            p99_e2e_ns: b.e2e.p99_ns(),
            gflops: shape.flops() * b.served as f64 / wall_s / 1e9,
        })
        .collect();
    Ok(ServeBenchReport {
        config: cfg.clone(),
        cases,
        wall_ns,
        throughput_rps: stats.served() as f64 / wall_s,
        plan_hits: engine.plan_hits,
        plan_misses: engine.plan_misses,
        buckets: buckets.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_serves_everything_with_one_miss_per_bucket() {
        let cfg = ServeBenchConfig {
            requests: 24,
            rate: 50_000.0,
            max_batch: 4,
            workers: 2,
            seed: 7,
        };
        let report = run_serve_bench(&cfg).unwrap();
        assert_eq!(report.served(), 24);
        assert_eq!(report.amortization_failure(), None, "{report:?}");
        assert_eq!(report.cases.len(), 3);
        for c in &report.cases {
            assert!(c.served > 0 && c.gflops > 0.0, "{c:?}");
            assert!(c.p99_e2e_ns >= c.p50_e2e_ns);
        }
        // The document round-trips through the bench-compare parser with
        // its dispatch record intact.
        let doc = crate::parse_bench_doc(&report.to_json().pretty()).unwrap();
        assert_eq!(doc.schema_version, 3);
        assert_eq!(doc.isa.as_deref(), Some(iwino_simd::dispatch_info().isa));
        assert_eq!(doc.cases.len(), 3);
    }
}
