//! Experiment harness for the Im2col-Winograd reproduction.
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the index):
//!
//! ```text
//! repro fig8 [--quick|--full]     Figure 8  (RTX 3060 Ti panels: simulated + CPU-measured)
//! repro fig9 [--quick|--full]     Figure 9  (RTX 4090 panels)
//! repro table2                    Table 2   (speedup ranges, derived from fig8/fig9)
//! repro table3 [--quick|--full]   Table 3   (average relative error vs FP64 CPU)
//! repro fig10 [--quick]           Figure 10 (relative-error distributions)
//! repro train-cifar [--quick]     Figure 12 + Table 5 (Cifar10-like training)
//! repro train-imagenet [--quick]  Figure 11 + Table 4 (ILSVRC-like training)
//! repro ablation-banks            §5.2 bank-conflict ablation
//! repro ablation-variants         §5.4/§5.6 ruse/c64 ablation
//! repro ablation-transforms       §5.3 simplified-transformation ablation
//! repro bench-stages [winograd|gemm|indirect] [--out p] [--engine] [--backend name]
//!                                 per-stage effective GFLOP/s (the BENCH_*.json perf trajectory;
//!                                 --engine runs plan-cached reps through the engine; `gemm` sweeps
//!                                 the Fig 7–9 im2col shapes plan-cached through `im2col-gemm-nhwc`
//!                                 — the BENCH_pr9_* pair; `indirect` sweeps the small-OW/strided
//!                                 frontier through `im2col-indirect`, or through `--backend` for
//!                                 the baseline arm — the BENCH_pr10_* pair)
//! repro bench-compare <base> <after> [--max-regression pct]  perf-regression gate over two
//!                                 bench-stages documents (exit 1 on regression)
//! repro trace [<case>] [--out p]  flight-recorder capture of a stage-bench case as Chrome
//!                                 Trace JSON (load in Perfetto / chrome://tracing)
//! repro serve-bench [--out p] [--requests N] [--rate R] [--max-batch B] [--workers W]
//!                                 [--no-coalesce]  open-loop serving load generator; emits a
//!                                 bench-compare-gatable throughput/latency document
//!                                 (the BENCH_serve_* pair)
//! repro engine                    registry smoke: every backend vs the f64 reference + cache stats
//! repro all [--quick]             everything above
//! ```
//!
//! Quick mode scales batch sizes so each measurement stays around a couple
//! of Gflop and shrinks the training runs; every scaling factor is printed
//! alongside the row it affects.

#![forbid(unsafe_code)]

pub mod compare;
pub mod figures;
pub mod runner;
pub mod serve_bench;
pub mod tracer;

pub use compare::{compare, isa_parity, parse_bench_doc, BenchCase, BenchDoc, CaseDelta, CompareReport};
pub use figures::{
    gemm_bench_cases, indirect_bench_cases, scale_batch, stage_bench_cases, AccuracyTable, GemmBenchCase, Ofms, Panel,
    StageBenchCase, FIG8, FIG9, TABLE3,
};
pub use runner::*;
pub use serve_bench::{run_serve_bench, serve_bench_buckets, ServeBenchCase, ServeBenchConfig, ServeBenchReport};
pub use tracer::{record_trace, validate_chrome_trace, TraceSummary};
