//! Shape tables lifted from the paper's Figures 8/9 and Table 3.
//!
//! Ofms shapes are in the paper's `N×OH×OW×OC` format with `IC = OC`
//! (§6: "For all test cases, the input-channel size IC equals the
//! output-channel size OC"). Filters are `r×r` with `⌊r/2⌋` padding.

use iwino_core::{GammaSpec, Variant};
use iwino_tensor::ConvShape;

/// An ofms shape `N×OH×OW×OC`.
pub type Ofms = (usize, usize, usize, usize);

/// One figure panel: the Γ kernel it sweeps and the ten ofms shapes.
pub struct Panel {
    pub alpha: usize,
    pub n: usize,
    pub r: usize,
    /// Extra variants the figure plots for this panel.
    pub variants: &'static [Variant],
    /// Whether the panel includes the cuDNN Fused-Winograd series (r = 3).
    pub fused_winograd: bool,
    pub shapes: &'static [Ofms],
}

impl Panel {
    pub fn spec(&self, variant: Variant) -> GammaSpec {
        GammaSpec::new(self.alpha, self.n, self.r, variant)
    }

    pub fn conv_shape(&self, ofms: Ofms) -> ConvShape {
        let (n, oh, ow, oc) = ofms;
        ConvShape::from_ofms(n, oh, ow, oc, oc, self.r)
    }

    pub fn label(&self) -> String {
        format!("Γ{}({},{})", self.alpha, self.n, self.r)
    }
}

const STD: &[Variant] = &[Variant::Standard];
const STD_RUSE: &[Variant] = &[Variant::Standard, Variant::Ruse];
const STD_C64: &[Variant] = &[Variant::Standard, Variant::C64];
const STD_RUSE_C64: &[Variant] = &[Variant::Standard, Variant::Ruse, Variant::C64];

/// Figure 8 — RTX 3060 Ti, nine panels.
pub const FIG8: &[Panel] = &[
    Panel {
        alpha: 8,
        n: 4,
        r: 5,
        variants: STD_RUSE,
        fused_winograd: false,
        shapes: &[
            (32, 128, 128, 64),
            (32, 66, 66, 128),
            (32, 64, 64, 128),
            (128, 48, 48, 128),
            (128, 34, 34, 128),
            (128, 32, 32, 128),
            (128, 18, 18, 256),
            (128, 16, 16, 256),
            (128, 10, 10, 512),
            (128, 8, 8, 512),
        ],
    },
    Panel {
        alpha: 8,
        n: 5,
        r: 4,
        variants: STD,
        fused_winograd: false,
        shapes: &[
            (32, 160, 160, 64),
            (32, 128, 128, 64),
            (128, 80, 80, 64),
            (128, 64, 64, 64),
            (128, 40, 40, 128),
            (128, 32, 32, 128),
            (128, 20, 20, 256),
            (128, 16, 16, 256),
            (128, 10, 10, 512),
            (128, 8, 8, 512),
        ],
    },
    Panel {
        alpha: 8,
        n: 3,
        r: 6,
        variants: STD_RUSE,
        fused_winograd: false,
        shapes: &[
            (32, 128, 128, 64),
            (32, 96, 96, 64),
            (128, 64, 64, 64),
            (128, 48, 48, 64),
            (128, 32, 32, 128),
            (128, 24, 24, 128),
            (128, 16, 16, 256),
            (128, 12, 12, 256),
            (128, 8, 8, 512),
            (128, 6, 6, 512),
        ],
    },
    Panel {
        alpha: 8,
        n: 6,
        r: 3,
        variants: STD,
        fused_winograd: true,
        shapes: &[
            (64, 128, 128, 64),
            (128, 96, 96, 64),
            (256, 64, 64, 64),
            (128, 48, 48, 128),
            (256, 32, 32, 128),
            (128, 24, 24, 256),
            (256, 16, 16, 256),
            (128, 12, 12, 512),
            (256, 8, 8, 512),
            (128, 6, 6, 1024),
        ],
    },
    Panel {
        alpha: 8,
        n: 2,
        r: 7,
        variants: STD_RUSE,
        fused_winograd: false,
        shapes: &[
            (16, 128, 128, 64),
            (64, 66, 66, 64),
            (64, 64, 64, 64),
            (64, 40, 40, 128),
            (64, 34, 34, 128),
            (64, 32, 32, 128),
            (64, 18, 18, 256),
            (64, 16, 16, 256),
            (64, 10, 10, 512),
            (64, 8, 8, 512),
        ],
    },
    Panel {
        alpha: 8,
        n: 7,
        r: 2,
        variants: STD,
        fused_winograd: false,
        shapes: &[
            (32, 128, 128, 128),
            (128, 112, 112, 64),
            (128, 64, 64, 128),
            (128, 56, 56, 128),
            (128, 32, 32, 256),
            (128, 28, 28, 256),
            (128, 16, 16, 512),
            (128, 14, 14, 512),
            (128, 8, 8, 1024),
            (128, 7, 7, 1024),
        ],
    },
    Panel {
        alpha: 16,
        n: 10,
        r: 7,
        variants: STD_C64,
        fused_winograd: false,
        shapes: &[
            (32, 128, 128, 64),
            (32, 120, 120, 64),
            (64, 112, 112, 64),
            (64, 80, 80, 64),
            (128, 64, 64, 64),
            (64, 40, 40, 128),
            (128, 32, 32, 128),
            (64, 20, 20, 256),
            (128, 16, 16, 256),
            (64, 10, 10, 512),
        ],
    },
    Panel {
        alpha: 16,
        n: 9,
        r: 8,
        variants: STD_RUSE_C64,
        fused_winograd: false,
        shapes: &[
            (32, 128, 128, 64),
            (32, 112, 112, 64),
            (64, 72, 72, 64),
            (128, 64, 64, 64),
            (128, 56, 56, 64),
            (128, 36, 36, 64),
            (128, 32, 32, 128),
            (128, 28, 28, 128),
            (64, 18, 18, 256),
            (64, 9, 9, 512),
        ],
    },
    Panel {
        alpha: 16,
        n: 8,
        r: 9,
        variants: STD_RUSE_C64,
        fused_winograd: false,
        shapes: &[
            (32, 128, 128, 64),
            (32, 124, 124, 64),
            (32, 96, 96, 64),
            (128, 64, 64, 64),
            (128, 60, 60, 64),
            (128, 48, 48, 64),
            (128, 32, 32, 128),
            (128, 28, 28, 128),
            (128, 16, 16, 256),
            (128, 8, 8, 512),
        ],
    },
];

/// Figure 9 — RTX 4090, nine panels.
pub const FIG9: &[Panel] = &[
    Panel {
        alpha: 8,
        n: 4,
        r: 5,
        variants: STD_RUSE,
        fused_winograd: false,
        shapes: &[
            (128, 128, 128, 64),
            (128, 66, 66, 128),
            (128, 64, 64, 128),
            (128, 48, 48, 128),
            (128, 34, 34, 256),
            (128, 32, 32, 256),
            (128, 18, 18, 512),
            (128, 16, 16, 512),
            (128, 10, 10, 1024),
            (128, 8, 8, 1024),
        ],
    },
    Panel {
        alpha: 8,
        n: 5,
        r: 4,
        variants: STD,
        fused_winograd: false,
        shapes: &[
            (64, 160, 160, 64),
            (64, 128, 128, 64),
            (64, 80, 80, 128),
            (128, 64, 64, 128),
            (128, 40, 40, 256),
            (128, 32, 32, 256),
            (128, 20, 20, 512),
            (128, 16, 16, 512),
            (128, 10, 10, 1024),
            (128, 8, 8, 1024),
        ],
    },
    Panel {
        alpha: 8,
        n: 3,
        r: 6,
        variants: STD_RUSE,
        fused_winograd: false,
        shapes: &[
            (128, 128, 128, 64),
            (128, 96, 96, 64),
            (128, 64, 64, 128),
            (256, 48, 48, 128),
            (256, 32, 32, 128),
            (256, 24, 24, 256),
            (256, 16, 16, 256),
            (256, 12, 12, 256),
            (256, 8, 8, 512),
            (256, 6, 6, 512),
        ],
    },
    Panel {
        alpha: 8,
        n: 6,
        r: 3,
        variants: STD,
        fused_winograd: true,
        shapes: &[
            (128, 128, 128, 64),
            (128, 96, 96, 64),
            (128, 64, 64, 128),
            (128, 48, 48, 128),
            (128, 32, 32, 256),
            (128, 24, 24, 256),
            (128, 16, 16, 512),
            (128, 12, 12, 512),
            (128, 8, 8, 1024),
            (128, 6, 6, 1024),
        ],
    },
    Panel {
        alpha: 8,
        n: 2,
        r: 7,
        variants: STD_RUSE,
        fused_winograd: false,
        shapes: &[
            (64, 128, 128, 64),
            (64, 66, 66, 128),
            (64, 64, 64, 128),
            (128, 40, 40, 128),
            (128, 34, 34, 128),
            (128, 32, 32, 128),
            (128, 18, 18, 256),
            (128, 16, 16, 256),
            (128, 10, 10, 512),
            (128, 8, 8, 512),
        ],
    },
    Panel {
        alpha: 8,
        n: 7,
        r: 2,
        variants: STD,
        fused_winograd: false,
        shapes: &[
            (256, 128, 128, 64),
            (256, 112, 112, 64),
            (256, 64, 64, 128),
            (256, 56, 56, 128),
            (256, 32, 32, 256),
            (256, 28, 28, 256),
            (256, 16, 16, 512),
            (256, 14, 14, 512),
            (256, 8, 8, 1024),
            (256, 7, 7, 1024),
        ],
    },
    Panel {
        alpha: 16,
        n: 10,
        r: 7,
        variants: STD_C64,
        fused_winograd: false,
        shapes: &[
            (64, 128, 128, 64),
            (64, 120, 120, 64),
            (64, 112, 112, 64),
            (64, 80, 80, 128),
            (64, 64, 64, 128),
            (128, 40, 40, 128),
            (128, 32, 32, 256),
            (128, 20, 20, 256),
            (128, 16, 16, 512),
            (128, 10, 10, 512),
        ],
    },
    Panel {
        alpha: 16,
        n: 9,
        r: 8,
        variants: STD_RUSE_C64,
        fused_winograd: false,
        shapes: &[
            (64, 128, 128, 64),
            (64, 112, 112, 64),
            (64, 72, 72, 128),
            (64, 64, 64, 128),
            (64, 56, 56, 128),
            (128, 36, 36, 128),
            (128, 32, 32, 128),
            (128, 28, 28, 256),
            (256, 18, 18, 256),
            (256, 9, 9, 512),
        ],
    },
    Panel {
        alpha: 16,
        n: 8,
        r: 9,
        variants: STD_RUSE_C64,
        fused_winograd: false,
        shapes: &[
            (64, 128, 128, 64),
            (64, 124, 124, 64),
            (128, 96, 96, 64),
            (128, 64, 64, 128),
            (128, 60, 60, 128),
            (128, 48, 48, 128),
            (128, 32, 32, 256),
            (128, 28, 28, 256),
            (128, 16, 16, 512),
            (256, 8, 8, 512),
        ],
    },
];

/// Table 3 — accuracy sub-tables: `(Γ kernel, four ofms shapes)`. OW is a
/// multiple of `n` "to avoid the boundary treatment" (§6.2.1).
pub struct AccuracyTable {
    pub alpha: usize,
    pub n: usize,
    pub r: usize,
    /// Include the cuDNN-Fused-Winograd column (the Γ8(6,3) sub-table).
    pub fused_winograd: bool,
    pub shapes: &'static [Ofms],
}

pub const TABLE3: &[AccuracyTable] = &[
    AccuracyTable {
        alpha: 8,
        n: 7,
        r: 2,
        fused_winograd: false,
        shapes: &[
            (128, 112, 112, 64),
            (128, 56, 56, 128),
            (128, 28, 28, 256),
            (128, 14, 14, 512),
        ],
    },
    AccuracyTable {
        alpha: 8,
        n: 5,
        r: 4,
        fused_winograd: false,
        shapes: &[
            (128, 80, 80, 64),
            (128, 40, 40, 128),
            (128, 20, 20, 256),
            (128, 10, 10, 512),
        ],
    },
    AccuracyTable {
        alpha: 8,
        n: 6,
        r: 3,
        fused_winograd: true,
        shapes: &[
            (128, 96, 96, 64),
            (128, 48, 48, 128),
            (128, 24, 24, 256),
            (128, 12, 12, 512),
        ],
    },
    AccuracyTable {
        alpha: 8,
        n: 2,
        r: 7,
        fused_winograd: false,
        shapes: &[
            (32, 128, 128, 64),
            (32, 64, 64, 128),
            (32, 32, 32, 256),
            (32, 16, 16, 512),
        ],
    },
    AccuracyTable {
        alpha: 8,
        n: 4,
        r: 5,
        fused_winograd: false,
        shapes: &[
            (64, 128, 128, 64),
            (64, 64, 64, 128),
            (64, 32, 32, 256),
            (64, 16, 16, 512),
        ],
    },
    AccuracyTable {
        alpha: 8,
        n: 3,
        r: 6,
        fused_winograd: false,
        shapes: &[
            (64, 96, 96, 64),
            (64, 48, 48, 128),
            (64, 24, 24, 256),
            (64, 12, 12, 512),
        ],
    },
    AccuracyTable {
        alpha: 16,
        n: 10,
        r: 7,
        fused_winograd: false,
        shapes: &[
            (64, 80, 80, 64),
            (64, 40, 40, 128),
            (64, 20, 20, 256),
            (64, 10, 10, 512),
        ],
    },
    AccuracyTable {
        alpha: 16,
        n: 9,
        r: 8,
        fused_winograd: false,
        shapes: &[
            (32, 144, 144, 64),
            (32, 72, 72, 128),
            (32, 36, 36, 256),
            (32, 18, 18, 512),
        ],
    },
    AccuracyTable {
        alpha: 16,
        n: 8,
        r: 9,
        fused_winograd: false,
        shapes: &[
            (32, 128, 128, 64),
            (32, 64, 64, 128),
            (32, 32, 32, 256),
            (32, 16, 16, 512),
        ],
    },
];

impl AccuracyTable {
    pub fn conv_shape(&self, ofms: Ofms) -> ConvShape {
        let (n, oh, ow, oc) = ofms;
        ConvShape::from_ofms(n, oh, ow, oc, oc, self.r)
    }

    pub fn spec(&self) -> GammaSpec {
        GammaSpec::new(self.alpha, self.n, self.r, Variant::Standard)
    }

    pub fn label(&self) -> String {
        format!("Γ{}({},{})", self.alpha, self.n, self.r)
    }
}

/// One case of the per-stage throughput bench (`repro bench-stages`): a
/// Figure-8 shape (batch-scaled for CPU) with a forced primary kernel, so
/// the same pipeline stages are exercised run after run and their effective
/// rates can be compared across commits (`BENCH_*.json`).
pub struct StageBenchCase {
    pub label: String,
    pub spec: GammaSpec,
    pub shape: ConvShape,
}

/// The stage-bench case list. The headline case is the acceptance shape of
/// the microkernel work: Γ8(6,3) on a Figure-8 panel row with IC = OC = 64
/// and `OW` a multiple of n (exact cover — the Winograd-domain accumulate
/// dominates). The others pin the ragged-width path, the §5.4 ruse strip
/// gather, and the α = 16 regime.
pub fn stage_bench_cases() -> Vec<StageBenchCase> {
    vec![
        StageBenchCase {
            // Figure 8, Γ8(6,3) panel row (128, 96, 96, 64), N scaled 128 → 1.
            label: "g8_6_3_fig8_96x96x64_exact".into(),
            spec: GammaSpec::new(8, 6, 3, Variant::Standard),
            shape: ConvShape::from_ofms(1, 96, 96, 64, 64, 3),
        },
        StageBenchCase {
            label: "g8_6_3_95x95x64_ragged".into(),
            spec: GammaSpec::new(8, 6, 3, Variant::Standard),
            shape: ConvShape::from_ofms(1, 95, 95, 64, 64, 3),
        },
        StageBenchCase {
            label: "g8ruse_4_5_fig8_64x64x64".into(),
            spec: GammaSpec::new(8, 4, 5, Variant::Ruse),
            shape: ConvShape::from_ofms(1, 64, 64, 64, 64, 5),
        },
        StageBenchCase {
            label: "g16_8_9_32x32x64".into(),
            spec: GammaSpec::new(16, 8, 9, Variant::Standard),
            shape: ConvShape::from_ofms(1, 32, 32, 64, 64, 9),
        },
    ]
}

/// One case of the im2col-GEMM sweep (`repro bench-stages gemm`): a
/// Figure 7–9 ofms shape (batch-scaled for CPU, N = 1) driven through the
/// engine's `im2col-gemm-nhwc` backend, so the committed `BENCH_pr9_*`
/// trajectory tracks the SGEMM building block across commits.
pub struct GemmBenchCase {
    pub label: String,
    pub shape: ConvShape,
}

/// The im2col-GEMM case list: one shape per Figure 8/9 regime, spanning the
/// frontier from large-spatial/small-channel (gather-bound) to
/// small-spatial/large-channel (GEMM-bound), plus the even-filter r = 4
/// panel and an α = 16 large-filter case. IC = OC throughout (§6).
pub fn gemm_bench_cases() -> Vec<GemmBenchCase> {
    let shapes: [(&str, usize, usize, usize, usize); 8] = [
        // Figure 8 Γ8(6,3) panel rows (128, 96, 96, 64) / (256, 32, 32, 128)
        // / (128, 12, 12, 512), N scaled to 1.
        ("gemm_r3_96x96x64", 96, 96, 64, 3),
        ("gemm_r3_32x32x128", 32, 32, 128, 3),
        ("gemm_r3_12x12x512", 12, 12, 512, 3),
        // Figure 8 Γ8(4,5) rows (32, 64, 64, 128) / (128, 16, 16, 256).
        ("gemm_r5_64x64x128", 64, 64, 128, 5),
        ("gemm_r5_16x16x256", 16, 16, 256, 5),
        // Figure 8 Γ8(5,4) row (128, 40, 40, 128): the even-filter regime.
        ("gemm_r4_40x40x128", 40, 40, 128, 4),
        // Figure 9 Γ16(8,9) rows (32, 32, 32, 64) / (32, 16, 16, 128):
        // the large-filter regime where K = 81·IC dominates.
        ("gemm_r9_32x32x64", 32, 32, 64, 9),
        ("gemm_r9_16x16x128", 16, 16, 128, 9),
    ];
    shapes
        .into_iter()
        .map(|(label, oh, ow, oc, r)| GemmBenchCase {
            label: label.into(),
            shape: ConvShape::from_ofms(1, oh, ow, oc, oc, r),
        })
        .collect()
}

/// The indirect-GEMM case list (`repro bench-stages indirect`): the region
/// of the Figure 7–9 shape space the §5.7 heuristic hands to
/// `im2col-indirect` — small-OW / deep-K rows where the row-at-a-time
/// im2col fallback re-streams the packed-B panels N·OH times, the
/// large-filter regime, plus strided variants (which the Γ planner cannot
/// run at all). Run once with `--backend im2col-gemm-nhwc` and once with
/// the default backend to regenerate the committed `BENCH_pr10_*` pair.
pub fn indirect_bench_cases() -> Vec<GemmBenchCase> {
    let unit: [(&str, usize, usize, usize, usize); 4] = [
        // Figure 8 Γ8(6,3) rows (256, 32, 32, 128) / (128, 12, 12, 512),
        // N scaled to 1: the deep-K / small-OW frontier anchors.
        ("ind_r3_32x32x128", 32, 32, 128, 3),
        ("ind_r3_12x12x512", 12, 12, 512, 3),
        // Figure 8 Γ8(4,5) row (128, 16, 16, 256).
        ("ind_r5_16x16x256", 16, 16, 256, 5),
        // Figure 9 Γ16(8,9) row (32, 16, 16, 128): K = 81·IC dominates.
        ("ind_r9_16x16x128", 16, 16, 128, 9),
    ];
    let mut cases: Vec<GemmBenchCase> = unit
        .into_iter()
        .map(|(label, oh, ow, oc, r)| GemmBenchCase {
            label: label.into(),
            shape: ConvShape::from_ofms(1, oh, ow, oc, oc, r),
        })
        .collect();
    // Strided variants: stride-2 downsampling stages (ResNet-stem-like
    // 3×3/s2 and a 5×5/s2), where the indirection table's gather skips the
    // unvisited input rows the materialising im2col still walks.
    cases.push(GemmBenchCase {
        label: "ind_s2_r3_56x56x64".into(),
        shape: ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 112, 64, 64, 3)
        },
    });
    cases.push(GemmBenchCase {
        label: "ind_s2_r5_32x32x96".into(),
        shape: ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 64, 96, 96, 5)
        },
    });
    cases
}

/// Scale an ofms batch size so the measured workload stays near
/// `target_gflop` (quick mode). Returns `(scaled N, scale factor)`.
pub fn scale_batch(ofms: Ofms, r: usize, target_gflop: f64) -> (usize, f64) {
    let (n, oh, ow, oc) = ofms;
    let shape = ConvShape::from_ofms(n, oh, ow, oc, oc, r);
    let gf = shape.flops() / 1e9;
    if gf <= target_gflop {
        return (n, 1.0);
    }
    // Floor at 4: below that, per-call costs that the paper's batch sizes
    // amortise (the filter-transform pass at large IC·OC) dominate the
    // measurement and misrepresent the kernels.
    let scaled = (((n as f64) * target_gflop / gf).ceil().max(1.0) as usize)
        .clamp(1, n)
        .max(4.min(n));
    (scaled, scaled as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_panels_each() {
        assert_eq!(FIG8.len(), 9);
        assert_eq!(FIG9.len(), 9);
        assert_eq!(TABLE3.len(), 9);
        for p in FIG8.iter().chain(FIG9) {
            assert_eq!(p.shapes.len(), 10, "{}", p.label());
            assert_eq!(p.alpha, p.n + p.r - 1);
        }
    }

    #[test]
    fn table3_widths_are_tile_multiples() {
        // §6.2.1: "The widths of ofms are multiples of n to avoid the
        // boundary treatment."
        for t in TABLE3 {
            for &(_, _, ow, _) in t.shapes {
                assert_eq!(ow % t.n, 0, "{} ow {}", t.label(), ow);
            }
        }
    }

    #[test]
    fn conv_shapes_roundtrip_ofms() {
        for p in FIG8 {
            for &ofms in p.shapes {
                let s = p.conv_shape(ofms);
                assert_eq!((s.n, s.oh(), s.ow(), s.oc), ofms, "{}", p.label());
                assert_eq!(s.ic, s.oc);
            }
        }
    }

    #[test]
    fn scale_batch_bounds_work() {
        let ((n, _), r) = ((128usize, 112usize), 2usize);
        let _ = (n, r);
        let (scaled, factor) = scale_batch((128, 112, 112, 64), 2, 2.0);
        assert!((4..=128).contains(&scaled));
        assert!(factor <= 1.0);
        let (unscaled, f1) = scale_batch((1, 8, 8, 16), 3, 2.0);
        assert_eq!(unscaled, 1);
        assert_eq!(f1, 1.0);
    }
}
