//! Criterion benches for the Experiment 1 panels (Figures 8/9).
//!
//! One representative (batch-scaled) shape per panel, comparing the Γ
//! kernel against the im2col-GEMM baselines — the full ten-shape sweeps
//! live in `repro fig8` / `repro fig9`. Throughput is reported in
//! elements/s of the ofms so criterion's charts read like the figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iwino_baselines::{im2col_conv_nhwc, winograd2d_conv, Im2colPlan};
use iwino_bench::{scale_batch, FIG8};
use iwino_core::{conv2d_opts, ConvOptions};
use iwino_tensor::{ConvShape, Tensor4};

fn panel_benches(c: &mut Criterion) {
    for panel in FIG8 {
        // The middle shape of each panel, batch-scaled to stay fast.
        let ofms = panel.shapes[4];
        let (n, _) = scale_batch(ofms, panel.r, 0.6);
        let (_, oh, ow, oc) = ofms;
        let shape = ConvShape::from_ofms(n.min(8), oh, ow, oc, oc, panel.r);
        let x = Tensor4::<f32>::random(shape.x_dims(), 1, -1.0, 1.0);
        let w = Tensor4::<f32>::random(shape.w_dims(), 2, -1.0, 1.0);
        let mut group = c.benchmark_group(format!("fig8/{}", panel.label()));
        group.sample_size(10);
        group.throughput(Throughput::Elements(shape.flops() as u64 / 2));

        for &variant in panel.variants {
            let spec = panel.spec(variant);
            let opts = ConvOptions {
                force_kernels: Some(vec![spec]),
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new("im2col-winograd", format!("{spec}")),
                &shape,
                |b, s| b.iter(|| conv2d_opts(&x, &w, s, &opts)),
            );
        }
        let plan = Im2colPlan::new(&shape);
        group.bench_with_input(BenchmarkId::new("im2col-gemm", "nhwc"), &shape, |b, _| {
            b.iter(|| im2col_conv_nhwc(&x, &w, &plan))
        });
        if panel.fused_winograd {
            group.bench_with_input(BenchmarkId::new("fused-winograd-2d", "F(2x2,3x3)"), &shape, |b, s| {
                b.iter(|| winograd2d_conv(&x, &w, s, 2))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, panel_benches);
criterion_main!(benches);
