//! Micro-benchmarks for the ablation experiments:
//!
//! * A3 (§5.3): paired ("simplified") vs dense input transformation;
//! * boundary planner cost (it runs per call);
//! * SGEMM building block;
//! * the deconvolution path vs forward convolution (backward kernels
//!   "have similar performance to the forward kernels", §5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwino_baselines::{sgemm, sgemm_naive};
use iwino_core::plan::{default_kernel_prefs, SegmentPlan};
use iwino_core::{conv2d, deconv2d};
use iwino_tensor::{ConvShape, Tensor4};
use iwino_transforms::WinogradTransform;

fn transform_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-transforms");
    for (n, r) in [(6usize, 3usize), (4, 5), (8, 9)] {
        let t = WinogradTransform::generate(n, r);
        let alpha = t.alpha;
        let paired = t.dt_paired();
        let dense = t.dt.to_f64().iter().map(|&v| v as f32).collect::<Vec<f32>>();
        let width = 32usize;
        let x = vec![1.0f32; alpha * width];
        let mut out = vec![0.0f32; alpha * width];
        group.bench_with_input(BenchmarkId::new("paired", format!("F({n},{r})")), &alpha, |b, _| {
            b.iter(|| paired.apply_f32_strided(&x, width, &mut out, width, width));
        });
        group.bench_with_input(BenchmarkId::new("dense", format!("F({n},{r})")), &alpha, |b, &a| {
            b.iter(|| {
                for i in 0..a {
                    for cch in 0..width {
                        let mut acc = 0.0f32;
                        for j in 0..a {
                            acc += dense[i * a + j] * x[j * width + cch];
                        }
                        out[i * width + cch] = acc;
                    }
                }
            });
        });
    }
    group.finish();
}

fn planner_bench(c: &mut Criterion) {
    c.bench_function("segment-planner/ow=223,r=3", |b| {
        let prefs = default_kernel_prefs(3, false);
        b.iter(|| SegmentPlan::build(223, &prefs));
    });
}

fn sgemm_bench(c: &mut Criterion) {
    let (m, n, k) = (256usize, 256usize, 256usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 17) as f32).collect();
    let bmat: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32).collect();
    let mut cmat = vec![0.0f32; m * n];
    let mut group = c.benchmark_group("sgemm");
    group.bench_function("naive/256x256x256", |b| {
        b.iter(|| sgemm_naive(m, n, k, &a, &bmat, &mut cmat));
    });
    group.bench_function("packed/256x256x256", |b| {
        b.iter(|| sgemm(m, n, k, &a, &bmat, &mut cmat));
    });
    group.finish();

    // Achieved rate of the packed kernel against its roofline counters:
    // the packed-panel byte counters give the kernel's true traffic, so
    // flops / (packed + C bytes) is the arithmetic intensity the register
    // tile actually ran at.
    iwino_obs::set_enabled(true);
    iwino_obs::reset();
    let flops = (2 * m * n * k) as f64;
    let reps = 20;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        sgemm(m, n, k, &a, &bmat, &mut cmat);
    }
    let ns = t0.elapsed().as_nanos() as f64 / reps as f64;
    let snap = iwino_obs::snapshot();
    let packed_bytes = (snap.counter(iwino_obs::Counter::GemmPackedABytes)
        + snap.counter(iwino_obs::Counter::GemmPackedBBytes)) as f64
        / reps as f64;
    let traffic = packed_bytes + (m * n * 4) as f64;
    iwino_obs::set_enabled(false);
    eprintln!(
        "sgemm/packed {m}x{n}x{k}: {:.2} Gflop/s, {:.0} packed bytes/call, intensity {:.1} flop/byte",
        flops / ns,
        packed_bytes,
        flops / traffic,
    );
}

fn deconv_vs_conv(c: &mut Criterion) {
    let s = ConvShape::square(4, 24, 32, 32, 3);
    let x = Tensor4::<f32>::random(s.x_dims(), 1, -1.0, 1.0);
    let w = Tensor4::<f32>::random(s.w_dims(), 2, -1.0, 1.0);
    let dy = Tensor4::<f32>::random(s.y_dims(), 3, -1.0, 1.0);
    let mut group = c.benchmark_group("conv-vs-deconv");
    group.sample_size(20);
    group.bench_function("forward", |b| b.iter(|| conv2d(&x, &w, &s)));
    group.bench_function("backward-data", |b| b.iter(|| deconv2d(&dy, &w, &s)));
    group.finish();
}

criterion_group!(benches, transform_benches, planner_bench, sgemm_bench, deconv_vs_conv);
criterion_main!(benches);
