//! Micro-benchmarks for the ablation experiments:
//!
//! * A3 (§5.3): paired ("simplified") vs dense input transformation;
//! * boundary planner cost (it runs per call);
//! * SGEMM building block;
//! * the deconvolution path vs forward convolution (backward kernels
//!   "have similar performance to the forward kernels", §5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwino_baselines::sgemm;
use iwino_core::plan::{default_kernel_prefs, SegmentPlan};
use iwino_core::{conv2d, deconv2d};
use iwino_tensor::{ConvShape, Tensor4};
use iwino_transforms::WinogradTransform;

fn transform_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-transforms");
    for (n, r) in [(6usize, 3usize), (4, 5), (8, 9)] {
        let t = WinogradTransform::generate(n, r);
        let alpha = t.alpha;
        let paired = t.dt_paired();
        let dense = t.dt.to_f64().iter().map(|&v| v as f32).collect::<Vec<f32>>();
        let width = 32usize;
        let x = vec![1.0f32; alpha * width];
        let mut out = vec![0.0f32; alpha * width];
        group.bench_with_input(BenchmarkId::new("paired", format!("F({n},{r})")), &alpha, |b, _| {
            b.iter(|| paired.apply_f32_strided(&x, width, &mut out, width, width));
        });
        group.bench_with_input(BenchmarkId::new("dense", format!("F({n},{r})")), &alpha, |b, &a| {
            b.iter(|| {
                for i in 0..a {
                    for cch in 0..width {
                        let mut acc = 0.0f32;
                        for j in 0..a {
                            acc += dense[i * a + j] * x[j * width + cch];
                        }
                        out[i * width + cch] = acc;
                    }
                }
            });
        });
    }
    group.finish();
}

fn planner_bench(c: &mut Criterion) {
    c.bench_function("segment-planner/ow=223,r=3", |b| {
        let prefs = default_kernel_prefs(3, false);
        b.iter(|| SegmentPlan::build(223, &prefs));
    });
}

fn sgemm_bench(c: &mut Criterion) {
    let (m, n, k) = (256usize, 256usize, 256usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 17) as f32).collect();
    let bmat: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32).collect();
    let mut cmat = vec![0.0f32; m * n];
    c.bench_function("sgemm/256x256x256", |b| {
        b.iter(|| sgemm(m, n, k, &a, &bmat, &mut cmat));
    });
}

fn deconv_vs_conv(c: &mut Criterion) {
    let s = ConvShape::square(4, 24, 32, 32, 3);
    let x = Tensor4::<f32>::random(s.x_dims(), 1, -1.0, 1.0);
    let w = Tensor4::<f32>::random(s.w_dims(), 2, -1.0, 1.0);
    let dy = Tensor4::<f32>::random(s.y_dims(), 3, -1.0, 1.0);
    let mut group = c.benchmark_group("conv-vs-deconv");
    group.sample_size(20);
    group.bench_function("forward", |b| b.iter(|| conv2d(&x, &w, &s)));
    group.bench_function("backward-data", |b| b.iter(|| deconv2d(&dy, &w, &s)));
    group.finish();
}

criterion_group!(benches, transform_benches, planner_bench, sgemm_bench, deconv_vs_conv);
criterion_main!(benches);
