//! Direct (schoolbook) convolution.
//!
//! `Y[b, oh, ow, oc] = Σ_{fh, fw, ic} X[b, oh·sh + fh − ph, ow·sw + fw − pw, ic] · W[oc, fh, fw, ic]`
//!
//! Out-of-range input coordinates contribute zero (implicit zero padding).
//! This is the semantic reference every other algorithm in the workspace is
//! tested against.

use iwino_obs as obs;
use iwino_parallel as par;
use iwino_tensor::{ConvShape, Scalar, Tensor4};

/// Direct convolution in scalar type `T` with `T` accumulators. Filter `w`
/// is in the native `OC×FH×FW×IC` layout. Parallelises over `N×OH` rows.
pub fn direct_conv<T: Scalar>(x: &Tensor4<T>, w: &Tensor4<T>, shape: &ConvShape) -> Tensor4<T> {
    check_shapes(x, w, shape);
    let _b = obs::span(obs::Stage::Baseline);
    obs::add(obs::Counter::Flops, shape.flops() as u64);
    let (oh, ow) = (shape.oh(), shape.ow());
    let mut y = Tensor4::<T>::zeros(shape.y_dims());
    let row_elems = ow * shape.oc;
    let xs = x.as_slice();
    let ws = w.as_slice();
    let s = *shape;
    {
        let parts = par::SliceParts::new(y.as_mut_slice(), row_elems);
        par::parallel_for(s.n * oh, &|row| {
            let out = parts.take(row);
            let b = row / oh;
            let oy = row % oh;
            conv_row(xs, ws, &s, b, oy, out);
        });
    }
    y
}

fn conv_row<T: Scalar>(xs: &[T], ws: &[T], s: &ConvShape, b: usize, oy: usize, out: &mut [T]) {
    let (iw, ic, oc) = (s.iw, s.ic, s.oc);
    let x_row_stride = iw * ic;
    let x_img_stride = s.ih * x_row_stride;
    let w_f_stride = s.fh * s.fw * ic;
    for ox in 0..s.ow() {
        let out_px = &mut out[ox * oc..(ox + 1) * oc];
        for o in 0..oc {
            let mut acc = T::ZERO;
            let wf = &ws[o * w_f_stride..(o + 1) * w_f_stride];
            for fh in 0..s.fh {
                let iy = (oy * s.sh + fh) as isize - s.ph as isize;
                if iy < 0 || iy >= s.ih as isize {
                    continue;
                }
                for fw in 0..s.fw {
                    let ix = (ox * s.sw + fw) as isize - s.pw as isize;
                    if ix < 0 || ix >= iw as isize {
                        continue;
                    }
                    let x_base = b * x_img_stride + iy as usize * x_row_stride + ix as usize * ic;
                    let w_base = (fh * s.fw + fw) * ic;
                    for i in 0..ic {
                        acc = acc.mul_add_(xs[x_base + i], wf[w_base + i]);
                    }
                }
            }
            out_px[o] = acc;
        }
    }
}

/// Ground-truth convolution: casts f32 inputs to f64, convolves with f64
/// accumulators, and returns the f64 result (Experiment 2's reference).
pub fn direct_conv_f64_ref(x: &Tensor4<f32>, w: &Tensor4<f32>, shape: &ConvShape) -> Tensor4<f64> {
    let x64 = x.cast::<f64>();
    let w64 = w.cast::<f64>();
    direct_conv(&x64, &w64, shape)
}

/// Direct backward-data for arbitrary stride: scatter-free gather form —
/// `dx[b, iy, ix, ic] = Σ_{oc, fh, fw} dy[b, oy, ox, oc] · w[oc, fh, fw, ic]`
/// over the `(oy, ox)` that map onto `(iy, ix)`. The GEMM-class fallback
/// for strided deconvolution (§5.7's "other algorithms handle the
/// non-unit-stride cases").
pub fn direct_backward_data(dy: &Tensor4<f32>, w: &Tensor4<f32>, s: &ConvShape) -> Tensor4<f32> {
    let (oh, ow) = (s.oh(), s.ow());
    let _b = obs::span(obs::Stage::Baseline);
    let mut dx = Tensor4::<f32>::zeros(s.x_dims());
    let dys = dy.as_slice();
    let ws = w.as_slice();
    let row_elems = s.iw * s.ic;
    let parts = par::SliceParts::new(dx.as_mut_slice(), row_elems);
    par::parallel_for(s.n * s.ih, &|row| {
        let out = parts.take(row);
        let b = row / s.ih;
        let iy = row % s.ih;
        let dy_img = &dys[b * oh * ow * s.oc..(b + 1) * oh * ow * s.oc];
        for fh in 0..s.fh {
            // iy = oy·sh + fh − ph  ⟹  oy = (iy + ph − fh) / sh.
            let num = iy as isize + s.ph as isize - fh as isize;
            if num < 0 || !(num as usize).is_multiple_of(s.sh) {
                continue;
            }
            let oy = num as usize / s.sh;
            if oy >= oh {
                continue;
            }
            let dy_row = &dy_img[oy * ow * s.oc..(oy + 1) * ow * s.oc];
            for ix in 0..s.iw {
                let dst = &mut out[ix * s.ic..(ix + 1) * s.ic];
                for fw in 0..s.fw {
                    let num = ix as isize + s.pw as isize - fw as isize;
                    if num < 0 || !(num as usize).is_multiple_of(s.sw) {
                        continue;
                    }
                    let ox = num as usize / s.sw;
                    if ox >= ow {
                        continue;
                    }
                    let dy_px = &dy_row[ox * s.oc..(ox + 1) * s.oc];
                    for (o, &g) in dy_px.iter().enumerate() {
                        if g == 0.0 {
                            continue;
                        }
                        let wrow = &ws[((o * s.fh + fh) * s.fw + fw) * s.ic..((o * s.fh + fh) * s.fw + fw + 1) * s.ic];
                        for (d, &wv) in dst.iter_mut().zip(wrow) {
                            *d += g * wv;
                        }
                    }
                }
            }
        }
    });
    dx
}

fn check_shapes<T: Scalar>(x: &Tensor4<T>, w: &Tensor4<T>, s: &ConvShape) {
    assert_eq!(x.dims(), s.x_dims(), "input dims mismatch");
    assert_eq!(w.dims(), s.w_dims(), "filter dims mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1×1 image, 1×1 filter: conv is a dot product over channels.
    #[test]
    fn pointwise() {
        let s = ConvShape::unit(1, 1, 1, 3, 2, 1, 1, 0, 0);
        let x = Tensor4::from_vec(s.x_dims(), vec![1.0f32, 2.0, 3.0]);
        let w = Tensor4::from_vec(s.w_dims(), vec![1.0, 0.0, 0.0, 0.5, 0.5, 0.5]);
        let y = direct_conv(&x, &w, &s);
        assert_eq!(y.as_slice(), &[1.0, 3.0]);
    }

    /// Hand-computed 1D example embedded in 2D: F-like correlation.
    #[test]
    fn correlation_semantics() {
        // 1×4 input, 1×3 filter, no padding ⟹ 2 outputs: y_i = Σ g_j x_{i+j}.
        let s = ConvShape::unit(1, 1, 4, 1, 1, 1, 3, 0, 0);
        let x = Tensor4::from_vec(s.x_dims(), vec![1.0f32, 2.0, 3.0, 4.0]);
        let w = Tensor4::from_vec(s.w_dims(), vec![10.0, 20.0, 30.0]);
        let y = direct_conv(&x, &w, &s);
        assert_eq!(
            y.as_slice(),
            &[
                1.0 * 10.0 + 2.0 * 20.0 + 3.0 * 30.0,
                2.0 * 10.0 + 3.0 * 20.0 + 4.0 * 30.0
            ]
        );
    }

    #[test]
    fn padding_zeros_outside() {
        // 1×1 input, 1×3 filter, pw = 1 ⟹ output width 1, only centre tap hits.
        let s = ConvShape::unit(1, 1, 1, 1, 1, 1, 3, 0, 1);
        let x = Tensor4::from_vec(s.x_dims(), vec![5.0f32]);
        let w = Tensor4::from_vec(s.w_dims(), vec![100.0, 7.0, 100.0]);
        let y = direct_conv(&x, &w, &s);
        assert_eq!(y.as_slice(), &[35.0]);
    }

    #[test]
    fn stride_two_subsamples() {
        let s = ConvShape {
            sh: 1,
            sw: 2,
            ..ConvShape::unit(1, 1, 5, 1, 1, 1, 1, 0, 0)
        };
        let x = Tensor4::from_vec(s.x_dims(), vec![1.0f32, 2.0, 3.0, 4.0, 5.0]);
        let w = Tensor4::from_vec(s.w_dims(), vec![1.0]);
        let y = direct_conv(&x, &w, &s);
        assert_eq!(y.as_slice(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn f64_ref_matches_f32_closely_on_small_input() {
        let s = ConvShape::square(2, 8, 4, 4, 3);
        let x = Tensor4::<f32>::random(s.x_dims(), 1, 1.0, 2.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 2, 1.0, 2.0);
        let y32 = direct_conv(&x, &w, &s);
        let y64 = direct_conv_f64_ref(&x, &w, &s);
        let stats = iwino_tensor::ErrorStats::between(&y32, &y64);
        assert!(stats.mean < 1e-6, "{stats:?}");
        assert_eq!(y64.dims(), s.y_dims());
    }

    #[test]
    fn batch_entries_are_independent() {
        let s = ConvShape::square(2, 4, 2, 2, 3);
        let mut x = Tensor4::<f32>::zeros(s.x_dims());
        // Only batch 1 has data.
        *x.at_mut(1, 2, 2, 0) = 1.0;
        let w = Tensor4::<f32>::random(s.w_dims(), 3, 1.0, 2.0);
        let y = direct_conv(&x, &w, &s);
        for oy in 0..4 {
            for ox in 0..4 {
                for o in 0..2 {
                    assert_eq!(y.at(0, oy, ox, o), 0.0);
                }
            }
        }
        assert!(y.at(1, 2, 2, 0) != 0.0);
    }
}
