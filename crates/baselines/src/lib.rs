//! Baseline convolution algorithms the paper benchmarks against.
//!
//! * [`direct`] — schoolbook convolution; the `f64`-accumulator variant is
//!   the ground truth of Experiment 2 ("The CPU convolution uses FP64
//!   accumulators, providing much higher accuracy", §6.2.1).
//! * [`gemm`] — a blocked, multithreaded SGEMM used by the im2col paths and
//!   by Im2col-Winograd's boundary treatment.
//! * [`im2col`] — im2col + GEMM convolution with precomputed gather indices,
//!   in NHWC and NCHW flavours: the stand-ins for cuDNN's
//!   `Implicit_Precomp_GEMM`.
//! * [`winograd2d`] — fused 2D Winograd `F(m×m, 3×3)`: the stand-in for
//!   cuDNN's `Fused_Winograd` (NCHW, 3×3-only — the restriction the paper
//!   calls out in §6.1.1).

#![forbid(unsafe_code)]

pub mod direct;
pub mod fft;
pub mod gemm;
pub mod im2col;
pub mod scratch;
pub mod winograd2d;

pub use direct::{direct_backward_data, direct_conv, direct_conv_f64_ref};
pub use fft::{fft, fft_conv, Complex};
pub use gemm::{sgemm, sgemm_acc, sgemm_naive};
pub use im2col::{
    im2col_conv_nchw, im2col_conv_nchw_scratch, im2col_conv_nhwc, im2col_conv_nhwc_packed,
    im2col_conv_nhwc_pretransposed, Im2colPlan,
};
pub use scratch::{AllocScratch, ScratchProvider};
pub use winograd2d::winograd2d_conv;
