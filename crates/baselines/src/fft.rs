//! FFT convolution — the third algorithm family §2 surveys ("FFT is
//! efficient for large filters").
//!
//! The paper excludes FFT from its benchmark set because, like non-fused
//! Winograd, it "requires a much larger workspace to achieve a much greater
//! reduction in time complexity" (§6.1.1); having it in the repository makes
//! that trade-off measurable. The implementation is a straightforward
//! radix-2 Cooley–Tukey over zero-padded planes with frequency-domain
//! accumulation across input channels:
//!
//! `Y[b, :, :, oc] = IFFT( Σ_ic FFT(X[b, :, :, ic]) ⊙ conj(FFT(W[oc, :, :, ic])) )`
//!
//! (conjugation because convolution layers compute *correlation*).

use iwino_obs as obs;
use iwino_parallel as par;
use iwino_tensor::{ConvShape, Tensor4};

/// A complex number, kept minimal on purpose.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    fn mul(self, o: Complex) -> Self {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: Complex) -> Self {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: Complex) -> Self {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

/// In-place iterative radix-2 FFT (`inverse = true` for the unscaled
/// inverse; caller divides by `n`). Length must be a power of two.
pub fn fft(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2].mul(w);
                buf[start + k] = u.add(v);
                buf[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// 2-D FFT over a `p×p` row-major plane.
fn fft2(plane: &mut [Complex], p: usize, inverse: bool) {
    // Rows.
    for row in plane.chunks_exact_mut(p) {
        fft(row, inverse);
    }
    // Columns (via gather/scatter through a scratch column).
    let mut col = vec![Complex::ZERO; p];
    for x in 0..p {
        for y in 0..p {
            col[y] = plane[y * p + x];
        }
        fft(&mut col, inverse);
        for y in 0..p {
            plane[y * p + x] = col[y];
        }
    }
}

/// FFT-based convolution with the same semantics as
/// [`crate::direct::direct_conv`] (unit stride; arbitrary zero padding).
pub fn fft_conv(x: &Tensor4<f32>, w: &Tensor4<f32>, s: &ConvShape) -> Tensor4<f32> {
    assert!(s.is_unit_stride(), "FFT path implements unit stride");
    assert_eq!(x.dims(), s.x_dims());
    assert_eq!(w.dims(), s.w_dims());
    let _b = obs::span(obs::Stage::Baseline);
    obs::add(obs::Counter::Flops, s.flops() as u64);
    let (oh, ow) = (s.oh(), s.ow());
    // Plane size: big enough that circular correlation equals linear.
    let need = (s.ih + s.fh).max(s.iw + s.fw);
    let p = need.next_power_of_two();

    // Frequency-domain filters: Wf[oc][ic] (conjugated once here).
    let mut wf = vec![Complex::ZERO; s.oc * s.ic * p * p];
    {
        let plane_len = p * p;
        let parts = par::SliceParts::new(&mut wf, s.ic * plane_len);
        par::parallel_for(s.oc, &|o| {
            let planes = parts.take(o);
            for i in 0..s.ic {
                let plane = &mut planes[i * plane_len..(i + 1) * plane_len];
                for fh in 0..s.fh {
                    for fx in 0..s.fw {
                        plane[fh * p + fx] = Complex::new(w.at(o, fh, fx, i) as f64, 0.0);
                    }
                }
                fft2(plane, p, false);
                for c in plane.iter_mut() {
                    *c = c.conj();
                }
            }
        });
    }

    let mut y = Tensor4::<f32>::zeros(s.y_dims());
    let img_out = oh * ow * s.oc;
    let parts = par::SliceParts::new(y.as_mut_slice(), img_out);
    par::parallel_for(s.n, &|b| {
        let out = parts.take(b);
        let plane_len = p * p;
        // FFT of every input channel of this image.
        let mut xf = vec![Complex::ZERO; s.ic * plane_len];
        for i in 0..s.ic {
            let plane = &mut xf[i * plane_len..(i + 1) * plane_len];
            for iy in 0..s.ih {
                for ix in 0..s.iw {
                    plane[iy * p + ix] = Complex::new(x.at(b, iy, ix, i) as f64, 0.0);
                }
            }
            fft2(plane, p, false);
        }
        let mut acc = vec![Complex::ZERO; plane_len];
        for o in 0..s.oc {
            acc.fill(Complex::ZERO);
            for i in 0..s.ic {
                let xp = &xf[i * plane_len..(i + 1) * plane_len];
                let wp = &wf[(o * s.ic + i) * plane_len..(o * s.ic + i + 1) * plane_len];
                for ((a, &xc), &wc) in acc.iter_mut().zip(xp).zip(wp) {
                    *a = a.add(xc.mul(wc));
                }
            }
            fft2(&mut acc, p, true);
            let scale = 1.0 / (plane_len as f64);
            for oy in 0..oh {
                let sy = (oy as isize - s.ph as isize).rem_euclid(p as isize) as usize;
                for ox in 0..ow {
                    let sx = (ox as isize - s.pw as isize).rem_euclid(p as isize) as usize;
                    out[(oy * ow + ox) * s.oc + o] = (acc[sy * p + sx].re * scale) as f32;
                }
            }
        }
    });
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_conv;
    use iwino_tensor::max_mixed_error;

    #[test]
    fn fft_roundtrip() {
        let mut buf: Vec<Complex> = (0..16).map(|i| Complex::new(i as f64, -(i as f64) / 3.0)).collect();
        let orig = buf.clone();
        fft(&mut buf, false);
        fft(&mut buf, true);
        for (a, b) in buf.iter().zip(&orig) {
            assert!((a.re / 16.0 - b.re).abs() < 1e-10);
            assert!((a.im / 16.0 - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy() {
        let mut buf: Vec<Complex> = (0..32)
            .map(|i| Complex::new(((i * 37) % 11) as f64 - 5.0, 0.0))
            .collect();
        let time_energy: f64 = buf.iter().map(|c| c.re * c.re + c.im * c.im).sum();
        fft(&mut buf, false);
        let freq_energy: f64 = buf.iter().map(|c| c.re * c.re + c.im * c.im).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    #[should_panic]
    fn fft_requires_power_of_two() {
        let mut buf = vec![Complex::ZERO; 12];
        fft(&mut buf, false);
    }

    fn check(s: &ConvShape, seed: u64) {
        let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), seed + 1, -1.0, 1.0);
        let want = direct_conv(&x, &w, s);
        let got = fft_conv(&x, &w, s);
        let e = max_mixed_error(&got, &want);
        assert!(e < 1e-4, "{s:?}: {e}");
    }

    #[test]
    fn matches_direct_3x3() {
        check(&ConvShape::square(2, 8, 3, 4, 3), 40);
    }

    #[test]
    fn matches_direct_large_filter() {
        // The FFT's home turf: 9×9 filters.
        check(&ConvShape::square(1, 12, 2, 3, 9), 41);
    }

    #[test]
    fn matches_direct_no_padding_and_even_filter() {
        check(&ConvShape::unit(1, 9, 9, 2, 2, 4, 4, 0, 0), 42);
        check(&ConvShape::unit(2, 7, 10, 3, 2, 2, 2, 1, 1), 43);
    }

    #[test]
    fn flop_crossover_argument() {
        // FFT work per plane is O(p² log p) regardless of r, while direct is
        // O(r²) per output: by r = 9 the FFT's asymptotic advantage is the
        // §2 claim. Check the operation-count ordering at fixed geometry.
        let p = 32usize;
        let fft_ops = (p * p) as f64 * (p as f64).log2() * 6.0;
        let direct_ops_r3 = (p * p * 9) as f64 * 2.0;
        let direct_ops_r13 = (p * p * 169) as f64 * 2.0;
        assert!(fft_ops > direct_ops_r3, "small filters favour direct/Winograd");
        assert!(fft_ops < direct_ops_r13, "large filters favour FFT");
    }
}
