//! Blocked, multithreaded single-precision GEMM: `C = A·B (+ C)`.
//!
//! Row-major everywhere. The kernel uses the broadcast-row scheme: for each
//! row of `A`, FMA `a[i][k] · B[k][:]` into `C[i][:]`, with `K` blocked for
//! L1/L2 residency. The inner loop runs along contiguous `B`/`C` rows and
//! autovectorises. Parallelism is over row blocks of `C` (disjoint output).
//!
//! This is the GEMM behind the im2col baselines and behind Im2col-Winograd's
//! boundary-treatment segments (§5.5: "GEMM convolution processes the final
//! remaining segment").

use iwino_parallel as par;

/// Rows of `C` processed per parallel task.
const MB: usize = 64;
/// `K` block size (keeps a `KB×N` panel of `B` hot in cache).
const KB: usize = 256;

/// `C[m×n] += A[m×k] · B[k×n]` if `accumulate`, else `C = A·B`.
pub fn sgemm_acc(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], accumulate: bool) {
    assert_eq!(a.len(), m * k, "A shape");
    assert_eq!(b.len(), k * n, "B shape");
    assert_eq!(c.len(), m * n, "C shape");
    if m == 0 || n == 0 {
        return;
    }
    if !accumulate {
        c.fill(0.0);
    }
    if k == 0 {
        return;
    }
    let parts = par::SliceParts::new(c, MB * n);
    par::parallel_for(m.div_ceil(MB), &|blk| {
        let c_blk = parts.take(blk);
        let i0 = blk * MB;
        let rows = ((i0 + MB).min(m)) - i0;
        for k0 in (0..k).step_by(KB) {
            let k1 = (k0 + KB).min(k);
            for i in 0..rows {
                let a_row = &a[(i0 + i) * k..(i0 + i) * k + k];
                let c_row = &mut c_blk[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let av = a_row[kk];
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += av * bv;
                    }
                }
            }
        }
    });
}

/// `C = A·B` (row-major, overwrite).
pub fn sgemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    sgemm_acc(m, n, k, a, b, c, false);
}

/// Naive reference for testing.
pub fn sgemm_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * y.abs().max(1.0), "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn identity_matrix() {
        let n = 16;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32 * 0.1).collect();
        let mut c = vec![0.0f32; n * n];
        sgemm(n, n, n, &eye, &b, &mut c);
        assert_close(&c, &b, 0.0);
    }

    #[test]
    fn accumulate_adds_on_top() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [10.0f32];
        sgemm_acc(1, 1, 2, &a, &b, &mut c, true);
        assert_eq!(c[0], 10.0 + 11.0);
        sgemm_acc(1, 1, 2, &a, &b, &mut c, false);
        assert_eq!(c[0], 11.0);
    }

    #[test]
    fn degenerate_dims() {
        let mut c = vec![7.0f32; 4];
        sgemm(2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![0.0; 4]);
        sgemm(0, 0, 5, &[], &[], &mut []);
    }

    #[test]
    fn large_block_boundary_sizes() {
        // Exercise m > MB and k > KB boundaries.
        let (m, n, k) = (MB + 3, 17, KB + 5);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 11) as f32 - 5.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let mut c = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        sgemm(m, n, k, &a, &b, &mut c);
        sgemm_naive(m, n, k, &a, &b, &mut want);
        assert_close(&c, &want, 1e-4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn matches_naive(m in 1usize..20, n in 1usize..20, k in 1usize..40, seed in 0u64..1000) {
            let gen = |len: usize, s: u64| -> Vec<f32> {
                (0..len).map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(s * 97) % 1000) as f32 / 500.0) - 1.0).collect()
            };
            let a = gen(m * k, seed);
            let b = gen(k * n, seed + 1);
            let mut c = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            sgemm(m, n, k, &a, &b, &mut c);
            sgemm_naive(m, n, k, &a, &b, &mut want);
            assert_close(&c, &want, 1e-4);
        }
    }
}
