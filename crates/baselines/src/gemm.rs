//! SGEMM for the baseline convolutions — a thin re-export of `iwino-gemm`.
//!
//! The blocked kernel used to live here as a broadcast-row scheme (for each
//! row of `A`, FMA `a[i][k] · B[k][:]` into `C[i][:]`); it is now the
//! packed, register-blocked Goto-style GEMM in [`iwino_gemm`], shared with
//! core's Γ-boundary remainder. Only [`sgemm_naive`] — the test reference —
//! still lives in this crate.
//!
//! The packed kernel fixed a semantic bug the old broadcast-row loop had:
//! it skipped `a[i][k] == 0.0` terms, silently dropping `0·∞ = NaN` and
//! `0·NaN = NaN` contributions (and flipping signed-zero results). The
//! `nonfinite_inputs_match_naive` proptest below pins the agreement.

pub use iwino_gemm::{sgemm, sgemm_acc};

/// Naive reference for testing: left-to-right ascending-`k` accumulation,
/// one rounding per multiply and per add. The packed GEMM performs exactly
/// this operation sequence per element, so the agreement is bitwise.
pub fn sgemm_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * y.abs().max(1.0), "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn identity_matrix() {
        let n = 16;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32 * 0.1).collect();
        let mut c = vec![0.0f32; n * n];
        sgemm(n, n, n, &eye, &b, &mut c);
        assert_close(&c, &b, 0.0);
    }

    #[test]
    fn accumulate_adds_on_top() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [10.0f32];
        sgemm_acc(1, 1, 2, &a, &b, &mut c, true);
        assert_eq!(c[0], 10.0 + 11.0);
        sgemm_acc(1, 1, 2, &a, &b, &mut c, false);
        assert_eq!(c[0], 11.0);
    }

    #[test]
    fn degenerate_dims() {
        let mut c = vec![7.0f32; 4];
        sgemm(2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![0.0; 4]);
        sgemm(0, 0, 5, &[], &[], &mut []);
    }

    #[test]
    fn large_block_boundary_sizes() {
        // Exercise m and k beyond the packed kernel's MC/KC block sizes.
        let (m, n, k) = (iwino_gemm::MC + 3, 17, iwino_gemm::KC + 5);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 11) as f32 - 5.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let mut c = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        sgemm(m, n, k, &a, &b, &mut c);
        sgemm_naive(m, n, k, &a, &b, &mut want);
        assert_close(&c, &want, 1e-4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn matches_naive(m in 1usize..20, n in 1usize..20, k in 1usize..40, seed in 0u64..1000) {
            let gen = |len: usize, s: u64| -> Vec<f32> {
                (0..len).map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(s * 97) % 1000) as f32 / 500.0) - 1.0).collect()
            };
            let a = gen(m * k, seed);
            let b = gen(k * n, seed + 1);
            let mut c = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            sgemm(m, n, k, &a, &b, &mut c);
            sgemm_naive(m, n, k, &a, &b, &mut want);
            assert_close(&c, &want, 1e-4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Inject ∞/NaN (and plant zeros opposite them) and require the
        /// blocked GEMM to agree with the naive reference bitwise — the old
        /// `av == 0.0` skip dropped `0·∞` / `0·NaN`, turning NaN outputs
        /// into finite ones.
        #[test]
        fn nonfinite_inputs_match_naive(
            m in 1usize..15, n in 1usize..20, k in 1usize..12,
            ai in 0usize..1000, bi in 0usize..1000, kind in 0usize..3, seed in 0u64..1000,
        ) {
            let gen = |len: usize, s: u64| -> Vec<f32> {
                (0..len).map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(s * 97) % 1000) as f32 / 500.0) - 1.0).collect()
            };
            let mut a = gen(m * k, seed);
            let mut b = gen(k * n, seed + 1);
            let special = [f32::INFINITY, f32::NEG_INFINITY, f32::NAN][kind];
            // A zero in A against a non-finite B entry in the same k row,
            // and vice versa: both products must reach C as NaN.
            let (i0, kk0) = (ai % m, ai % k);
            a[i0 * k + kk0] = 0.0;
            b[kk0 * n + bi % n] = special;
            let (kk1, j1) = (bi % k, bi % n);
            b[kk1 * n + j1] = 0.0;
            a[(ai % m) * k + kk1] = special;
            let mut c = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            sgemm(m, n, k, &a, &b, &mut c);
            sgemm_naive(m, n, k, &a, &b, &mut want);
            prop_assert!(want.iter().any(|v| !v.is_finite()), "case must produce a non-finite output");
            for (i, (x, y)) in c.iter().zip(&want).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "idx {}: {:?} vs naive {:?}", i, x, y);
            }
        }
    }
}
