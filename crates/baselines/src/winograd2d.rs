//! Fused 2D Winograd convolution `F(m×m, r×r)` — the stand-in for cuDNN's
//! `Fused_Winograd` algorithm.
//!
//! Computes `Y = Aᵀ[Σ_ic (G·W·Gᵀ) ⊙ (Dᵀ·X·D)]A` per 2-D tile. The classic
//! fused configuration is `F(2×2, 3×3)` (the paper notes FP32 fused
//! implementations are "restricted to 3×3 filters"); `F(4×4, 3×3)` is also
//! supported here for the crossover studies. The 2-D state count is `α²`
//! per tile — the space-complexity number Im2col-Winograd's `α` is compared
//! against (§4.2).
//!
//! Boundary tiles are handled with conditional stores — exactly the
//! "requires additional registers to check coordinates and causes redundant
//! computations" approach §5.5 contrasts with the segment planner.

use iwino_obs as obs;
use iwino_parallel as par;
use iwino_tensor::{ConvShape, Tensor4};
use iwino_transforms::WinogradTransform;

/// Fused 2D Winograd convolution on NHWC tensors with an `r×r` filter,
/// producing `m×m` output tiles. Requires unit stride and square filters.
pub fn winograd2d_conv(x: &Tensor4<f32>, w: &Tensor4<f32>, shape: &ConvShape, m: usize) -> Tensor4<f32> {
    let s = *shape;
    assert!(s.is_unit_stride(), "2D Winograd requires unit stride");
    assert_eq!(s.fh, s.fw, "2D Winograd requires square filters");
    assert_eq!(x.dims(), s.x_dims());
    assert_eq!(w.dims(), s.w_dims());
    let _b = obs::span(obs::Stage::Baseline);
    obs::add(obs::Counter::Flops, s.flops() as u64);
    let r = s.fw;
    let t = WinogradTransform::generate(m, r);
    let alpha = t.alpha;
    let at = t.at.to_f64().iter().map(|&v| v as f32).collect::<Vec<_>>();
    let g = t.g.to_f64().iter().map(|&v| v as f32).collect::<Vec<_>>();
    let dt = t.dt.to_f64().iter().map(|&v| v as f32).collect::<Vec<_>>();

    let (oh, ow) = (s.oh(), s.ow());
    let (tiles_y, tiles_x) = (oh.div_ceil(m), ow.div_ceil(m));
    let (ic, oc) = (s.ic, s.oc);

    // Transformed filters U[s1][s2][ic][oc] = (G·w·Gᵀ)[s1][s2].
    // cuDNN's fused kernel transforms filters on the fly in SMEM; doing it
    // once per call here is the CPU analogue and is part of why the paper
    // counts fused-Winograd as workspace-free-ish (the buffer is
    // α²·IC·OC — small next to the ifms for the benchmark shapes).
    let mut u = vec![0.0f32; alpha * alpha * ic * oc];
    {
        let ws = w.as_slice();
        // scratch: wtile[r][r] -> gw[alpha][r] -> u_tile[alpha][alpha]
        for o in 0..oc {
            for i in 0..ic {
                let mut wt = vec![0.0f32; r * r];
                for fh in 0..r {
                    for fw in 0..r {
                        wt[fh * r + fw] = ws[((o * r + fh) * r + fw) * ic + i];
                    }
                }
                // gw = G(α×r) · wt(r×r)  -> (α×r)
                let mut gw = vec![0.0f32; alpha * r];
                for a in 0..alpha {
                    for col in 0..r {
                        let mut acc = 0.0f32;
                        for k in 0..r {
                            acc += g[a * r + k] * wt[k * r + col];
                        }
                        gw[a * r + col] = acc;
                    }
                }
                // ut = gw(α×r) · Gᵀ(r×α) -> (α×α)
                for a in 0..alpha {
                    for b2 in 0..alpha {
                        let mut acc = 0.0f32;
                        for k in 0..r {
                            acc += gw[a * r + k] * g[b2 * r + k];
                        }
                        u[((a * alpha + b2) * ic + i) * oc + o] = acc;
                    }
                }
            }
        }
    }

    let mut y = Tensor4::<f32>::zeros(s.y_dims());
    let xs = x.as_slice();
    let y_img_elems = oh * ow * oc;
    let parts = par::SliceParts::new(y.as_mut_slice(), y_img_elems);
    par::parallel_for(s.n, &|b| {
        let y_img = parts.take(b);
        let x_img = &xs[b * s.ih * s.iw * ic..(b + 1) * s.ih * s.iw * ic];
        let mut xt = vec![0.0f32; alpha * alpha];
        let mut v = vec![0.0f32; alpha * alpha];
        let mut tmp = vec![0.0f32; alpha * alpha];
        let mut acc = vec![0.0f32; alpha * alpha * oc];
        let mut ytile = vec![0.0f32; m * m];
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                acc.fill(0.0);
                for i in 0..ic {
                    // Gather the α×α input tile for channel i (zero padded).
                    for dy in 0..alpha {
                        let iy = (ty * m + dy) as isize - s.ph as isize;
                        for dx in 0..alpha {
                            let ix = (tx * m + dx) as isize - s.pw as isize;
                            xt[dy * alpha + dx] = if iy >= 0 && iy < s.ih as isize && ix >= 0 && ix < s.iw as isize {
                                x_img[((iy as usize) * s.iw + ix as usize) * ic + i]
                            } else {
                                0.0
                            };
                        }
                    }
                    // v = Dᵀ · xt · D
                    mat_mul(&dt, &xt, &mut tmp, alpha, alpha, alpha);
                    mat_mul_bt(&tmp, &dt, &mut v, alpha, alpha, alpha);
                    // acc[s1][s2][:] += v[s1][s2] * U[s1][s2][i][:]
                    for si in 0..alpha * alpha {
                        let vv = v[si];
                        if vv == 0.0 {
                            continue;
                        }
                        let urow = &u[(si * ic + i) * oc..(si * ic + i + 1) * oc];
                        let arow = &mut acc[si * oc..(si + 1) * oc];
                        for (a, &uu) in arow.iter_mut().zip(urow) {
                            *a += vv * uu;
                        }
                    }
                }
                // Output transform per oc: ytile = Aᵀ · M · A.
                for o in 0..oc {
                    for si in 0..alpha * alpha {
                        v[si] = acc[si * oc + o];
                    }
                    // tmp(m×α) = Aᵀ(m×α) · M(α×α)
                    mat_mul(&at, &v, &mut tmp[..m * alpha], m, alpha, alpha);
                    // ytile(m×m) = tmp(m×α) · A(α×m) = tmp · Aᵀᵀ
                    mat_mul_bt(&tmp[..m * alpha], &at, &mut ytile, m, m, alpha);
                    for dy in 0..m {
                        let oy = ty * m + dy;
                        if oy >= oh {
                            break;
                        }
                        for dx in 0..m {
                            let ox = tx * m + dx;
                            if ox >= ow {
                                break;
                            }
                            y_img[(oy * ow + ox) * oc + o] = ytile[dy * m + dx];
                        }
                    }
                }
            }
        }
    });
    y
}

/// `c(mm×nn) = a(mm×kk) · b(kk×nn)`, all row-major.
fn mat_mul(a: &[f32], b: &[f32], c: &mut [f32], mm: usize, nn: usize, kk: usize) {
    for i in 0..mm {
        for j in 0..nn {
            let mut acc = 0.0f32;
            for k in 0..kk {
                acc += a[i * kk + k] * b[k * nn + j];
            }
            c[i * nn + j] = acc;
        }
    }
}

/// `c(mm×nn) = a(mm×kk) · bᵀ` where `b` is `nn×kk` row-major.
fn mat_mul_bt(a: &[f32], b: &[f32], c: &mut [f32], mm: usize, nn: usize, kk: usize) {
    for i in 0..mm {
        for j in 0..nn {
            let mut acc = 0.0f32;
            for k in 0..kk {
                acc += a[i * kk + k] * b[j * kk + k];
            }
            c[i * nn + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_conv;
    use iwino_tensor::max_mixed_error;

    fn check(s: &ConvShape, m: usize, seed: u64, tol: f64) {
        let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), seed + 1, -1.0, 1.0);
        let want = direct_conv(&x, &w, s);
        let got = winograd2d_conv(&x, &w, s, m);
        let e = max_mixed_error(&got, &want);
        assert!(e < tol, "F({m}x{m},{}x{}) {s:?}: {e}", s.fw, s.fw);
    }

    #[test]
    fn f2x2_3x3_matches_direct() {
        check(&ConvShape::square(2, 8, 3, 4, 3), 2, 30, 1e-4);
    }

    #[test]
    fn f4x4_3x3_matches_direct() {
        check(&ConvShape::square(1, 12, 2, 3, 3), 4, 31, 1e-3);
    }

    #[test]
    fn ragged_boundary_tiles() {
        // OH = OW = 7 is not a multiple of m = 2: exercises partial tiles.
        check(&ConvShape::square(1, 7, 2, 2, 3), 2, 32, 1e-4);
        check(&ConvShape::square(1, 9, 2, 2, 3), 4, 33, 1e-3);
    }

    #[test]
    fn no_padding_case() {
        check(&ConvShape::unit(1, 8, 8, 2, 2, 3, 3, 0, 0), 2, 34, 1e-4);
    }

    #[test]
    fn f2x2_5x5_also_works() {
        // α = 6 per axis; bigger filters are possible in principle, just
        // expensive in state count — the paper's point.
        check(&ConvShape::square(1, 8, 2, 2, 5), 2, 35, 1e-3);
    }

    #[test]
    #[should_panic]
    fn rejects_non_unit_stride() {
        let s = ConvShape {
            sw: 2,
            ..ConvShape::square(1, 8, 2, 2, 3)
        };
        let x = Tensor4::<f32>::zeros(s.x_dims());
        let w = Tensor4::<f32>::zeros(s.w_dims());
        let _ = winograd2d_conv(&x, &w, &s, 2);
    }
}
