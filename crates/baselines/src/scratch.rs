//! Scratch-buffer provisioning — re-exported from `iwino-gemm`.
//!
//! The [`ScratchProvider`] trait moved next to the packed GEMM so that
//! `iwino-core`'s Γ-boundary remainder (which must not depend on this
//! crate) can route its packing and patch buffers through the same arena.
//! This module keeps the historical `iwino_baselines::scratch` paths alive
//! for existing callers, `iwino-engine`'s workspace pool among them.

pub use iwino_gemm::{AllocScratch, ScratchProvider};
