//! im2col + GEMM convolution with precomputed gather indices — the stand-in
//! for cuDNN's `Implicit_Precomp_GEMM`, in both NHWC and NCHW layouts.
//!
//! The "precomp" part mirrors cuDNN: the mapping from patch coordinates to
//! input offsets (including the padding validity masks) is computed once per
//! shape ([`Im2colPlan`]) and reused across calls. The "implicit" part:
//! patches are materialised only row-block by row-block into a scratch
//! buffer, never as a full `GM×GK` matrix in memory, so the algorithm is as
//! memory-efficient as the fused kernels it is compared against (§6.1.1).

use crate::scratch::{AllocScratch, ScratchProvider};
use iwino_gemm::{sgemm_prepacked, sgemm_scratch, PackedB};
use iwino_obs as obs;
use iwino_parallel as par;
use iwino_tensor::{transpose_filter_to_hwio, ConvShape, Tensor4};

/// Precomputed index maps for one convolution shape.
///
/// `row_map[oy·FH + fh]` is the input row for output row `oy` and filter row
/// `fh` (or `None` under padding); `col_map[ox·FW + fw]` likewise along the
/// width axis.
pub struct Im2colPlan {
    shape: ConvShape,
    row_map: Vec<Option<usize>>,
    col_map: Vec<Option<usize>>,
}

impl Im2colPlan {
    pub fn new(shape: &ConvShape) -> Self {
        let (oh, ow) = (shape.oh(), shape.ow());
        let mut row_map = Vec::with_capacity(oh * shape.fh);
        for oy in 0..oh {
            for fh in 0..shape.fh {
                let iy = (oy * shape.sh + fh) as isize - shape.ph as isize;
                row_map.push((iy >= 0 && iy < shape.ih as isize).then_some(iy as usize));
            }
        }
        let mut col_map = Vec::with_capacity(ow * shape.fw);
        for ox in 0..ow {
            for fw in 0..shape.fw {
                let ix = (ox * shape.sw + fw) as isize - shape.pw as isize;
                col_map.push((ix >= 0 && ix < shape.iw as isize).then_some(ix as usize));
            }
        }
        Im2colPlan {
            shape: *shape,
            row_map,
            col_map,
        }
    }

    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }
}

/// im2col + GEMM convolution, NHWC. `x` is `N×IH×IW×IC`, `w` is the native
/// `OC×FH×FW×IC` filter; output `N×OH×OW×OC`.
pub fn im2col_conv_nhwc(x: &Tensor4<f32>, w: &Tensor4<f32>, plan: &Im2colPlan) -> Tensor4<f32> {
    // GEMM right operand: W reshaped to (FH·FW·IC) × OC — the transposed
    // filter layout (§5.1) flattens to exactly this.
    let wmat = transpose_filter_to_hwio(w);
    im2col_conv_nhwc_pretransposed(x, &wmat, plan, &AllocScratch)
}

/// [`im2col_conv_nhwc`] with the filter already in `FH×FW×IC×OC` (HWIO)
/// layout and all temporaries drawn from `scratch`. Packs the flattened
/// `K×OC` filter once, then delegates to [`im2col_conv_nhwc_packed`].
pub fn im2col_conv_nhwc_pretransposed(
    x: &Tensor4<f32>,
    wmat: &Tensor4<f32>,
    plan: &Im2colPlan,
    scratch: &dyn ScratchProvider,
) -> Tensor4<f32> {
    let s = plan.shape;
    assert_eq!(wmat.dims(), [s.fh, s.fw, s.ic, s.oc], "wmat must be HWIO");
    let pb = PackedB::pack(s.fh * s.fw * s.ic, s.oc, wmat.as_slice());
    im2col_conv_nhwc_packed(x, &pb, plan, scratch)
}

/// [`im2col_conv_nhwc`] against a filter already packed into GEMM panels.
/// This is the serving-engine entry point: the engine's plan caches the
/// [`PackedB`] (cuDNN's "precomp" covers the filter too) and its arena
/// recycles the patch and panel buffers, so steady-state calls do no heap
/// allocation here.
pub fn im2col_conv_nhwc_packed(
    x: &Tensor4<f32>,
    pb: &PackedB,
    plan: &Im2colPlan,
    scratch: &dyn ScratchProvider,
) -> Tensor4<f32> {
    let s = plan.shape;
    assert_eq!(x.dims(), s.x_dims());
    assert_eq!(pb.k(), s.fh * s.fw * s.ic, "packed filter K mismatch");
    assert_eq!(pb.n(), s.oc, "packed filter OC mismatch");
    let _b = obs::span(obs::Stage::Baseline);
    obs::add(obs::Counter::Flops, s.flops() as u64);
    let (oh, ow) = (s.oh(), s.ow());
    let k = s.fh * s.fw * s.ic;

    let mut y = Tensor4::<f32>::zeros(s.y_dims());
    let row_elems = ow * s.oc;
    let xs = x.as_slice();
    let parts = par::SliceParts::new(y.as_mut_slice(), row_elems);
    par::parallel_for(s.n * oh, &|row| {
        let out = parts.take(row);
        let b = row / oh;
        let oy = row % oh;
        // Gather the OW × K patch matrix for this output row.
        let mut patch = scratch.checkout(ow * k);
        let x_img = &xs[b * s.ih * s.iw * s.ic..(b + 1) * s.ih * s.iw * s.ic];
        for ox in 0..ow {
            let dst_row = &mut patch[ox * k..(ox + 1) * k];
            for fh in 0..s.fh {
                let Some(iy) = plan.row_map[oy * s.fh + fh] else {
                    continue;
                };
                for fw in 0..s.fw {
                    let Some(ix) = plan.col_map[ox * s.fw + fw] else {
                        continue;
                    };
                    let src = &x_img[(iy * s.iw + ix) * s.ic..(iy * s.iw + ix + 1) * s.ic];
                    let d0 = (fh * s.fw + fw) * s.ic;
                    dst_row[d0..d0 + s.ic].copy_from_slice(src);
                }
            }
        }
        // out[OW × OC] = patch[OW × K] · W[K × OC]. Runs serially here
        // (we are inside a pool worker), which is the intent.
        sgemm_prepacked(ow, &patch, pb, out, false, scratch);
        scratch.give_back(patch);
    });
    y
}

/// im2col + GEMM convolution, NCHW. `x` is `N×IC×IH×IW`, `w` is `OC×IC×FH×FW`
/// (OIHW); output `N×OC×OH×OW`. Functionally identical to the NHWC variant;
/// exists so the benchmark harness can compare the two layouts' gather
/// behaviour like the paper compares `Implicit_Precomp_GEMM` in both formats.
pub fn im2col_conv_nchw(x: &Tensor4<f32>, w: &Tensor4<f32>, plan: &Im2colPlan) -> Tensor4<f32> {
    im2col_conv_nchw_scratch(x, w, plan, &AllocScratch)
}

/// [`im2col_conv_nchw`] with the per-worker patch and row buffers drawn
/// from `scratch`, so an arena-backed caller runs allocation-free in steady
/// state.
pub fn im2col_conv_nchw_scratch(
    x: &Tensor4<f32>,
    w: &Tensor4<f32>,
    plan: &Im2colPlan,
    scratch: &dyn ScratchProvider,
) -> Tensor4<f32> {
    let s = plan.shape;
    assert_eq!(x.dims(), [s.n, s.ic, s.ih, s.iw], "x must be NCHW");
    assert_eq!(w.dims(), [s.oc, s.ic, s.fh, s.fw], "w must be OIHW");
    let _b = obs::span(obs::Stage::Baseline);
    obs::add(obs::Counter::Flops, s.flops() as u64);
    let (oh, ow) = (s.oh(), s.ow());
    let k = s.ic * s.fh * s.fw;
    let xs = x.as_slice();
    let ws = w.as_slice(); // already OC × K row-major

    let mut y = Tensor4::<f32>::zeros([s.n, s.oc, oh, ow]);
    let y_dims = y.dims();
    let ys = y.as_mut_slice();
    // Parallelise over (batch, output row); each task writes a strided
    // OC × OW column set, gathered via a local buffer.
    let ys_parts = par::SliceParts::new(ys, y_dims[1] * y_dims[2] * y_dims[3]);
    par::parallel_for(s.n, &|b| {
        let y_img = ys_parts.take(b); // OC × OH × OW
        let x_img = &xs[b * s.ic * s.ih * s.iw..(b + 1) * s.ic * s.ih * s.iw];
        let mut patch = scratch.checkout(k * ow);
        let mut out_row = scratch.checkout(s.oc * ow);
        for oy in 0..oh {
            patch.fill(0.0);
            // patch[K × OW]: K index ordered (ic, fh, fw) to match OIHW.
            for ic in 0..s.ic {
                let x_ch = &x_img[ic * s.ih * s.iw..(ic + 1) * s.ih * s.iw];
                for fh in 0..s.fh {
                    let Some(iy) = plan.row_map[oy * s.fh + fh] else {
                        continue;
                    };
                    let x_row = &x_ch[iy * s.iw..(iy + 1) * s.iw];
                    for fw in 0..s.fw {
                        let krow = (ic * s.fh + fh) * s.fw + fw;
                        let dst = &mut patch[krow * ow..(krow + 1) * ow];
                        for (ox, slot) in dst.iter_mut().enumerate() {
                            if let Some(ix) = plan.col_map[ox * s.fw + fw] {
                                *slot = x_row[ix];
                            }
                        }
                    }
                }
            }
            // out_row[OC × OW] = W[OC × K] · patch[K × OW].
            sgemm_scratch(s.oc, ow, k, ws, &patch, &mut out_row, false, scratch);
            for o in 0..s.oc {
                let dst = &mut y_img[o * oh * ow + oy * ow..o * oh * ow + (oy + 1) * ow];
                dst.copy_from_slice(&out_row[o * ow..(o + 1) * ow]);
            }
        }
        scratch.give_back(patch);
        scratch.give_back(out_row);
    });
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_conv;
    use iwino_tensor::{max_mixed_error, nhwc_to_nchw};

    fn oihw_from_ohwi(w: &Tensor4<f32>) -> Tensor4<f32> {
        let [oc, fh, fw, ic] = w.dims();
        let mut out = Tensor4::zeros([oc, ic, fh, fw]);
        for o in 0..oc {
            for h in 0..fh {
                for x in 0..fw {
                    for i in 0..ic {
                        *out.at_mut(o, i, h, x) = w.at(o, h, x, i);
                    }
                }
            }
        }
        out
    }

    fn check_both(s: &ConvShape, seed: u64) {
        let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), seed + 1, -1.0, 1.0);
        let want = direct_conv(&x, &w, s);
        let plan = Im2colPlan::new(s);

        let got = im2col_conv_nhwc(&x, &w, &plan);
        let e = max_mixed_error(&got, &want);
        assert!(e < 1e-4, "nhwc {s:?}: {e}");

        let got_nchw = im2col_conv_nchw(&nhwc_to_nchw(&x), &oihw_from_ohwi(&w), &plan);
        let want_nchw = nhwc_to_nchw(&want);
        let e = max_mixed_error(&got_nchw, &want_nchw);
        assert!(e < 1e-4, "nchw {s:?}: {e}");
    }

    #[test]
    fn matches_direct_small() {
        check_both(&ConvShape::square(2, 8, 3, 5, 3), 10);
    }

    #[test]
    fn matches_direct_even_filter() {
        check_both(&ConvShape::square(1, 9, 4, 4, 2), 11);
        check_both(&ConvShape::square(1, 9, 4, 4, 4), 12);
    }

    #[test]
    fn matches_direct_large_filter() {
        check_both(&ConvShape::square(1, 12, 2, 3, 7), 13);
        check_both(&ConvShape::square(1, 12, 2, 3, 9), 14);
    }

    #[test]
    fn matches_direct_no_padding() {
        check_both(&ConvShape::unit(2, 6, 10, 3, 4, 3, 3, 0, 0), 15);
    }

    #[test]
    fn matches_direct_strided() {
        let s = ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 11, 3, 4, 3)
        };
        check_both(&s, 16);
    }

    #[test]
    fn plan_reuse_across_batches() {
        let s = ConvShape::square(3, 6, 2, 2, 5);
        let plan = Im2colPlan::new(&s);
        for seed in [20, 21] {
            let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
            let w = Tensor4::<f32>::random(s.w_dims(), seed + 5, -1.0, 1.0);
            let got = im2col_conv_nhwc(&x, &w, &plan);
            let want = direct_conv(&x, &w, &s);
            assert!(max_mixed_error(&got, &want) < 1e-4);
        }
    }
}
