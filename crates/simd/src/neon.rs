//! NEON microkernels (AArch64, 4-lane `float32x4_t`).
//!
//! Same bit-exactness contract as the AVX2 path: separate `fmul`/`fadd`
//! (never the fused `vfmaq_f32`) in the scalar fallback's per-element
//! accumulation order, so results are bitwise identical to
//! [`crate::scalar`]. NEON has no masked loads, so remainder lanes run the
//! scalar tail loops verbatim.
//!
//! Safety structure mirrors `avx2.rs`: public safe wrappers assert every
//! bound, private `unsafe` kernels do the pointer work, and the wrappers
//! enter the dispatch table only after `is_aarch64_feature_detected!`
//! confirms NEON (see `crate::resolve`).

use crate::LANE;
use core::arch::aarch64::*;

/// NEON vector width in f32 lanes (one 128-bit q register).
const NL: usize = 4;

/// Safe dispatch-table entry with [`crate::scalar::outer_product_row`]
/// semantics: `arow[k] += Σ_i txs[i] · panel[i·oc + o0 + k]`.
pub(crate) fn outer_product_row(arow: &mut [f32], txs: &[f32], panel: &[f32], oc: usize, o0: usize) {
    let ocb = arow.len();
    let Some(i_last) = txs.len().checked_sub(1) else {
        return; // no channels in this panel: nothing to accumulate
    };
    if ocb == 0 {
        return;
    }
    // The furthest filter element read is panel[i_last·oc + o0 + ocb − 1].
    assert!(
        panel.len() >= i_last * oc + o0 + ocb,
        "transformed-filter panel too short for outer-product row"
    );
    // SAFETY: this entry is dispatched only after runtime detection of
    // NEON (crate::resolve); `arow[..ocb]` is a valid &mut slice, and the
    // assert above bounds every `panel` offset the kernel derives
    // (`i·oc + o0 + k` with `i ≤ i_last`, `k < ocb`).
    unsafe { outer_product_row_impl(arow.as_mut_ptr(), ocb, txs, panel.as_ptr(), oc, o0) }
}

// SAFETY: (caller contract) callers must ensure NEON support, that `arow[..ocb]`
// is writable, and that `panel[i*oc + o0 + k]` is readable for all
// `i < txs.len()`, `k < ocb` — asserted by the wrapper above.
#[target_feature(enable = "neon")]
unsafe fn outer_product_row_impl(arow: *mut f32, ocb: usize, txs: &[f32], panel: *const f32, oc: usize, o0: usize) {
    let mut o = 0usize;
    while o + 4 * NL <= ocb {
        block4(arow.add(o), txs, panel.add(o0 + o), oc);
        o += 4 * NL;
    }
    while o + NL <= ocb {
        block1(arow.add(o), txs, panel.add(o0 + o), oc);
        o += NL;
    }
    if o < ocb {
        // Scalar masked tail (NEON has no masked loads): identical
        // accumulation order to scalar::fma_tail's live prefix.
        let w = ocb - o;
        let mut accv = [0.0f32; LANE];
        for (k, a) in accv[..w].iter_mut().enumerate() {
            *a = *arow.add(o + k);
        }
        for (i, &v) in txs.iter().enumerate() {
            for (k, a) in accv[..w].iter_mut().enumerate() {
                *a += v * *panel.add(i * oc + o0 + o + k);
            }
        }
        for (k, &a) in accv[..w].iter().enumerate() {
            *arow.add(o + k) = a;
        }
    }
}

// SAFETY: (caller contract) NEON enabled; `arow[..16]` writable and
// `panel[i*oc ..][..16]` readable for every `i < txs.len()` — guaranteed
// by `outer_product_row_impl`'s blocking bounds.
#[target_feature(enable = "neon")]
unsafe fn block4(arow: *mut f32, txs: &[f32], panel: *const f32, oc: usize) {
    let mut a0 = vld1q_f32(arow);
    let mut a1 = vld1q_f32(arow.add(4));
    let mut a2 = vld1q_f32(arow.add(8));
    let mut a3 = vld1q_f32(arow.add(12));
    for (i, &v) in txs.iter().enumerate() {
        let w = panel.add(i * oc);
        let vv = vdupq_n_f32(v);
        a0 = vaddq_f32(a0, vmulq_f32(vv, vld1q_f32(w)));
        a1 = vaddq_f32(a1, vmulq_f32(vv, vld1q_f32(w.add(4))));
        a2 = vaddq_f32(a2, vmulq_f32(vv, vld1q_f32(w.add(8))));
        a3 = vaddq_f32(a3, vmulq_f32(vv, vld1q_f32(w.add(12))));
    }
    vst1q_f32(arow, a0);
    vst1q_f32(arow.add(4), a1);
    vst1q_f32(arow.add(8), a2);
    vst1q_f32(arow.add(12), a3);
}

// SAFETY: (caller contract) NEON enabled; `arow[..4]` writable and
// `panel[i*oc ..][..4]` readable for every `i < txs.len()` — guaranteed
// by `outer_product_row_impl`'s blocking bounds.
#[target_feature(enable = "neon")]
unsafe fn block1(arow: *mut f32, txs: &[f32], panel: *const f32, oc: usize) {
    let mut a0 = vld1q_f32(arow);
    for (i, &v) in txs.iter().enumerate() {
        a0 = vaddq_f32(a0, vmulq_f32(vdupq_n_f32(v), vld1q_f32(panel.add(i * oc))));
    }
    vst1q_f32(arow, a0);
}

/// Safe dispatch-table entry with [`crate::scalar::outer_product_row2`]
/// semantics: two tiles accumulated in one pass over the shared filter
/// panel (each panel row loaded once, used twice — see `avx2.rs` for the
/// bandwidth argument).
pub(crate) fn outer_product_row2(
    arow0: &mut [f32],
    arow1: &mut [f32],
    txs0: &[f32],
    txs1: &[f32],
    panel: &[f32],
    oc: usize,
    o0: usize,
) {
    let ocb = arow0.len();
    assert_eq!(ocb, arow1.len(), "paired outer-product rows must have equal widths");
    assert_eq!(
        txs0.len(),
        txs1.len(),
        "paired outer-product tiles must share a channel count"
    );
    let Some(i_last) = txs0.len().checked_sub(1) else {
        return; // no channels in this panel: nothing to accumulate
    };
    if ocb == 0 {
        return;
    }
    // The furthest filter element read is panel[i_last·oc + o0 + ocb − 1].
    assert!(
        panel.len() >= i_last * oc + o0 + ocb,
        "transformed-filter panel too short for outer-product row pair"
    );
    // SAFETY: this entry is dispatched only after runtime detection of
    // NEON (crate::resolve); `arow0`/`arow1` are distinct valid &mut
    // slices of equal length `ocb`, `txs1.len() == txs0.len()`, and the
    // assert above bounds every `panel` offset the kernel derives
    // (`i·oc + o0 + k` with `i ≤ i_last`, `k < ocb`).
    unsafe {
        outer_product_row2_impl(
            arow0.as_mut_ptr(),
            arow1.as_mut_ptr(),
            ocb,
            txs0,
            txs1,
            panel.as_ptr(),
            oc,
            o0,
        )
    }
}

// SAFETY: (caller contract) callers must ensure NEON support, that `a0[..ocb]`
// and `a1[..ocb]` are writable and disjoint, that `txs1.len() ==
// txs0.len()`, and that `panel[i*oc + o0 + k]` is readable for all
// `i < txs0.len()`, `k < ocb` — asserted by the wrapper above.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "neon")]
unsafe fn outer_product_row2_impl(
    a0: *mut f32,
    a1: *mut f32,
    ocb: usize,
    txs0: &[f32],
    txs1: &[f32],
    panel: *const f32,
    oc: usize,
    o0: usize,
) {
    let mut o = 0usize;
    while o + 4 * NL <= ocb {
        block4x2(a0.add(o), a1.add(o), txs0, txs1, panel.add(o0 + o), oc);
        o += 4 * NL;
    }
    while o + NL <= ocb {
        block1x2(a0.add(o), a1.add(o), txs0, txs1, panel.add(o0 + o), oc);
        o += NL;
    }
    if o < ocb {
        // Scalar masked tail (NEON has no masked loads): identical
        // accumulation order to scalar's live prefix, one tile at a time.
        let w = ocb - o;
        for (tile, txs) in [(a0, txs0), (a1, txs1)] {
            let mut accv = [0.0f32; LANE];
            for (k, a) in accv[..w].iter_mut().enumerate() {
                *a = *tile.add(o + k);
            }
            for (i, &v) in txs.iter().enumerate() {
                for (k, a) in accv[..w].iter_mut().enumerate() {
                    *a += v * *panel.add(i * oc + o0 + o + k);
                }
            }
            for (k, &a) in accv[..w].iter().enumerate() {
                *tile.add(o + k) = a;
            }
        }
    }
}

// SAFETY: (caller contract) NEON enabled; `a0[..16]` and `a1[..16]` writable and
// `panel[i*oc ..][..16]` readable for every `i < txs0.len()` — guaranteed
// by `outer_product_row2_impl`'s blocking bounds.
#[target_feature(enable = "neon")]
unsafe fn block4x2(a0p: *mut f32, a1p: *mut f32, txs0: &[f32], txs1: &[f32], panel: *const f32, oc: usize) {
    let mut x0 = vld1q_f32(a0p);
    let mut x1 = vld1q_f32(a0p.add(4));
    let mut x2 = vld1q_f32(a0p.add(8));
    let mut x3 = vld1q_f32(a0p.add(12));
    let mut y0 = vld1q_f32(a1p);
    let mut y1 = vld1q_f32(a1p.add(4));
    let mut y2 = vld1q_f32(a1p.add(8));
    let mut y3 = vld1q_f32(a1p.add(12));
    for (i, (&v0, &v1)) in txs0.iter().zip(txs1).enumerate() {
        let w = panel.add(i * oc);
        let vv0 = vdupq_n_f32(v0);
        let vv1 = vdupq_n_f32(v1);
        let l0 = vld1q_f32(w);
        let l1 = vld1q_f32(w.add(4));
        let l2 = vld1q_f32(w.add(8));
        let l3 = vld1q_f32(w.add(12));
        x0 = vaddq_f32(x0, vmulq_f32(vv0, l0));
        x1 = vaddq_f32(x1, vmulq_f32(vv0, l1));
        x2 = vaddq_f32(x2, vmulq_f32(vv0, l2));
        x3 = vaddq_f32(x3, vmulq_f32(vv0, l3));
        y0 = vaddq_f32(y0, vmulq_f32(vv1, l0));
        y1 = vaddq_f32(y1, vmulq_f32(vv1, l1));
        y2 = vaddq_f32(y2, vmulq_f32(vv1, l2));
        y3 = vaddq_f32(y3, vmulq_f32(vv1, l3));
    }
    vst1q_f32(a0p, x0);
    vst1q_f32(a0p.add(4), x1);
    vst1q_f32(a0p.add(8), x2);
    vst1q_f32(a0p.add(12), x3);
    vst1q_f32(a1p, y0);
    vst1q_f32(a1p.add(4), y1);
    vst1q_f32(a1p.add(8), y2);
    vst1q_f32(a1p.add(12), y3);
}

// SAFETY: (caller contract) NEON enabled; `a0[..4]` and `a1[..4]` writable and
// `panel[i*oc ..][..4]` readable for every `i < txs0.len()` — guaranteed
// by `outer_product_row2_impl`'s blocking bounds.
#[target_feature(enable = "neon")]
unsafe fn block1x2(a0p: *mut f32, a1p: *mut f32, txs0: &[f32], txs1: &[f32], panel: *const f32, oc: usize) {
    let mut x0 = vld1q_f32(a0p);
    let mut y0 = vld1q_f32(a1p);
    for (i, (&v0, &v1)) in txs0.iter().zip(txs1).enumerate() {
        let l0 = vld1q_f32(panel.add(i * oc));
        x0 = vaddq_f32(x0, vmulq_f32(vdupq_n_f32(v0), l0));
        y0 = vaddq_f32(y0, vmulq_f32(vdupq_n_f32(v1), l0));
    }
    vst1q_f32(a0p, x0);
    vst1q_f32(a1p, y0);
}

/// Safe dispatch-table entry with [`crate::scalar::transform_step`]
/// semantics: one channel block (`w ≤ TRANSFORM_CHUNK`) of one paired
/// plan step.
#[allow(clippy::too_many_arguments)]
pub(crate) fn transform_step(
    coeffs: &[f32],
    paired: bool,
    x: &[f32],
    x_stride: usize,
    out: &mut [f32],
    out_stride: usize,
    row: usize,
    c0: usize,
    w: usize,
) {
    assert!((1..=crate::TRANSFORM_CHUNK).contains(&w));
    let Some(j_last) = coeffs.len().checked_sub(1) else {
        // No columns: both output rows are all-zero partial sums.
        out[row * out_stride + c0..row * out_stride + c0 + w].fill(0.0);
        if paired {
            out[(row + 1) * out_stride + c0..(row + 1) * out_stride + c0 + w].fill(0.0);
        }
        return;
    };
    assert!(x.len() >= j_last * x_stride + c0 + w, "transform input too short");
    let rows_written = row + usize::from(paired);
    assert!(
        out.len() >= rows_written * out_stride + c0 + w,
        "transform output too short"
    );
    // SAFETY: dispatched only after NEON runtime detection
    // (crate::resolve); the asserts above cover every offset read
    // (`j·x_stride + c0 + k`, `j ≤ j_last`, `k < w`) and written
    // (rows `row`/`row + 1`, columns `[c0, c0 + w)`).
    unsafe {
        transform_step_impl(
            coeffs,
            paired,
            x.as_ptr(),
            x_stride,
            out.as_mut_ptr(),
            out_stride,
            row,
            c0,
            w,
        )
    }
}

// SAFETY: (caller contract) callers must ensure NEON support, readability of
// `x[j*x_stride + c0 ..][..w]` for every `j < coeffs.len()`, and
// writability of output rows `row` (and `row + 1` when `paired`) at
// columns `[c0, c0 + w)` — asserted by the wrapper above.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "neon")]
unsafe fn transform_step_impl(
    coeffs: &[f32],
    paired: bool,
    x: *const f32,
    x_stride: usize,
    out: *mut f32,
    out_stride: usize,
    row: usize,
    c0: usize,
    w: usize,
) {
    const NB: usize = crate::TRANSFORM_CHUNK / NL;
    let nb = w / NL;
    let rem = w % NL;
    // Even/odd partial sums: up to 16 q-register blocks plus one scalar
    // remainder block, all on the stack; per-element column order matches
    // scalar::transform_step exactly.
    let mut even = [vdupq_n_f32(0.0); NB];
    let mut odd = [vdupq_n_f32(0.0); NB];
    let mut even_r = [0.0f32; NL];
    let mut odd_r = [0.0f32; NL];
    for (j, &m) in coeffs.iter().enumerate() {
        if m == 0.0 {
            continue;
        }
        let src = x.add(j * x_stride + c0);
        let mv = vdupq_n_f32(m);
        let is_odd = paired && j % 2 != 0;
        let acc = if is_odd { &mut odd } else { &mut even };
        for (b, a) in acc[..nb].iter_mut().enumerate() {
            *a = vaddq_f32(*a, vmulq_f32(mv, vld1q_f32(src.add(b * NL))));
        }
        if rem > 0 {
            let accr = if is_odd { &mut odd_r } else { &mut even_r };
            for (k, a) in accr[..rem].iter_mut().enumerate() {
                *a += m * *src.add(nb * NL + k);
            }
        }
    }
    let dst0 = out.add(row * out_stride + c0);
    if !paired {
        for (b, a) in even[..nb].iter().enumerate() {
            vst1q_f32(dst0.add(b * NL), *a);
        }
        for (k, a) in even_r[..rem].iter().enumerate() {
            *dst0.add(nb * NL + k) = *a;
        }
        return;
    }
    let dst1 = out.add((row + 1) * out_stride + c0);
    for b in 0..nb {
        vst1q_f32(dst0.add(b * NL), vaddq_f32(even[b], odd[b]));
        vst1q_f32(dst1.add(b * NL), vsubq_f32(even[b], odd[b]));
    }
    for k in 0..rem {
        *dst0.add(nb * NL + k) = even_r[k] + odd_r[k];
        *dst1.add(nb * NL + k) = even_r[k] - odd_r[k];
    }
}
