//! Runtime-dispatched SIMD microkernels for the Γ hot path.
//!
//! The paper's performance story (§5.2–§5.4) rests on every transform and
//! accumulation step vectorising along the contiguous NHWC channel axis.
//! The kernels in `iwino-core` and `iwino-transforms` originally left that
//! to LLVM's autovectorizer over safe scalar loops; this crate provides
//! explicit-intrinsic implementations of the two primitives those hot
//! paths are built from, selected **once** at runtime into a
//! function-pointer table ([`Microkernels`]):
//!
//! * [`Microkernels::outer_product_row`] — one α-state row of the
//!   register-blocked outer product (`arow[k] += Σ_i txs[i] ·
//!   panel[i·oc + o0 + k]`), the paper's 8×(8×8) outer-product unit;
//! * [`Microkernels::outer_product_row2`] — the tile-paired variant: two
//!   rows accumulated in one pass over the shared filter panel, halving
//!   the stage's dominant memory stream (see [`OuterProductRow2Fn`]);
//! * [`Microkernels::transform_step`] — one channel block of one paired
//!   `Dᵀ`/`Aᵀ` plan step (§5.3 even/odd pairing), shared by the input
//!   transform and the fused output-transform epilogue.
//!
//! Three paths exist: AVX2+FMA (x86-64, 8-lane `__m256` matching
//! [`LANE`]), AArch64 NEON (4-lane `float32x4_t`), and the original safe
//! scalar code (moved here verbatim, see [`scalar`]) as the universal
//! fallback. **Every path is bit-for-bit identical**: the SIMD kernels use
//! separate multiply and add ops (never a single-rounding fused
//! multiply-add) in the same per-element accumulation order as scalar, so
//! dispatch never changes results — the conformance net asserts this
//! bitwise across every `(n, r)` kernel and tail width.
//!
//! Dispatch is cached in one relaxed atomic byte and can be overridden to
//! the scalar fallback via the `IWINO_FORCE_SCALAR` environment variable
//! or programmatically with [`set_force_scalar`] (for A/B benches and the
//! CI force-scalar test lane).

use std::sync::atomic::{AtomicU8, Ordering};

pub mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

/// Vector lane width the blocked kernels are sized for: 8 f32 = one
/// 256-bit register. Must equal `iwino_core::plan::LANE` and
/// `iwino_transforms::LANE` (both cross-checked by tests/const asserts in
/// those crates).
pub const LANE: usize = 8;

/// Channel-chunk width of the strided transform executor (8 lanes). The
/// [`Microkernels::transform_step`] contract allows any `w` in
/// `1..=TRANSFORM_CHUNK`; `iwino-transforms` const-asserts its `CHUNK`
/// equals this.
pub const TRANSFORM_CHUNK: usize = 8 * LANE;

/// The instruction set a dispatched table entry is implemented with.
///
/// Discriminants start at 1 so `0` can serve as the "unresolved" sentinel
/// in the cached dispatch byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Isa {
    /// Safe-scalar fallback (autovectorised by LLVM, no intrinsics).
    Scalar = 1,
    /// x86-64 AVX2 with FMA present (FMA is *detected*, not used — see the
    /// crate docs on bit-exactness).
    Avx2Fma = 2,
    /// AArch64 Advanced SIMD.
    Neon = 3,
}

impl Isa {
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2Fma => "avx2+fma",
            Isa::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> Option<Isa> {
        match v {
            1 => Some(Isa::Scalar),
            2 => Some(Isa::Avx2Fma),
            3 => Some(Isa::Neon),
            _ => None,
        }
    }
}

/// `fn(arow, txs, panel, oc, o0)`: accumulate `arow[k] += Σ_i txs[i] ·
/// panel[i·oc + o0 + k]` for `k < arow.len()`. See
/// [`scalar::outer_product_row`] for the reference semantics.
pub type OuterProductRowFn = fn(&mut [f32], &[f32], &[f32], usize, usize);

/// `fn(arow0, arow1, txs0, txs1, panel, oc, o0)`: two independent
/// [`OuterProductRowFn`] accumulations *sharing one pass over the filter
/// panel* — each panel row is loaded once and fed to both tiles'
/// accumulators, halving panel bandwidth per FLOP. The Winograd-domain
/// outer product is filter-bound on wide vectors (the panel stream is
/// `lane_width×` the tx stream), so this is the reuse axis that keeps
/// AVX2 fed from L2. Per output element the accumulation order is exactly
/// the single-row kernel's, so pairing never changes results. See
/// [`scalar::outer_product_row2`].
pub type OuterProductRow2Fn = fn(&mut [f32], &mut [f32], &[f32], &[f32], &[f32], usize, usize);

/// `fn(coeffs, paired, x, x_stride, out, out_stride, row, c0, w)`: one
/// channel block of one paired-transform plan step. See
/// [`scalar::transform_step`] for the reference semantics.
pub type TransformStepFn = fn(&[f32], bool, &[f32], usize, &mut [f32], usize, usize, usize, usize);

/// One dispatched microkernel set. Obtained from [`kernels`]; the entries
/// of every set produce bitwise-identical results, so callers may branch
/// on [`Microkernels::isa`] purely for performance (e.g. calling the
/// inlinable scalar functions directly instead of through the pointers).
#[derive(Clone, Copy)]
pub struct Microkernels {
    pub isa: Isa,
    /// f32 elements per explicit vector op: 8 (AVX2), 4 (NEON), 1 (scalar
    /// fallback — LLVM may still autovectorise, but nothing is guaranteed).
    pub lane_width: usize,
    pub outer_product_row: OuterProductRowFn,
    pub outer_product_row2: OuterProductRow2Fn,
    pub transform_step: TransformStepFn,
}

static SCALAR_KERNELS: Microkernels = Microkernels {
    isa: Isa::Scalar,
    lane_width: 1,
    outer_product_row: scalar::outer_product_row,
    outer_product_row2: scalar::outer_product_row2,
    transform_step: scalar::transform_step,
};

#[cfg(target_arch = "x86_64")]
static AVX2_KERNELS: Microkernels = Microkernels {
    isa: Isa::Avx2Fma,
    lane_width: LANE,
    outer_product_row: avx2::outer_product_row,
    outer_product_row2: avx2::outer_product_row2,
    transform_step: avx2::transform_step,
};

#[cfg(target_arch = "aarch64")]
static NEON_KERNELS: Microkernels = Microkernels {
    isa: Isa::Neon,
    lane_width: 4,
    outer_product_row: neon::outer_product_row,
    outer_product_row2: neon::outer_product_row2,
    transform_step: neon::transform_step,
};

fn table(isa: Isa) -> &'static Microkernels {
    match isa {
        Isa::Scalar => &SCALAR_KERNELS,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => &AVX2_KERNELS,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => &NEON_KERNELS,
        // A cached byte can only name an ISA `resolve` selected on this
        // arch, so this arm is for cfg-completeness, not a real fallback.
        _ => &SCALAR_KERNELS,
    }
}

/// Cached dispatch decision: `0` = unresolved, otherwise an [`Isa`]
/// discriminant written by `resolve`.
static DISPATCH: AtomicU8 = AtomicU8::new(0);

/// Force-scalar override state: `0` = follow `IWINO_FORCE_SCALAR`,
/// `1` = forced scalar, `2` = forced native (env ignored).
static FORCE: AtomicU8 = AtomicU8::new(0);

/// The dispatched microkernel set: one relaxed load on the hot path after
/// the first call resolves CPU features.
#[inline]
pub fn kernels() -> &'static Microkernels {
    // ORDERING: Relaxed — the byte is a pure cache of `resolve()`, which is
    // deterministic for a given force-flag state, and every table entry is
    // bitwise-equivalent, so a reader racing a `set_force_scalar` toggle
    // merely re-runs detection or briefly uses another, numerically
    // identical path. No other data is published through this atomic.
    match Isa::from_u8(DISPATCH.load(Ordering::Relaxed)) {
        Some(isa) => table(isa),
        None => table(resolve()),
    }
}

#[cold]
fn resolve() -> Isa {
    let isa = if force_scalar_requested() {
        Isa::Scalar
    } else {
        native_isa()
    };
    // ORDERING: Relaxed — see `kernels()`; publishing the cached byte late
    // only makes another thread redo this cheap, deterministic detection.
    DISPATCH.store(isa as u8, Ordering::Relaxed);
    isa
}

/// Is the scalar fallback being forced? Programmatic override
/// ([`set_force_scalar`]) wins; otherwise a non-empty, non-`"0"`
/// `IWINO_FORCE_SCALAR` environment variable forces scalar.
pub fn force_scalar_requested() -> bool {
    // ORDERING: Relaxed — independent flag; see `kernels()` for why a
    // stale read is benign.
    match FORCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => std::env::var_os("IWINO_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0"),
    }
}

/// Programmatic force-scalar knob: `true` routes all microkernels to the
/// scalar fallback, `false` restores native dispatch (both override the
/// environment variable). Invalidates the cached decision; threads mid-call
/// during a toggle finish on the old path, which is harmless because every
/// path is bit-for-bit identical.
pub fn set_force_scalar(on: bool) {
    // ORDERING: Relaxed for both stores — independent flag writes with no
    // data published through them; the worst outcome of reordering is one
    // extra `resolve()` of the previous state (see `kernels()`).
    FORCE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    DISPATCH.store(0, Ordering::Relaxed);
}

/// Clear any programmatic [`set_force_scalar`] override, returning to the
/// `IWINO_FORCE_SCALAR` environment policy, and invalidate the cached
/// dispatch. For tests and A/B harnesses that must leave the
/// process-global dispatch state as they found it.
pub fn clear_force_override() {
    // ORDERING: Relaxed — [flag] configuration store, same reasoning as
    // `set_force_scalar`: the worst outcome of reordering is one extra
    // `resolve()` of the previous state.
    FORCE.store(0, Ordering::Relaxed);
    DISPATCH.store(0, Ordering::Relaxed); // ORDERING: as above
}

/// The ISA [`resolve`] would pick with no force-scalar override.
pub fn native_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            return Isa::Avx2Fma;
        }
        Isa::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Isa::Neon;
        }
        Isa::Scalar
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Isa::Scalar
    }
}

/// CPU features detected at runtime (reported regardless of which path is
/// dispatched, so metrics from a forced-scalar run still identify the
/// host).
pub fn detected_features() -> Vec<&'static str> {
    let mut f = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, present) in [
            ("sse2", std::is_x86_feature_detected!("sse2")),
            ("sse4.1", std::is_x86_feature_detected!("sse4.1")),
            ("avx", std::is_x86_feature_detected!("avx")),
            ("avx2", std::is_x86_feature_detected!("avx2")),
            ("fma", std::is_x86_feature_detected!("fma")),
            ("avx512f", std::is_x86_feature_detected!("avx512f")),
        ] {
            if present {
                f.push(name);
            }
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            f.push("neon");
        }
    }
    f
}

/// Everything a metrics consumer needs to identify the dispatched path.
#[derive(Clone, Debug)]
pub struct DispatchInfo {
    /// Name of the dispatched ISA (`"avx2+fma"`, `"neon"`, `"scalar"`).
    pub isa: &'static str,
    /// [`Microkernels::lane_width`] of the dispatched set.
    pub lane_width: usize,
    /// Whether a force-scalar override (env or programmatic) is active.
    pub forced_scalar: bool,
    /// [`detected_features`] of the host, independent of dispatch.
    pub features: Vec<&'static str>,
}

pub fn dispatch_info() -> DispatchInfo {
    let mk = kernels();
    DispatchInfo {
        isa: mk.isa.name(),
        lane_width: mk.lane_width,
        forced_scalar: force_scalar_requested(),
        features: detected_features(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The dispatch cache and force flag are process-global; tests that
    /// toggle them serialize here and restore the default on drop.
    fn force_guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    struct RestoreDispatch;
    impl Drop for RestoreDispatch {
        fn drop(&mut self) {
            clear_force_override();
        }
    }

    #[test]
    fn force_scalar_routes_to_scalar_and_back() {
        let _g = force_guard();
        let _r = RestoreDispatch;
        set_force_scalar(true);
        assert_eq!(kernels().isa, Isa::Scalar);
        assert_eq!(kernels().lane_width, 1);
        assert!(force_scalar_requested());
        set_force_scalar(false);
        assert_eq!(kernels().isa, native_isa());
        assert!(!force_scalar_requested());
        // On a host with SIMD support the two dispatches must differ in the
        // actual function pointers, proving the knob switches code paths.
        if native_isa() != Isa::Scalar {
            let native = *kernels();
            set_force_scalar(true);
            let forced = *kernels();
            assert!(!std::ptr::fn_addr_eq(
                native.outer_product_row,
                forced.outer_product_row
            ));
            assert!(!std::ptr::fn_addr_eq(native.transform_step, forced.transform_step));
        }
    }

    #[test]
    fn dispatch_info_names_a_known_isa() {
        let _g = force_guard();
        let _r = RestoreDispatch;
        set_force_scalar(false);
        let info = dispatch_info();
        assert!(["scalar", "avx2+fma", "neon"].contains(&info.isa));
        assert!(!info.forced_scalar);
        #[cfg(target_arch = "x86_64")]
        assert!(info.features.contains(&"sse2"), "x86-64 baseline always has sse2");
    }

    /// Deterministic pseudo-random fill, decorrelated by `seed`.
    fn fill(buf: &mut [f32], seed: u32) {
        let mut s = seed.wrapping_mul(2654435761).max(1);
        for v in buf {
            // xorshift32: cheap, deterministic, full-range sign/exponent mix.
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *v = (s as f32 / u32::MAX as f32) * 4.0 - 2.0;
        }
    }

    #[test]
    fn outer_product_row_matches_scalar_bitwise_for_every_tail() {
        let _g = force_guard();
        let _r = RestoreDispatch;
        set_force_scalar(false);
        let native = *kernels();
        let oc = 70usize;
        for icb in [1usize, 3, 8, 17, 32] {
            let mut txs = vec![0.0f32; icb];
            fill(&mut txs, 11 + icb as u32);
            let mut panel = vec![0.0f32; icb * oc];
            fill(&mut panel, 23 + icb as u32);
            // Sweep ocb across every `ocb % LANE` tail plus full 8×LANE blocks.
            for ocb in (1..=2 * LANE).chain([63, 64, oc]) {
                for o0 in [0usize, 3] {
                    if o0 + ocb > oc {
                        continue;
                    }
                    let mut a_scalar = vec![0.0f32; ocb];
                    fill(&mut a_scalar, 37 + ocb as u32);
                    let mut a_native = a_scalar.clone();
                    scalar::outer_product_row(&mut a_scalar, &txs, &panel, oc, o0);
                    (native.outer_product_row)(&mut a_native, &txs, &panel, oc, o0);
                    for (k, (s, n)) in a_scalar.iter().zip(&a_native).enumerate() {
                        assert_eq!(
                            s.to_bits(),
                            n.to_bits(),
                            "icb={icb} ocb={ocb} o0={o0} k={k}: scalar {s} vs {} {n}",
                            native.isa.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn outer_product_row2_matches_single_rows_bitwise() {
        let _g = force_guard();
        let _r = RestoreDispatch;
        set_force_scalar(false);
        let native = *kernels();
        let oc = 70usize;
        for icb in [1usize, 7, 32] {
            let mut txs0 = vec![0.0f32; icb];
            let mut txs1 = vec![0.0f32; icb];
            fill(&mut txs0, 41 + icb as u32);
            fill(&mut txs1, 43 + icb as u32);
            let mut panel = vec![0.0f32; icb * oc];
            fill(&mut panel, 47 + icb as u32);
            // Sweep every tail width plus multi-block and offset cases.
            for ocb in (1..=2 * LANE).chain([33, 63, 64]) {
                for o0 in [0usize, 5] {
                    if o0 + ocb > oc {
                        continue;
                    }
                    let mut want0 = vec![0.0f32; ocb];
                    let mut want1 = vec![0.0f32; ocb];
                    fill(&mut want0, 53 + ocb as u32);
                    fill(&mut want1, 59 + ocb as u32);
                    let mut got0 = want0.clone();
                    let mut got1 = want1.clone();
                    scalar::outer_product_row(&mut want0, &txs0, &panel, oc, o0);
                    scalar::outer_product_row(&mut want1, &txs1, &panel, oc, o0);
                    (native.outer_product_row2)(&mut got0, &mut got1, &txs0, &txs1, &panel, oc, o0);
                    for (k, (w, g)) in want0.iter().chain(&want1).zip(got0.iter().chain(&got1)).enumerate() {
                        assert_eq!(
                            w.to_bits(),
                            g.to_bits(),
                            "icb={icb} ocb={ocb} o0={o0} k={k}: single-row scalar {w} vs paired {} {g}",
                            native.isa.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn transform_step_matches_scalar_bitwise_for_every_width() {
        let _g = force_guard();
        let _r = RestoreDispatch;
        set_force_scalar(false);
        let native = *kernels();
        let stride = TRANSFORM_CHUNK + 5;
        for cols in [3usize, 8, 16] {
            let mut coeffs = vec![0.0f32; cols];
            fill(&mut coeffs, 5 + cols as u32);
            coeffs[cols / 2] = 0.0; // exercise the zero-skip branch
            let mut x = vec![0.0f32; cols * stride];
            fill(&mut x, 7 + cols as u32);
            for paired in [false, true] {
                for w in 1..=TRANSFORM_CHUNK {
                    for c0 in [0usize, 2] {
                        if c0 + w > stride {
                            continue;
                        }
                        let mut out_s = vec![9.0f32; 4 * stride];
                        let mut out_n = out_s.clone();
                        scalar::transform_step(&coeffs, paired, &x, stride, &mut out_s, stride, 1, c0, w);
                        (native.transform_step)(&coeffs, paired, &x, stride, &mut out_n, stride, 1, c0, w);
                        assert!(
                            out_s.iter().zip(&out_n).all(|(a, b)| a.to_bits() == b.to_bits()),
                            "cols={cols} paired={paired} w={w} c0={c0}: {} differs from scalar \
                             (or wrote outside the block)",
                            native.isa.name()
                        );
                    }
                }
            }
        }
    }
}
