//! The safe-scalar fallback: the exact loops the Γ kernels ran before
//! explicit dispatch existed (moved verbatim from `iwino-core::kernel` and
//! `iwino-transforms::paired`), kept as the universal reference — every
//! SIMD path in this crate must reproduce these functions bit-for-bit.
//!
//! The functions are `#[inline]` so the hot paths can keep calling them
//! *directly* (not through the dispatch table's function pointers) when
//! scalar is the dispatched ISA, preserving the pre-dispatch codegen and
//! its 0%-regression guarantee.

use crate::{LANE, TRANSFORM_CHUNK};

/// One α-state row of the outer product: `arow[k] += Σ_i txs[i] ·
/// panel[i·oc + o0 + k]` for `k < arow.len()` — the element-wise multiply
/// stage of one tile state against the filter's contiguous `IC×OC` panel.
/// Output channels are register-blocked (4·[`LANE`], then [`LANE`], then a
/// masked tail) so each block's accumulators stay in registers across the
/// whole channel lane; per output element the `i`-order summation is
/// identical to a plain nested loop, keeping every path bitwise-comparable.
#[inline]
pub fn outer_product_row(arow: &mut [f32], txs: &[f32], panel: &[f32], oc: usize, o0: usize) {
    let ocb = arow.len();
    let mut o = 0usize;
    while o + 4 * LANE <= ocb {
        fma_block::<{ 4 * LANE }>(&mut arow[o..o + 4 * LANE], txs, panel, oc, o0 + o);
        o += 4 * LANE;
    }
    while o + LANE <= ocb {
        fma_block::<LANE>(&mut arow[o..o + LANE], txs, panel, oc, o0 + o);
        o += LANE;
    }
    if o < ocb {
        fma_tail(&mut arow[o..], txs, panel, oc, o0 + o);
    }
}

/// Paired-tile outer product, scalar reference: two independent
/// [`outer_product_row`] accumulations over the same panel slice. The SIMD
/// implementations fold both tiles into one pass over the panel (each
/// filter row loaded once, used twice); running the rows back-to-back here
/// is the same arithmetic in the same per-element order, so this *is* the
/// bitwise reference for the fused versions.
#[inline]
pub fn outer_product_row2(
    arow0: &mut [f32],
    arow1: &mut [f32],
    txs0: &[f32],
    txs1: &[f32],
    panel: &[f32],
    oc: usize,
    o0: usize,
) {
    outer_product_row(arow0, txs0, panel, oc, o0);
    outer_product_row(arow1, txs1, panel, oc, o0);
}

/// One register block of the outer product: `arow[k] += Σ_i txs[i] ·
/// panel[i·oc + o0 + k]` for `k < W`. The `W` accumulators live in an
/// `[f32; W]` stack array loaded once and stored once, so the filter rows
/// stream through while the partial sums never round-trip to memory.
#[inline]
fn fma_block<const W: usize>(arow: &mut [f32], txs: &[f32], panel: &[f32], oc: usize, o0: usize) {
    let mut accv = [0.0f32; W];
    accv.copy_from_slice(arow);
    for (i, &v) in txs.iter().enumerate() {
        let wrow = &panel[i * oc + o0..i * oc + o0 + W];
        for (a, &w) in accv.iter_mut().zip(wrow) {
            *a += v * w;
        }
    }
    arow.copy_from_slice(&accv);
}

/// Remainder lane: the final `ocb % LANE` output channels, masked to the
/// live prefix of one `[f32; LANE]` accumulator.
fn fma_tail(arow: &mut [f32], txs: &[f32], panel: &[f32], oc: usize, o0: usize) {
    let w = arow.len();
    debug_assert!(w < LANE);
    let mut accv = [0.0f32; LANE];
    accv[..w].copy_from_slice(arow);
    for (i, &v) in txs.iter().enumerate() {
        let wrow = &panel[i * oc + o0..i * oc + o0 + w];
        for (a, &s) in accv.iter_mut().zip(wrow) {
            *a += v * s;
        }
    }
    arow.copy_from_slice(&accv[..w]);
}

/// One channel block of one paired-transform plan step: channels
/// `[c0, c0 + w)`, `w ≤ TRANSFORM_CHUNK`, coefficients `coeffs` of plan row
/// `row` (and `row + 1` when `paired`). The accumulators are
/// `[f32; TRANSFORM_CHUNK]` stack arrays; each non-zero coefficient
/// contributes one `w`-long FMA pass. Per output element the summation
/// order is the plan's column order: even/odd partial sums, then
/// `e + o` / `e − o` — every SIMD implementation must keep exactly this
/// per-element order.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn transform_step(
    coeffs: &[f32],
    paired: bool,
    x: &[f32],
    x_stride: usize,
    out: &mut [f32],
    out_stride: usize,
    row: usize,
    c0: usize,
    w: usize,
) {
    debug_assert!((1..=TRANSFORM_CHUNK).contains(&w));
    let mut even = [0.0f32; TRANSFORM_CHUNK];
    let mut odd = [0.0f32; TRANSFORM_CHUNK];
    for (j, &m) in coeffs.iter().enumerate() {
        if m == 0.0 {
            continue;
        }
        let src = &x[j * x_stride + c0..j * x_stride + c0 + w];
        let dst = if paired && j % 2 != 0 { &mut odd } else { &mut even };
        for (d, &s) in dst[..w].iter_mut().zip(src) {
            *d += m * s;
        }
    }
    let o0 = &mut out[row * out_stride + c0..row * out_stride + c0 + w];
    if !paired {
        o0.copy_from_slice(&even[..w]);
        return;
    }
    for (c, o) in o0.iter_mut().enumerate() {
        *o = even[c] + odd[c];
    }
    let o1 = &mut out[(row + 1) * out_stride + c0..(row + 1) * out_stride + c0 + w];
    for (c, o) in o1.iter_mut().enumerate() {
        *o = even[c] - odd[c];
    }
}
