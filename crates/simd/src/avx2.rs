//! AVX2 microkernels (x86-64, 8-lane `__m256`).
//!
//! Bit-exactness contract: the FMA unit's single-rounded fused
//! multiply-add is deliberately **not** used — `vmulps` + `vaddps` round
//! exactly like the scalar fallback's `a += v * w`, and every kernel keeps
//! the scalar code's per-element accumulation order, so results are
//! bitwise identical to [`crate::scalar`]. The speedup comes from issuing
//! 8 lanes per op with up to 8 live ymm accumulators, not from fusing.
//! (FMA is still *detected* at dispatch: `#[target_feature]` enables it so
//! LLVM may use it for address math, and requiring it keeps the dispatch
//! criterion aligned with hosts where this path is profitable.)
//!
//! Safety structure: the only public items are safe wrappers that assert
//! every bound the raw-pointer kernels rely on; the `unsafe` kernels are
//! private and only reachable through them. The wrappers are installed in
//! the dispatch table strictly after `is_x86_feature_detected!` confirms
//! AVX2+FMA (see `crate::resolve`).

use crate::LANE;
use core::arch::x86_64::*;

/// Safe dispatch-table entry with [`crate::scalar::outer_product_row`]
/// semantics: `arow[k] += Σ_i txs[i] · panel[i·oc + o0 + k]`.
pub(crate) fn outer_product_row(arow: &mut [f32], txs: &[f32], panel: &[f32], oc: usize, o0: usize) {
    let ocb = arow.len();
    let Some(i_last) = txs.len().checked_sub(1) else {
        return; // no channels in this panel: nothing to accumulate
    };
    if ocb == 0 {
        return;
    }
    // The furthest filter element read is panel[i_last·oc + o0 + ocb − 1].
    assert!(
        panel.len() >= i_last * oc + o0 + ocb,
        "transformed-filter panel too short for outer-product row"
    );
    // SAFETY: this entry is dispatched only after runtime detection of
    // avx2+fma (crate::resolve); `arow[..ocb]` is a valid &mut slice, and
    // the assert above bounds every `panel` offset the kernel derives
    // (`i·oc + o0 + k` with `i ≤ i_last`, `k < ocb`).
    unsafe { outer_product_row_impl(arow.as_mut_ptr(), ocb, txs, panel.as_ptr(), oc, o0) }
}

// SAFETY: (caller contract) callers must ensure the CPU supports AVX2+FMA, that
// `arow[..ocb]` is writable, and that `panel[i*oc + o0 + k]` is readable
// for all `i < txs.len()`, `k < ocb` — asserted by the wrapper above.
#[target_feature(enable = "avx2,fma")]
unsafe fn outer_product_row_impl(arow: *mut f32, ocb: usize, txs: &[f32], panel: *const f32, oc: usize, o0: usize) {
    let mut o = 0usize;
    while o + 8 * LANE <= ocb {
        block8(arow.add(o), txs, panel.add(o0 + o), oc);
        o += 8 * LANE;
    }
    while o + 4 * LANE <= ocb {
        block4(arow.add(o), txs, panel.add(o0 + o), oc);
        o += 4 * LANE;
    }
    while o + LANE <= ocb {
        block1(arow.add(o), txs, panel.add(o0 + o), oc);
        o += LANE;
    }
    if o < ocb {
        tail(arow.add(o), ocb - o, txs, panel.add(o0 + o), oc);
    }
}

// SAFETY: (caller contract) AVX2 enabled; `arow[..64]` writable and
// `panel[i*oc ..][..64]` readable for every `i < txs.len()` — guaranteed
// by `outer_product_row_impl`'s blocking bounds.
#[target_feature(enable = "avx2,fma")]
unsafe fn block8(arow: *mut f32, txs: &[f32], panel: *const f32, oc: usize) {
    let mut a0 = _mm256_loadu_ps(arow);
    let mut a1 = _mm256_loadu_ps(arow.add(8));
    let mut a2 = _mm256_loadu_ps(arow.add(16));
    let mut a3 = _mm256_loadu_ps(arow.add(24));
    let mut a4 = _mm256_loadu_ps(arow.add(32));
    let mut a5 = _mm256_loadu_ps(arow.add(40));
    let mut a6 = _mm256_loadu_ps(arow.add(48));
    let mut a7 = _mm256_loadu_ps(arow.add(56));
    for (i, &v) in txs.iter().enumerate() {
        let w = panel.add(i * oc);
        let vv = _mm256_set1_ps(v);
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(vv, _mm256_loadu_ps(w)));
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(8))));
        a2 = _mm256_add_ps(a2, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(16))));
        a3 = _mm256_add_ps(a3, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(24))));
        a4 = _mm256_add_ps(a4, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(32))));
        a5 = _mm256_add_ps(a5, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(40))));
        a6 = _mm256_add_ps(a6, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(48))));
        a7 = _mm256_add_ps(a7, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(56))));
    }
    _mm256_storeu_ps(arow, a0);
    _mm256_storeu_ps(arow.add(8), a1);
    _mm256_storeu_ps(arow.add(16), a2);
    _mm256_storeu_ps(arow.add(24), a3);
    _mm256_storeu_ps(arow.add(32), a4);
    _mm256_storeu_ps(arow.add(40), a5);
    _mm256_storeu_ps(arow.add(48), a6);
    _mm256_storeu_ps(arow.add(56), a7);
}

// SAFETY: (caller contract) AVX2 enabled; `arow[..32]` writable and
// `panel[i*oc ..][..32]` readable for every `i < txs.len()` — guaranteed
// by `outer_product_row_impl`'s blocking bounds.
#[target_feature(enable = "avx2,fma")]
unsafe fn block4(arow: *mut f32, txs: &[f32], panel: *const f32, oc: usize) {
    let mut a0 = _mm256_loadu_ps(arow);
    let mut a1 = _mm256_loadu_ps(arow.add(8));
    let mut a2 = _mm256_loadu_ps(arow.add(16));
    let mut a3 = _mm256_loadu_ps(arow.add(24));
    for (i, &v) in txs.iter().enumerate() {
        let w = panel.add(i * oc);
        let vv = _mm256_set1_ps(v);
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(vv, _mm256_loadu_ps(w)));
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(8))));
        a2 = _mm256_add_ps(a2, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(16))));
        a3 = _mm256_add_ps(a3, _mm256_mul_ps(vv, _mm256_loadu_ps(w.add(24))));
    }
    _mm256_storeu_ps(arow, a0);
    _mm256_storeu_ps(arow.add(8), a1);
    _mm256_storeu_ps(arow.add(16), a2);
    _mm256_storeu_ps(arow.add(24), a3);
}

// SAFETY: (caller contract) AVX2 enabled; `arow[..8]` writable and
// `panel[i*oc ..][..8]` readable for every `i < txs.len()` — guaranteed
// by `outer_product_row_impl`'s blocking bounds.
#[target_feature(enable = "avx2,fma")]
unsafe fn block1(arow: *mut f32, txs: &[f32], panel: *const f32, oc: usize) {
    let mut a0 = _mm256_loadu_ps(arow);
    for (i, &v) in txs.iter().enumerate() {
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(v), _mm256_loadu_ps(panel.add(i * oc))));
    }
    _mm256_storeu_ps(arow, a0);
}

// SAFETY: (caller contract) AVX2 enabled; `arow[..w]` writable and
// `panel[i*oc ..][..w]` readable for every `i < txs.len()`, with
// `0 < w < LANE` — the masked loads/stores below touch exactly the first
// `w` lanes, so nothing past the live prefix is read or written.
#[target_feature(enable = "avx2,fma")]
unsafe fn tail(arow: *mut f32, w: usize, txs: &[f32], panel: *const f32, oc: usize) {
    debug_assert!(0 < w && w < LANE);
    // Lane k is live iff k < w; masked-out lanes load as 0.0, accumulate
    // 0.0 · v, and are never stored — matching scalar fma_tail's masking.
    let live = _mm256_cmpgt_epi32(_mm256_set1_epi32(w as i32), _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
    let mut a0 = _mm256_maskload_ps(arow, live);
    for (i, &v) in txs.iter().enumerate() {
        let wrow = _mm256_maskload_ps(panel.add(i * oc), live);
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(v), wrow));
    }
    _mm256_maskstore_ps(arow, live, a0);
}

/// Safe dispatch-table entry with [`crate::scalar::outer_product_row2`]
/// semantics: two tiles accumulated in one pass over the shared filter
/// panel. Each panel row is loaded once and multiplied into both tiles'
/// accumulators — the single-row kernel at `ocb = 64` needs 32 B/cycle of
/// panel traffic to stay fed (right at sustained L2 bandwidth); pairing
/// halves that per FLOP, which is where the speedup over one-row calls
/// comes from.
pub(crate) fn outer_product_row2(
    arow0: &mut [f32],
    arow1: &mut [f32],
    txs0: &[f32],
    txs1: &[f32],
    panel: &[f32],
    oc: usize,
    o0: usize,
) {
    let ocb = arow0.len();
    assert_eq!(ocb, arow1.len(), "paired outer-product rows must have equal widths");
    assert_eq!(
        txs0.len(),
        txs1.len(),
        "paired outer-product tiles must share a channel count"
    );
    let Some(i_last) = txs0.len().checked_sub(1) else {
        return; // no channels in this panel: nothing to accumulate
    };
    if ocb == 0 {
        return;
    }
    // The furthest filter element read is panel[i_last·oc + o0 + ocb − 1].
    assert!(
        panel.len() >= i_last * oc + o0 + ocb,
        "transformed-filter panel too short for outer-product row pair"
    );
    // SAFETY: this entry is dispatched only after runtime detection of
    // avx2+fma (crate::resolve); `arow0`/`arow1` are distinct valid &mut
    // slices of equal length `ocb`, `txs1.len() == txs0.len()`, and the
    // assert above bounds every `panel` offset the kernel derives
    // (`i·oc + o0 + k` with `i ≤ i_last`, `k < ocb`).
    unsafe {
        outer_product_row2_impl(
            arow0.as_mut_ptr(),
            arow1.as_mut_ptr(),
            ocb,
            txs0,
            txs1,
            panel.as_ptr(),
            oc,
            o0,
        )
    }
}

// SAFETY: (caller contract) callers must ensure the CPU supports AVX2+FMA, that
// `arow0[..ocb]` and `arow1[..ocb]` are writable and disjoint, that
// `txs1.len() == txs0.len()`, and that `panel[i*oc + o0 + k]` is readable
// for all `i < txs0.len()`, `k < ocb` — asserted by the wrapper above.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
unsafe fn outer_product_row2_impl(
    a0: *mut f32,
    a1: *mut f32,
    ocb: usize,
    txs0: &[f32],
    txs1: &[f32],
    panel: *const f32,
    oc: usize,
    o0: usize,
) {
    let mut o = 0usize;
    while o + 4 * LANE <= ocb {
        block4x2(a0.add(o), a1.add(o), txs0, txs1, panel.add(o0 + o), oc);
        o += 4 * LANE;
    }
    while o + LANE <= ocb {
        block1x2(a0.add(o), a1.add(o), txs0, txs1, panel.add(o0 + o), oc);
        o += LANE;
    }
    if o < ocb {
        tail2(a0.add(o), a1.add(o), ocb - o, txs0, txs1, panel.add(o0 + o), oc);
    }
}

// SAFETY: (caller contract) AVX2 enabled; `a0[..32]` and `a1[..32]` writable and
// `panel[i*oc ..][..32]` readable for every `i < txs0.len()` — guaranteed
// by `outer_product_row2_impl`'s blocking bounds. 8 accumulators (4 per
// tile) + 2 broadcasts + 4 panel loads stay within the 16 ymm registers.
#[target_feature(enable = "avx2,fma")]
unsafe fn block4x2(a0p: *mut f32, a1p: *mut f32, txs0: &[f32], txs1: &[f32], panel: *const f32, oc: usize) {
    let mut x0 = _mm256_loadu_ps(a0p);
    let mut x1 = _mm256_loadu_ps(a0p.add(8));
    let mut x2 = _mm256_loadu_ps(a0p.add(16));
    let mut x3 = _mm256_loadu_ps(a0p.add(24));
    let mut y0 = _mm256_loadu_ps(a1p);
    let mut y1 = _mm256_loadu_ps(a1p.add(8));
    let mut y2 = _mm256_loadu_ps(a1p.add(16));
    let mut y3 = _mm256_loadu_ps(a1p.add(24));
    for (i, (&v0, &v1)) in txs0.iter().zip(txs1).enumerate() {
        let w = panel.add(i * oc);
        let vv0 = _mm256_set1_ps(v0);
        let vv1 = _mm256_set1_ps(v1);
        let l0 = _mm256_loadu_ps(w);
        let l1 = _mm256_loadu_ps(w.add(8));
        let l2 = _mm256_loadu_ps(w.add(16));
        let l3 = _mm256_loadu_ps(w.add(24));
        x0 = _mm256_add_ps(x0, _mm256_mul_ps(vv0, l0));
        x1 = _mm256_add_ps(x1, _mm256_mul_ps(vv0, l1));
        x2 = _mm256_add_ps(x2, _mm256_mul_ps(vv0, l2));
        x3 = _mm256_add_ps(x3, _mm256_mul_ps(vv0, l3));
        y0 = _mm256_add_ps(y0, _mm256_mul_ps(vv1, l0));
        y1 = _mm256_add_ps(y1, _mm256_mul_ps(vv1, l1));
        y2 = _mm256_add_ps(y2, _mm256_mul_ps(vv1, l2));
        y3 = _mm256_add_ps(y3, _mm256_mul_ps(vv1, l3));
    }
    _mm256_storeu_ps(a0p, x0);
    _mm256_storeu_ps(a0p.add(8), x1);
    _mm256_storeu_ps(a0p.add(16), x2);
    _mm256_storeu_ps(a0p.add(24), x3);
    _mm256_storeu_ps(a1p, y0);
    _mm256_storeu_ps(a1p.add(8), y1);
    _mm256_storeu_ps(a1p.add(16), y2);
    _mm256_storeu_ps(a1p.add(24), y3);
}

// SAFETY: (caller contract) AVX2 enabled; `a0[..8]` and `a1[..8]` writable and
// `panel[i*oc ..][..8]` readable for every `i < txs0.len()` — guaranteed
// by `outer_product_row2_impl`'s blocking bounds.
#[target_feature(enable = "avx2,fma")]
unsafe fn block1x2(a0p: *mut f32, a1p: *mut f32, txs0: &[f32], txs1: &[f32], panel: *const f32, oc: usize) {
    let mut x0 = _mm256_loadu_ps(a0p);
    let mut y0 = _mm256_loadu_ps(a1p);
    for (i, (&v0, &v1)) in txs0.iter().zip(txs1).enumerate() {
        let l0 = _mm256_loadu_ps(panel.add(i * oc));
        x0 = _mm256_add_ps(x0, _mm256_mul_ps(_mm256_set1_ps(v0), l0));
        y0 = _mm256_add_ps(y0, _mm256_mul_ps(_mm256_set1_ps(v1), l0));
    }
    _mm256_storeu_ps(a0p, x0);
    _mm256_storeu_ps(a1p, y0);
}

// SAFETY: (caller contract) AVX2 enabled; `a0[..w]` and `a1[..w]` writable and
// `panel[i*oc ..][..w]` readable for every `i < txs0.len()`, with
// `0 < w < LANE` — the masked loads/stores below touch exactly the first
// `w` lanes, so nothing past the live prefix is read or written.
#[target_feature(enable = "avx2,fma")]
unsafe fn tail2(a0p: *mut f32, a1p: *mut f32, w: usize, txs0: &[f32], txs1: &[f32], panel: *const f32, oc: usize) {
    debug_assert!(0 < w && w < LANE);
    let live = _mm256_cmpgt_epi32(_mm256_set1_epi32(w as i32), _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
    let mut x0 = _mm256_maskload_ps(a0p, live);
    let mut y0 = _mm256_maskload_ps(a1p, live);
    for (i, (&v0, &v1)) in txs0.iter().zip(txs1).enumerate() {
        let wrow = _mm256_maskload_ps(panel.add(i * oc), live);
        x0 = _mm256_add_ps(x0, _mm256_mul_ps(_mm256_set1_ps(v0), wrow));
        y0 = _mm256_add_ps(y0, _mm256_mul_ps(_mm256_set1_ps(v1), wrow));
    }
    _mm256_maskstore_ps(a0p, live, x0);
    _mm256_maskstore_ps(a1p, live, y0);
}

/// Safe dispatch-table entry with [`crate::scalar::transform_step`]
/// semantics: one channel block (`w ≤ TRANSFORM_CHUNK`) of one paired
/// plan step.
#[allow(clippy::too_many_arguments)]
pub(crate) fn transform_step(
    coeffs: &[f32],
    paired: bool,
    x: &[f32],
    x_stride: usize,
    out: &mut [f32],
    out_stride: usize,
    row: usize,
    c0: usize,
    w: usize,
) {
    assert!((1..=crate::TRANSFORM_CHUNK).contains(&w));
    let Some(j_last) = coeffs.len().checked_sub(1) else {
        // No columns: both output rows are all-zero partial sums.
        out[row * out_stride + c0..row * out_stride + c0 + w].fill(0.0);
        if paired {
            out[(row + 1) * out_stride + c0..(row + 1) * out_stride + c0 + w].fill(0.0);
        }
        return;
    };
    assert!(x.len() >= j_last * x_stride + c0 + w, "transform input too short");
    let rows_written = row + usize::from(paired);
    assert!(
        out.len() >= rows_written * out_stride + c0 + w,
        "transform output too short"
    );
    // SAFETY: dispatched only after avx2+fma runtime detection
    // (crate::resolve); the asserts above cover every offset read
    // (`j·x_stride + c0 + k`, `j ≤ j_last`, `k < w`) and written
    // (rows `row`/`row + 1`, columns `[c0, c0 + w)`).
    unsafe {
        transform_step_impl(
            coeffs,
            paired,
            x.as_ptr(),
            x_stride,
            out.as_mut_ptr(),
            out_stride,
            row,
            c0,
            w,
        )
    }
}

// SAFETY: (caller contract) callers must ensure AVX2+FMA support, readability of
// `x[j*x_stride + c0 ..][..w]` for every `j < coeffs.len()`, and
// writability of output rows `row` (and `row + 1` when `paired`) at
// columns `[c0, c0 + w)` — asserted by the wrapper above.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
unsafe fn transform_step_impl(
    coeffs: &[f32],
    paired: bool,
    x: *const f32,
    x_stride: usize,
    out: *mut f32,
    out_stride: usize,
    row: usize,
    c0: usize,
    w: usize,
) {
    const NB: usize = crate::TRANSFORM_CHUNK / LANE;
    let nb = w / LANE;
    let rem = w % LANE;
    // Even/odd partial sums: up to 8 ymm blocks plus one scalar remainder
    // block, all on the stack. The coefficient loop stays outermost (its
    // zero-skip branch amortises over the whole block) and each element's
    // column-order accumulation matches scalar::transform_step exactly.
    let mut even = [_mm256_setzero_ps(); NB];
    let mut odd = [_mm256_setzero_ps(); NB];
    let mut even_r = [0.0f32; LANE];
    let mut odd_r = [0.0f32; LANE];
    for (j, &m) in coeffs.iter().enumerate() {
        if m == 0.0 {
            continue;
        }
        let src = x.add(j * x_stride + c0);
        let mv = _mm256_set1_ps(m);
        let is_odd = paired && j % 2 != 0;
        let acc = if is_odd { &mut odd } else { &mut even };
        for (b, a) in acc[..nb].iter_mut().enumerate() {
            *a = _mm256_add_ps(*a, _mm256_mul_ps(mv, _mm256_loadu_ps(src.add(b * LANE))));
        }
        if rem > 0 {
            let accr = if is_odd { &mut odd_r } else { &mut even_r };
            for (k, a) in accr[..rem].iter_mut().enumerate() {
                *a += m * *src.add(nb * LANE + k);
            }
        }
    }
    let dst0 = out.add(row * out_stride + c0);
    if !paired {
        for (b, a) in even[..nb].iter().enumerate() {
            _mm256_storeu_ps(dst0.add(b * LANE), *a);
        }
        for (k, a) in even_r[..rem].iter().enumerate() {
            *dst0.add(nb * LANE + k) = *a;
        }
        return;
    }
    let dst1 = out.add((row + 1) * out_stride + c0);
    for b in 0..nb {
        _mm256_storeu_ps(dst0.add(b * LANE), _mm256_add_ps(even[b], odd[b]));
        _mm256_storeu_ps(dst1.add(b * LANE), _mm256_sub_ps(even[b], odd[b]));
    }
    for k in 0..rem {
        *dst0.add(nb * LANE + k) = even_r[k] + odd_r[k];
        *dst1.add(nb * LANE + k) = even_r[k] - odd_r[k];
    }
}
