//! Property net for the batch server: under random interleavings, shapes,
//! batch bounds, and worker counts, every admitted request is served
//! exactly once, the served output is **bitwise identical** to a serial
//! [`PreparedConv`] execution of the same `(x, w, shape)`, and no
//! coalesced batch ever mixes shape buckets.
//!
//! The no-mixing property is checked through the bitwise equality itself:
//! the buckets deliberately share one `ConvShape` but carry *different*
//! filter banks, so a request routed through the wrong bucket's resident
//! plan would produce a different (valid-looking) tensor and fail the
//! byte comparison.
//!
//! Runs on the native dispatch lane and (via `scripts/check.sh`) again
//! under `IWINO_FORCE_SCALAR=1`; both lanes must serve bitwise-serial
//! outputs. The case budget honours `PROPTEST_CASES`.

use iwino_core::{auto_options, Epilogue, PreparedConv};
use iwino_serve::{ServeConfig, ServerBuilder};
use iwino_tensor::{ConvShape, Tensor4};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serialize server-spawning tests within this binary.
///
/// CONVENTION (shared with `tests/stress.rs`, `crates/obs` trace tests and
/// `crates/parallel/tests/stress.rs`): tests that spawn servers or toggle
/// `iwino_obs` state take a process-wide guard, because the obs counters,
/// histogram sites, and report slots are process-global. Cargo runs test
/// *binaries* sequentially, so a per-binary guard is enough; within a
/// binary the default parallel test threads would otherwise interleave.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The serial reference the server must match bitwise.
fn serial_outputs(w: &Tensor4<f32>, s: &ConvShape, xs: &[Tensor4<f32>]) -> Vec<Tensor4<f32>> {
    let prepared = PreparedConv::forward(w, s, &auto_options(s)).unwrap();
    xs.iter()
        .map(|x| prepared.execute(x, &Epilogue::None).unwrap())
        .collect()
}

proptest! {
    /// Random request interleaving over two same-shape buckets with
    /// different weights plus one odd-shape bucket: everything admitted is
    /// answered exactly once with the bitwise-serial tensor.
    #[test]
    fn admitted_requests_are_served_exactly_once_and_bitwise_serial(
        hw in 4usize..9,
        ic in 1usize..5,
        oc in 1usize..5,
        max_batch in 1usize..6,
        workers in 1usize..5,
        routing in proptest::collection::vec(0usize..3, 1..18),
    ) {
        let _g = guard();
        let s = ConvShape::square(1, hw, ic, oc, 3);
        let s_odd = ConvShape::square(1, hw + 1, ic, oc, 5);
        let w_a = Tensor4::<f32>::random(s.w_dims(), 11, -1.0, 1.0);
        let w_b = Tensor4::<f32>::random(s.w_dims(), 22, -1.0, 1.0);
        let w_c = Tensor4::<f32>::random(s_odd.w_dims(), 33, -1.0, 1.0);
        let mut srv = ServerBuilder::new(ServeConfig {
            queue_capacity: routing.len(),
            max_batch,
            workers,
            start_paused: false,
        })
        .bucket("a", s, w_a.clone())
        .bucket("b", s, w_b.clone())
        .bucket("c", s_odd, w_c.clone())
        .build()
        .unwrap();

        let labels = ["a", "b", "c"];
        let shapes = [s, s, s_odd];
        let weights = [&w_a, &w_b, &w_c];
        let mut tickets = Vec::with_capacity(routing.len());
        let mut want = Vec::with_capacity(routing.len());
        for (k, &b) in routing.iter().enumerate() {
            let x = Tensor4::<f32>::random(shapes[b].x_dims(), 1000 + k as u64, -1.0, 1.0);
            want.push(serial_outputs(weights[b], &shapes[b], std::slice::from_ref(&x)).remove(0));
            tickets.push(srv.submit(labels[b], x, None).unwrap());
        }
        for (t, want) in tickets.into_iter().zip(&want) {
            let got = t.wait().unwrap();
            prop_assert_eq!(
                got.as_slice(), want.as_slice(),
                "served tensor must be bitwise identical to the serial reference \
                 (a mismatch here also means a batch mixed shape buckets)"
            );
        }
        let stats = srv.shutdown();
        prop_assert_eq!(stats.admitted(), routing.len() as u64);
        prop_assert_eq!(stats.served(), stats.admitted(), "exactly-once: every admitted request served");
        prop_assert_eq!(stats.rejected(), 0);
        prop_assert_eq!(stats.expired(), 0);
        for b in &stats.buckets {
            prop_assert!(
                b.max_batch <= max_batch as u64,
                "bucket {} coalesced {} > max_batch {}", &b.label, b.max_batch, max_batch
            );
        }
        // Plan amortization: one transformed-filter-bank build per bucket
        // that saw traffic, every further batch a cache hit.
        let es = srv.engine_stats();
        let used = stats.buckets.iter().filter(|b| b.batches > 0).count() as u64;
        prop_assert_eq!(es.plan_misses, used);
        prop_assert_eq!(es.plan_hits, stats.batches() - used);
    }

    /// A paused server accumulates a backlog; resume drains each bucket in
    /// exactly `ceil(queued / max_batch)` coalesced batches — the
    /// coalescer really does coalesce, and never across buckets.
    #[test]
    fn paused_backlog_drains_in_maximal_batches(
        n_a in 1usize..12,
        n_b in 0usize..12,
        max_batch in 1usize..6,
    ) {
        let _g = guard();
        let s = ConvShape::square(1, 5, 2, 3, 3);
        let w_a = Tensor4::<f32>::random(s.w_dims(), 5, -1.0, 1.0);
        let w_b = Tensor4::<f32>::random(s.w_dims(), 6, -1.0, 1.0);
        let mut srv = ServerBuilder::new(ServeConfig {
            queue_capacity: n_a + n_b + 1,
            max_batch,
            workers: 2,
            start_paused: true,
        })
        .bucket("a", s, w_a)
        .bucket("b", s, w_b)
        .build()
        .unwrap();
        let mut tickets = Vec::new();
        for k in 0..(n_a + n_b) {
            let label = if k < n_a { "a" } else { "b" };
            let x = Tensor4::<f32>::random(s.x_dims(), 2000 + k as u64, -1.0, 1.0);
            tickets.push(srv.submit(label, x, None).unwrap());
        }
        prop_assert_eq!(srv.pending(), n_a + n_b, "paused server must hold the backlog");
        srv.resume();
        for t in tickets {
            prop_assert!(t.wait().is_ok());
        }
        let stats = srv.shutdown();
        prop_assert_eq!(stats.served(), (n_a + n_b) as u64);
        for (snap, queued) in stats.buckets.iter().zip([n_a, n_b]) {
            prop_assert_eq!(
                snap.batches, queued.div_ceil(max_batch) as u64,
                "bucket {} must drain its {} queued requests in maximal batches of {}",
                &snap.label, queued, max_batch
            );
            if queued > 0 {
                prop_assert_eq!(snap.max_batch, queued.min(max_batch) as u64);
            }
        }
    }
}
