//! Stress net for the batch server, in the style of
//! `crates/parallel/tests/stress.rs`: skewed bursts from many submitter
//! threads, a 1-thread batch pool, heavy lane oversubscription, tiny
//! queues that force rejection, and deadlines that force expiry. Every
//! test closes on the accounting identity
//! `admitted == served + rejected + expired`, checked on the server's own
//! stats AND on the process-global `iwino_obs` counters.

use iwino_obs::{self as obs, Counter, HistSite};
use iwino_serve::{ServeConfig, ServeError, ServerBuilder};
use iwino_tensor::{ConvShape, Tensor4};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serialize the tests in this binary.
///
/// CONVENTION (shared with `tests/property.rs`, the obs trace tests and
/// `crates/parallel/tests/stress.rs`): the obs counters, histogram sites,
/// and report slots these tests assert on are process-global, and so is
/// the `set_enabled` flag. Any test that calls `obs::set_enabled` /
/// `obs::reset` / `obs::snapshot` must hold this guard for its whole body.
/// Cargo runs test *binaries* one at a time, so a per-binary static is
/// enough to serialize against the sibling test files too.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn obs_identity(snap: &obs::Snapshot) -> (u64, u64) {
    let admitted = snap.counter(Counter::ServeAdmitted);
    let answered =
        snap.counter(Counter::ServeServed) + snap.counter(Counter::ServeRejected) + snap.counter(Counter::ServeExpired);
    (admitted, answered)
}

/// Skewed bursts across three buckets (the hot bucket takes ~70% of the
/// traffic) from four submitter threads, against a deliberately starved
/// server: one pool lane, max_batch 4, queue capacity 3. Some submits are
/// rejected at admission — that is the point — and the ledger must still
/// balance on both accounting planes.
#[test]
fn skewed_bursts_balance_the_ledger_on_stats_and_obs() {
    let _g = guard();
    obs::set_enabled(true);
    obs::reset();

    let s_hot = ConvShape::square(1, 6, 3, 4, 3);
    let s_warm = ConvShape::square(1, 5, 2, 2, 3);
    let s_cold = ConvShape::square(1, 7, 2, 3, 5);
    let srv = Arc::new(
        ServerBuilder::new(ServeConfig {
            queue_capacity: 3,
            max_batch: 4,
            workers: 1,
            start_paused: false,
        })
        .bucket("hot", s_hot, Tensor4::<f32>::random(s_hot.w_dims(), 1, -1.0, 1.0))
        .bucket("warm", s_warm, Tensor4::<f32>::random(s_warm.w_dims(), 2, -1.0, 1.0))
        .bucket("cold", s_cold, Tensor4::<f32>::random(s_cold.w_dims(), 3, -1.0, 1.0))
        .build()
        .unwrap(),
    );

    const PER_THREAD: usize = 40;
    let shapes = [("hot", s_hot), ("warm", s_warm), ("cold", s_cold)];
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let srv = Arc::clone(&srv);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut rejected = 0u64;
                let mut tickets = Vec::new();
                for k in 0..PER_THREAD {
                    // Skew: 7 of every 10 requests hit the hot bucket.
                    let b = match k % 10 {
                        0..=6 => 0,
                        7 | 8 => 1,
                        _ => 2,
                    };
                    let (label, shape) = shapes[b];
                    let x = Tensor4::<f32>::random(shape.x_dims(), t * 1000 + k as u64, -1.0, 1.0);
                    match srv.submit(label, x, None) {
                        Ok(ticket) => {
                            ok += 1;
                            tickets.push(ticket);
                        }
                        Err(ServeError::QueueFull { .. }) => rejected += 1,
                        Err(e) => panic!("unexpected admission error: {e}"),
                    }
                }
                for t in tickets {
                    t.wait().unwrap();
                }
                (ok, rejected)
            })
        })
        .collect();
    let (mut ok, mut rejected) = (0u64, 0u64);
    for h in handles {
        let (o, r) = h.join().unwrap();
        ok += o;
        rejected += r;
    }
    assert_eq!(ok + rejected, 4 * PER_THREAD as u64);
    assert!(ok > 0, "some requests must get through");

    let mut server = Arc::try_unwrap(srv).ok().expect("submitters joined; sole owner");
    let stats = server.shutdown();
    // Server-side ledger.
    assert_eq!(stats.admitted(), stats.served() + stats.rejected() + stats.expired());
    assert_eq!(stats.served(), ok, "every ticket the callers hold resolved Ok");
    assert_eq!(stats.rejected(), rejected, "every QueueFull was counted");
    assert_eq!(stats.expired(), 0);
    // Obs-side ledger agrees exactly.
    let snap = obs::snapshot();
    let (admitted, answered) = obs_identity(&snap);
    assert_eq!(admitted, stats.admitted());
    assert_eq!(answered, admitted);
    assert_eq!(snap.counter(Counter::ServeServed), stats.served());
    assert_eq!(snap.counter(Counter::ServeBatches), stats.batches());
    assert!(
        snap.counter(Counter::ServeQueueDepthHighWater) <= 3,
        "bounded queue bounds the high-water"
    );
    assert_eq!(snap.histogram(HistSite::ServeE2e).count, stats.served());
    // Amortization under stress: after warmup the plan cache absorbs every
    // batch — hits ≥ batches − buckets, misses = buckets that saw traffic.
    let es = server.engine_stats();
    assert!(
        es.plan_hits >= stats.batches().saturating_sub(3),
        "plan hits {} < batches {} - buckets 3",
        es.plan_hits,
        stats.batches()
    );
    assert_eq!(es.plan_misses, 3);
    // The exported serve section (published by shutdown) matches too.
    let serve = snap.serve.expect("shutdown publishes the serve report");
    assert_eq!(serve.buckets.iter().map(|b| b.admitted).sum::<u64>(), stats.admitted());
    obs::set_enabled(false);
    obs::reset();
}

/// A 32-lane pool on whatever cores the host has (massive oversubscription
/// on CI) with a paused fill-then-drain cycle and short deadlines: a slice
/// of the backlog expires in-queue, the rest is served, and nothing is
/// double-counted.
#[test]
fn oversubscribed_pool_with_deadline_expiry_stays_consistent() {
    let _g = guard();
    obs::set_enabled(true);
    obs::reset();

    let s = ConvShape::square(1, 6, 2, 3, 3);
    let mut srv = ServerBuilder::new(ServeConfig {
        queue_capacity: 64,
        max_batch: 8,
        workers: 32,
        start_paused: true,
    })
    .bucket("b", s, Tensor4::<f32>::random(s.w_dims(), 9, -1.0, 1.0))
    .build()
    .unwrap();

    // 12 requests with a deadline that will be long past once the server
    // resumes, 20 with none.
    let soon = Instant::now() + Duration::from_millis(5);
    let mut doomed = Vec::new();
    let mut healthy = Vec::new();
    for k in 0..32u64 {
        let x = Tensor4::<f32>::random(s.x_dims(), 100 + k, -1.0, 1.0);
        if k % 8 < 3 {
            doomed.push(srv.submit("b", x, Some(soon)).unwrap());
        } else {
            healthy.push(srv.submit("b", x, None).unwrap());
        }
    }
    assert_eq!(srv.pending(), 32);
    std::thread::sleep(Duration::from_millis(60)); // let every deadline lapse
    srv.resume();
    for t in doomed {
        assert_eq!(t.wait(), Err(ServeError::DeadlineExpired { bucket: "b".into() }));
    }
    for t in healthy {
        t.wait().unwrap();
    }
    let stats = srv.shutdown();
    assert_eq!(stats.admitted(), 32);
    assert_eq!(stats.expired(), 12);
    assert_eq!(stats.served(), 20);
    assert_eq!(stats.rejected(), 0);
    assert_eq!(stats.admitted(), stats.served() + stats.rejected() + stats.expired());
    let snap = obs::snapshot();
    let (admitted, answered) = obs_identity(&snap);
    assert_eq!((admitted, answered), (32, 32));
    assert_eq!(snap.counter(Counter::ServeExpired), 12);
    // Every drained request — served or expired — left a queue-wait sample.
    assert_eq!(snap.histogram(HistSite::ServeQueueWait).count, 32);
    assert_eq!(snap.counter(Counter::ServeQueueDepthHighWater), 32);
    let es = srv.engine_stats();
    assert!(es.plan_hits >= stats.batches().saturating_sub(1));
    obs::set_enabled(false);
    obs::reset();
}
