//! Deadline / admission edge cases: expired-at-enqueue, queue-full typed
//! rejection, drain-on-shutdown, and post-shutdown admission. These pin
//! the exact typed errors (`ServeError` is `PartialEq`) and the promise
//! that no admitted request is ever left unanswered.

use iwino_serve::{ServeConfig, ServeError, Server, ServerBuilder};
use iwino_tensor::{ConvShape, Tensor4};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serialize the tests in this binary.
///
/// CONVENTION (see `tests/stress.rs` for the full statement): tests that
/// spawn servers share the process-global obs slots, so each test binary
/// in the serve net serializes its own tests behind one static guard;
/// cargo already runs the binaries themselves sequentially.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn shape() -> ConvShape {
    ConvShape::square(1, 6, 2, 3, 3)
}

fn server(config: ServeConfig) -> Server {
    let s = shape();
    ServerBuilder::new(config)
        .bucket("b", s, Tensor4::<f32>::random(s.w_dims(), 1, -1.0, 1.0))
        .build()
        .unwrap()
}

fn input(seed: u64) -> Tensor4<f32> {
    Tensor4::<f32>::random(shape().x_dims(), seed, -1.0, 1.0)
}

/// A deadline already in the past fails synchronously at submit — no
/// ticket, no queue slot — and is counted admitted + expired.
#[test]
fn expired_at_enqueue_fails_synchronously_and_is_counted() {
    let _g = guard();
    let mut srv = server(ServeConfig::default());
    let past = Instant::now() - Duration::from_millis(1);
    let err = srv.submit("b", input(2), Some(past)).unwrap_err();
    assert_eq!(err, ServeError::DeadlineExpired { bucket: "b".into() });
    assert_eq!(srv.pending(), 0, "an expired submit must not occupy a queue slot");
    let stats = srv.shutdown();
    assert_eq!(stats.admitted(), 1);
    assert_eq!(stats.expired(), 1);
    assert_eq!(stats.served() + stats.rejected(), 0);
}

/// With the coalescer paused, the bounded queue fills deterministically:
/// exactly `queue_capacity` submits succeed, the next is rejected with the
/// typed `QueueFull` carrying the capacity, and the backlog still drains.
#[test]
fn queue_full_is_a_typed_rejection() {
    let _g = guard();
    let mut srv = server(ServeConfig {
        queue_capacity: 3,
        start_paused: true,
        ..ServeConfig::default()
    });
    let tickets: Vec<_> = (0..3).map(|k| srv.submit("b", input(10 + k), None).unwrap()).collect();
    let err = srv.submit("b", input(99), None).unwrap_err();
    assert_eq!(
        err,
        ServeError::QueueFull {
            bucket: "b".into(),
            capacity: 3
        }
    );
    assert_eq!(srv.pending(), 3, "the rejected request must not displace the backlog");
    srv.resume();
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    let stats = srv.shutdown();
    assert_eq!(stats.admitted(), 4);
    assert_eq!(stats.served(), 3);
    assert_eq!(stats.rejected(), 1);
    assert_eq!(stats.admitted(), stats.served() + stats.rejected() + stats.expired());
}

/// Shutdown on a still-paused server drains the whole backlog: every
/// ticket resolves (served, or expired if its deadline lapsed while
/// queued) — no request is left unanswered.
#[test]
fn shutdown_drains_a_paused_backlog_leaving_nothing_unanswered() {
    let _g = guard();
    let mut srv = server(ServeConfig {
        queue_capacity: 16,
        max_batch: 4,
        start_paused: true,
        ..ServeConfig::default()
    });
    let soon = Instant::now() + Duration::from_millis(5);
    let healthy: Vec<_> = (0..6).map(|k| srv.submit("b", input(20 + k), None).unwrap()).collect();
    let doomed: Vec<_> = (0..2)
        .map(|k| srv.submit("b", input(40 + k), Some(soon)).unwrap())
        .collect();
    assert_eq!(srv.pending(), 8);
    std::thread::sleep(Duration::from_millis(40)); // the doomed deadlines lapse in-queue
                                                   // Never resumed: shutdown itself must drain.
    let stats = srv.shutdown();
    assert_eq!(srv.pending(), 0, "shutdown leaves no queued request behind");
    for t in healthy {
        assert!(t.try_take().expect("answered at shutdown").is_ok());
    }
    for t in doomed {
        assert_eq!(
            t.try_take().expect("answered at shutdown"),
            Err(ServeError::DeadlineExpired { bucket: "b".into() })
        );
    }
    assert_eq!(stats.admitted(), 8);
    assert_eq!(stats.served(), 6);
    assert_eq!(stats.expired(), 2);
    assert_eq!(stats.admitted(), stats.served() + stats.rejected() + stats.expired());
}

/// After shutdown the server admits nothing: `ShuttingDown`, and the
/// admission counters do not move.
#[test]
fn post_shutdown_submit_is_refused_without_being_counted() {
    let _g = guard();
    let mut srv = server(ServeConfig::default());
    srv.submit("b", input(50), None).unwrap().wait().unwrap();
    let before = srv.shutdown();
    assert_eq!(before.admitted(), 1);
    let err = srv.submit("b", input(51), None).unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
    let after = srv.stats();
    assert_eq!(
        after.admitted(),
        1,
        "a refused submit never enters the admission pipeline"
    );
    assert_eq!(after.served(), 1);
}
