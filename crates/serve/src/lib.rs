//! Shape-bucketed batch serving on top of `iwino-engine`.
//!
//! The paper's fused im2col-Winograd kernel amortizes transform cost
//! *within* one convolution call; this crate amortizes dispatch cost
//! *across* calls. Concurrent small-batch requests of recurring shapes
//! enter per-shape bounded queues; a coalescer drains each bucket into
//! batched forwards that share a single plan lookup (and thus the resident
//! transformed-filter bank) and fan whole images out one per pool lane —
//! plan lookup and arena checkout cost per *batch*, not per call, with
//! zero cross-image synchronization.
//!
//! Behaviour is fully observable: per-bucket counters obeying
//! `admitted = served + rejected + expired`, coalesce factor, queue-depth
//! high-water, and per-bucket end-to-end p50/p99 — exported as the
//! metrics-schema-v5 `serve` section ([`iwino_obs::ServeReport`]) and
//! mirrored into the global `serve_*` counters and histogram sites.
//! `repro serve-bench` drives this crate with an open-loop load generator.

#![forbid(unsafe_code)]

mod error;
mod server;
mod stats;

pub use error::ServeError;
pub use server::{ServeConfig, Server, ServerBuilder, Ticket};
pub use stats::{BucketSnapshot, ServerStats};
