//! Per-bucket serving statistics.
//!
//! Every bucket keeps its own lock-free counter block plus a log2 latency
//! histogram of end-to-end request time (admission → response), built on
//! the same [`bucket_index`] / [`HistogramSummary`] machinery the global
//! obs histograms use. The bucket-local stats are recorded unconditionally
//! — they are the server's own accounting and the source for
//! [`ServerStats`] / the exported [`iwino_obs::ServeReport`] — while the
//! *global* obs counters and histogram sites are additionally fed through
//! the gated `iwino_obs::add` / `record_latency` entry points.
//!
//! The accounting identity every snapshot obeys once the server has
//! drained: `admitted == served + rejected + expired`.

use iwino_obs::hist::{bucket_index, HistogramSummary, N_HIST_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free per-bucket counters, updated by the admission path (submit)
/// and the coalescer.
#[derive(Debug)]
pub(crate) struct BucketStats {
    pub(crate) label: String,
    admitted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    /// High-water: largest number of live requests in one coalesced batch.
    max_batch: AtomicU64,
    /// High-water: deepest the bucket queue has been.
    queue_depth_high_water: AtomicU64,
    /// Log2 histogram of end-to-end latency (admission → response) for
    /// served requests.
    e2e: [AtomicU64; N_HIST_BUCKETS],
}

impl BucketStats {
    pub(crate) fn new(label: String) -> BucketStats {
        BucketStats {
            label,
            admitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            queue_depth_high_water: AtomicU64::new(0),
            e2e: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    // Every counter below is Relaxed for the same reason — they are
    // monotonic event counters and high-water marks; no other data is
    // published through them. Snapshots taken after the server quiesces
    // (shutdown join, or a test's own barrier) observe the final values
    // through the coalescer thread's join/lock synchronization, not
    // through these atomics. Each method restates the class inline so the
    // justification survives being read (and linted) in isolation.

    pub(crate) fn admit(&self) {
        // ORDERING: Relaxed — [counter] monotonic admission count.
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reject(&self) {
        // ORDERING: Relaxed — [counter] monotonic rejection count.
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn expire(&self) {
        // ORDERING: Relaxed — [counter] monotonic expiry count.
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn serve(&self, e2e_ns: u64) {
        // ORDERING: Relaxed — [counter] monotonic serve count and latency
        // histogram bucket.
        self.served.fetch_add(1, Ordering::Relaxed);
        self.e2e[bucket_index(e2e_ns)].fetch_add(1, Ordering::Relaxed); // ORDERING: as above
    }

    pub(crate) fn batch(&self, live: u64) {
        // ORDERING: Relaxed — [counter] monotonic batch count and
        // high-water mark.
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(live, Ordering::Relaxed); // ORDERING: as above
    }

    pub(crate) fn observe_depth(&self, depth: u64) {
        // ORDERING: Relaxed — [counter] queue-depth high-water mark.
        self.queue_depth_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> BucketSnapshot {
        // ORDERING: Relaxed — [counter] sampling reads of the monotonic
        // counters above; exact totals come from reading after quiesce.
        let e2e = HistogramSummary::from_buckets(std::array::from_fn(|i| {
            self.e2e[i].load(Ordering::Relaxed) // ORDERING: as above
        }));
        BucketSnapshot {
            label: self.label.clone(),
            admitted: self.admitted.load(Ordering::Relaxed), // ORDERING: as above
            served: self.served.load(Ordering::Relaxed),     // ORDERING: as above
            rejected: self.rejected.load(Ordering::Relaxed), // ORDERING: as above
            expired: self.expired.load(Ordering::Relaxed),   // ORDERING: as above
            batches: self.batches.load(Ordering::Relaxed),   // ORDERING: as above
            max_batch: self.max_batch.load(Ordering::Relaxed), // ORDERING: as above
            queue_depth_high_water: self.queue_depth_high_water.load(Ordering::Relaxed), // ORDERING: as above
            e2e,
        }
    }
}

/// Point-in-time view of one bucket's counters.
#[derive(Clone, Debug)]
pub struct BucketSnapshot {
    pub label: String,
    pub admitted: u64,
    pub served: u64,
    pub rejected: u64,
    pub expired: u64,
    pub batches: u64,
    pub max_batch: u64,
    pub queue_depth_high_water: u64,
    /// End-to-end latency distribution of served requests.
    pub e2e: HistogramSummary,
}

impl BucketSnapshot {
    /// Average requests per coalesced forward — the amortization the
    /// serving layer exists to buy. 0.0 before the first batch.
    pub fn coalesce_factor(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }

    fn to_report(&self) -> iwino_obs::ServeBucketReport {
        iwino_obs::ServeBucketReport {
            label: self.label.clone(),
            admitted: self.admitted,
            served: self.served,
            rejected: self.rejected,
            expired: self.expired,
            batches: self.batches,
            max_batch: self.max_batch,
            queue_depth_high_water: self.queue_depth_high_water,
            p50_e2e_ns: self.e2e.p50_ns(),
            p99_e2e_ns: self.e2e.p99_ns(),
        }
    }
}

/// Point-in-time view of every bucket, in registration order.
#[derive(Clone, Debug)]
pub struct ServerStats {
    pub buckets: Vec<BucketSnapshot>,
}

impl ServerStats {
    pub fn admitted(&self) -> u64 {
        self.buckets.iter().map(|b| b.admitted).sum()
    }

    pub fn served(&self) -> u64 {
        self.buckets.iter().map(|b| b.served).sum()
    }

    pub fn rejected(&self) -> u64 {
        self.buckets.iter().map(|b| b.rejected).sum()
    }

    pub fn expired(&self) -> u64 {
        self.buckets.iter().map(|b| b.expired).sum()
    }

    pub fn batches(&self) -> u64 {
        self.buckets.iter().map(|b| b.batches).sum()
    }

    /// The metrics-schema-v5 `serve` section for this snapshot.
    pub fn to_report(&self) -> iwino_obs::ServeReport {
        iwino_obs::ServeReport {
            buckets: self.buckets.iter().map(BucketSnapshot::to_report).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_events() {
        let s = BucketStats::new("b".into());
        for _ in 0..6 {
            s.admit();
        }
        s.reject();
        s.expire();
        s.batch(4);
        s.batch(2);
        for ns in [100, 200, 5000, 6000] {
            s.serve(ns);
        }
        s.observe_depth(3);
        s.observe_depth(2);
        let snap = s.snapshot();
        assert_eq!(snap.admitted, snap.served + snap.rejected + snap.expired);
        assert_eq!(snap.served, 4);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.max_batch, 4);
        assert_eq!(snap.queue_depth_high_water, 3);
        assert_eq!(snap.coalesce_factor(), 2.0);
        assert_eq!(snap.e2e.count, 4);
        // Two samples ≤ 255 ns, two in the 4096..8191 bucket.
        assert_eq!(snap.e2e.p50_ns(), 255);
        assert_eq!(snap.e2e.p99_ns(), 8191);
        let report = ServerStats { buckets: vec![snap] }.to_report();
        assert_eq!(report.buckets[0].p99_e2e_ns, 8191);
        assert_eq!(report.buckets[0].coalesce_factor(), 2.0);
    }
}
