//! The shape-bucketed batch server.
//!
//! ```text
//!            submit(label, x, deadline)
//!                      │  admission: bounded queue, typed rejection
//!                      ▼
//!   bucket "a" ─▶ [x₇ x₆ x₅]──┐            ┌─ worker 1: plan.run(x₅)
//!   bucket "b" ─▶ [x₄]        ├─ coalescer ┼─ worker 2: plan.run(x₆)
//!   bucket "c" ─▶ [x₃ x₂]  ───┘  (1 plan   └─ worker 3: plan.run(x₇)
//!                                 lookup
//!                                 per batch)
//! ```
//!
//! Requests enter per-shape bounded queues. A single coalescer thread
//! round-robins the non-empty buckets, drains up to `max_batch` requests at
//! a time, expires the stale ones, performs ONE engine plan lookup for the
//! whole batch against the bucket's resident transformed-filter bank, and
//! fans whole images out one-per-pool-lane. Pool lanes execute with the
//! worker flag set, so each nested convolution runs serially on its lane —
//! there is zero cross-image synchronization inside a batch; images only
//! rendezvous at the pool's join barrier.

use crate::error::ServeError;
use crate::stats::{BucketStats, ServerStats};
use iwino_core::{ConvError, Epilogue};
use iwino_engine::{ConvAlgorithm, Engine, EngineStats, Handle, SelectionPolicy};
use iwino_obs::{self as obs, Counter, HistSite};
use iwino_parallel::{default_threads, ThreadPool};
use iwino_tensor::{ConvShape, Tensor4};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Serving knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bounded per-bucket queue length; a submit beyond it is rejected with
    /// [`ServeError::QueueFull`]. Clamped to at least 1.
    pub queue_capacity: usize,
    /// Most requests one coalesced batch may carry. Clamped to at least 1;
    /// 1 disables coalescing (the baseline arm of `repro serve-bench`).
    pub max_batch: usize,
    /// Execution lanes for the batch pool (the coalescer participates as
    /// the caller lane). Clamped to at least 1.
    pub workers: usize,
    /// Start with the coalescer paused: requests are admitted but nothing
    /// drains until [`Server::resume`]. Lets tests fill queues
    /// deterministically (queue-full rejection, drain-on-shutdown).
    pub start_paused: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            workers: default_threads(),
            start_paused: false,
        }
    }
}

/// One registered shape bucket: the shape key, the resident filter bank,
/// and the engine handle whose `(id, epoch)` keys the plan cache.
struct Bucket {
    label: String,
    shape: ConvShape,
    weights: Tensor4<f32>,
    handle: Handle,
    algo: Arc<dyn ConvAlgorithm>,
    stats: BucketStats,
}

/// An admitted request waiting in its bucket queue.
struct Request {
    input: Tensor4<f32>,
    deadline: Option<Instant>,
    enqueued: Instant,
    ticket: Arc<TicketShared>,
}

struct TicketShared {
    slot: Mutex<Option<Result<Tensor4<f32>, ServeError>>>,
    ready: Condvar,
}

impl TicketShared {
    fn resolve(&self, r: Result<Tensor4<f32>, ServeError>) {
        *self.slot.lock().unwrap() = Some(r);
        self.ready.notify_all();
    }
}

/// The caller's handle on an admitted request. Every ticket resolves
/// exactly once — with the output tensor, or with the typed error that
/// answered the request (deadline expiry, execution failure).
pub struct Ticket {
    shared: Arc<TicketShared>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ready = self.shared.slot.lock().map(|s| s.is_some()).unwrap_or(false);
        f.debug_struct("Ticket").field("ready", &ready).finish()
    }
}

impl Ticket {
    /// Block until the request is answered.
    pub fn wait(self) -> Result<Tensor4<f32>, ServeError> {
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            // NO-NOTIFY: consumer-side take — the ticket holder is the only
            // thread that ever sleeps on `ready`, so emptying the slot
            // wakes nobody.
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.shared.ready.wait(slot).unwrap();
        }
    }

    /// Non-blocking probe: the answer if it has arrived.
    pub fn try_take(&self) -> Option<Result<Tensor4<f32>, ServeError>> {
        // NO-NOTIFY: consumer-side take, as in `wait` — nobody sleeps on
        // the slot becoming empty.
        self.shared.slot.lock().unwrap().take()
    }
}

/// Mutable server state behind one mutex: the per-bucket queues plus the
/// coalescer's control flags.
struct Queues {
    queues: Vec<VecDeque<Request>>,
    /// Round-robin position so a hot bucket cannot starve the others.
    cursor: usize,
    paused: bool,
    shutdown: bool,
}

struct Shared {
    engine: Engine,
    pool: ThreadPool,
    buckets: Vec<Bucket>,
    by_label: HashMap<String, usize>,
    queue_capacity: usize,
    max_batch: usize,
    state: Mutex<Queues>,
    /// Wakes the coalescer on submit / resume / shutdown.
    wake: Condvar,
}

/// Builds a [`Server`] from a set of shape buckets.
pub struct ServerBuilder {
    config: ServeConfig,
    buckets: Vec<(String, ConvShape, Tensor4<f32>, SelectionPolicy)>,
}

impl ServerBuilder {
    pub fn new(config: ServeConfig) -> ServerBuilder {
        ServerBuilder {
            config,
            buckets: Vec::new(),
        }
    }

    /// Register a bucket under the engine's §5.7 heuristic policy.
    pub fn bucket(self, label: &str, shape: ConvShape, weights: Tensor4<f32>) -> ServerBuilder {
        self.bucket_with_policy(label, shape, weights, SelectionPolicy::Heuristic)
    }

    /// Register a bucket with an explicit backend-selection policy.
    pub fn bucket_with_policy(
        mut self,
        label: &str,
        shape: ConvShape,
        weights: Tensor4<f32>,
        policy: SelectionPolicy,
    ) -> ServerBuilder {
        self.buckets.push((label.to_string(), shape, weights, policy));
        self
    }

    /// Validate every bucket (weights match the shape, the policy resolves
    /// to a registered backend), spawn the coalescer, and start serving.
    /// The server owns a private engine whose plan cache is sized to the
    /// bucket count, so steady-state traffic never evicts a resident plan.
    pub fn build(self) -> Result<Server, ServeError> {
        assert!(!self.buckets.is_empty(), "a server needs at least one bucket");
        let engine = Engine::with_plan_capacity(self.buckets.len());
        let mut buckets = Vec::with_capacity(self.buckets.len());
        let mut by_label = HashMap::new();
        for (label, shape, weights, policy) in self.buckets {
            if weights.dims() != shape.w_dims() {
                return Err(ServeError::Conv(ConvError::ShapeMismatch {
                    what: "filter",
                    got: weights.dims(),
                    want: shape.w_dims(),
                }));
            }
            let algo = engine.resolve(&policy, &shape)?;
            assert!(
                by_label.insert(label.clone(), buckets.len()).is_none(),
                "duplicate bucket label {label:?}"
            );
            buckets.push(Bucket {
                stats: BucketStats::new(label.clone()),
                label,
                shape,
                weights,
                handle: Handle::new(policy),
                algo,
            });
        }
        let n = buckets.len();
        let shared = Arc::new(Shared {
            engine,
            pool: ThreadPool::with_name(self.config.workers.max(1), "iwino-serve"),
            buckets,
            by_label,
            queue_capacity: self.config.queue_capacity.max(1),
            max_batch: self.config.max_batch.max(1),
            state: Mutex::new(Queues {
                queues: (0..n).map(|_| VecDeque::new()).collect(),
                cursor: 0,
                paused: self.config.start_paused,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let coalescer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("iwino-serve-coalescer".to_string())
                .spawn(move || coalescer_loop(&shared))
                .expect("spawn coalescer")
        };
        Ok(Server {
            shared,
            coalescer: Some(coalescer),
        })
    }
}

/// The running server. [`Server::shutdown`] (or drop) stops admission,
/// drains every queued request, and joins the coalescer — no admitted
/// request is ever left unanswered.
pub struct Server {
    shared: Arc<Shared>,
    coalescer: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Submit one input to the named bucket. Admission control is
    /// synchronous: unknown label, input/shape mismatch, a deadline already
    /// in the past, a full queue, and shutdown all fail here with a typed
    /// error. On `Ok`, the returned ticket resolves exactly once.
    pub fn submit(&self, label: &str, input: Tensor4<f32>, deadline: Option<Instant>) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let &idx = shared.by_label.get(label).ok_or_else(|| ServeError::UnknownBucket {
            label: label.to_string(),
        })?;
        let bucket = &shared.buckets[idx];
        if input.dims() != bucket.shape.x_dims() {
            return Err(ServeError::Conv(ConvError::ShapeMismatch {
                what: "input",
                got: input.dims(),
                want: bucket.shape.x_dims(),
            }));
        }
        let now = Instant::now();
        let mut state = shared.state.lock().unwrap();
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        // Past this point the request is in the admission pipeline and is
        // counted: every admitted request ends up served, rejected, or
        // expired — exactly once.
        bucket.stats.admit();
        obs::add(Counter::ServeAdmitted, 1);
        if deadline.is_some_and(|d| d <= now) {
            bucket.stats.expire();
            obs::add(Counter::ServeExpired, 1);
            return Err(ServeError::DeadlineExpired {
                bucket: bucket.label.clone(),
            });
        }
        let q = &mut state.queues[idx];
        if q.len() >= shared.queue_capacity {
            bucket.stats.reject();
            obs::add(Counter::ServeRejected, 1);
            return Err(ServeError::QueueFull {
                bucket: bucket.label.clone(),
                capacity: shared.queue_capacity,
            });
        }
        let ticket = Arc::new(TicketShared {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        q.push_back(Request {
            input,
            deadline,
            enqueued: now,
            ticket: Arc::clone(&ticket),
        });
        let depth = q.len() as u64;
        bucket.stats.observe_depth(depth);
        obs::maximize(Counter::ServeQueueDepthHighWater, depth);
        drop(state);
        shared.wake.notify_all();
        Ok(Ticket { shared: ticket })
    }

    /// Un-pause a server built with [`ServeConfig::start_paused`].
    pub fn resume(&self) {
        self.shared.state.lock().unwrap().paused = false;
        self.shared.wake.notify_all();
    }

    /// Requests currently queued across all buckets.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().unwrap().queues.iter().map(VecDeque::len).sum()
    }

    /// Registered bucket labels, in registration order.
    pub fn bucket_labels(&self) -> Vec<&str> {
        self.shared.buckets.iter().map(|b| b.label.as_str()).collect()
    }

    /// Per-bucket serving counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            buckets: self.shared.buckets.iter().map(|b| b.stats.snapshot()).collect(),
        }
    }

    /// The private engine's plan-cache/arena statistics. After warmup,
    /// `plan_misses` stays at the bucket count while `plan_hits` grows with
    /// every further batch — the amortization the coalescer buys.
    pub fn engine_stats(&self) -> EngineStats {
        self.shared.engine.stats()
    }

    /// Export the current per-bucket counters as the metrics-schema-v5
    /// `serve` section (visible in the next `iwino_obs::snapshot`).
    pub fn publish_report(&self) {
        obs::set_serve_report(self.stats().to_report());
    }

    /// Stop admission, drain every queued request (serving or expiring
    /// each), join the coalescer, publish the final serve report, and
    /// return the final counters.
    pub fn shutdown(&mut self) -> ServerStats {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            // Shutdown implies resume: a paused server still answers
            // everything it admitted.
            state.paused = false;
        }
        self.shared.wake.notify_all();
        if let Some(h) = self.coalescer.take() {
            h.join().expect("coalescer panicked");
        }
        self.publish_report();
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.coalescer.is_some() {
            self.shutdown();
        }
    }
}

/// Next non-empty bucket at or after the cursor, round-robin.
fn next_nonempty(state: &Queues) -> Option<usize> {
    let n = state.queues.len();
    (0..n)
        .map(|k| (state.cursor + k) % n)
        .find(|&i| !state.queues[i].is_empty())
}

fn coalescer_loop(shared: &Shared) {
    loop {
        let (idx, batch) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if !state.paused {
                    if let Some(i) = next_nonempty(&state) {
                        // NO-NOTIFY: consumer-side drain — the coalescer is
                        // the only waiter on `wake`; submitters block on
                        // capacity rejection, not on queues emptying.
                        state.cursor = (i + 1) % state.queues.len();
                        let take = state.queues[i].len().min(shared.max_batch);
                        let batch: Vec<Request> = state.queues[i].drain(..take).collect();
                        break (i, batch);
                    }
                    if state.shutdown {
                        return;
                    }
                }
                state = shared.wake.wait(state).unwrap();
            }
        };
        run_batch(shared, idx, batch);
    }
}

/// Serve one coalesced batch: expire the stale requests, do ONE plan
/// lookup for the rest, and fan the images out over the pool.
fn run_batch(shared: &Shared, idx: usize, batch: Vec<Request>) {
    let bucket = &shared.buckets[idx];
    let now = Instant::now();
    let mut live: Vec<Request> = Vec::with_capacity(batch.len());
    for req in batch {
        obs::record_latency(HistSite::ServeQueueWait, (now - req.enqueued).as_nanos() as u64);
        if req.deadline.is_some_and(|d| d <= now) {
            bucket.stats.expire();
            obs::add(Counter::ServeExpired, 1);
            req.ticket.resolve(Err(ServeError::DeadlineExpired {
                bucket: bucket.label.clone(),
            }));
        } else {
            live.push(req);
        }
    }
    if live.is_empty() {
        return;
    }
    bucket.stats.batch(live.len() as u64);
    obs::add(Counter::ServeBatches, 1);
    let t0 = Instant::now();
    // One plan lookup amortized over the whole batch. The first batch per
    // bucket misses (and builds the transformed-filter bank); every later
    // batch hits the resident plan.
    let plan = match shared.engine.plan(
        &bucket.algo,
        &bucket.weights,
        &bucket.shape,
        bucket.handle.filter_id(),
        false,
    ) {
        Ok(p) => p,
        Err(e) => {
            for req in &live {
                bucket.stats.reject();
                obs::add(Counter::ServeRejected, 1);
                req.ticket.resolve(Err(ServeError::Conv(e.clone())));
            }
            return;
        }
    };
    // Whole images, one per pool lane. Lanes run with the worker flag set,
    // so the nested convolution executes serially on that lane — zero
    // cross-image synchronization inside the batch.
    shared.pool.run(live.len(), &|i| {
        let req = &live[i];
        let out = plan
            .run(&req.input, &Epilogue::None, shared.engine.arena())
            .map_err(ServeError::from);
        let e2e_ns = req.enqueued.elapsed().as_nanos() as u64;
        match &out {
            Ok(_) => {
                bucket.stats.serve(e2e_ns);
                obs::add(Counter::ServeServed, 1);
                obs::record_latency(HistSite::ServeE2e, e2e_ns);
            }
            Err(_) => {
                bucket.stats.reject();
                obs::add(Counter::ServeRejected, 1);
            }
        }
        req.ticket.resolve(out);
    });
    obs::record_latency(HistSite::ServeBatch, t0.elapsed().as_nanos() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_weights(s: &ConvShape, seed: u64) -> Tensor4<f32> {
        Tensor4::<f32>::random(s.w_dims(), seed, -1.0, 1.0)
    }

    #[test]
    fn serves_and_matches_serial_execution() {
        let s = ConvShape::square(1, 8, 4, 6, 3);
        let w = square_weights(&s, 1);
        let mut srv = ServerBuilder::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .bucket("b", s, w.clone())
        .build()
        .unwrap();
        let serial = iwino_core::PreparedConv::forward(&w, &s, &iwino_core::auto_options(&s)).unwrap();
        let mut tickets = Vec::new();
        let mut want = Vec::new();
        for seed in 0..5u64 {
            let x = Tensor4::<f32>::random(s.x_dims(), 100 + seed, -1.0, 1.0);
            want.push(serial.execute(&x, &Epilogue::None).unwrap());
            tickets.push(srv.submit("b", x, None).unwrap());
        }
        for (t, want) in tickets.into_iter().zip(&want) {
            let got = t.wait().unwrap();
            assert_eq!(got.as_slice(), want.as_slice(), "served output must be bitwise serial");
        }
        let stats = srv.shutdown();
        assert_eq!(stats.served(), 5);
        assert_eq!(stats.admitted(), stats.served() + stats.rejected() + stats.expired());
        let es = srv.engine_stats();
        assert_eq!(es.plan_misses, 1, "one plan build per bucket");
    }

    #[test]
    fn unknown_bucket_and_bad_shape_fail_synchronously() {
        let s = ConvShape::square(1, 6, 2, 3, 3);
        let mut srv = ServerBuilder::new(ServeConfig::default())
            .bucket("only", s, square_weights(&s, 2))
            .build()
            .unwrap();
        let x = Tensor4::<f32>::random(s.x_dims(), 3, -1.0, 1.0);
        assert!(matches!(
            srv.submit("nope", x.clone(), None),
            Err(ServeError::UnknownBucket { .. })
        ));
        let bad = Tensor4::<f32>::random([1, 5, 5, 2], 4, -1.0, 1.0);
        assert!(matches!(srv.submit("only", bad, None), Err(ServeError::Conv(_))));
        // Neither failed submit entered the admission pipeline.
        assert_eq!(srv.shutdown().admitted(), 0);
    }

    #[test]
    fn builder_rejects_mismatched_filter_bank() {
        let s = ConvShape::square(1, 6, 2, 3, 3);
        let wrong = Tensor4::<f32>::random([3, 5, 5, 2], 5, -1.0, 1.0);
        assert!(matches!(
            ServerBuilder::new(ServeConfig::default()).bucket("b", s, wrong).build(),
            Err(ServeError::Conv(ConvError::ShapeMismatch { .. }))
        ));
    }
}
