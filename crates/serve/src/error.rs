//! Typed serving errors.
//!
//! Every request submitted to a [`crate::Server`] is answered exactly once:
//! either with an output tensor or with one of these errors. Admission-time
//! failures (`QueueFull`, `UnknownBucket`, an input that does not match the
//! bucket's shape, a deadline already in the past) surface synchronously
//! from [`crate::Server::submit`]; everything later arrives through the
//! request's [`crate::Ticket`].

use iwino_core::ConvError;
use std::fmt;

/// Why a request was not served.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Admission control: the bucket's bounded queue is at capacity. The
    /// caller should back off; nothing was enqueued.
    QueueFull { bucket: String, capacity: usize },
    /// The request's deadline passed — at enqueue time (synchronous) or
    /// while the request waited in its bucket queue (via the ticket).
    DeadlineExpired { bucket: String },
    /// The server is shutting down (or already shut down) and accepts no
    /// new work. Requests admitted before shutdown are still drained.
    ShuttingDown,
    /// No bucket is registered under this label.
    UnknownBucket { label: String },
    /// Planning or executing the convolution failed. Also raised
    /// synchronously at submit when the input tensor's dimensions disagree
    /// with the bucket's registered shape.
    Conv(ConvError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { bucket, capacity } => {
                write!(
                    f,
                    "bucket {bucket:?} queue is full (capacity {capacity}); request rejected"
                )
            }
            ServeError::DeadlineExpired { bucket } => {
                write!(f, "request deadline expired before bucket {bucket:?} could serve it")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down; no new requests accepted"),
            ServeError::UnknownBucket { label } => write!(f, "no serving bucket registered under label {label:?}"),
            ServeError::Conv(e) => write!(f, "convolution failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ConvError> for ServeError {
    fn from(e: ConvError) -> Self {
        ServeError::Conv(e)
    }
}
