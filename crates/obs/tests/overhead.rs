//! Satellite guard: with observability *disabled* — tracing and histograms
//! included — instrumented code must run within 5% of a
//! build-time-uninstrumented baseline. A companion test measures (but does
//! not gate) the cost of running with the flight recorder and histograms
//! *on*; EXPERIMENTS.md records that figure.
//!
//! Why a synthetic kernel instead of `iwino-core`'s real one: `iwino-obs`
//! cannot dev-depend on `iwino-core` (the core crate depends on obs — that
//! would be a cycle), and cargo's feature unification means a single
//! workspace test run cannot build one copy of core with instrumentation
//! compiled out and one with it in. So this test compiles the same
//! conv-shaped loop twice in this file — once plain, once carrying
//! `obs::span` / `obs::add` calls at the density `iwino-core` uses (a span
//! per outer block, counter adds per block, a hoisted `enabled()` check per
//! run) — and compares medians. The disabled fast path is a single Relaxed
//! atomic load, so the two must time the same.

use iwino_obs as obs;
use std::hint::black_box;
use std::time::Instant;

const BLOCKS: usize = 64;
const TILES_PER_BLOCK: usize = 32;
const CHANNELS: usize = 48;

/// Plain copy: the workload with no instrumentation compiled in.
fn kernel_plain(input: &[f32], out: &mut [f32]) {
    for b in 0..BLOCKS {
        for t in 0..TILES_PER_BLOCK {
            let base = (b * TILES_PER_BLOCK + t) * CHANNELS;
            let mut acc = 0.0f32;
            for c in 0..CHANNELS {
                acc = input[base + c].mul_add(1.001, acc);
            }
            out[b * TILES_PER_BLOCK + t] = acc;
        }
    }
}

/// Instrumented copy: identical arithmetic, plus the obs calls `iwino-core`
/// makes per segment run (hoisted enabled check, per-block stage timing and
/// counter updates).
fn kernel_instrumented(input: &[f32], out: &mut [f32]) {
    let rec = obs::enabled();
    for b in 0..BLOCKS {
        let t0 = rec.then(Instant::now);
        for t in 0..TILES_PER_BLOCK {
            let base = (b * TILES_PER_BLOCK + t) * CHANNELS;
            let mut acc = 0.0f32;
            for c in 0..CHANNELS {
                acc = input[base + c].mul_add(1.001, acc);
            }
            out[b * TILES_PER_BLOCK + t] = acc;
        }
        if let Some(t0) = t0 {
            obs::add_stage_ns(obs::Stage::OuterProduct, t0.elapsed().as_nanos() as u64);
            obs::add(obs::Counter::Tiles, TILES_PER_BLOCK as u64);
            obs::add(obs::Counter::BytesLoaded, (TILES_PER_BLOCK * CHANNELS * 4) as u64);
        }
    }
}

/// Traced copy: the instrumented arithmetic plus a flight-recorder span
/// per block — the event density `iwino-parallel` emits per claimed chunk.
fn kernel_traced(input: &[f32], out: &mut [f32]) {
    let rec = obs::enabled();
    for b in 0..BLOCKS {
        let _chunk = obs::trace_span(obs::Stage::WorkerChunk);
        let t0 = rec.then(Instant::now);
        for t in 0..TILES_PER_BLOCK {
            let base = (b * TILES_PER_BLOCK + t) * CHANNELS;
            let mut acc = 0.0f32;
            for c in 0..CHANNELS {
                acc = input[base + c].mul_add(1.001, acc);
            }
            out[b * TILES_PER_BLOCK + t] = acc;
        }
        if let Some(t0) = t0 {
            obs::add_stage_ns(obs::Stage::OuterProduct, t0.elapsed().as_nanos() as u64);
            obs::add(obs::Counter::Tiles, TILES_PER_BLOCK as u64);
            obs::add(obs::Counter::BytesLoaded, (TILES_PER_BLOCK * CHANNELS * 4) as u64);
        }
    }
}

/// Minimum wall time of `reps` runs of `f`. Timing noise on shared hardware
/// is one-sided (preemption and cache pollution only ever add time), so the
/// minimum is the least-biased estimator of the true cost of the loop.
fn min_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

/// Both tests toggle the process-global obs/trace gates; serialize them.
fn guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_instrumentation_costs_under_five_percent() {
    let _g = guard();
    // The contract covers the whole disabled surface: stage timers,
    // histograms (recorded by the same gated calls) and the flight
    // recorder's separate gate.
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    let input: Vec<f32> = (0..BLOCKS * TILES_PER_BLOCK * CHANNELS)
        .map(|i| (i % 251) as f32 * 0.004 - 0.5)
        .collect();
    let mut out = vec![0.0f32; BLOCKS * TILES_PER_BLOCK];

    // Warm up both paths (page in code, settle the allocator and clocks).
    for _ in 0..50 {
        kernel_plain(black_box(&input), black_box(&mut out));
        kernel_instrumented(black_box(&input), black_box(&mut out));
    }

    // The 5% claim is about optimized code, where the disabled path is one
    // Relaxed load plus a dead branch per block. Under `cargo test`'s debug
    // profile the per-block `Option` plumbing is real instructions (~10%
    // measured), so the debug gate only guards against gross regressions
    // (an un-hoisted enabled() check or an atomic RMW on the fast path
    // costs far more than 30%).
    const LIMIT: f64 = if cfg!(debug_assertions) { 1.30 } else { 1.05 };
    // Timing on shared CI hardware is noisy: compare best-of-many runs with
    // the two kernels interleaved (so clock drift and background load hit
    // both alike) and allow retries before declaring the overhead real. A
    // genuine regression past the limit fails all attempts.
    const REPS: usize = 31;
    const ATTEMPTS: usize = 8;
    let mut ratios = Vec::with_capacity(ATTEMPTS);
    for _ in 0..ATTEMPTS {
        let mut plain = u64::MAX;
        let mut inst = u64::MAX;
        for _ in 0..REPS {
            plain = plain.min(min_ns(1, || kernel_plain(black_box(&input), black_box(&mut out))));
            inst = inst.min(min_ns(1, || {
                kernel_instrumented(black_box(&input), black_box(&mut out))
            }));
        }
        let ratio = inst as f64 / plain.max(1) as f64;
        if ratio <= LIMIT {
            return;
        }
        ratios.push(ratio);
    }
    panic!("disabled-path overhead exceeded {LIMIT} in all {ATTEMPTS} attempts: ratios {ratios:?}");
}

#[test]
fn tracing_enabled_overhead_is_measured_not_gated() {
    let _g = guard();
    let input: Vec<f32> = (0..BLOCKS * TILES_PER_BLOCK * CHANNELS)
        .map(|i| (i % 251) as f32 * 0.004 - 0.5)
        .collect();
    let mut out = vec![0.0f32; BLOCKS * TILES_PER_BLOCK];
    for _ in 0..50 {
        kernel_plain(black_box(&input), black_box(&mut out));
        kernel_traced(black_box(&input), black_box(&mut out));
    }

    obs::set_enabled(true);
    obs::set_trace_enabled(true);
    obs::reset();
    obs::reset_trace();
    const REPS: usize = 31;
    let mut plain = u64::MAX;
    let mut traced = u64::MAX;
    for _ in 0..REPS {
        plain = plain.min(min_ns(1, || kernel_plain(black_box(&input), black_box(&mut out))));
        traced = traced.min(min_ns(1, || kernel_traced(black_box(&input), black_box(&mut out))));
    }
    obs::set_trace_enabled(false);
    obs::set_enabled(false);
    let ratio = traced as f64 / plain.max(1) as f64;
    // Reported, not gated: this is the figure EXPERIMENTS.md cites for the
    // cost of flying the recorder (run with --nocapture to see it). The
    // only assertion is a sanity bound loose enough to never flake — a
    // 50× blowup would mean the recorder left its two-stores-per-event
    // design behind entirely.
    println!(
        "tracing+histograms enabled: {ratio:.3}x the uninstrumented kernel \
         ({} events recorded, {} dropped)",
        obs::trace_meta().events,
        obs::trace_meta().dropped
    );
    assert!(ratio < 50.0, "tracing-enabled overhead ratio {ratio} is out of control");
    // The run itself must have recorded real events with balanced pairs.
    assert!(obs::trace_meta().events > 0);
    obs::reset_trace();
}
