//! Minimal JSON document model with a pretty printer.
//!
//! The observability layer must stay zero-dependency (it sits below every
//! other crate in the workspace, and the build environment is offline), so
//! metrics reports are serialized through this hand-rolled value type
//! instead of serde. Only output is supported — nothing in the workspace
//! parses JSON.

use std::fmt::{self, Write as _};

/// A JSON value. Numbers keep their Rust type so integer counters never
/// round-trip through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor taking `(key, value)` pairs in insertion order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize with two-space indentation and a trailing newline,
    /// matching what `serde_json::to_string_pretty` used to produce here.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest round-trip; force a decimal
                    // point so the value stays a JSON float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn pretty_prints_nested_structure() {
        let doc = Json::obj(vec![
            ("name", Json::from("gamma8")),
            ("count", Json::from(3u64)),
            ("share", Json::from(0.5f64)),
            ("items", Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = doc.pretty();
        assert!(s.starts_with("{\n  \"name\": \"gamma8\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"share\": 0.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let s = Json::from("a\"b\\c\nd").pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        // Whole floats keep a decimal point so they read back as floats.
        assert_eq!(Json::Num(2.0).pretty(), "2.0\n");
    }
}
