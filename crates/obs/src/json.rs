//! Minimal JSON document model with a pretty printer and a parser.
//!
//! The observability layer must stay zero-dependency (it sits below every
//! other crate in the workspace, and the build environment is offline), so
//! metrics reports are serialized through this hand-rolled value type
//! instead of serde. [`Json::parse`] is the matching reader: `repro
//! bench-compare` diffs committed bench documents and the trace-validity
//! tests re-read exported timelines, so round-tripping through this type
//! must be lossless for everything the workspace emits.

use std::fmt::{self, Write as _};

/// A JSON value. Numbers keep their Rust type so integer counters never
/// round-trip through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor taking `(key, value)` pairs in insertion order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a complete JSON document. Numbers keep the same typing rule
    /// the printer uses (non-negative integer → `UInt`, negative integer →
    /// `Int`, everything else → `Num`), so parse ∘ pretty is the identity
    /// on workspace-emitted documents. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Field lookup on an object (first match; `None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64`, accepting any of the three number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as `u64`; `None` for negatives and non-integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline,
    /// matching what `serde_json::to_string_pretty` used to produce here.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest round-trip; force a decimal
                    // point so the value stays a JSON float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Parse failure: byte offset into the input plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    pub offset: usize,
    pub msg: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonParseError {}

/// Recursion guard: workspace documents nest a handful of levels; anything
/// deeper is hostile or corrupt, and must not overflow the stack.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 is copied through verbatim; the input
                    // is a &str, so byte runs between escapes are valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input was a valid &str"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number span");
        if !float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            // Integers beyond 64 bits degrade to f64, like serde_json.
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn pretty_prints_nested_structure() {
        let doc = Json::obj(vec![
            ("name", Json::from("gamma8")),
            ("count", Json::from(3u64)),
            ("share", Json::from(0.5f64)),
            ("items", Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = doc.pretty();
        assert!(s.starts_with("{\n  \"name\": \"gamma8\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"share\": 0.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let s = Json::from("a\"b\\c\nd").pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        // Whole floats keep a decimal point so they read back as floats.
        assert_eq!(Json::Num(2.0).pretty(), "2.0\n");
    }

    #[test]
    fn parse_round_trips_workspace_documents() {
        let doc = Json::obj(vec![
            ("name", Json::from("Γ8(6,3) \"exact\"")),
            ("count", Json::from(18_446_744_073_709_551_615u64)),
            ("delta", Json::from(-42i64)),
            ("share", Json::from(0.125f64)),
            ("whole", Json::from(3.0f64)),
            ("flag", Json::from(true)),
            ("missing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::from(1u64), Json::from("x"), Json::Arr(vec![])]),
            ),
            ("nested", Json::obj(vec![("empty", Json::obj(vec![]))])),
        ]);
        let parsed = Json::parse(&doc.pretty()).expect("round trip");
        assert_eq!(parsed, doc);
        // Compact form (no pretty whitespace) parses identically.
        assert_eq!(
            Json::parse("{\"a\":[1,2 , 3]}")
                .unwrap()
                .get("a")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn parse_handles_escapes_and_numbers() {
        let parsed = Json::parse("\"a\\\"b\\\\c\\n\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nA😀"));
        assert_eq!(Json::parse("12").unwrap(), Json::UInt(12));
        assert_eq!(Json::parse("-12").unwrap(), Json::Int(-12));
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Num(1500.0));
        assert_eq!(Json::parse("-0.25").unwrap(), Json::Num(-0.25));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err(), "depth limit must hold");
    }

    #[test]
    fn accessors_select_by_type() {
        let doc = Json::parse("{\"s\": \"x\", \"u\": 7, \"i\": -7, \"f\": 0.5, \"b\": false}").unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("u").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("i").and_then(Json::as_u64), None);
        assert_eq!(doc.get("i").and_then(Json::as_f64), Some(-7.0));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("nope"), None);
        assert!(doc.as_obj().is_some_and(|f| f.len() == 5));
    }
}
