//! Observability layer for the Im2col-Winograd reproduction.
//!
//! The paper's performance story (§5–§6) is about *where* time goes inside
//! one fused block — filter/input transforms, the BK-round outer product,
//! the output transform — and about achieved GFLOP/s against the roofline.
//! This crate provides the measurement substrate every other crate reports
//! through:
//!
//! * [`span`] — scoped stage timers accumulating into thread-local,
//!   allocation-free slots aggregated by a global registry;
//! * [`add`] — monotonic counters (FLOPs, bytes, tiles, plan decisions)
//!   from which GFLOP/s and arithmetic intensity are derived per run;
//! * [`record_latency`] — log2-bucketed latency histograms per stage and
//!   per engine plan-cache outcome, with p50/p90/p99 at snapshot time
//!   (see [`hist`]);
//! * [`trace_span`] / [`export_chrome_trace`] — a flight recorder of
//!   begin/end events in bounded per-thread rings, exported as a
//!   Perfetto-loadable Chrome Trace timeline (see [`trace`]);
//! * [`PoolReport`] — per-worker thread-pool utilization, filled in by
//!   `iwino-parallel`;
//! * [`DispatchReport`] — detected CPU features and the dispatched
//!   microkernel ISA, filled in by `iwino-core` from `iwino-simd`;
//! * [`MetricsReport`] — a JSON-serializable snapshot of all of the above.
//!
//! Timers, counters and histograms are gated on a process-wide [`enabled`]
//! flag; the flight recorder has its own [`trace_enabled`] gate. Each gate
//! is one relaxed atomic load, and with both off — the default —
//! instrumented code pays only those loads plus predictable branches; the
//! overhead guard in `tests/overhead.rs` pins this to within 5% of
//! uninstrumented code.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod hist;
mod json;
mod report;
pub mod trace;

pub use hist::{bucket_index, bucket_le_ns, HistSite, HistogramSummary, N_HIST_BUCKETS, N_HIST_SITES};
pub use json::{Json, JsonParseError};
pub use report::{MetricsReport, SCHEMA_VERSION};
pub use trace::{
    export_chrome_trace, reset_trace, set_trace_enabled, set_trace_ring_capacity, set_trace_thread_label, trace_begin,
    trace_enabled, trace_end, trace_meta, trace_ring_capacity, trace_span, TraceMeta, TraceSpan,
    DEFAULT_TRACE_RING_CAPACITY,
};

/// Pipeline stages attributed by [`span`]. `Total` covers a whole
/// convolution call; the others nest inside it. `EnginePlan`/`EngineRun`
/// are umbrella stages around engine dispatch — like `Total`, kernel
/// stages nest inside them, so they are excluded from [`Snapshot::attributed_ns`].
/// `ArenaCheckout`, `GammaSegment` and `WorkerChunk` are bookkeeping /
/// timeline-granularity stages (arena scratch checkout, one Γ row segment,
/// one claimed pool chunk); they exist mainly for the flight recorder and
/// latency histograms and are likewise excluded from attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    FilterTransform,
    InputTransform,
    OuterProduct,
    OutputTransform,
    GemmRemainder,
    Epilogue,
    Baseline,
    EnginePlan,
    EngineRun,
    ArenaCheckout,
    GammaSegment,
    WorkerChunk,
    GemmPack,
    GemmKernel,
    IndirectSetup,
    Total,
}

impl Stage {
    /// Every stage, in declaration (= discriminant) order; the flight
    /// recorder packs `Stage as u64` into event words and decodes through
    /// this array, so the two must stay aligned.
    pub const ALL: [Stage; 16] = [
        Stage::FilterTransform,
        Stage::InputTransform,
        Stage::OuterProduct,
        Stage::OutputTransform,
        Stage::GemmRemainder,
        Stage::Epilogue,
        Stage::Baseline,
        Stage::EnginePlan,
        Stage::EngineRun,
        Stage::ArenaCheckout,
        Stage::GammaSegment,
        Stage::WorkerChunk,
        Stage::GemmPack,
        Stage::GemmKernel,
        Stage::IndirectSetup,
        Stage::Total,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::FilterTransform => "filter_transform",
            Stage::InputTransform => "input_transform",
            Stage::OuterProduct => "outer_product",
            Stage::OutputTransform => "output_transform",
            Stage::GemmRemainder => "gemm_remainder",
            Stage::Epilogue => "epilogue",
            Stage::Baseline => "baseline",
            Stage::EnginePlan => "engine_plan",
            Stage::EngineRun => "engine_run",
            Stage::ArenaCheckout => "arena_checkout",
            Stage::GammaSegment => "gamma_segment",
            Stage::WorkerChunk => "worker_chunk",
            Stage::GemmPack => "gemm_pack",
            Stage::GemmKernel => "gemm_kernel",
            Stage::IndirectSetup => "indirect_setup",
            Stage::Total => "total",
        }
    }

    /// Stages excluded from [`Snapshot::attributed_ns`]: umbrella stages
    /// (`Total`, `EnginePlan`, `EngineRun`) wrap other recorded spans, and
    /// the bookkeeping stages (`ArenaCheckout`, `GammaSegment`,
    /// `WorkerChunk`, `GemmPack`, `GemmKernel`) overlap them — the GEMM
    /// sub-stages nest inside `Baseline` / `GemmRemainder` spans — so
    /// counting either kind in a sum would double-attribute time.
    pub fn is_umbrella(self) -> bool {
        matches!(
            self,
            Stage::Total
                | Stage::EnginePlan
                | Stage::EngineRun
                | Stage::ArenaCheckout
                | Stage::GammaSegment
                | Stage::WorkerChunk
                | Stage::GemmPack
                | Stage::GemmKernel
        )
    }
}

/// Monotonic event counters tracked per run.
///
/// `Flops` uses the paper's convention: the FLOP count of the *standard*
/// convolution producing the same output, so GFLOP/s stays comparable
/// across algorithms (a Winograd kernel that does fewer real operations
/// reports a higher achieved rate, exactly as in Figure 8/9).
///
/// The `Serve*` counters are fed by `iwino-serve` and obey the accounting
/// identity `serve_admitted = serve_served + serve_rejected + serve_expired`
/// once a server has drained: every request presented for admission is
/// eventually answered exactly one way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    Flops,
    BytesLoaded,
    BytesStored,
    Tiles,
    RuseTiles,
    GemmRemainderCols,
    PlanCalls,
    PlanGammaSegments,
    PlanGemmSegments,
    EnginePlanHits,
    EnginePlanMisses,
    EnginePlanEvictions,
    ArenaHits,
    ArenaMisses,
    ArenaBytesHighWater,
    GemmPackedABytes,
    GemmPackedBBytes,
    IndirectTableBytes,
    ServeAdmitted,
    ServeRejected,
    ServeExpired,
    ServeServed,
    ServeBatches,
    ServeQueueDepthHighWater,
}

impl Counter {
    pub const ALL: [Counter; 24] = [
        Counter::Flops,
        Counter::BytesLoaded,
        Counter::BytesStored,
        Counter::Tiles,
        Counter::RuseTiles,
        Counter::GemmRemainderCols,
        Counter::PlanCalls,
        Counter::PlanGammaSegments,
        Counter::PlanGemmSegments,
        Counter::EnginePlanHits,
        Counter::EnginePlanMisses,
        Counter::EnginePlanEvictions,
        Counter::ArenaHits,
        Counter::ArenaMisses,
        Counter::ArenaBytesHighWater,
        Counter::GemmPackedABytes,
        Counter::GemmPackedBBytes,
        Counter::IndirectTableBytes,
        Counter::ServeAdmitted,
        Counter::ServeRejected,
        Counter::ServeExpired,
        Counter::ServeServed,
        Counter::ServeBatches,
        Counter::ServeQueueDepthHighWater,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Counter::Flops => "flops",
            Counter::BytesLoaded => "bytes_loaded",
            Counter::BytesStored => "bytes_stored",
            Counter::Tiles => "tiles",
            Counter::RuseTiles => "ruse_tiles",
            Counter::GemmRemainderCols => "gemm_remainder_cols",
            Counter::PlanCalls => "plan_calls",
            Counter::PlanGammaSegments => "plan_gamma_segments",
            Counter::PlanGemmSegments => "plan_gemm_segments",
            Counter::EnginePlanHits => "engine_plan_hits",
            Counter::EnginePlanMisses => "engine_plan_misses",
            Counter::EnginePlanEvictions => "engine_plan_evictions",
            Counter::ArenaHits => "arena_hits",
            Counter::ArenaMisses => "arena_misses",
            Counter::ArenaBytesHighWater => "arena_bytes_high_water",
            Counter::GemmPackedABytes => "gemm_packed_a_bytes",
            Counter::GemmPackedBBytes => "gemm_packed_b_bytes",
            Counter::IndirectTableBytes => "indirect_table_bytes",
            Counter::ServeAdmitted => "serve_admitted",
            Counter::ServeRejected => "serve_rejected",
            Counter::ServeExpired => "serve_expired",
            Counter::ServeServed => "serve_served",
            Counter::ServeBatches => "serve_batches",
            Counter::ServeQueueDepthHighWater => "serve_queue_depth_high_water",
        }
    }

    /// High-water counters record a maximum, not a running sum — both
    /// [`maximize`] (per slot) and [`snapshot`] (across slots) take the max.
    pub fn is_high_water(self) -> bool {
        matches!(self, Counter::ArenaBytesHighWater | Counter::ServeQueueDepthHighWater)
    }
}

pub(crate) const N_STAGES: usize = Stage::ALL.len();
const N_COUNTERS: usize = Counter::ALL.len();
const N_HIST_CELLS: usize = N_HIST_SITES * N_HIST_BUCKETS;

/// Per-thread accumulation slot. All fields are plain atomics so the
/// registry can read them from any thread without locking the hot path.
struct Slot {
    stage_ns: [AtomicU64; N_STAGES],
    stage_hits: [AtomicU64; N_STAGES],
    counters: [AtomicU64; N_COUNTERS],
    /// Latency histogram cells, `site-major` ([`HistSite::index`] ×
    /// [`N_HIST_BUCKETS`]). Boxed: the table is ~600 atomics and only the
    /// handful touched per run need to be hot.
    hist: Box<[AtomicU64]>,
}

impl Slot {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);

    fn new() -> Slot {
        Slot {
            stage_ns: [Self::ZERO; N_STAGES],
            stage_hits: [Self::ZERO; N_STAGES],
            counters: [Self::ZERO; N_COUNTERS],
            hist: (0..N_HIST_CELLS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn record_hist(&self, site: usize, ns: u64) {
        // ORDERING: Relaxed — monotonic bucket counter, aggregated only
        // after the workload quiesces (same argument as [`Span::drop`]).
        self.hist[site * N_HIST_BUCKETS + bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        // ORDERING: Relaxed is enough — callers quiesce the workload before
        // resetting, and [`reset`] already holds the registry mutex, whose
        // release/acquire edge orders these stores against later snapshots.
        for a in self
            .stage_ns
            .iter()
            .chain(&self.stage_hits)
            .chain(&self.counters)
            .chain(self.hist.iter())
        {
            a.store(0, Ordering::Relaxed); // ORDERING: as above
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Vec<Arc<Slot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn pool_slot() -> &'static Mutex<Option<PoolReport>> {
    static POOL: OnceLock<Mutex<Option<PoolReport>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(None))
}

fn dispatch_slot() -> &'static Mutex<Option<DispatchReport>> {
    static DISPATCH: OnceLock<Mutex<Option<DispatchReport>>> = OnceLock::new();
    DISPATCH.get_or_init(|| Mutex::new(None))
}

fn serve_slot() -> &'static Mutex<Option<ServeReport>> {
    static SERVE: OnceLock<Mutex<Option<ServeReport>>> = OnceLock::new();
    SERVE.get_or_init(|| Mutex::new(None))
}

thread_local! {
    static SLOT: Arc<Slot> = {
        let slot = Arc::new(Slot::new());
        registry().lock().unwrap().push(Arc::clone(&slot));
        slot
    };
}

/// Is instrumentation recording? One relaxed load; instrumented hot loops
/// should hoist this into a local `bool` per batch of work.
#[inline(always)]
pub fn enabled() -> bool {
    // ORDERING: Relaxed — the flag is an independent bool (no data is
    // published through it); a stale read only delays when instrumentation
    // kicks in by one batch, which the measurement protocol tolerates.
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off process-wide.
pub fn set_enabled(on: bool) {
    // ORDERING: Relaxed — see [`enabled`]; benches toggle the flag before
    // and after a timed region on the same thread (program order suffices).
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zero every slot on every thread and drop any stored pool/dispatch
/// report. Call between runs to attribute metrics to a single workload.
pub fn reset() {
    for slot in registry().lock().unwrap().iter() {
        slot.reset();
    }
    *pool_slot().lock().unwrap() = None;
    *dispatch_slot().lock().unwrap() = None;
    *serve_slot().lock().unwrap() = None;
}

/// Scoped timer: accumulates elapsed nanoseconds (total, hit count and a
/// latency-histogram sample) into `stage` for the current thread when it
/// drops, and — while [`trace_enabled`] — emits a begin/end event pair
/// into the flight recorder. Construction is a no-op (no clock read) while
/// both gates are off.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    stage: Stage,
    /// `Some` iff [`enabled`] was set at construction.
    start: Option<Instant>,
    /// Whether the begin event was admitted to this thread's trace ring;
    /// exactly then must the end event be emitted (pairing invariant).
    traced: bool,
}

#[inline(always)]
pub fn span(stage: Stage) -> Span {
    let recording = enabled();
    if !recording && !trace::trace_enabled() {
        return Span {
            stage,
            start: None,
            traced: false,
        };
    }
    // The begin event is admitted (or refused, if the ring is full) before
    // the clock read so the trace timestamp brackets the timed region.
    let traced = trace::trace_begin(stage);
    Span {
        stage,
        start: recording.then(Instant::now),
        traced,
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if self.traced {
            trace::trace_end(self.stage);
        }
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            SLOT.with(|slot| {
                // ORDERING: Relaxed — monotonic accumulators read only by
                // [`snapshot`] after the workload joins (mutex + thread-join
                // edges provide the happens-before; the atomics just make
                // cross-thread reads non-UB).
                slot.stage_ns[self.stage as usize].fetch_add(ns, Ordering::Relaxed);
                slot.stage_hits[self.stage as usize].fetch_add(1, Ordering::Relaxed);
                slot.record_hist(self.stage as usize, ns);
            });
        }
    }
}

/// Add directly-measured nanoseconds to a stage (one hit, one histogram
/// sample).
pub fn add_stage_ns(stage: Stage, ns: u64) {
    if enabled() {
        SLOT.with(|slot| {
            // ORDERING: Relaxed — same monotonic-accumulator argument as
            // [`Span::drop`].
            slot.stage_ns[stage as usize].fetch_add(ns, Ordering::Relaxed);
            slot.stage_hits[stage as usize].fetch_add(1, Ordering::Relaxed);
            slot.record_hist(stage as usize, ns);
        });
    }
}

/// Record one latency sample into a histogram site without touching the
/// stage timers — the entry point for non-stage sites such as the engine
/// plan-cache outcomes. No-op while disabled.
#[inline]
pub fn record_latency(site: HistSite, ns: u64) {
    if enabled() {
        SLOT.with(|slot| slot.record_hist(site.index(), ns));
    }
}

/// Bump a counter by `n`. No-op while disabled.
#[inline(always)]
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        SLOT.with(|slot| {
            // ORDERING: Relaxed — monotonic counter, aggregated only after
            // the workload quiesces (see [`Span::drop`]).
            slot.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        });
    }
}

/// Raise a high-water counter to at least `v`. No-op while disabled.
/// Intended for [`Counter::is_high_water`] counters such as
/// `ArenaBytesHighWater`; [`snapshot`] max-aggregates those across slots.
#[inline(always)]
pub fn maximize(counter: Counter, v: u64) {
    if enabled() {
        SLOT.with(|slot| {
            // ORDERING: Relaxed — fetch_max keeps each slot's value the
            // running maximum of its own updates; cross-slot aggregation
            // happens in [`snapshot`] after the workload quiesces, with the
            // happens-before supplied by the registry mutex (same argument
            // as [`Span::drop`]).
            slot.counters[counter as usize].fetch_max(v, Ordering::Relaxed);
        });
    }
}

/// Per-lane thread-pool statistics. Lane 0 is the submitting caller, which
/// participates in every job (see `iwino-parallel`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolWorkerStats {
    pub lane: usize,
    pub is_caller_lane: bool,
    pub chunks: u64,
    pub busy_ns: u64,
    pub idle_ns: u64,
}

/// Pool-wide utilization aggregated over every job since the last
/// [`reset`]. Produced by `iwino-parallel`, stored here so a
/// [`MetricsReport`] can pick it up without a dependency cycle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolReport {
    pub threads: usize,
    pub jobs: u64,
    pub workers: Vec<PoolWorkerStats>,
}

impl PoolReport {
    /// Fraction of claimed chunks executed by the submitting caller's lane.
    pub fn caller_share(&self) -> f64 {
        let total: u64 = self.workers.iter().map(|w| w.chunks).sum();
        if total == 0 {
            return 0.0;
        }
        let caller: u64 = self.workers.iter().filter(|w| w.is_caller_lane).map(|w| w.chunks).sum();
        caller as f64 / total as f64
    }

    /// Mean busy/(busy+idle) across worker lanes (the caller lane has no
    /// idle time by construction, so it is excluded).
    pub fn utilization(&self) -> f64 {
        let lanes: Vec<&PoolWorkerStats> = self.workers.iter().filter(|w| !w.is_caller_lane).collect();
        if lanes.is_empty() {
            return 1.0;
        }
        let mut sum = 0.0;
        for w in &lanes {
            let denom = (w.busy_ns + w.idle_ns) as f64;
            sum += if denom > 0.0 { w.busy_ns as f64 / denom } else { 0.0 };
        }
        sum / lanes.len() as f64
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("threads", Json::from(self.threads)),
            ("jobs", Json::from(self.jobs)),
            ("caller_share", Json::from(self.caller_share())),
            ("utilization", Json::from(self.utilization())),
            (
                "workers",
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("lane", Json::from(w.lane)),
                                ("is_caller_lane", Json::from(w.is_caller_lane)),
                                ("chunks", Json::from(w.chunks)),
                                ("busy_ns", Json::from(w.busy_ns)),
                                ("idle_ns", Json::from(w.idle_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Store the cumulative pool report (called by `iwino-parallel` after each
/// job while recording is on; later stores replace earlier ones because
/// the report is cumulative).
pub fn set_pool_report(report: PoolReport) {
    *pool_slot().lock().unwrap() = Some(report);
}

pub fn pool_report() -> Option<PoolReport> {
    pool_slot().lock().unwrap().clone()
}

/// Which microkernel path a measured run actually executed. Produced by
/// `iwino-core` from `iwino_simd::dispatch_info()` while recording is on,
/// stored here so a [`MetricsReport`] can pick it up without a dependency
/// cycle (the same pattern as [`PoolReport`]). Consumers use it to refuse
/// apples-to-oranges comparisons between runs dispatched to different ISAs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DispatchReport {
    /// Dispatched ISA name (`"avx2+fma"`, `"neon"`, `"scalar"`).
    pub isa: String,
    /// f32 elements per explicit vector op of the dispatched path.
    pub lane_width: usize,
    /// Whether a force-scalar override (env or programmatic) was active.
    pub forced_scalar: bool,
    /// CPU features detected on the host, independent of dispatch.
    pub features: Vec<String>,
}

impl DispatchReport {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("isa", Json::from(self.isa.as_str())),
            ("lane_width", Json::from(self.lane_width)),
            ("forced_scalar", Json::from(self.forced_scalar)),
            (
                "features",
                Json::Arr(self.features.iter().map(|f| Json::from(f.as_str())).collect()),
            ),
        ])
    }
}

/// Store the dispatch report for the current run (later stores replace
/// earlier ones; the dispatched path can only change via an explicit
/// force-scalar toggle, so last-write-wins describes the run).
pub fn set_dispatch_report(report: DispatchReport) {
    *dispatch_slot().lock().unwrap() = Some(report);
}

pub fn dispatch_report() -> Option<DispatchReport> {
    dispatch_slot().lock().unwrap().clone()
}

/// One shape bucket's serving statistics. Produced by `iwino-serve`, stored
/// here so a [`MetricsReport`] can pick it up without a dependency cycle
/// (the same pattern as [`PoolReport`]). The quantiles come from the
/// server's per-bucket log2 histograms (the [`hist`] machinery), so a
/// metrics document shows each bucket's latency tail — the global
/// [`HistSite::ServeE2e`] site only aggregates across buckets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeBucketReport {
    pub label: String,
    /// Requests presented for admission (including those bounced).
    pub admitted: u64,
    pub served: u64,
    pub rejected: u64,
    pub expired: u64,
    /// Coalesced batches executed for this bucket.
    pub batches: u64,
    /// Largest batch the coalescer formed for this bucket.
    pub max_batch: u64,
    /// Deepest the bounded queue ever got.
    pub queue_depth_high_water: u64,
    pub p50_e2e_ns: u64,
    pub p99_e2e_ns: u64,
}

impl ServeBucketReport {
    /// Served requests per executed batch — the amortization the serving
    /// layer exists to buy (1.0 means coalescing bought nothing).
    pub fn coalesce_factor(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.served as f64 / self.batches as f64
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::from(self.label.as_str())),
            ("admitted", Json::from(self.admitted)),
            ("served", Json::from(self.served)),
            ("rejected", Json::from(self.rejected)),
            ("expired", Json::from(self.expired)),
            ("batches", Json::from(self.batches)),
            ("coalesce_factor", Json::from(self.coalesce_factor())),
            ("max_batch", Json::from(self.max_batch)),
            ("queue_depth_high_water", Json::from(self.queue_depth_high_water)),
            ("p50_e2e_ns", Json::from(self.p50_e2e_ns)),
            ("p99_e2e_ns", Json::from(self.p99_e2e_ns)),
        ])
    }
}

/// Per-bucket serving statistics for the whole server (see
/// [`ServeBucketReport`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeReport {
    pub buckets: Vec<ServeBucketReport>,
}

impl ServeReport {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "buckets",
            Json::Arr(self.buckets.iter().map(ServeBucketReport::to_json).collect()),
        )])
    }
}

/// Store the cumulative serve report (called by `iwino-serve` after each
/// drained batch while recording is on; later stores replace earlier ones
/// because the report is cumulative).
pub fn set_serve_report(report: ServeReport) {
    *serve_slot().lock().unwrap() = Some(report);
}

pub fn serve_report() -> Option<ServeReport> {
    serve_slot().lock().unwrap().clone()
}

/// Point-in-time aggregate of every thread's slot.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    stage_ns: [u64; N_STAGES],
    stage_hits: [u64; N_STAGES],
    counters: [u64; N_COUNTERS],
    /// Flat histogram cells (site-major, [`N_HIST_BUCKETS`] per site);
    /// empty in a `Default` snapshot, which reads as all-zero buckets.
    hist: Vec<u64>,
    pub pool: Option<PoolReport>,
    pub dispatch: Option<DispatchReport>,
    pub serve: Option<ServeReport>,
    /// Flight-recorder state at snapshot time, so a metrics document says
    /// whether (and how completely) a trace accompanies it.
    pub trace: TraceMeta,
}

impl Snapshot {
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns[stage as usize]
    }

    pub fn stage_hits(&self, stage: Stage) -> u64 {
        self.stage_hits[stage as usize]
    }

    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Sum of the in-kernel stage timers (everything except the umbrella
    /// stages — `Total`, `EnginePlan`, `EngineRun` — which wrap them).
    pub fn attributed_ns(&self) -> u64 {
        Stage::ALL
            .iter()
            .filter(|&&s| !s.is_umbrella())
            .map(|&s| self.stage_ns(s))
            .sum()
    }

    /// Share of `stage` within the attributed (non-umbrella) time.
    pub fn stage_share(&self, stage: Stage) -> f64 {
        let denom = self.attributed_ns();
        if denom == 0 {
            return 0.0;
        }
        self.stage_ns(stage) as f64 / denom as f64
    }

    /// Latency histogram for one site (all-zero if nothing was recorded).
    pub fn histogram(&self, site: HistSite) -> HistogramSummary {
        let mut buckets = [0u64; N_HIST_BUCKETS];
        let base = site.index() * N_HIST_BUCKETS;
        if let Some(cells) = self.hist.get(base..base + N_HIST_BUCKETS) {
            buckets.copy_from_slice(cells);
        }
        HistogramSummary::from_buckets(buckets)
    }
}

/// Aggregate every registered thread slot into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot {
        pool: pool_report(),
        dispatch: dispatch_report(),
        serve: serve_report(),
        trace: trace::trace_meta(),
        hist: vec![0; N_HIST_CELLS],
        ..Snapshot::default()
    };
    for slot in registry().lock().unwrap().iter() {
        // ORDERING: Relaxed loads — each value is independently monotonic;
        // exactness is only claimed once the workload has quiesced (the
        // happens-before then comes from the registry mutex and the pool's
        // job-completion handshake, not from these atomics).
        for (i, a) in slot.stage_ns.iter().enumerate() {
            snap.stage_ns[i] += a.load(Ordering::Relaxed);
        }
        for (i, a) in slot.stage_hits.iter().enumerate() {
            snap.stage_hits[i] += a.load(Ordering::Relaxed); // ORDERING: as above
        }
        for (i, a) in slot.counters.iter().enumerate() {
            let v = a.load(Ordering::Relaxed); // ORDERING: as above
            if Counter::ALL[i].is_high_water() {
                // A per-slot maximum aggregates across slots by max, not sum.
                snap.counters[i] = snap.counters[i].max(v);
            } else {
                snap.counters[i] += v;
            }
        }
        for (i, a) in slot.hist.iter().enumerate() {
            snap.hist[i] += a.load(Ordering::Relaxed); // ORDERING: as above
        }
    }
    snap
}

// The enabled flag and registry are process-wide, so unit tests across the
// crate serialize themselves behind one lock instead of fighting over state.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        test_guard()
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        {
            let _s = span(Stage::OuterProduct);
            add(Counter::Flops, 1000);
        }
        let snap = snapshot();
        assert_eq!(snap.stage_ns(Stage::OuterProduct), 0);
        assert_eq!(snap.stage_hits(Stage::OuterProduct), 0);
        assert_eq!(snap.counter(Counter::Flops), 0);
    }

    #[test]
    fn spans_and_counters_accumulate_across_threads() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _s = span(Stage::InputTransform);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        add(Counter::Tiles, 7);
        std::thread::spawn(|| {
            add_stage_ns(Stage::InputTransform, 500);
            add(Counter::Tiles, 3);
        })
        .join()
        .unwrap();
        let snap = snapshot();
        set_enabled(false);
        assert!(snap.stage_ns(Stage::InputTransform) >= 2_000_000 + 500);
        assert_eq!(snap.stage_hits(Stage::InputTransform), 2);
        assert_eq!(snap.counter(Counter::Tiles), 10);
    }

    #[test]
    fn reset_zeroes_and_clears_pool_and_dispatch() {
        let _g = guard();
        set_enabled(true);
        reset();
        add(Counter::BytesLoaded, 64);
        set_pool_report(PoolReport {
            threads: 2,
            jobs: 1,
            workers: vec![],
        });
        set_dispatch_report(DispatchReport {
            isa: "avx2+fma".to_string(),
            lane_width: 8,
            forced_scalar: false,
            features: vec!["avx2".to_string()],
        });
        set_serve_report(ServeReport {
            buckets: vec![ServeBucketReport {
                label: "b0".to_string(),
                ..ServeBucketReport::default()
            }],
        });
        assert_eq!(snapshot().dispatch.as_ref().map(|d| d.lane_width), Some(8));
        assert_eq!(snapshot().serve.as_ref().map(|s| s.buckets.len()), Some(1));
        reset();
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter(Counter::BytesLoaded), 0);
        assert!(snap.pool.is_none());
        assert!(snap.dispatch.is_none());
        assert!(snap.serve.is_none());
    }

    #[test]
    fn stage_share_sums_to_one_over_recorded_stages() {
        let _g = guard();
        set_enabled(true);
        reset();
        add_stage_ns(Stage::InputTransform, 300);
        add_stage_ns(Stage::OuterProduct, 600);
        add_stage_ns(Stage::OutputTransform, 100);
        add_stage_ns(Stage::Total, 5_000); // excluded from attribution
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.attributed_ns(), 1000);
        assert!((snap.stage_share(Stage::OuterProduct) - 0.6).abs() < 1e-12);
        let total: f64 = Stage::ALL
            .iter()
            .filter(|&&s| !matches!(s, Stage::Total))
            .map(|&s| snap.stage_share(s))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_water_counter_takes_max_not_sum() {
        let _g = guard();
        set_enabled(true);
        reset();
        maximize(Counter::ArenaBytesHighWater, 4096);
        maximize(Counter::ArenaBytesHighWater, 1024); // lower: no effect
        std::thread::spawn(|| maximize(Counter::ArenaBytesHighWater, 2048))
            .join()
            .unwrap();
        let snap = snapshot();
        set_enabled(false);
        // Summed across slots this would read 4096 + 2048; a high-water
        // mark must report the single largest value.
        assert_eq!(snap.counter(Counter::ArenaBytesHighWater), 4096);
    }

    #[test]
    fn umbrella_stages_excluded_from_attribution() {
        let _g = guard();
        set_enabled(true);
        reset();
        add_stage_ns(Stage::OuterProduct, 700);
        add_stage_ns(Stage::EnginePlan, 10_000);
        add_stage_ns(Stage::EngineRun, 20_000);
        add_stage_ns(Stage::Total, 30_000);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.attributed_ns(), 700);
        assert_eq!(snap.stage_hits(Stage::EnginePlan), 1);
    }

    #[test]
    fn latency_histograms_aggregate_across_threads() {
        let _g = guard();
        set_enabled(true);
        reset();
        // A span, a direct stage add and an explicit plan-cache sample all
        // land in their sites; a cross-thread sample sums into the same
        // snapshot histogram.
        add_stage_ns(Stage::OuterProduct, 700); // bucket le 1023
        {
            let _s = span(Stage::OuterProduct);
        }
        record_latency(HistSite::EnginePlanMiss, 5_000);
        std::thread::spawn(|| add_stage_ns(Stage::OuterProduct, 900))
            .join()
            .unwrap();
        let snap = snapshot();
        set_enabled(false);
        let h = snap.histogram(HistSite::Stage(Stage::OuterProduct));
        assert_eq!(h.count, 3);
        assert!(h.buckets[bucket_index(700)] >= 2);
        assert_eq!(snap.histogram(HistSite::EnginePlanMiss).count, 1);
        assert_eq!(
            snap.histogram(HistSite::EnginePlanMiss).p50_ns(),
            bucket_le_ns(bucket_index(5_000))
        );
        assert_eq!(snap.histogram(HistSite::Stage(Stage::Epilogue)).count, 0);
        // Histogram counts mirror stage hits for stage sites.
        assert_eq!(snap.stage_hits(Stage::OuterProduct), 3);
        // A default snapshot (no cells) reads as empty, not a panic.
        assert_eq!(Snapshot::default().histogram(HistSite::EnginePlanHit).count, 0);
    }

    #[test]
    fn disabled_records_no_histograms() {
        let _g = guard();
        set_enabled(false);
        reset();
        record_latency(HistSite::EnginePlanHit, 123);
        add_stage_ns(Stage::OuterProduct, 456);
        let snap = snapshot();
        assert_eq!(snap.histogram(HistSite::EnginePlanHit).count, 0);
        assert_eq!(snap.histogram(HistSite::Stage(Stage::OuterProduct)).count, 0);
    }

    #[test]
    fn pool_report_shares() {
        let report = PoolReport {
            threads: 2,
            jobs: 4,
            workers: vec![
                PoolWorkerStats {
                    lane: 0,
                    is_caller_lane: true,
                    chunks: 30,
                    busy_ns: 900,
                    idle_ns: 0,
                },
                PoolWorkerStats {
                    lane: 1,
                    is_caller_lane: false,
                    chunks: 70,
                    busy_ns: 750,
                    idle_ns: 250,
                },
            ],
        };
        assert!((report.caller_share() - 0.3).abs() < 1e-12);
        assert!((report.utilization() - 0.75).abs() < 1e-12);
        let json = report.to_json().pretty();
        assert!(json.contains("\"caller_share\": 0.3"));
        assert!(json.contains("\"lane\": 1"));
    }
}
