//! Log2-bucketed latency histograms.
//!
//! Aggregate stage totals (the `stages` section of a [`crate::MetricsReport`])
//! answer "where did the time go", but the serving story needs "how is
//! per-call latency *distributed*" — a plan-cache hit that is usually 200 ns
//! but occasionally 2 ms is invisible in a sum. Each instrumentation site
//! (every [`Stage`] plus the engine plan-cache outcomes) gets a fixed array
//! of power-of-two buckets; recording is one relaxed `fetch_add` into the
//! thread-local slot, and p50/p90/p99 are derived at snapshot time by a
//! cumulative walk. Bucket `i` (for `i >= 1`) covers `[2^(i-1), 2^i - 1]`
//! nanoseconds; bucket 0 holds exact zeros; the last bucket is open-ended.

use crate::{Stage, N_STAGES};

/// Number of log2 buckets per site. Bucket 38 covers up to ~2^38 ns
/// (~4.6 minutes); the last bucket absorbs anything longer.
pub const N_HIST_BUCKETS: usize = 40;

/// Histogram sites: one per [`Stage`], the two engine plan-cache outcomes
/// (a hit is a mutex-guarded map lookup, a miss additionally pays the full
/// plan build — their latency distributions are different beasts), and the
/// three serving-layer sites fed by `iwino-serve` (queue wait, batch
/// execution, and end-to-end request latency).
pub const N_HIST_SITES: usize = N_STAGES + 5;

/// A latency-histogram site. Stage sites are fed automatically by
/// [`crate::span`] / [`crate::add_stage_ns`]; the plan-cache sites are fed
/// explicitly by `iwino-engine` through [`crate::record_latency`], and the
/// serve sites by `iwino-serve` (which additionally keeps *per-bucket*
/// histograms of its own, built on the same [`bucket_index`] /
/// [`HistogramSummary`] machinery — these global sites aggregate across
/// buckets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistSite {
    Stage(Stage),
    EnginePlanHit,
    EnginePlanMiss,
    /// Admission → coalescer pickup, per request.
    ServeQueueWait,
    /// One coalesced batch's execution (plan lookup + image fan-out).
    ServeBatch,
    /// Admission → response, per served request.
    ServeE2e,
}

impl HistSite {
    /// Flat index into the per-slot bucket table.
    pub fn index(self) -> usize {
        match self {
            HistSite::Stage(s) => s as usize,
            HistSite::EnginePlanHit => N_STAGES,
            HistSite::EnginePlanMiss => N_STAGES + 1,
            HistSite::ServeQueueWait => N_STAGES + 2,
            HistSite::ServeBatch => N_STAGES + 3,
            HistSite::ServeE2e => N_STAGES + 4,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            HistSite::Stage(s) => s.name(),
            HistSite::EnginePlanHit => "engine_plan_hit",
            HistSite::EnginePlanMiss => "engine_plan_miss",
            HistSite::ServeQueueWait => "serve_queue_wait",
            HistSite::ServeBatch => "serve_batch",
            HistSite::ServeE2e => "serve_e2e",
        }
    }

    /// Every site, in flat-index order.
    pub fn all() -> [HistSite; N_HIST_SITES] {
        let mut out = [HistSite::EnginePlanHit; N_HIST_SITES];
        let mut i = 0;
        while i < N_STAGES {
            out[i] = HistSite::Stage(Stage::ALL[i]);
            i += 1;
        }
        out[N_STAGES] = HistSite::EnginePlanHit;
        out[N_STAGES + 1] = HistSite::EnginePlanMiss;
        out[N_STAGES + 2] = HistSite::ServeQueueWait;
        out[N_STAGES + 3] = HistSite::ServeBatch;
        out[N_STAGES + 4] = HistSite::ServeE2e;
        out
    }
}

/// Bucket index for a latency sample: the number of significant bits of
/// `ns`, clamped to the table width. 0 → 0, 1 → 1, 2..3 → 2, 4..7 → 3, …
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(N_HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` in nanoseconds. The last bucket is
/// open-ended; its nominal bound is still reported so quantiles stay finite.
#[inline]
pub fn bucket_le_ns(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// One site's bucket counts, extracted from a [`crate::Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub buckets: [u64; N_HIST_BUCKETS],
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            count: 0,
            buckets: [0; N_HIST_BUCKETS],
        }
    }
}

impl HistogramSummary {
    pub fn from_buckets(buckets: [u64; N_HIST_BUCKETS]) -> HistogramSummary {
        HistogramSummary {
            count: buckets.iter().sum(),
            buckets,
        }
    }

    /// Upper-bound estimate of the `q`-quantile in nanoseconds: the bucket
    /// bound at rank `ceil(q · count)`. Exact to within the bucket's factor
    /// of two, which is the resolution the log2 layout promises.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_le_ns(i);
            }
        }
        bucket_le_ns(N_HIST_BUCKETS - 1)
    }

    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        // Everything past the table width lands in the open-ended bucket.
        assert_eq!(bucket_index(u64::MAX), N_HIST_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 62), N_HIST_BUCKETS - 1);
        // A sample sits at or below the bound of the bucket it maps to.
        for ns in [0u64, 1, 2, 5, 100, 4096, 1_000_000] {
            assert!(ns <= bucket_le_ns(bucket_index(ns)), "ns = {ns}");
        }
        assert_eq!(bucket_le_ns(0), 0);
        assert_eq!(bucket_le_ns(1), 1);
        assert_eq!(bucket_le_ns(11), 2047);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        // 90 samples in the 16..31 ns bucket, 10 samples in 512..1023 ns:
        // p50 and p90 sit in the bulk, p99 must reach the tail.
        let mut buckets = [0u64; N_HIST_BUCKETS];
        buckets[5] = 90;
        buckets[10] = 10;
        let h = HistogramSummary::from_buckets(buckets);
        assert_eq!(h.count, 100);
        assert_eq!(h.p50_ns(), 31);
        assert_eq!(h.p90_ns(), 31); // rank 90 is the last bulk sample
        assert_eq!(h.p99_ns(), 1023);
        assert_eq!(h.quantile_ns(1.0), 1023);
        // Quantiles of an empty histogram are zero, not a panic.
        assert_eq!(HistogramSummary::default().p99_ns(), 0);
    }

    #[test]
    fn single_sample_reports_its_own_bucket_everywhere() {
        let mut buckets = [0u64; N_HIST_BUCKETS];
        buckets[bucket_index(700)] = 1;
        let h = HistogramSummary::from_buckets(buckets);
        assert_eq!(h.p50_ns(), 1023);
        assert_eq!(h.p99_ns(), 1023);
    }

    #[test]
    fn sites_have_unique_indices_and_names() {
        let all = HistSite::all();
        assert_eq!(all.len(), N_HIST_SITES);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.index(), i, "site {} out of order", s.name());
        }
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_HIST_SITES, "duplicate site names");
    }
}
