//! Flight-recorder tracing: bounded per-thread event rings plus a Chrome
//! Trace Event exporter.
//!
//! Aggregate stage timers (lib.rs) answer "how much"; the flight recorder
//! answers "when, and on which worker" — the multi-worker timeline the
//! paper's Figs 7–9 argue from. Each thread owns a fixed-capacity ring of
//! `(timestamp, kind|stage)` pairs; recording a span boundary is two
//! relaxed stores and a cursor bump by the owning thread, with no locks and
//! no allocation after the ring is created (one allocation per thread, on
//! its first traced event). When a ring fills it *drops* further events and
//! counts them — it never overwrites, so an exported trace is always a
//! truthful prefix and the drop count makes truncation self-describing.
//!
//! Begin/end balance is guaranteed by reservation: a `B` event is admitted
//! only if a slot remains for its own `E` *and* for the `E` of every span
//! already open on that thread. An `E` whose `B` was recorded therefore
//! always fits, so every exported `B` has a matching `E` even across
//! overflow — the invariant the trace-validity tests pin.
//!
//! Everything is gated on [`trace_enabled`] — a second flag alongside
//! [`crate::enabled`], so the zero-overhead-when-off contract extends to
//! tracing: one relaxed load and a predictable branch per potential event.

use crate::{Json, Stage, SCHEMA_VERSION};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity in events. 64 Ki events × 16 bytes =
/// 1 MiB per traced thread — enough for several seconds of chunk-level
/// recording before the recorder starts dropping.
pub const DEFAULT_TRACE_RING_CAPACITY: usize = 65_536;

const KIND_BEGIN: u64 = 0;
const KIND_END: u64 = 1;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_TRACE_RING_CAPACITY);

/// One thread's event ring. `ts`/`meta`/`head`/`open` are written only by
/// the owning thread; the exporter reads them after the workload quiesces.
struct EventRing {
    /// Stable trace thread id (registration order), used as the Chrome
    /// Trace `tid`.
    tid: usize,
    /// Thread label for the `thread_name` metadata event. Defaults to the
    /// OS thread name (`iwino-worker-N` for pool lanes).
    label: Mutex<String>,
    /// Nanoseconds since the process-wide trace epoch, one per event.
    ts: Box<[AtomicU64]>,
    /// Packed `kind << 32 | stage index`, one per event.
    meta: Box<[AtomicU64]>,
    /// Next write index; never exceeds capacity (drop-on-full, no wrap).
    head: AtomicUsize,
    /// Spans currently open on this thread (begins admitted, ends pending).
    open: AtomicUsize,
    /// Events refused because the ring was full.
    dropped: AtomicU64,
}

impl EventRing {
    fn push(&self, kind: u64, stage: Stage) -> bool {
        let cap = self.ts.len();
        // ORDERING: Relaxed throughout this method — `head` and `open` are
        // written only by the owning thread (program order keeps them
        // coherent here), and the exporter reads them only after the
        // workload quiesces, with the happens-before edge supplied by the
        // registry mutex; the atomics just make those reads well-defined.
        let head = self.head.load(Ordering::Relaxed);
        if kind == KIND_BEGIN {
            // Reservation: admit a begin only if the ring can still hold
            // this event, its own end, and the ends of every open span.
            let open = self.open.load(Ordering::Relaxed);
            if cap - head < open + 2 {
                self.dropped.fetch_add(1, Ordering::Relaxed); // ORDERING: as above
                return false;
            }
            self.open.store(open + 1, Ordering::Relaxed); // ORDERING: as above
        } else {
            // An end is only pushed for an admitted begin, whose
            // reservation guarantees this slot exists.
            debug_assert!(head < cap, "end event without a reserved slot");
            if head >= cap {
                self.dropped.fetch_add(1, Ordering::Relaxed); // ORDERING: as above
                return false;
            }
            let open = self.open.load(Ordering::Relaxed); // ORDERING: as above
            self.open.store(open.saturating_sub(1), Ordering::Relaxed); // ORDERING: as above
        }
        let ns = epoch().elapsed().as_nanos() as u64;
        self.ts[head].store(ns, Ordering::Relaxed); // ORDERING: as above
        self.meta[head].store((kind << 32) | stage as u64, Ordering::Relaxed); // ORDERING: as above
        self.head.store(head + 1, Ordering::Relaxed); // ORDERING: as above
        true
    }

    fn reset(&self) {
        // ORDERING: Relaxed — callers quiesce the workload first and hold
        // the registry mutex, whose release/acquire edge orders these
        // stores against later pushes and exports.
        self.head.store(0, Ordering::Relaxed);
        self.open.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// Monotonic zero point shared by every ring, so cross-thread timestamps
/// are directly comparable. Fixed on first use, never reset.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn trace_registry() -> &'static Mutex<Vec<Arc<EventRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<EventRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: Arc<EventRing> = {
        // ORDERING: Relaxed — the capacity is configuration, set before
        // tracing starts; a stale read would only size this ring with the
        // previous setting.
        let cap = RING_CAPACITY.load(Ordering::Relaxed).max(4);
        let label = std::thread::current().name().map(str::to_string);
        let mut reg = trace_registry().lock().unwrap();
        let tid = reg.len();
        let ring = Arc::new(EventRing {
            tid,
            label: Mutex::new(label.unwrap_or_else(|| format!("thread-{tid}"))),
            ts: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            meta: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicUsize::new(0),
            open: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        });
        reg.push(Arc::clone(&ring));
        ring
    };
}

/// Is the flight recorder capturing? One relaxed load; hot loops should
/// hoist it per batch exactly like [`crate::enabled`].
#[inline(always)]
pub fn trace_enabled() -> bool {
    // ORDERING: Relaxed — an independent bool gate (no data published
    // through it); a stale read only shifts which events land in the ring
    // by one batch, which the recorder tolerates by design.
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turn the flight recorder on or off process-wide.
pub fn set_trace_enabled(on: bool) {
    // ORDERING: Relaxed — see [`trace_enabled`]; callers toggle around a
    // quiesced region on one thread, where program order suffices.
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Set the capacity (in events) for rings created *after* this call.
/// Existing rings keep their size; call before the traced workload spawns
/// its threads. Clamped to at least 4 so the begin/end reservation always
/// has room to work with.
pub fn set_trace_ring_capacity(capacity: usize) {
    // ORDERING: Relaxed — configuration store read once per ring creation.
    RING_CAPACITY.store(capacity.max(4), Ordering::Relaxed);
}

pub fn trace_ring_capacity() -> usize {
    // ORDERING: Relaxed — configuration load, the read side of
    // [`set_trace_ring_capacity`].
    RING_CAPACITY.load(Ordering::Relaxed)
}

/// Record a span-begin event for `stage` on the current thread. Returns
/// whether the event landed; callers must emit the matching [`trace_end`]
/// *only* if it did, which is what keeps exported traces balanced.
#[inline]
pub fn trace_begin(stage: Stage) -> bool {
    if !trace_enabled() {
        return false;
    }
    RING.with(|r| r.push(KIND_BEGIN, stage))
}

/// Record the span-end event matching an admitted [`trace_begin`]. Always
/// lands (the begin reserved its slot), even if tracing was switched off
/// in between — a half-open span would corrupt the timeline.
#[inline]
pub fn trace_end(stage: Stage) {
    RING.with(|r| {
        r.push(KIND_END, stage);
    });
}

/// RAII guard emitting a begin/end pair around its scope. Unlike
/// [`crate::span`] it records *only* trace events — no stage-time
/// accumulation — so it is the right tool for timeline-granularity markers
/// (worker chunks, Γ row segments) whose durations are already attributed
/// to finer stages.
#[must_use = "a trace span emits its end event on drop; binding it to `_` drops immediately"]
pub struct TraceSpan {
    stage: Stage,
    live: bool,
}

#[inline]
pub fn trace_span(stage: Stage) -> TraceSpan {
    TraceSpan {
        live: trace_begin(stage),
        stage,
    }
}

impl Drop for TraceSpan {
    #[inline]
    fn drop(&mut self) {
        if self.live {
            trace_end(self.stage);
        }
    }
}

/// Override the current thread's trace label (defaults to the OS thread
/// name). Registers the thread's ring if it does not exist yet.
pub fn set_trace_thread_label(label: &str) {
    RING.with(|r| {
        *r.label.lock().unwrap() = label.to_string();
    });
}

/// Zero every ring (keeping allocations) so the next capture starts clean.
/// Call only while the traced workload is quiesced: events recorded
/// concurrently with a reset may be torn out of their begin/end pairs.
pub fn reset_trace() {
    for ring in trace_registry().lock().unwrap().iter() {
        ring.reset();
    }
}

/// Point-in-time description of the recorder: what a consumer needs to
/// judge whether a trace (or the run a metrics report describes) is
/// complete. `dropped > 0` means the timeline is a truthful prefix, not
/// the whole story.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceMeta {
    pub enabled: bool,
    pub ring_capacity: usize,
    pub threads: usize,
    pub events: u64,
    pub dropped: u64,
}

impl TraceMeta {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("enabled", Json::from(self.enabled)),
            ("ring_capacity", Json::from(self.ring_capacity)),
            ("threads", Json::from(self.threads)),
            ("events", Json::from(self.events)),
            ("trace_events_dropped", Json::from(self.dropped)),
        ])
    }
}

/// Aggregate recorder state across every registered ring.
pub fn trace_meta() -> TraceMeta {
    let reg = trace_registry().lock().unwrap();
    let mut meta = TraceMeta {
        enabled: trace_enabled(),
        ring_capacity: trace_ring_capacity(),
        threads: reg.len(),
        ..TraceMeta::default()
    };
    for ring in reg.iter() {
        // ORDERING: Relaxed — read after quiesce; see [`EventRing::push`].
        meta.events += ring.head.load(Ordering::Relaxed) as u64;
        meta.dropped += ring.dropped.load(Ordering::Relaxed); // ORDERING: as above
    }
    meta
}

/// Export every recorded event as a Chrome Trace Event document
/// (Perfetto-loadable: `ui.perfetto.dev` → "Open trace file"). One Chrome
/// `tid` per ring; `ts` is microseconds since the trace epoch as required
/// by the format. Call after the traced workload quiesces.
pub fn export_chrome_trace() -> Json {
    let reg = trace_registry().lock().unwrap();
    let mut events = Vec::new();
    for ring in reg.iter() {
        // ORDERING: Relaxed — read after quiesce; the registry mutex
        // supplies the happens-before (see [`EventRing::push`]).
        let head = ring.head.load(Ordering::Relaxed).min(ring.ts.len());
        if head == 0 {
            continue;
        }
        events.push(Json::obj(vec![
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(1u64)),
            ("tid", Json::from(ring.tid)),
            (
                "args",
                // LOCK ORDER: obs::trace_registry -> obs::label. Labels are
                // per-ring leaves; nothing locks the registry under one.
                Json::obj(vec![("name", Json::from(ring.label.lock().unwrap().as_str()))]),
            ),
        ]));
        for i in 0..head {
            let ns = ring.ts[i].load(Ordering::Relaxed); // ORDERING: as above
            let meta = ring.meta[i].load(Ordering::Relaxed); // ORDERING: as above
            let stage_idx = (meta & 0xffff_ffff) as usize;
            let name = Stage::ALL.get(stage_idx).map_or("unknown", |s| s.name());
            events.push(Json::obj(vec![
                ("name", Json::from(name)),
                ("cat", Json::from("iwino")),
                ("ph", Json::from(if meta >> 32 == KIND_BEGIN { "B" } else { "E" })),
                ("ts", Json::Num(ns as f64 / 1000.0)),
                ("pid", Json::from(1u64)),
                ("tid", Json::from(ring.tid)),
            ]));
        }
    }
    drop(reg);
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj(vec![
                ("kind", Json::from("trace")),
                ("schema_version", Json::from(SCHEMA_VERSION)),
                ("trace_meta", trace_meta().to_json()),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Events of one ring, decoded from an export: `(ph, stage name, ts_us)`.
    fn events_for_label(doc: &Json, label: &str) -> Vec<(String, String, f64)> {
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let tid = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("M")
                    && e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str) == Some(label)
            })
            .and_then(|e| e.get("tid"))
            .and_then(Json::as_u64);
        let Some(tid) = tid else { return Vec::new() };
        events
            .iter()
            .filter(|e| e.get("tid").and_then(Json::as_u64) == Some(tid))
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
            .map(|e| {
                (
                    e.get("ph").and_then(Json::as_str).unwrap().to_string(),
                    e.get("name").and_then(Json::as_str).unwrap().to_string(),
                    e.get("ts").and_then(Json::as_f64).unwrap(),
                )
            })
            .collect()
    }

    fn assert_balanced(events: &[(String, String, f64)]) {
        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = f64::NEG_INFINITY;
        for (ph, name, ts) in events {
            assert!(*ts >= last_ts, "timestamps must be non-decreasing per thread");
            last_ts = *ts;
            match ph.as_str() {
                "B" => stack.push(name),
                "E" => assert_eq!(stack.pop(), Some(name.as_str()), "E without matching B"),
                other => panic!("unexpected ph {other:?}"),
            }
        }
        assert!(stack.is_empty(), "unclosed B events: {stack:?}");
    }

    #[test]
    fn overflow_drops_events_but_keeps_pairs_balanced() {
        let _g = crate::test_guard();
        reset_trace();
        set_trace_enabled(true);
        let old_cap = trace_ring_capacity();
        set_trace_ring_capacity(32);
        std::thread::spawn(|| {
            set_trace_thread_label("overflow-test");
            for _ in 0..100 {
                let _t = trace_span(Stage::OuterProduct);
            }
        })
        .join()
        .unwrap();
        set_trace_ring_capacity(old_cap);
        set_trace_enabled(false);
        let doc = export_chrome_trace();
        let events = events_for_label(&doc, "overflow-test");
        // 32 slots hold 16 sequential begin/end pairs; 84 begins dropped,
        // and none of their ends were emitted.
        assert_eq!(events.len(), 32);
        assert_balanced(&events);
        assert!(trace_meta().dropped >= 84, "dropped = {}", trace_meta().dropped);
    }

    #[test]
    fn nested_begins_reserve_room_for_their_ends() {
        let _g = crate::test_guard();
        reset_trace();
        set_trace_enabled(true);
        let old_cap = trace_ring_capacity();
        set_trace_ring_capacity(8);
        std::thread::spawn(|| {
            set_trace_thread_label("nest-test");
            // Depth-8 nesting against an 8-slot ring: begins 0..3 are
            // admitted (each reserving its end), deeper ones are refused.
            fn nest(depth: usize) {
                if depth == 0 {
                    return;
                }
                let _t = trace_span(Stage::InputTransform);
                nest(depth - 1);
            }
            nest(8);
        })
        .join()
        .unwrap();
        set_trace_ring_capacity(old_cap);
        set_trace_enabled(false);
        let events = events_for_label(&export_chrome_trace(), "nest-test");
        assert_eq!(events.len(), 8, "4 admitted begins and their 4 ends");
        assert_balanced(&events);
        assert!(trace_meta().dropped >= 4);
    }

    #[test]
    fn disabled_recorder_admits_nothing() {
        let _g = crate::test_guard();
        reset_trace();
        set_trace_enabled(false);
        assert!(!trace_begin(Stage::Total));
        {
            let _t = trace_span(Stage::Total);
        }
        assert_eq!(trace_meta().events, 0);
        assert_eq!(trace_meta().dropped, 0);
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let _g = crate::test_guard();
        reset_trace();
        set_trace_enabled(true);
        set_trace_thread_label("export-test");
        {
            let _outer = trace_span(Stage::Total);
            let _inner = trace_span(Stage::OuterProduct);
        }
        set_trace_enabled(false);
        let doc = export_chrome_trace();
        let parsed = Json::parse(&doc.pretty()).expect("exported trace must be valid JSON");
        let events = events_for_label(&parsed, "export-test");
        assert_eq!(events.len(), 4);
        assert_balanced(&events);
        // Inner span closes first (LIFO drop order).
        assert_eq!((events[2].0.as_str(), events[2].1.as_str()), ("E", "outer_product"));
        assert_eq!((events[3].0.as_str(), events[3].1.as_str()), ("E", "total"));
        let other = parsed.get("otherData").expect("otherData");
        assert_eq!(other.get("kind").and_then(Json::as_str), Some("trace"));
        assert_eq!(other.get("schema_version").and_then(Json::as_u64), Some(SCHEMA_VERSION));
    }
}
