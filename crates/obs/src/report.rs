//! Structured metrics export: one JSON document per measured run.
//!
//! Schema (version 7). Version 2 added the `"kind"` discriminator so
//! consumers can tell a metrics document from the static-analysis report
//! the `analyzer` crate emits with the same `schema_version` ("metrics"
//! here, "analysis" there); version 3 added the `"dispatch"` section
//! recording detected CPU features and the dispatched microkernel ISA, so
//! comparisons can refuse to diff runs from different ISAs; version 4 added
//! the `"histograms"` section (log2-bucketed latency distributions with
//! p50/p90/p99 per stage and per engine plan-cache outcome) and the
//! `"trace_meta"` section describing the flight recorder's state; version 5
//! adds the `"serve"` section (per-bucket batch-serving statistics filled
//! in by `iwino-serve`: admission accounting, coalesce factor, queue-depth
//! high water, per-bucket p50/p99) plus the `serve_*` counters and the
//! `serve_queue_wait` / `serve_batch` / `serve_e2e` histogram sites;
//! version 6 adds the packed-GEMM sub-stages (`gemm_pack`, `gemm_kernel`)
//! and the `gemm_packed_a_bytes` / `gemm_packed_b_bytes` counters reported
//! by `iwino-gemm`; version 7 adds the `indirect_setup` stage and the
//! `indirect_table_bytes` counter reported by `iwino-indirect` when the
//! indirect-convolution backend builds its offset table:
//!
//! ```text
//! {
//!   "schema_version": 7,
//!   "kind": "metrics",
//!   "label": "<workload name>",
//!   "wall_ns": <u64>,                    // end-to-end wall time
//!   "stages": { "<stage>": {"ns", "hits", "share", "gflops"} , ... },
//!   "counters": { "<counter>": <u64>, ... },
//!   "histograms": { "<site>": {"count", "p50_ns", "p90_ns", "p99_ns",
//!                              "buckets": [{"le_ns", "count"}, ...]}, ... },
//!   "derived": { "gflops", "arithmetic_intensity", "bytes_total", ... },
//!   "pool": { "threads", "jobs", "caller_share", "utilization",
//!             "workers": [{"lane", "is_caller_lane", "chunks",
//!                          "busy_ns", "idle_ns"}, ...] } | null,
//!   "dispatch": { "isa", "lane_width", "forced_scalar",
//!                 "features": ["sse2", ...] } | null,
//!   "serve": { "buckets": [{"label", "admitted", "served", "rejected",
//!                           "expired", "batches", "coalesce_factor",
//!                           "max_batch", "queue_depth_high_water",
//!                           "p50_e2e_ns", "p99_e2e_ns"}, ...] } | null,
//!   "trace_meta": { "enabled", "ring_capacity", "threads", "events",
//!                   "trace_events_dropped" }
//! }
//! ```
//!
//! Stages with zero hits (and histogram sites with zero samples) are
//! omitted so quick runs stay readable; `"share"` is the stage's fraction
//! of attributed (non-total) time, and histogram buckets list only the
//! non-empty cells with their inclusive `le_ns` upper bound.

use crate::{snapshot, Counter, HistSite, Json, Snapshot, Stage};
use std::io;
use std::path::Path;

/// Version of the JSON layout emitted by [`MetricsReport::to_json`] (and
/// shared by the analyzer's `"kind": "analysis"` documents).
pub const SCHEMA_VERSION: u64 = 7;

/// A captured, self-describing metrics document.
#[derive(Clone, Debug)]
pub struct MetricsReport {
    pub label: String,
    pub wall_ns: u64,
    pub snapshot: Snapshot,
}

impl MetricsReport {
    /// Snapshot the global registry, attributing it to `label` and an
    /// externally measured wall time (nanoseconds).
    pub fn capture(label: &str, wall_ns: u64) -> MetricsReport {
        MetricsReport {
            label: label.to_string(),
            wall_ns,
            snapshot: snapshot(),
        }
    }

    /// Achieved GFLOP/s over the wall time. Uses the standard-convolution
    /// FLOP convention of the `Flops` counter (see [`Counter`]).
    pub fn gflops(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.snapshot.counter(Counter::Flops) as f64 / self.wall_ns as f64
    }

    /// Effective GFLOP/s of one stage: the run's paper-convention FLOPs
    /// over the time attributed to that stage alone — "the rate the run
    /// would achieve if this stage were the whole pipeline". Because the
    /// FLOP convention is fixed per shape, the ratio of this number across
    /// two commits is exactly the stage's speedup.
    pub fn stage_gflops(&self, stage: Stage) -> f64 {
        let ns = self.snapshot.stage_ns(stage);
        if ns == 0 {
            return 0.0;
        }
        self.snapshot.counter(Counter::Flops) as f64 / ns as f64
    }

    /// FLOPs per byte moved (loads + stores recorded by the kernels).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.snapshot.counter(Counter::BytesLoaded) + self.snapshot.counter(Counter::BytesStored);
        if bytes == 0 {
            return 0.0;
        }
        self.snapshot.counter(Counter::Flops) as f64 / bytes as f64
    }

    pub fn to_json(&self) -> Json {
        let snap = &self.snapshot;
        let stages = Stage::ALL
            .iter()
            .filter(|&&s| snap.stage_hits(s) > 0)
            .map(|&s| {
                (
                    s.name().to_string(),
                    Json::obj(vec![
                        ("ns", Json::from(snap.stage_ns(s))),
                        ("hits", Json::from(snap.stage_hits(s))),
                        ("share", Json::from(snap.stage_share(s))),
                        ("gflops", Json::from(self.stage_gflops(s))),
                    ]),
                )
            })
            .collect();
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), Json::from(snap.counter(c))))
            .collect();
        let histograms = HistSite::all()
            .iter()
            .map(|&site| (site, snap.histogram(site)))
            .filter(|(_, h)| h.count > 0)
            .map(|(site, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        Json::obj(vec![
                            ("le_ns", Json::from(crate::bucket_le_ns(i))),
                            ("count", Json::from(c)),
                        ])
                    })
                    .collect();
                (
                    site.name().to_string(),
                    Json::obj(vec![
                        ("count", Json::from(h.count)),
                        ("p50_ns", Json::from(h.p50_ns())),
                        ("p90_ns", Json::from(h.p90_ns())),
                        ("p99_ns", Json::from(h.p99_ns())),
                        ("buckets", Json::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        let bytes_total = snap.counter(Counter::BytesLoaded) + snap.counter(Counter::BytesStored);
        let derived = Json::obj(vec![
            ("gflops", Json::from(self.gflops())),
            ("arithmetic_intensity", Json::from(self.arithmetic_intensity())),
            ("bytes_total", Json::from(bytes_total)),
            ("attributed_ns", Json::from(snap.attributed_ns())),
            (
                "ruse_tile_fraction",
                Json::from(if snap.counter(Counter::Tiles) > 0 {
                    snap.counter(Counter::RuseTiles) as f64 / snap.counter(Counter::Tiles) as f64
                } else {
                    0.0
                }),
            ),
        ]);
        Json::obj(vec![
            ("schema_version", Json::from(SCHEMA_VERSION)),
            ("kind", Json::from("metrics")),
            ("label", Json::from(self.label.as_str())),
            ("wall_ns", Json::from(self.wall_ns)),
            ("stages", Json::Obj(stages)),
            ("counters", Json::Obj(counters)),
            ("histograms", Json::Obj(histograms)),
            ("derived", derived),
            ("pool", snap.pool.as_ref().map_or(Json::Null, |p| p.to_json())),
            ("dispatch", snap.dispatch.as_ref().map_or(Json::Null, |d| d.to_json())),
            ("serve", snap.serve.as_ref().map_or(Json::Null, |s| s.to_json())),
            ("trace_meta", snap.trace.to_json()),
        ])
    }

    /// Pretty-print the report to a file.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json().pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{add, add_stage_ns, reset, set_enabled};

    #[test]
    fn report_derives_roofline_quantities() {
        // Serialize against the shared global state used by lib.rs tests.
        let snap = {
            let _g = crate::test_guard();
            set_enabled(true);
            reset();
            // The trace rings are process-global too; zero their drop
            // counters so the trace_meta assertions below are order-proof.
            crate::reset_trace();
            add(Counter::Flops, 2_000_000);
            add(Counter::BytesLoaded, 800_000);
            add(Counter::BytesStored, 200_000);
            add(Counter::Tiles, 10);
            add(Counter::RuseTiles, 4);
            add_stage_ns(Stage::OuterProduct, 750);
            add_stage_ns(Stage::InputTransform, 250);
            crate::set_dispatch_report(crate::DispatchReport {
                isa: "avx2+fma".to_string(),
                lane_width: 8,
                forced_scalar: false,
                features: vec!["avx2".to_string(), "fma".to_string()],
            });
            let snap = crate::snapshot();
            set_enabled(false);
            snap
        };
        let report = MetricsReport {
            label: "unit".to_string(),
            wall_ns: 1_000_000,
            snapshot: snap,
        };
        assert!((report.gflops() - 2.0).abs() < 1e-12);
        assert!((report.arithmetic_intensity() - 2.0).abs() < 1e-12);
        // 2e6 FLOPs over 750 ns in the outer product: 2666.67 "GFLOP/s".
        assert!((report.stage_gflops(Stage::OuterProduct) - 2_000_000.0 / 750.0).abs() < 1e-9);
        assert_eq!(report.stage_gflops(Stage::Epilogue), 0.0);
        let json = report.to_json().pretty();
        assert!(json.contains("\"schema_version\": 7"));
        assert!(json.contains("\"kind\": \"metrics\""));
        assert!(json.contains("\"label\": \"unit\""));
        assert!(json.contains("\"outer_product\""));
        assert!(json.contains("\"ruse_tile_fraction\": 0.4"));
        // Version 3: the dispatch section identifies the microkernel path.
        assert!(json.contains("\"isa\": \"avx2+fma\""));
        assert!(json.contains("\"lane_width\": 8"));
        assert!(json.contains("\"forced_scalar\": false"));
        // Stages with zero hits are omitted.
        assert!(!json.contains("\"baseline\""));
        // Version 4: histograms and trace metadata. The parsed form is
        // easier to interrogate than substring checks.
        let doc = Json::parse(&json).expect("report must emit valid JSON");
        let hist = doc.get("histograms").expect("histograms section");
        let op = hist.get("outer_product").expect("outer_product histogram");
        assert_eq!(op.get("count").and_then(Json::as_u64), Some(1));
        // One 750 ns sample: every quantile reports its bucket bound.
        let bound = crate::bucket_le_ns(crate::bucket_index(750));
        assert_eq!(op.get("p50_ns").and_then(Json::as_u64), Some(bound));
        assert_eq!(op.get("p99_ns").and_then(Json::as_u64), Some(bound));
        assert_eq!(op.get("buckets").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        // Zero-sample sites are omitted.
        assert!(hist.get("engine_plan_hit").is_none());
        let trace = doc.get("trace_meta").expect("trace_meta section");
        assert_eq!(trace.get("trace_events_dropped").and_then(Json::as_u64), Some(0));
        assert!(trace.get("ring_capacity").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn report_without_dispatch_serializes_null() {
        let report = MetricsReport {
            label: "empty".to_string(),
            wall_ns: 1,
            snapshot: Snapshot::default(),
        };
        let json = report.to_json().pretty();
        assert!(json.contains("\"dispatch\": null"));
        assert!(json.contains("\"pool\": null"));
        assert!(json.contains("\"serve\": null"));
        // A default snapshot still carries the (all-zero) sections new in
        // version 4, so consumers can rely on their presence.
        assert!(json.contains("\"histograms\": {}"));
        assert!(json.contains("\"trace_events_dropped\": 0"));
    }

    #[test]
    fn serve_section_reports_buckets_with_coalesce_factor() {
        // Version 5: the serve section is attached through the snapshot
        // slot, the same way pool/dispatch reports are.
        let snap = Snapshot {
            serve: Some(crate::ServeReport {
                buckets: vec![crate::ServeBucketReport {
                    label: "conv3x3_32".to_string(),
                    admitted: 100,
                    served: 80,
                    rejected: 12,
                    expired: 8,
                    batches: 20,
                    max_batch: 8,
                    queue_depth_high_water: 16,
                    p50_e2e_ns: 1023,
                    p99_e2e_ns: 8191,
                }],
            }),
            ..Default::default()
        };
        let report = MetricsReport {
            label: "serve".to_string(),
            wall_ns: 1,
            snapshot: snap,
        };
        let json = report.to_json().pretty();
        let doc = Json::parse(&json).expect("valid JSON");
        let buckets = doc
            .get("serve")
            .and_then(|s| s.get("buckets"))
            .and_then(Json::as_arr)
            .expect("serve.buckets");
        assert_eq!(buckets.len(), 1);
        let b = &buckets[0];
        assert_eq!(b.get("label").and_then(Json::as_str), Some("conv3x3_32"));
        assert_eq!(b.get("admitted").and_then(Json::as_u64), Some(100));
        // 80 served over 20 batches: the coalescer packed 4 requests per
        // forward on average.
        assert_eq!(b.get("coalesce_factor").and_then(Json::as_f64), Some(4.0));
        assert_eq!(b.get("p99_e2e_ns").and_then(Json::as_u64), Some(8191));
        // The accounting identity the serve counters promise.
        let (adm, s, r, e) = (100u64, 80u64, 12u64, 8u64);
        assert_eq!(adm, s + r + e);
    }
}
