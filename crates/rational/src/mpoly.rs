//! Sparse multivariate polynomials over [`Rational`] — the symbolic
//! substrate of the analyzer's transform verifier.
//!
//! The Winograd identity `Aᵀ[(G g) ⊙ (Dᵀ d)] = conv(g, d)` is an equality
//! of *bilinear forms* in the filter taps `g_j` and data items `d_i`. To
//! prove it for **all** inputs — not just sampled ones — both sides are
//! evaluated with the inputs left as indeterminates: `g_j` and `d_i` become
//! variables, the transform entries stay exact rationals, and the identity
//! holds iff the difference polynomial is identically zero. Everything the
//! verifier needs is degree ≤ 2 (products of two linear forms), but the
//! representation is general: a term map from a sorted variable multiset to
//! its rational coefficient.
//!
//! Variables are plain `u32` ids; callers assign disjoint id ranges to the
//! symbol families they need (e.g. filter taps vs. data items vs. planes).

use crate::Rational;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A multivariate polynomial `Σ c · Π x_i`. Invariant: no stored
/// coefficient is zero, and every monomial key is sorted (a multiset of
/// variable ids), so structural equality is semantic equality.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MPoly {
    terms: BTreeMap<Vec<u32>, Rational>,
}

impl MPoly {
    /// The zero polynomial.
    pub fn zero() -> MPoly {
        MPoly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: Rational) -> MPoly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Vec::new(), c);
        }
        MPoly { terms }
    }

    /// The single variable `x_id`.
    pub fn var(id: u32) -> MPoly {
        let mut terms = BTreeMap::new();
        terms.insert(vec![id], Rational::ONE);
        MPoly { terms }
    }

    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of (nonzero) terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Total degree (0 for constants and for the zero polynomial).
    pub fn degree(&self) -> usize {
        self.terms.keys().map(Vec::len).max().unwrap_or(0)
    }

    /// Coefficient of the monomial with the given variable multiset
    /// (order-insensitive); zero if absent.
    pub fn coeff(&self, vars: &[u32]) -> Rational {
        let mut key = vars.to_vec();
        key.sort_unstable();
        self.terms.get(&key).copied().unwrap_or(Rational::ZERO)
    }

    /// Multiply by a rational constant.
    pub fn scale(&self, c: Rational) -> MPoly {
        if c.is_zero() {
            return MPoly::zero();
        }
        MPoly {
            terms: self.terms.iter().map(|(k, &v)| (k.clone(), v * c)).collect(),
        }
    }

    /// Largest absolute coefficient (zero for the zero polynomial). The
    /// verifier reports this for residuals so a broken transform shows
    /// *how* wrong it is, not just that it is.
    pub fn max_abs_coeff(&self) -> Rational {
        self.terms.values().map(Rational::abs).max().unwrap_or(Rational::ZERO)
    }

    fn add_term(&mut self, key: Vec<u32>, c: Rational) {
        if c.is_zero() {
            return;
        }
        use std::collections::btree_map::Entry;
        match self.terms.entry(key) {
            Entry::Vacant(e) => {
                e.insert(c);
            }
            Entry::Occupied(mut e) => {
                let sum = *e.get() + c;
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
    }
}

impl Add for &MPoly {
    type Output = MPoly;
    fn add(self, rhs: &MPoly) -> MPoly {
        let mut out = self.clone();
        for (k, &c) in &rhs.terms {
            out.add_term(k.clone(), c);
        }
        out
    }
}

impl Sub for &MPoly {
    type Output = MPoly;
    fn sub(self, rhs: &MPoly) -> MPoly {
        let mut out = self.clone();
        for (k, &c) in &rhs.terms {
            out.add_term(k.clone(), -c);
        }
        out
    }
}

impl Mul for &MPoly {
    type Output = MPoly;
    fn mul(self, rhs: &MPoly) -> MPoly {
        let mut out = MPoly::zero();
        for (ka, &ca) in &self.terms {
            for (kb, &cb) in &rhs.terms {
                let mut key = Vec::with_capacity(ka.len() + kb.len());
                key.extend_from_slice(ka);
                key.extend_from_slice(kb);
                key.sort_unstable();
                out.add_term(key, ca * cb);
            }
        }
        out
    }
}

impl Neg for &MPoly {
    type Output = MPoly;
    fn neg(self) -> MPoly {
        self.scale(-Rational::ONE)
    }
}

impl fmt::Display for MPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (key, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if key.is_empty() {
                write!(f, "{c}")?;
            } else {
                write!(f, "{c}")?;
                for v in key {
                    write!(f, "·x{v}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn construction_and_zero() {
        assert!(MPoly::zero().is_zero());
        assert!(MPoly::constant(Rational::ZERO).is_zero());
        assert!(!MPoly::var(3).is_zero());
        assert_eq!(MPoly::var(3).degree(), 1);
        assert_eq!(MPoly::constant(r(2, 1)).degree(), 0);
    }

    #[test]
    fn ring_operations() {
        let x = MPoly::var(0);
        let y = MPoly::var(1);
        // (x + y)(x − y) = x² − y²
        let lhs = &(&x + &y) * &(&x - &y);
        let x2 = &x * &x;
        let y2 = &y * &y;
        assert_eq!(lhs, &x2 - &y2);
        assert_eq!(lhs.coeff(&[0, 0]), Rational::ONE);
        assert_eq!(lhs.coeff(&[1, 1]), -Rational::ONE);
        assert_eq!(lhs.coeff(&[0, 1]), Rational::ZERO);
        assert_eq!(lhs.degree(), 2);
    }

    #[test]
    fn cancellation_restores_zero() {
        let x = MPoly::var(7);
        let half = MPoly::constant(r(1, 2));
        let p = &(&x * &half) + &(&x * &half);
        assert_eq!(p, MPoly::var(7));
        assert!((&p - &x).is_zero());
        assert_eq!((&p - &x).term_count(), 0);
    }

    #[test]
    fn coeff_is_order_insensitive() {
        let p = &MPoly::var(2) * &MPoly::var(5);
        assert_eq!(p.coeff(&[5, 2]), Rational::ONE);
        assert_eq!(p.coeff(&[2, 5]), Rational::ONE);
    }

    #[test]
    fn scale_and_max_abs() {
        let p = &MPoly::var(0).scale(r(-21, 4)) + &MPoly::constant(r(1, 3));
        assert_eq!(p.max_abs_coeff(), r(21, 4));
        assert!(p.scale(Rational::ZERO).is_zero());
        assert_eq!((-&p).coeff(&[0]), r(21, 4));
    }

    #[test]
    fn bilinear_identity_example() {
        // Distributivity over symbolic vectors: (a0 + a1)·(b0 + b1)
        // = a0·b0 + a0·b1 + a1·b0 + a1·b1 — the shape the transform
        // verifier relies on.
        let a: Vec<MPoly> = (0..2).map(MPoly::var).collect();
        let b: Vec<MPoly> = (10..12).map(MPoly::var).collect();
        let lhs = &(&a[0] + &a[1]) * &(&b[0] + &b[1]);
        let mut rhs = MPoly::zero();
        for ai in &a {
            for bj in &b {
                rhs = &rhs + &(ai * bj);
            }
        }
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn display_is_readable() {
        let p = &MPoly::var(1).scale(r(3, 2)) * &MPoly::var(0);
        assert_eq!(format!("{p}"), "3/2·x0·x1");
        assert_eq!(format!("{}", MPoly::zero()), "0");
    }
}
