//! Exact rational arithmetic over `i128` plus dense univariate polynomials.
//!
//! This crate is the numeric substrate for generating Winograd transform
//! matrices (`iwino-transforms`). Those matrices must be produced *exactly* —
//! the paper's accuracy experiment (Table 3) depends on the transform entries
//! being the true rationals (e.g. `-21/4`, `539803/576`, `1/160810650`) rather
//! than floating-point approximations of intermediate computations.
//!
//! All arithmetic is overflow-checked: every operation normalises by the gcd
//! and panics (in debug and release alike) on `i128` overflow instead of
//! silently wrapping. For the paper's point set (|p| ≤ 4, α ≤ 16) every
//! intermediate fits comfortably in `i128`.

#![forbid(unsafe_code)]

pub mod mpoly;
pub mod poly;

pub use mpoly::MPoly;
pub use poly::Poly;

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of the absolute values (Euclid). `gcd(0, 0) == 0`.
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple; panics on overflow.
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

impl Rational {
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num/den`, normalising sign and gcd. Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Construct from an integer.
    pub const fn from_int(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }

    pub fn numer(&self) -> i128 {
        self.num
    }

    pub fn denom(&self) -> i128 {
        self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Exact integer power (negative exponents allowed for nonzero values).
    pub fn pow(&self, exp: i32) -> Self {
        if exp == 0 {
            return Rational::ONE;
        }
        let base = if exp < 0 { self.recip() } else { *self };
        let mut acc = Rational::ONE;
        for _ in 0..exp.unsigned_abs() {
            acc *= base;
        }
        acc
    }

    /// Lossy conversion to `f64` (exact when both parts are exactly
    /// representable, which holds for every entry of the paper's matrices).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Lossy conversion to `f32`.
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }

    fn checked_add(self, rhs: Self) -> Option<Self> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
        let l = lcm(self.den, rhs.den);
        let left = self.num.checked_mul(l / self.den)?;
        let right = rhs.num.checked_mul(l / rhs.den)?;
        Some(Rational::new(left.checked_add(right)?, l))
    }

    fn checked_mul_impl(self, rhs: Self) -> Option<Self> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational::new(num, den))
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational::from_int(v)
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v as i128)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("rational add overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Self) -> Self {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Self) -> Self {
        self.checked_mul_impl(rhs).expect("rational mul overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    // Division by a rational IS multiplication by its reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Self {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d with b, d > 0  ⟺  a*d vs c*b.
        let left = self.num.checked_mul(other.den).expect("cmp overflow");
        let right = other.num.checked_mul(self.den).expect("cmp overflow");
        left.cmp(&right)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Parse helpers used by tests: `"3"`, `"-21/4"`.
impl std::str::FromStr for Rational {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s.split_once('/') {
            Some((n, d)) => {
                let n: i128 = n.trim().parse().map_err(|e| format!("{e}"))?;
                let d: i128 = d.trim().parse().map_err(|e| format!("{e}"))?;
                if d == 0 {
                    return Err("zero denominator".into());
                }
                Ok(Rational::new(n, d))
            }
            None => {
                let n: i128 = s.parse().map_err(|e| format!("{e}"))?;
                Ok(Rational::from_int(n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert_eq!(Rational::new(1, 2).denom(), 2);
        assert!(Rational::new(-1, 3).is_negative());
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
        assert_eq!(-half, Rational::new(-1, 2));
    }

    #[test]
    fn pow_and_recip() {
        let two = Rational::from_int(2);
        assert_eq!(two.pow(10), Rational::from_int(1024));
        assert_eq!(two.pow(-3), Rational::new(1, 8));
        assert_eq!(two.pow(0), Rational::ONE);
        assert_eq!(Rational::new(-1, 2).pow(2), Rational::new(1, 4));
        assert_eq!(Rational::new(3, 7).recip(), Rational::new(7, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert_eq!(Rational::new(2, 6).cmp(&Rational::new(1, 3)), Ordering::Equal);
    }

    #[test]
    fn conversion_to_floats() {
        assert_eq!(Rational::new(-21, 4).to_f64(), -5.25);
        assert_eq!(Rational::new(1, 1024).to_f32(), 0.0009765625);
    }

    #[test]
    fn parsing() {
        assert_eq!("-21/4".parse::<Rational>().unwrap(), Rational::new(-21, 4));
        assert_eq!("7".parse::<Rational>().unwrap(), Rational::from_int(7));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x".parse::<Rational>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["0", "1", "-1", "1/2", "-21/4", "539803/576"] {
            let r: Rational = s.parse().unwrap();
            assert_eq!(format!("{r}"), s);
        }
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
    }

    fn small_rational() -> impl Strategy<Value = Rational> {
        (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rational::new(n, d))
    }

    proptest! {
        #[test]
        fn field_axioms(a in small_rational(), b in small_rational(), c in small_rational()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + Rational::ZERO, a);
            prop_assert_eq!(a * Rational::ONE, a);
            prop_assert_eq!(a - a, Rational::ZERO);
        }

        #[test]
        fn division_inverts_multiplication(a in small_rational(), b in small_rational()) {
            prop_assume!(!b.is_zero());
            prop_assert_eq!(a * b / b, a);
        }

        #[test]
        fn float_conversion_tracks_value(a in small_rational()) {
            let f = a.to_f64();
            let expected = a.numer() as f64 / a.denom() as f64;
            prop_assert_eq!(f, expected);
        }
    }
}
