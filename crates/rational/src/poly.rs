//! Dense univariate polynomials over [`Rational`].
//!
//! Coefficients are stored lowest-degree first (`coeffs[k]` multiplies `x^k`).
//! The representation is kept trimmed: the highest stored coefficient of a
//! nonzero polynomial is nonzero, and the zero polynomial stores a single
//! zero coefficient.

use crate::Rational;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Dense polynomial over the rationals, lowest degree first.
#[derive(Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<Rational>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly {
            coeffs: vec![Rational::ZERO],
        }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly {
            coeffs: vec![Rational::ONE],
        }
    }

    /// Build from coefficients (lowest degree first); trailing zeros trimmed.
    pub fn from_coeffs(coeffs: Vec<Rational>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// The monic linear polynomial `x - root`.
    pub fn linear_from_root(root: Rational) -> Self {
        Poly {
            coeffs: vec![-root, Rational::ONE],
        }
    }

    /// `Π (x - r)` over the given roots.
    pub fn from_roots(roots: &[Rational]) -> Self {
        roots
            .iter()
            .fold(Poly::one(), |acc, &r| &acc * &Poly::linear_from_root(r))
    }

    fn trim(&mut self) {
        while self.coeffs.len() > 1 && self.coeffs.last().is_some_and(Rational::is_zero) {
            self.coeffs.pop();
        }
        if self.coeffs.is_empty() {
            self.coeffs.push(Rational::ZERO);
        }
    }

    /// Degree of the polynomial; the zero polynomial reports degree 0.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    pub fn is_zero(&self) -> bool {
        self.coeffs.len() == 1 && self.coeffs[0].is_zero()
    }

    /// Coefficient of `x^k` (zero beyond the stored degree).
    pub fn coeff(&self, k: usize) -> Rational {
        self.coeffs.get(k).copied().unwrap_or(Rational::ZERO)
    }

    /// All stored coefficients, lowest degree first.
    pub fn coeffs(&self) -> &[Rational] {
        &self.coeffs
    }

    /// Evaluate at `x` by Horner's rule.
    pub fn eval(&self, x: Rational) -> Rational {
        self.coeffs.iter().rev().fold(Rational::ZERO, |acc, &c| acc * x + c)
    }

    /// Multiply every coefficient by a scalar.
    pub fn scale(&self, s: Rational) -> Self {
        Poly::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Exact division by `(x - root)`. Panics if `root` is not a root.
    pub fn divide_by_linear_root(&self, root: Rational) -> Self {
        assert!(self.eval(root).is_zero(), "not a root: {root}");
        // Synthetic division, highest degree first.
        let n = self.coeffs.len();
        let mut out = vec![Rational::ZERO; n - 1];
        let mut carry = Rational::ZERO;
        for k in (0..n).rev() {
            let v = self.coeffs[k] + carry;
            if k == 0 {
                debug_assert!(v.is_zero());
            } else {
                out[k - 1] = v;
                carry = v * root;
            }
        }
        Poly::from_coeffs(out)
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n).map(|k| self.coeff(k) + rhs.coeff(k)).collect();
        Poly::from_coeffs(coeffs)
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n).map(|k| self.coeff(k) - rhs.coeff(k)).collect();
        Poly::from_coeffs(coeffs)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Rational::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Poly::from_coeffs(coeffs)
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            match k {
                0 => write!(f, "{c}")?,
                1 => write!(f, "({c})x")?,
                _ => write!(f, "({c})x^{k}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn ri(n: i128) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn from_roots_expands_correctly() {
        // (x-1)(x+1) = x^2 - 1
        let p = Poly::from_roots(&[ri(1), ri(-1)]);
        assert_eq!(p.coeffs(), &[ri(-1), ri(0), ri(1)]);
        // (x-1)(x+1)(x-2)(x+2)(x-1/2)(x+1/2) = x^6 - 21/4 x^4 + 21/4 x^2 - 1
        let p = Poly::from_roots(&[ri(1), ri(-1), ri(2), ri(-2), r(1, 2), r(-1, 2)]);
        assert_eq!(p.coeffs(), &[ri(-1), ri(0), r(21, 4), ri(0), r(-21, 4), ri(0), ri(1)]);
    }

    #[test]
    fn eval_horner() {
        let p = Poly::from_coeffs(vec![ri(1), ri(-3), ri(2)]); // 2x^2 - 3x + 1
        assert_eq!(p.eval(ri(0)), ri(1));
        assert_eq!(p.eval(ri(1)), ri(0));
        assert_eq!(p.eval(r(1, 2)), ri(0));
        assert_eq!(p.eval(ri(2)), ri(3));
    }

    #[test]
    fn trim_behaviour() {
        let p = Poly::from_coeffs(vec![ri(1), ri(0), ri(0)]);
        assert_eq!(p.degree(), 0);
        let z = Poly::from_coeffs(vec![ri(0), ri(0)]);
        assert!(z.is_zero());
        assert_eq!(z.degree(), 0);
    }

    #[test]
    fn divide_by_linear_root_inverts_multiplication() {
        let roots = [ri(0), ri(1), ri(-1), ri(2), r(1, 2)];
        let p = Poly::from_roots(&roots);
        let q = p.divide_by_linear_root(ri(2));
        assert_eq!(q, Poly::from_roots(&[ri(0), ri(1), ri(-1), r(1, 2)]));
    }

    #[test]
    #[should_panic]
    fn divide_by_non_root_panics() {
        let p = Poly::from_roots(&[ri(1)]);
        let _ = p.divide_by_linear_root(ri(3));
    }

    #[test]
    fn arithmetic() {
        let a = Poly::from_coeffs(vec![ri(1), ri(2)]); // 1 + 2x
        let b = Poly::from_coeffs(vec![ri(3), ri(4)]); // 3 + 4x
        assert_eq!((&a + &b).coeffs(), &[ri(4), ri(6)]);
        assert_eq!((&a - &b).coeffs(), &[ri(-2), ri(-2)]);
        assert_eq!((&a * &b).coeffs(), &[ri(3), ri(10), ri(8)]);
        assert_eq!(a.scale(r(1, 2)).coeffs(), &[r(1, 2), ri(1)]);
    }

    fn small_poly() -> impl Strategy<Value = Poly> {
        proptest::collection::vec((-20i128..20, 1i128..8), 1..6)
            .prop_map(|v| Poly::from_coeffs(v.into_iter().map(|(n, d)| Rational::new(n, d)).collect()))
    }

    proptest! {
        #[test]
        fn mul_eval_homomorphism(a in small_poly(), b in small_poly(), x in -6i128..6) {
            let x = Rational::from_int(x);
            prop_assert_eq!((&a * &b).eval(x), a.eval(x) * b.eval(x));
            prop_assert_eq!((&a + &b).eval(x), a.eval(x) + b.eval(x));
        }

        #[test]
        fn roots_are_roots(roots in proptest::collection::vec(-5i128..5, 1..6)) {
            let roots: Vec<Rational> = roots.into_iter().map(Rational::from_int).collect();
            let p = Poly::from_roots(&roots);
            for &r in &roots {
                prop_assert!(p.eval(r).is_zero());
            }
            prop_assert_eq!(p.degree(), roots.len());
        }
    }
}
