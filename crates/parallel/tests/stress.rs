//! Stress tests for [`ThreadPool::run_chunked`] / [`run_chunked_weighted`]:
//! skewed per-index costs, a 1-thread pool, and a pool oversubscribed well
//! past the core count. The invariants under test:
//!
//! * every index in `0..n` is executed exactly once (none dropped, none
//!   run twice), no matter how the cost profile shapes the pieces;
//! * the pieces handed to the task are contiguous and in-bounds;
//! * the pool's cumulative [`PoolReport`] accounts for exactly the chunks
//!   submitted — per-lane chunk counts sum to the number of task
//!   invocations, and one job is recorded per `run_*` call.
//!
//! Each test builds its own pool (never the global one), so the report
//! totals are exact; tests still serialize behind [`guard`] because the
//! flight-recorder pairing test needs a quiesced process to export.

use iwino_obs::Json;
use iwino_parallel::ThreadPool;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// The flight-recorder gate and rings are process-global; the pairing test
/// below must export a quiesced trace, so every test in this binary
/// serializes here (they would otherwise interleave worker-chunk events
/// from concurrent pools into the exported timeline).
fn guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Skewed cost model: most indices are cheap, every 31st is ~300× the base,
/// and every 97th is ~30 000× — the shape that makes fixed-size chunking
/// leave one lane dragging the tail.
fn skewed_cost(i: usize) -> u64 {
    match () {
        _ if i.is_multiple_of(97) => 30_000,
        _ if i.is_multiple_of(31) => 300,
        _ => 1,
    }
}

/// Run `f` over `0..n` via the given submit closure and assert exactly-once
/// coverage plus report consistency. Returns the number of task invocations.
fn check_exactly_once(
    pool: &ThreadPool,
    n: usize,
    submit: impl Fn(&ThreadPool, &(dyn Fn(std::ops::Range<usize>) + Sync)),
) -> u64 {
    // Pool utilization stats are only collected while obs is enabled. The
    // flag is process-global, but every test here wants it on and this
    // binary is its own process, so there is nothing to restore.
    iwino_obs::set_enabled(true);
    let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let pieces = AtomicU64::new(0);
    pool.reset_stats();
    submit(pool, &|range: std::ops::Range<usize>| {
        assert!(range.start < range.end, "empty piece submitted: {range:?}");
        assert!(range.end <= n, "piece out of bounds: {range:?} (n = {n})");
        pieces.fetch_add(1, Ordering::Relaxed);
        for i in range {
            hits[i].fetch_add(1, Ordering::Relaxed);
        }
    });
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} not executed exactly once");
    }
    let pieces = pieces.load(Ordering::Relaxed);
    let report = pool.report();
    assert_eq!(report.threads, pool.threads());
    assert_eq!(report.jobs, 1, "one run_* call must record one job");
    assert_eq!(report.workers.len(), pool.threads());
    // The report counts dynamic *claims* of the piece-index space: the
    // serial path (single-lane pool, or a one-piece job) records exactly one
    // chunk; the threaded path claims `cs = max(1, pieces/(threads·4))`
    // piece indices at a time, so exactly ⌈pieces/cs⌉ claims succeed.
    let chunk_total: u64 = report.workers.iter().map(|w| w.chunks).sum();
    let expected = if pool.threads() == 1 || pieces == 1 {
        1
    } else {
        let cs = (pieces as usize / (pool.threads() * 4)).max(1);
        (pieces as usize).div_ceil(cs) as u64
    };
    assert_eq!(
        chunk_total, expected,
        "lane chunk counts must account for every claim (pieces = {pieces})"
    );
    pieces
}

#[test]
fn weighted_skewed_costs_cover_all_indices() {
    let _g = guard();
    for threads in [1usize, 2, 4, 32] {
        let pool = ThreadPool::new(threads);
        for n in [1usize, 7, 97, 1000] {
            let pieces = check_exactly_once(&pool, n, |p, task| {
                p.run_chunked_weighted(n, &skewed_cost, task);
            });
            assert!(pieces as usize <= n, "cannot have more pieces than indices");
        }
    }
}

#[test]
fn weighted_zero_and_uniform_costs() {
    let _g = guard();
    let pool = ThreadPool::new(4);
    // Zero costs are clamped to one — the splitter must not divide by zero
    // or emit a single giant piece by mistake.
    check_exactly_once(&pool, 256, |p, task| {
        p.run_chunked_weighted(256, &|_| 0, task);
    });
    // Uniform costs degenerate to near-equal pieces.
    let pieces = check_exactly_once(&pool, 256, |p, task| {
        p.run_chunked_weighted(256, &|_| 1, task);
    });
    assert!(pieces > 1, "a 4-lane pool should split 256 uniform indices");
}

#[test]
fn weighted_one_expensive_index_among_many() {
    let _g = guard();
    // The adversarial profile: index 0 costs as much as everything else
    // combined. The splitter must still cover every index exactly once and
    // must not hand the whole range to one piece.
    let pool = ThreadPool::new(4);
    let n = 512usize;
    let pieces = check_exactly_once(&pool, n, |p, task| {
        p.run_chunked_weighted(n, &|i| if i == 0 { (n as u64) * 4 } else { 1 }, task);
    });
    assert!(pieces >= 2, "expensive head must not absorb the whole range");
}

#[test]
fn fixed_chunking_matches_weighted_coverage() {
    let _g = guard();
    for threads in [1usize, 32] {
        let pool = ThreadPool::new(threads);
        for (n, min_chunk) in [(1000usize, 7usize), (97, 1), (5, 100)] {
            let pieces = check_exactly_once(&pool, n, |p, task| {
                p.run_chunked(n, min_chunk, task);
            });
            assert_eq!(pieces as usize, n.div_ceil(min_chunk.max(1)));
        }
    }
}

#[test]
fn single_thread_pool_runs_everything_on_caller() {
    let _g = guard();
    let pool = ThreadPool::new(1);
    check_exactly_once(&pool, 300, |p, task| {
        p.run_chunked_weighted(300, &skewed_cost, task);
    });
    let report = pool.report();
    // One lane: the caller executed every chunk.
    assert_eq!(report.caller_share(), 1.0);
}

#[test]
fn oversubscribed_pool_with_fewer_indices_than_lanes() {
    let _g = guard();
    // 32 lanes, 9 indices: most lanes get nothing; nothing may be dropped
    // or duplicated and the report must still balance.
    let pool = ThreadPool::new(32);
    check_exactly_once(&pool, 9, |p, task| {
        p.run_chunked_weighted(9, &skewed_cost, task);
    });
}

#[test]
fn empty_range_is_a_noop() {
    let _g = guard();
    iwino_obs::set_enabled(true);
    let pool = ThreadPool::new(4);
    pool.reset_stats();
    pool.run_chunked_weighted(0, &|_| 1, &|_r| panic!("task must not run for n = 0"));
    pool.run_chunked(0, 8, &|_r| panic!("task must not run for n = 0"));
    assert_eq!(pool.report().jobs, 0);
}

#[test]
fn trace_events_pair_up_across_skewed_workers() {
    let _g = guard();
    iwino_obs::set_enabled(true);
    iwino_obs::reset_trace();
    iwino_obs::set_trace_enabled(true);
    let pool = ThreadPool::new(4);
    pool.reset_stats();
    // Deliberately skewed and slow enough that worker lanes get scheduled:
    // the caller cannot race through every chunk before the workers wake.
    for _ in 0..3 {
        pool.run_chunked_weighted(64, &|i| if i.is_multiple_of(9) { 50 } else { 1 }, &|range| {
            for _ in range {
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
        });
    }
    iwino_obs::set_trace_enabled(false);
    let doc = iwino_obs::export_chrome_trace();
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    // Per-tid begin/end pairing: every E must close the B on top of its
    // thread's stack, and no stack may be left open — even though lanes
    // start, claim and finish chunks at completely different times.
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = std::collections::BTreeMap::new();
    let mut chunk_tids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        if ph == "M" {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        let name = e.get("name").and_then(Json::as_str).expect("name").to_string();
        match ph {
            "B" => {
                if name == "worker_chunk" {
                    chunk_tids.insert(tid);
                }
                stacks.entry(tid).or_default().push(name);
            }
            "E" => assert_eq!(
                stacks.get_mut(&tid).and_then(Vec::pop),
                Some(name),
                "E without matching B"
            ),
            other => panic!("unexpected ph {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left unclosed events: {stack:?}");
    }

    // Every lane that executed chunks (per the pool's own accounting) must
    // have produced worker-chunk events on its own ring — the per-worker
    // registration the timeline story depends on.
    let active_lanes = pool.report().workers.iter().filter(|w| w.chunks > 0).count();
    assert!(active_lanes >= 1);
    assert_eq!(
        chunk_tids.len(),
        active_lanes,
        "each active lane must trace on its own ring"
    );
    assert!(iwino_obs::trace_meta().dropped == 0, "this workload fits the ring");
    iwino_obs::reset_trace();
}
