//! A small persistent thread pool with a scoped `parallel_for`.
//!
//! The Im2col-Winograd kernels parallelise over independent output rows
//! (`N × OH` of them — the same work decomposition the paper assigns to
//! thread blocks). rayon is not part of this project's allowed offline
//! crate set, so this crate provides the minimal machinery: a pool of
//! workers that claim dynamically-sized index chunks from a shared atomic
//! counter, with the *caller participating* so small jobs don't pay a
//! wake-up round trip.
//!
//! Safety model: [`ThreadPool::run`] erases the closure's lifetime to hand
//! it to the workers, and does not return until every worker has finished
//! the current job (a completion count protected by a mutex + condvar), so
//! the borrow can never dangle. Closures must be `Sync` and take disjoint
//! work via the index argument; mutable output access goes through
//! [`SliceParts`] (a checked disjoint-chunk splitter) or per-index slices.

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;

mod slice_parts;
pub use slice_parts::SliceParts;

thread_local! {
    /// Set while executing inside a pool worker; nested `run` calls from a
    /// worker fall back to serial execution instead of deadlocking.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Type-erased pointer to the scoped task. The referent is a
/// `&(dyn Fn(usize) + Sync)` that outlives the job (guaranteed by the
/// completion barrier in [`ThreadPool::run`]).
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the referent is Sync and the pool enforces that it outlives all
// uses (run() blocks until the job completes).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct Job {
    task: TaskPtr,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// One past the last index.
    end: usize,
    /// Indices claimed per `fetch_add`.
    chunk: usize,
}

impl Job {
    /// Claim and execute chunks until the job is drained.
    fn work(&self) {
        // SAFETY: see TaskPtr.
        let task = unsafe { &*self.task.0 };
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.end {
                break;
            }
            let stop = (start + self.chunk).min(self.end);
            for i in start..stop {
                task(i);
            }
        }
    }
}

#[derive(Default)]
struct Shared {
    state: Mutex<State>,
    job_ready: Condvar,
    job_done: Condvar,
}

#[derive(Default)]
struct State {
    /// Monotonically increasing job id; workers watch for changes.
    epoch: u64,
    job: Option<Arc<Job>>,
    /// Workers still running the current job.
    running: usize,
    shutdown: bool,
}

/// A fixed-size pool of worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    submit_lock: Mutex<()>,
    threads: usize,
}

impl ThreadPool {
    /// Spawn a pool with `threads` total execution lanes (including the
    /// caller, which participates in every job). `threads == 1` never
    /// spawns and always runs serially.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared::default());
        let workers = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("iwino-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers, submit_lock: Mutex::new(()), threads }
    }

    /// Pool sized from `IWINO_THREADS` or the machine's available
    /// parallelism.
    pub fn with_default_size() -> Self {
        Self::new(default_threads())
    }

    /// Number of execution lanes (caller included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `task(i)` for every `i in 0..n`, distributing dynamically-sized
    /// chunks over the pool. Blocks until all indices are done. Reentrant
    /// calls from inside a worker run serially.
    pub fn run(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.workers.is_empty() || n == 1 || IN_WORKER.with(|f| f.get()) {
            for i in 0..n {
                task(i);
            }
            return;
        }
        let _guard = self.submit_lock.lock();
        // ~4 chunks per lane keeps the tail balanced without excessive
        // counter traffic.
        let chunk = (n / (self.threads * 4)).max(1);
        // SAFETY: we erase the lifetime; the completion wait below
        // guarantees no worker touches the task after `run` returns.
        let task_static: TaskPtr = TaskPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                task as *const _,
            )
        });
        let job = Arc::new(Job { task: task_static, next: AtomicUsize::new(0), end: n, chunk });
        {
            let mut st = self.shared.state.lock();
            st.epoch += 1;
            st.job = Some(Arc::clone(&job));
            st.running = self.workers.len();
            self.shared.job_ready.notify_all();
        }
        // The caller works too. Mark it as a worker for the duration so a
        // nested `run` from inside the task runs serially instead of
        // re-locking `submit_lock` on this thread.
        let was_worker = IN_WORKER.with(|f| f.replace(true));
        job.work();
        IN_WORKER.with(|f| f.set(was_worker));
        // Wait for the workers to drain the job.
        let mut st = self.shared.state.lock();
        while st.running > 0 {
            self.shared.job_done.wait(&mut st);
        }
        st.job = None;
    }

    /// Run `task` over `0..n` in contiguous ranges of at least `min_chunk`
    /// indices — for kernels that amortise setup per range.
    pub fn run_chunked(&self, n: usize, min_chunk: usize, task: &(dyn Fn(std::ops::Range<usize>) + Sync)) {
        if n == 0 {
            return;
        }
        let min_chunk = min_chunk.max(1);
        let pieces = n.div_ceil(min_chunk);
        self.run(pieces, &|p| {
            let start = p * min_chunk;
            let end = (start + min_chunk).min(n);
            task(start..end);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_WORKER.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.as_ref().map(Arc::clone);
                }
                shared.job_ready.wait(&mut st);
            }
        };
        if let Some(job) = job {
            job.work();
            let mut st = shared.state.lock();
            st.running -= 1;
            if st.running == 0 {
                shared.job_done.notify_all();
            }
        }
    }
}

/// Default lane count: `IWINO_THREADS` env var, else available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("IWINO_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-wide pool used by the convolution kernels.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::with_default_size)
}

/// Convenience: `global().run(n, task)`.
pub fn parallel_for(n: usize, task: &(dyn Fn(usize) + Sync)) {
    global().run(n, task);
}

/// Convenience: `global().run_chunked(n, min_chunk, task)`.
pub fn parallel_for_chunked(n: usize, min_chunk: usize, task: &(dyn Fn(std::ops::Range<usize>) + Sync)) {
    global().run_chunked(n, min_chunk, task);
}

/// Marker used by tests to verify reentrancy handling is serial, not deadlock.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// A lightweight atomic flag handy for one-shot signalling in tests.
pub struct Flag(AtomicBool);

impl Default for Flag {
    fn default() -> Self {
        Self::new()
    }
}

impl Flag {
    pub fn new() -> Self {
        Flag(AtomicBool::new(false))
    }
    pub fn set(&self) {
        self.0.store(true, Ordering::Release);
    }
    pub fn get(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run(n, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sum_matches_serial() {
        let pool = ThreadPool::new(8);
        let total = AtomicU64::new(0);
        pool.run(1000, &|i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn zero_and_one_items() {
        let pool = ThreadPool::new(4);
        pool.run(0, &|_| panic!("must not run"));
        let hit = AtomicUsize::new(0);
        pool.run(1, &|i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn single_thread_pool_is_serial() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let order = Mutex::new(Vec::new());
        pool.run(16, &|i| order.lock().push(i));
        assert_eq!(*order.lock(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn reentrant_run_is_serial_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(4));
        let count = AtomicUsize::new(0);
        let inner_pool = Arc::clone(&pool);
        pool.run(4, &|_| {
            assert!(in_worker() || !in_worker()); // just exercise the TLS
            inner_pool.run(8, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn chunked_covers_range_without_overlap() {
        let pool = ThreadPool::new(4);
        let n = 1003;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run_chunked(n, 64, &|range| {
            assert!(range.len() <= 64);
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_jobs_reuse_workers() {
        let pool = ThreadPool::new(4);
        for round in 0..50 {
            let total = AtomicUsize::new(0);
            pool.run(100, &|i| {
                total.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), (0..100).sum::<usize>() + 100 * round);
        }
    }

    #[test]
    fn global_pool_works() {
        let total = AtomicUsize::new(0);
        parallel_for(256, &|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..256).sum());
    }

    #[test]
    fn borrows_stack_data_mutably_via_disjoint_chunks() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u64; 4096];
        let parts = SliceParts::new(&mut data, 256);
        pool.run(parts.len(), &|i| {
            let chunk = parts.take(i);
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (i * 256 + k) as u64;
            }
        });
        drop(parts);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }
}
