//! A small persistent thread pool with a scoped `parallel_for`.
//!
//! The Im2col-Winograd kernels parallelise over independent output rows
//! (`N × OH` of them — the same work decomposition the paper assigns to
//! thread blocks). rayon is not part of this project's allowed offline
//! crate set, so this crate provides the minimal machinery: a pool of
//! workers that claim dynamically-sized index chunks from a shared atomic
//! counter, with the *caller participating* so small jobs don't pay a
//! wake-up round trip.
//!
//! Safety model: [`ThreadPool::run`] erases the closure's lifetime to hand
//! it to the workers, and does not return until every worker has finished
//! the current job (a completion count protected by a mutex + condvar), so
//! the borrow can never dangle. Closures must be `Sync` and take disjoint
//! work via the index argument; mutable output access goes through
//! [`SliceParts`] (a checked disjoint-chunk splitter) or per-index slices.
//!
//! Observability: while `iwino_obs::enabled()` is set, every pooled job
//! additionally records per-lane chunk counts and busy/idle nanoseconds
//! (lane 0 is the submitting caller). The cumulative [`obs::PoolReport`]
//! is pushed into the obs registry after each job and is also available
//! directly via [`ThreadPool::report`]. When recording is off, jobs take
//! exactly the pre-instrumentation path (one branch on an `Option`).

use iwino_obs as obs;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

mod slice_parts;
pub use slice_parts::SliceParts;

thread_local! {
    /// Set while executing inside a pool worker; nested `run` calls from a
    /// worker fall back to serial execution instead of deadlocking.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Type-erased pointer to the scoped task. The referent is a
/// `&(dyn Fn(usize) + Sync)` that outlives the job (guaranteed by the
/// completion barrier in [`ThreadPool::run`]).
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `dyn Fn(usize) + Sync`, so concurrent `&`-calls
// from many workers are sound by the pointee's own contract; the pointer is
// only dereferenced between job publication and the completion wait in
// `run`, during which the caller keeps the original `&` borrow alive —
// no use-after-free and no mutation anywhere (shared access only).
unsafe impl Send for TaskPtr {}
// SAFETY: as for Send above — the referent is Sync and outlives every use.
unsafe impl Sync for TaskPtr {}

/// Per-lane accounting for a single job; allocated only while recording.
struct JobStats {
    lane_chunks: Vec<AtomicU64>,
    lane_busy_ns: Vec<AtomicU64>,
}

impl JobStats {
    fn new(lanes: usize) -> JobStats {
        JobStats {
            lane_chunks: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            lane_busy_ns: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

struct Job {
    task: TaskPtr,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// One past the last index.
    end: usize,
    /// Indices claimed per `fetch_add`.
    chunk: usize,
    /// Present only while observability recording is on.
    stats: Option<JobStats>,
}

impl Job {
    /// Claim and execute chunks until the job is drained. `lane` indexes
    /// the stats row (0 = submitting caller).
    fn work(&self, lane: usize) {
        // SAFETY: the pointer was created in `run` from a live `&(dyn
        // Fn(usize) + Sync)` and `run` does not return (releasing that
        // borrow) until `running == 0`, which this worker contributes to
        // only after its last `task` call — the referent is alive and
        // shared-immutable for the whole loop below.
        let task = unsafe { &*self.task.0 };
        match &self.stats {
            None => loop {
                // ORDERING: Relaxed — the claim counter is an atomic RMW, so
                // each chunk is handed out exactly once regardless of
                // ordering; the task's *results* are published by the
                // job-done mutex/condvar barrier in `run`, not by this.
                let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
                if start >= self.end {
                    break;
                }
                // Flight-recorder marker for the worker timeline: one
                // begin/end pair per executed chunk, on this lane's own
                // ring. A no-op (one relaxed load) unless tracing is on.
                let _chunk_span = obs::trace_span(obs::Stage::WorkerChunk);
                let stop = (start + self.chunk).min(self.end);
                for i in start..stop {
                    task(i);
                }
            },
            Some(stats) => loop {
                // ORDERING: Relaxed — same claim-counter argument as above.
                let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
                if start >= self.end {
                    break;
                }
                let _chunk_span = obs::trace_span(obs::Stage::WorkerChunk);
                let stop = (start + self.chunk).min(self.end);
                let t0 = Instant::now();
                for i in start..stop {
                    task(i);
                }
                // ORDERING: Relaxed — per-lane monotonic accounting, read
                // only in `absorb_job_stats` after the completion barrier.
                stats.lane_busy_ns[lane].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                stats.lane_chunks[lane].fetch_add(1, Ordering::Relaxed);
            },
        }
    }
}

#[derive(Default)]
struct Shared {
    state: Mutex<State>,
    job_ready: Condvar,
    job_done: Condvar,
}

#[derive(Default)]
struct State {
    /// Monotonically increasing job id; workers watch for changes.
    epoch: u64,
    job: Option<Arc<Job>>,
    /// Workers still running the current job.
    running: usize,
    shutdown: bool,
}

/// Cumulative per-lane totals across jobs (see [`ThreadPool::report`]).
struct LaneTotals {
    chunks: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

/// A fixed-size pool of worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    submit_lock: Mutex<()>,
    threads: usize,
    jobs: AtomicU64,
    lane_totals: Vec<LaneTotals>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` total execution lanes (including the
    /// caller, which participates in every job). `threads == 1` never
    /// spawns and always runs serially.
    pub fn new(threads: usize) -> Self {
        Self::with_name(threads, "iwino-worker")
    }

    /// Like [`ThreadPool::new`], but worker threads are named
    /// `{prefix}-{lane}`. The flight recorder labels each trace ring with
    /// its thread's name, so pools owned by different subsystems (e.g. the
    /// serving layer's batch pool vs. the global conv pool) stay
    /// distinguishable in exported timelines.
    pub fn with_name(threads: usize, prefix: &str) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared::default());
        let workers = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("{prefix}-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        let lane_totals = (0..threads)
            .map(|_| LaneTotals {
                chunks: AtomicU64::new(0),
                busy_ns: AtomicU64::new(0),
                idle_ns: AtomicU64::new(0),
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            submit_lock: Mutex::new(()),
            threads,
            jobs: AtomicU64::new(0),
            lane_totals,
        }
    }

    /// Pool sized from `IWINO_THREADS` or the machine's available
    /// parallelism.
    pub fn with_default_size() -> Self {
        Self::new(default_threads())
    }

    /// Number of execution lanes (caller included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `task(i)` for every `i in 0..n`, distributing dynamically-sized
    /// chunks over the pool. Blocks until all indices are done. Reentrant
    /// calls from inside a worker run serially.
    pub fn run(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.workers.is_empty() || n == 1 || IN_WORKER.with(|f| f.get()) {
            // Serial fallback. Reentrant calls leave the accounting to the
            // outer job; top-level serial runs (single-lane pool, n == 1)
            // still record caller-lane utilization so 1-CPU hosts get a
            // pool section in their metrics reports.
            let record_serial = obs::enabled() && !IN_WORKER.with(|f| f.get());
            let t0 = record_serial.then(Instant::now);
            {
                // The serial path is one "chunk" on the caller lane; give it
                // the same timeline marker the threaded path gets.
                let _chunk_span = obs::trace_span(obs::Stage::WorkerChunk);
                for i in 0..n {
                    task(i);
                }
            }
            if let Some(t0) = t0 {
                let busy = t0.elapsed().as_nanos() as u64;
                let caller = &self.lane_totals[0];
                // ORDERING: Relaxed — cumulative counters bumped on the
                // submitting thread; `report` reads them here (program
                // order) or after the pool quiesces.
                self.jobs.fetch_add(1, Ordering::Relaxed);
                caller.chunks.fetch_add(1, Ordering::Relaxed);
                caller.busy_ns.fetch_add(busy, Ordering::Relaxed);
                obs::set_pool_report(self.report());
            }
            return;
        }
        let _guard = self.submit_lock.lock().unwrap();
        // ~4 chunks per lane keeps the tail balanced without excessive
        // counter traffic.
        let chunk = (n / (self.threads * 4)).max(1);
        // SAFETY: lifetime erasure only — the pointee type (including its
        // Sync bound) is unchanged, and the transmuted pointer never
        // outlives the borrow: `run` publishes the job, then blocks on
        // `job_done` until every worker has dropped out of `Job::work`, and
        // clears `st.job` before returning, so no worker can touch the
        // pointer after `task`'s lifetime ends.
        let task_static: TaskPtr = TaskPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(task as *const _)
        });
        let recording = obs::enabled();
        let job = Arc::new(Job {
            task: task_static,
            next: AtomicUsize::new(0),
            end: n,
            chunk,
            stats: recording.then(|| JobStats::new(self.threads)),
        });
        let job_start = Instant::now();
        {
            // LOCK ORDER: parallel::submit_lock -> parallel::state. The
            // submit lock serializes whole jobs; the state lock is only ever
            // taken under it (or by workers holding nothing else).
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(Arc::clone(&job));
            st.running = self.workers.len();
            self.shared.job_ready.notify_all();
        }
        // The caller works too. Mark it as a worker for the duration so a
        // nested `run` from inside the task runs serially instead of
        // re-locking `submit_lock` on this thread.
        let was_worker = IN_WORKER.with(|f| f.replace(true));
        job.work(0);
        IN_WORKER.with(|f| f.set(was_worker));
        // Wait for the workers to drain the job.
        {
            // LOCK ORDER: parallel::submit_lock -> parallel::state (same
            // nesting as the publish block above).
            let mut st = self.shared.state.lock().unwrap();
            while st.running > 0 {
                st = self.shared.job_done.wait(st).unwrap();
            }
            st.job = None;
        }
        if let Some(stats) = &job.stats {
            self.absorb_job_stats(stats, job_start.elapsed().as_nanos() as u64);
            obs::set_pool_report(self.report());
        }
    }

    /// Run `task` over `0..n` in contiguous ranges of at least `min_chunk`
    /// indices — for kernels that amortise setup per range.
    pub fn run_chunked(&self, n: usize, min_chunk: usize, task: &(dyn Fn(std::ops::Range<usize>) + Sync)) {
        if n == 0 {
            return;
        }
        let min_chunk = min_chunk.max(1);
        let pieces = n.div_ceil(min_chunk);
        self.run(pieces, &|p| {
            let start = p * min_chunk;
            let end = (start + min_chunk).min(n);
            task(start..end);
        });
    }

    /// Cost-aware variant of [`ThreadPool::run_chunked`]: `cost(i)` estimates
    /// the relative work of index `i` (absolute scale is irrelevant; zero is
    /// treated as one), and `0..n` is cut into contiguous pieces of roughly
    /// equal *total cost*, ~4 pieces per lane. With uniform costs this
    /// degenerates to the fixed splitter; with skewed costs (e.g. boundary
    /// output rows that intersect fewer filter rows) it keeps the expensive
    /// indices spread across lanes instead of letting one lane drag the
    /// tail. `cost` runs once per index on the submitting thread, so it must
    /// be cheap relative to `task`.
    pub fn run_chunked_weighted(
        &self,
        n: usize,
        cost: &dyn Fn(usize) -> u64,
        task: &(dyn Fn(std::ops::Range<usize>) + Sync),
    ) {
        if n == 0 {
            return;
        }
        let costs: Vec<u64> = (0..n).map(|i| cost(i).max(1)).collect();
        let total: u64 = costs.iter().sum();
        let pieces_target = (self.threads * 4).clamp(1, n) as u64;
        let per_piece = total.div_ceil(pieces_target);
        let mut pieces: Vec<std::ops::Range<usize>> = Vec::with_capacity(pieces_target as usize + 1);
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, &c) in costs.iter().enumerate() {
            acc += c;
            if acc >= per_piece {
                pieces.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        if start < n {
            pieces.push(start..n);
        }
        self.run(pieces.len(), &|p| task(pieces[p].clone()));
    }

    /// Fold one job's per-lane stats into the pool's cumulative totals.
    /// A lane's idle time is the job's wall time it did not spend running
    /// chunks — for workers that includes the wake-up latency, for the
    /// caller the completion wait.
    fn absorb_job_stats(&self, stats: &JobStats, wall_ns: u64) {
        // ORDERING: Relaxed throughout — the completion wait in `run`
        // (job_done mutex/condvar) happens-before this, so the job's stats
        // are final; the cumulative totals are monotonic counters with no
        // data published through them.
        self.jobs.fetch_add(1, Ordering::Relaxed);
        for lane in 0..self.threads {
            let busy = stats.lane_busy_ns[lane].load(Ordering::Relaxed);
            let chunks = stats.lane_chunks[lane].load(Ordering::Relaxed); // ORDERING: as above
            let totals = &self.lane_totals[lane];
            totals.chunks.fetch_add(chunks, Ordering::Relaxed);
            totals.busy_ns.fetch_add(busy, Ordering::Relaxed);
            totals
                .idle_ns
                .fetch_add(wall_ns.saturating_sub(busy), Ordering::Relaxed); // ORDERING: as above
        }
    }

    /// Cumulative utilization report over every recorded job since
    /// construction or [`ThreadPool::reset_stats`].
    pub fn report(&self) -> obs::PoolReport {
        obs::PoolReport {
            threads: self.threads,
            // ORDERING: Relaxed — sampling reads of monotonic counters;
            // callers only rely on exact values after quiescence.
            jobs: self.jobs.load(Ordering::Relaxed),
            workers: self
                .lane_totals
                .iter()
                .enumerate()
                .map(|(lane, t)| obs::PoolWorkerStats {
                    lane,
                    is_caller_lane: lane == 0,
                    // ORDERING: as above.
                    chunks: t.chunks.load(Ordering::Relaxed),
                    busy_ns: t.busy_ns.load(Ordering::Relaxed),
                    idle_ns: t.idle_ns.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Zero the cumulative stats (call alongside `obs::reset()` to scope a
    /// report to one workload).
    pub fn reset_stats(&self) {
        // ORDERING: Relaxed — callers scope reports around quiesced
        // workloads; no ordering is needed between the zeroing stores.
        self.jobs.store(0, Ordering::Relaxed);
        for t in &self.lane_totals {
            t.chunks.store(0, Ordering::Relaxed); // ORDERING: as above
            t.busy_ns.store(0, Ordering::Relaxed);
            t.idle_ns.store(0, Ordering::Relaxed);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    IN_WORKER.with(|f| f.set(true));
    // Flight-recorder rings register lazily on the worker's first traced
    // event, inheriting this thread's `iwino-worker-{lane}` name as the
    // timeline label — no per-thread allocation unless tracing actually
    // runs on this lane.
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.as_ref().map(Arc::clone);
                }
                st = shared.job_ready.wait(st).unwrap();
            }
        };
        if let Some(job) = job {
            job.work(lane);
            let mut st = shared.state.lock().unwrap();
            st.running -= 1;
            if st.running == 0 {
                shared.job_done.notify_all();
            }
        }
    }
}

/// Default lane count: `IWINO_THREADS` env var, else available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("IWINO_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-wide pool used by the convolution kernels.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::with_default_size)
}

/// Convenience: `global().run(n, task)`.
pub fn parallel_for(n: usize, task: &(dyn Fn(usize) + Sync)) {
    global().run(n, task);
}

/// Convenience: `global().run_chunked(n, min_chunk, task)`.
pub fn parallel_for_chunked(n: usize, min_chunk: usize, task: &(dyn Fn(std::ops::Range<usize>) + Sync)) {
    global().run_chunked(n, min_chunk, task);
}

/// Convenience: `global().run_chunked_weighted(n, cost, task)`.
pub fn parallel_for_weighted(n: usize, cost: &dyn Fn(usize) -> u64, task: &(dyn Fn(std::ops::Range<usize>) + Sync)) {
    global().run_chunked_weighted(n, cost, task);
}

/// Zero the global pool's cumulative utilization stats.
pub fn reset_global_stats() {
    global().reset_stats();
}

/// Marker used by tests to verify reentrancy handling is serial, not deadlock.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// A lightweight atomic flag handy for one-shot signalling in tests.
pub struct Flag(AtomicBool);

impl Default for Flag {
    fn default() -> Self {
        Self::new()
    }
}

impl Flag {
    pub fn new() -> Self {
        Flag(AtomicBool::new(false))
    }
    pub fn set(&self) {
        // ORDERING: [handoff] the Release store pairs with the Acquire load
        // in `get`, so writes sequenced before `set` are visible to a
        // thread that observes the flag raised.
        self.0.store(true, Ordering::Release);
    }
    pub fn get(&self) -> bool {
        // ORDERING: [handoff] Acquire side of the pairing in `set`.
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    // Tests that flip the process-wide obs flag serialize behind this lock
    // so they don't race each other (other tests never enable recording).
    fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run(n, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sum_matches_serial() {
        let pool = ThreadPool::new(8);
        let total = AtomicU64::new(0);
        pool.run(1000, &|i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn zero_and_one_items() {
        let pool = ThreadPool::new(4);
        pool.run(0, &|_| panic!("must not run"));
        let hit = AtomicUsize::new(0);
        pool.run(1, &|i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn single_thread_pool_is_serial() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let order = Mutex::new(Vec::new());
        pool.run(16, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn reentrant_run_is_serial_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(4));
        let count = AtomicUsize::new(0);
        let inner_pool = Arc::clone(&pool);
        pool.run(4, &|_| {
            assert!(in_worker() || !in_worker()); // just exercise the TLS
            inner_pool.run(8, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn chunked_covers_range_without_overlap() {
        let pool = ThreadPool::new(4);
        let n = 1003;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run_chunked(n, 64, &|range| {
            assert!(range.len() <= 64);
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_jobs_reuse_workers() {
        let pool = ThreadPool::new(4);
        for round in 0..50 {
            let total = AtomicUsize::new(0);
            pool.run(100, &|i| {
                total.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), (0..100).sum::<usize>() + 100 * round);
        }
    }

    #[test]
    fn global_pool_works() {
        let total = AtomicUsize::new(0);
        parallel_for(256, &|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..256).sum());
    }

    #[test]
    fn borrows_stack_data_mutably_via_disjoint_chunks() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u64; 4096];
        let parts = SliceParts::new(&mut data, 256);
        pool.run(parts.len(), &|i| {
            let chunk = parts.take(i);
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (i * 256 + k) as u64;
            }
        });
        drop(parts);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn stats_not_recorded_while_disabled() {
        let _g = obs_guard();
        obs::set_enabled(false);
        let pool = ThreadPool::new(4);
        pool.run(512, &|_| {});
        let report = pool.report();
        assert_eq!(report.jobs, 0);
        assert!(report.workers.iter().all(|w| w.chunks == 0));
    }

    #[test]
    fn stats_recorded_and_reset_while_enabled() {
        let _g = obs_guard();
        obs::set_enabled(true);
        let pool = ThreadPool::new(4);
        pool.run(4096, &|i| {
            std::hint::black_box(i * i);
        });
        obs::set_enabled(false);
        let report = pool.report();
        assert_eq!(report.jobs, 1);
        assert_eq!(report.threads, 4);
        assert_eq!(report.workers.len(), 4);
        assert!(report.workers[0].is_caller_lane);
        let total_chunks: u64 = report.workers.iter().map(|w| w.chunks).sum();
        // 4096 indices at chunk size 4096/(4*4) = 256 → 16 claimed chunks.
        assert_eq!(total_chunks, 16);
        assert!(report.workers.iter().map(|w| w.busy_ns).sum::<u64>() > 0);
        pool.reset_stats();
        let cleared = pool.report();
        assert_eq!(cleared.jobs, 0);
        assert!(cleared.workers.iter().all(|w| w.chunks == 0 && w.busy_ns == 0));
    }
}
