//! Checked disjoint mutable access to chunks of a slice from parallel tasks.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU8, Ordering};

/// Splits a mutable slice into fixed-size chunks that parallel tasks can
/// claim **at most once each** by index. This provides safe `&mut` access to
/// per-task output regions without `unsafe` in kernel code.
///
/// Each chunk has a claim flag; [`SliceParts::take`] panics on double-claim,
/// which turns an indexing bug in a kernel into a loud failure instead of a
/// data race.
pub struct SliceParts<'a, T> {
    base: *mut T,
    len: usize,
    chunk: usize,
    claimed: Vec<AtomicU8>,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the raw `base` pointer is the only non-auto-Send/Sync field. It
// derives from a `&'a mut [T]` that `new` borrows exclusively for 'a (held
// by `_marker`), so no other path can touch the buffer while a SliceParts
// exists. Cross-thread `&self` access only reaches the buffer via `take`,
// whose AcqRel claim swap hands each disjoint chunk to at most one thread —
// concurrent `take` calls never produce aliasing `&mut`s. `T: Send` is
// required because chunk contents move to the claiming thread.
unsafe impl<T: Send> Send for SliceParts<'_, T> {}
// SAFETY: as for Send above — shared access is mediated entirely by the
// per-chunk claim flags.
unsafe impl<T: Send> Sync for SliceParts<'_, T> {}

impl<'a, T> SliceParts<'a, T> {
    /// Split `data` into `ceil(len / chunk)` chunks of `chunk` elements
    /// (the last chunk may be shorter).
    pub fn new(data: &'a mut [T], chunk: usize) -> Self {
        assert!(chunk > 0);
        let len = data.len();
        let pieces = len.div_ceil(chunk);
        SliceParts {
            base: data.as_mut_ptr(),
            len,
            chunk,
            claimed: (0..pieces).map(|_| AtomicU8::new(0)).collect(),
            _marker: PhantomData,
        }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.claimed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.claimed.is_empty()
    }

    /// Claim chunk `i`, returning its mutable slice. Panics if `i` is out of
    /// range or the chunk was already claimed.
    // The `&self -> &mut` shape is the point of this type: the claim flags
    // make the returned slices disjoint, so handing them out through a
    // shared reference is sound.
    #[allow(clippy::mut_from_ref)]
    pub fn take(&self, i: usize) -> &mut [T] {
        // ORDERING: [handoff] AcqRel swap — the claim is a cross-thread
        // ownership transfer of the chunk: Acquire orders the claiming
        // thread's accesses after any prior (panicked) claimant's Release,
        // and Release publishes the claim to later claim attempts.
        let was = self.claimed[i].swap(1, Ordering::AcqRel);
        assert_eq!(was, 0, "chunk {i} claimed twice");
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.len);
        // SAFETY: in-bounds — `i < claimed.len()` (indexing above panics
        // otherwise) gives `start ≤ len` via the div_ceil construction, and
        // `end` is clamped to `len`, so `base + start .. base + end` stays
        // inside the original allocation. Non-aliasing — the swap above
        // returned 0, so this chunk was never handed out before, and chunks
        // at different `i` cover disjoint index ranges. The returned
        // lifetime is `'a` at most (elided via `&self`), matching the
        // exclusive borrow captured in `new`.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(start), end - start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_tile_the_slice() {
        let mut v = vec![0i32; 10];
        let parts = SliceParts::new(&mut v, 4);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.take(0).len(), 4);
        assert_eq!(parts.take(2).len(), 2);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn double_take_panics() {
        let mut v = vec![0i32; 8];
        let parts = SliceParts::new(&mut v, 4);
        let _a = parts.take(1);
        let _b = parts.take(1);
    }

    #[test]
    fn writes_land_in_the_right_place() {
        let mut v = vec![0i32; 9];
        {
            let parts = SliceParts::new(&mut v, 3);
            for i in (0..3).rev() {
                for (k, slot) in parts.take(i).iter_mut().enumerate() {
                    *slot = (i * 3 + k) as i32;
                }
            }
        }
        assert_eq!(v, (0..9).collect::<Vec<_>>());
    }
}
