//! A small CNN training framework — the stand-in for Dragon-Alpha (§5.7)
//! in Experiment 3.
//!
//! Design goals, mirroring the paper's setup (§6.3.1):
//!
//! * convolution layers select a **backend**: [`Backend::ImcolWinograd`]
//!   (unit-stride convolutions run `iwino_core::conv2d` / `deconv2d`,
//!   "other algorithms handle the non-unit-stride cases") or
//!   [`Backend::Gemm`] (everything through im2col+GEMM — the "PyTorch"
//!   control arm; the nets, data, initialisation and optimisers are
//!   otherwise identical, so any convergence difference is attributable to
//!   the convolution algorithm);
//! * LeakyReLU activations, BatchNorm, max-pooling, kaiming-uniform init,
//!   SGDM and Adam with lr 0.001, softmax cross-entropy with one-hot
//!   labels, pixels scaled to [−1, 1];
//! * VGG16/VGG19 (plus the VGG16x5 / VGG16x7 wide-filter variants built to
//!   exercise `Γ8(4,5)` and `Γ16(10,7)`) and ResNet18/34 (whose stride-2
//!   down-sampling convolutions fall back to GEMM, the effect §6.3.2 uses
//!   to explain ResNet's lower acceleration).
//!
//! Datasets are synthetic, class-structured images (see [`data`]) because
//! Cifar10/ILSVRC2012 are not available offline; the experiment's claim —
//! *the Winograd and GEMM arms converge identically* — is preserved.

#![forbid(unsafe_code)]

pub mod conv;
pub mod data;
pub mod dropout;
pub mod extras;
pub mod init;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod serialize;
pub mod train;

pub use conv::{Backend, Conv2d};
pub use data::SyntheticDataset;
pub use dropout::Dropout;
pub use extras::{apply_weight_decay, clip_grad_norm, AvgPool2d, ConstantLr, CosineAnneal, LrSchedule, StepDecay};
pub use layer::{Layer, Param};
pub use layers::{BatchNorm2d, Flatten, LeakyReLU, Linear, MaxPool2d};
pub use loss::SoftmaxCrossEntropy;
pub use model::{resnet18, resnet34, vgg16, vgg16x5, vgg16x7, vgg19, Sequential};
pub use optim::{Adam, Optimizer, Sgdm};
pub use serialize::{load_weights, save_weights, weight_file_bytes};
pub use train::{evaluate, train, OptKind, TrainConfig, TrainReport};
