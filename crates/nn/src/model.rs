//! Model containers and the §6.3 network zoo: VGG16/19 (+ the x5/x7
//! wide-filter variants) and ResNet18/34.
//!
//! All constructors take a `width` divisor so the CI-scale runs stay
//! tractable: `width = 64` reproduces the full-size nets; the harness
//! defaults to slimmer ones and prints the scaling factor.

use crate::conv::{Backend, Conv2d};
use crate::layer::{Layer, Param};
use crate::layers::{BatchNorm2d, Flatten, LeakyReLU, Linear, MaxPool2d};
use iwino_tensor::Tensor4;

/// A stack of layers applied in order.
pub struct Sequential {
    pub layers: Vec<Box<dyn Layer>>,
    pub label: String,
}

impl Sequential {
    pub fn new(label: impl Into<String>) -> Self {
        Sequential {
            layers: Vec::new(),
            label: label.into(),
        }
    }

    pub fn push(&mut self, l: impl Layer + 'static) {
        self.layers.push(Box::new(l));
    }

    pub fn push_boxed(&mut self, l: Box<dyn Layer>) {
        self.layers.push(l);
    }

    /// Total learnable parameters.
    pub fn param_count(&mut self) -> usize {
        self.layers.iter_mut().flat_map(|l| l.params()).map(|p| p.len()).sum()
    }

    /// Bytes of parameter values (the "weight file" column of Tables 4/5).
    pub fn weight_bytes(&mut self) -> usize {
        self.param_count() * 4
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let mut cur = dy.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    fn params(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn cached_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.cached_bytes()).sum()
    }
}

/// Global average pooling: `[N, H, W, C] → [N, 1, 1, C]`.
pub struct GlobalAvgPool {
    in_dims: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    pub fn new() -> Self {
        GlobalAvgPool { in_dims: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let [n, h, w, c] = x.dims();
        let mut y = Tensor4::<f32>::zeros([n, 1, 1, c]);
        let inv = 1.0 / (h * w) as f32;
        for b in 0..n {
            let dst = &mut y.as_mut_slice()[b * c..(b + 1) * c];
            for px in x.as_slice()[b * h * w * c..(b + 1) * h * w * c].chunks_exact(c) {
                for (d, &v) in dst.iter_mut().zip(px) {
                    *d += v;
                }
            }
            dst.iter_mut().for_each(|v| *v *= inv);
        }
        if train {
            self.in_dims = Some(x.dims());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let [n, h, w, c] = self.in_dims.take().expect("backward without forward");
        let inv = 1.0 / (h * w) as f32;
        let mut dx = Tensor4::<f32>::zeros([n, h, w, c]);
        for b in 0..n {
            let src = &dy.as_slice()[b * c..(b + 1) * c];
            for px in dx.as_mut_slice()[b * h * w * c..(b + 1) * h * w * c].chunks_exact_mut(c) {
                for (d, &g) in px.iter_mut().zip(src) {
                    *d = g * inv;
                }
            }
        }
        dx
    }

    fn name(&self) -> String {
        "GlobalAvgPool".into()
    }
}

/// ResNet basic block: `y = LReLU(BN(conv(LReLU(BN(conv(x))))) + skip(x))`.
/// Stride-2 blocks down-sample through the convolution itself — the
/// non-unit-stride path that "restricts the contributions of
/// Im2col-Winograd" (§6.3.2).
pub struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    act1: LeakyReLU,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    act_out: LeakyReLU,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    cached_sum_pos: Option<Vec<bool>>,
}

impl BasicBlock {
    pub fn new(ic: usize, oc: usize, stride: usize, backend: Backend, seed: u64) -> Self {
        let downsample = (stride != 1 || ic != oc).then(|| {
            (
                Conv2d::new(ic, oc, 1, stride, 0, false, backend, seed ^ 0xd5),
                BatchNorm2d::new(oc),
            )
        });
        BasicBlock {
            conv1: Conv2d::new(ic, oc, 3, stride, 1, false, backend, seed),
            bn1: BatchNorm2d::new(oc),
            act1: LeakyReLU::default(),
            conv2: Conv2d::new(oc, oc, 3, 1, 1, false, backend, seed ^ 0xa7),
            bn2: BatchNorm2d::new(oc),
            act_out: LeakyReLU::default(),
            downsample,
            cached_sum_pos: None,
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let h = self.conv1.forward(x, train);
        let h = self.bn1.forward(&h, train);
        let h = self.act1.forward(&h, train);
        let h = self.conv2.forward(&h, train);
        let mut h = self.bn2.forward(&h, train);
        let skip = match &mut self.downsample {
            Some((c, bn)) => {
                let s = c.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        for (a, &b) in h.as_mut_slice().iter_mut().zip(skip.as_slice()) {
            *a += b;
        }
        if train {
            self.cached_sum_pos = Some(h.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        let out = self.act_out.forward(&h, false); // mask handled locally
        out
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        // LeakyReLU at the output (local mask, since act_out.forward was
        // called in eval mode).
        let pos = self.cached_sum_pos.take().expect("backward without forward");
        let mut d = dy.clone();
        for (g, &p) in d.as_mut_slice().iter_mut().zip(&pos) {
            if !p {
                *g *= self.act_out.slope;
            }
        }
        // Main branch.
        let dm = self.bn2.backward(&d);
        let dm = self.conv2.backward(&dm);
        let dm = self.act1.backward(&dm);
        let dm = self.bn1.backward(&dm);
        let mut dx = self.conv1.backward(&dm);
        // Skip branch.
        let ds = match &mut self.downsample {
            Some((c, bn)) => {
                let t = bn.backward(&d);
                c.backward(&t)
            }
            None => d,
        };
        for (a, &b) in dx.as_mut_slice().iter_mut().zip(ds.as_slice()) {
            *a += b;
        }
        dx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.conv1.params());
        out.extend(self.bn1.params());
        out.extend(self.conv2.params());
        out.extend(self.bn2.params());
        if let Some((c, bn)) = &mut self.downsample {
            out.extend(c.params());
            out.extend(bn.params());
        }
        out
    }

    fn name(&self) -> String {
        format!("BasicBlock({} → {})", self.conv1.ic, self.conv1.oc)
    }

    fn cached_bytes(&self) -> usize {
        self.conv1.cached_bytes()
            + self.conv2.cached_bytes()
            + self.bn1.cached_bytes()
            + self.bn2.cached_bytes()
            + self.cached_sum_pos.as_ref().map_or(0, Vec::len)
    }
}

// ---------------------------------------------------------------------------
// VGG family
// ---------------------------------------------------------------------------

/// Build a VGG-style network. `cfg` lists convolutions per stage (a stage
/// ends with max-pooling); `filters[i]` gives the filter size of the i-th
/// convolution overall (the x5/x7 variants reshape some of them, §6.3.1).
/// One BatchNorm per stage — "5 BatchNorm layers were added into VGG to
/// expedite convergence".
fn vgg(label: &str, cfg: &[usize], filters: &[usize], in_ch: usize, width: usize, backend: Backend) -> Sequential {
    let stage_ch = [width, 2 * width, 4 * width, 8 * width, 8 * width];
    let mut m = Sequential::new(label);
    let mut ic = in_ch;
    let mut conv_idx = 0usize;
    let mut seed = 1000u64;
    for (stage, &convs) in cfg.iter().enumerate() {
        let oc = stage_ch[stage];
        for _ in 0..convs {
            let f = filters[conv_idx];
            m.push(Conv2d::new(ic, oc, f, 1, f / 2, true, backend, seed));
            m.push(LeakyReLU::default());
            ic = oc;
            conv_idx += 1;
            seed += 1;
        }
        m.push(BatchNorm2d::new(oc));
        m.push(MaxPool2d::new(2));
    }
    m.push(Flatten::new());
    // The paper adjusts the full-connect layers to fit tensor shapes
    // (§6.3.1); the classifier here is a single linear head whose input
    // size is resolved lazily at first forward — we instead require the
    // caller to finish with `finish_classifier`.
    m.label = format!("{label}(w{width})");
    m
}

/// Append the linear classifier once the flattened feature size is known.
fn finish(mut m: Sequential, feat: usize, classes: usize) -> Sequential {
    m.push(Linear::new(feat, classes, 999));
    m
}

/// Flattened feature size of a VGG over `input_hw` (5 poolings of 2).
fn vgg_feat(input_hw: usize, width: usize) -> usize {
    let final_hw = input_hw / 32;
    assert!(final_hw >= 1, "input too small for 5 poolings");
    final_hw * final_hw * 8 * width
}

/// VGG16: 13 convolutions in stages [2, 2, 3, 3, 3], all 3×3.
pub fn vgg16(input_hw: usize, in_ch: usize, classes: usize, width: usize, backend: Backend) -> Sequential {
    let m = vgg("VGG16", &[2, 2, 3, 3, 3], &[3; 13], in_ch, width, backend);
    finish(m, vgg_feat(input_hw, width), classes)
}

/// VGG19: 16 convolutions in stages [2, 2, 4, 4, 4], all 3×3.
pub fn vgg19(input_hw: usize, in_ch: usize, classes: usize, width: usize, backend: Backend) -> Sequential {
    let m = vgg("VGG19", &[2, 2, 4, 4, 4], &[3; 16], in_ch, width, backend);
    finish(m, vgg_feat(input_hw, width), classes)
}

/// VGG16x5: "adjusts all filters from 3×3 to 5×5" — exercises `Γ8(4,5)`.
pub fn vgg16x5(input_hw: usize, in_ch: usize, classes: usize, width: usize, backend: Backend) -> Sequential {
    let m = vgg("VGG16x5", &[2, 2, 3, 3, 3], &[5; 13], in_ch, width, backend);
    finish(m, vgg_feat(input_hw, width), classes)
}

/// VGG16x7: "changes the filter shapes of the first 4 convolutional layers
/// to 7×7" — exercises `Γ16(10,7)`.
pub fn vgg16x7(input_hw: usize, in_ch: usize, classes: usize, width: usize, backend: Backend) -> Sequential {
    let mut filters = [3usize; 13];
    filters[..4].fill(7);
    let m = vgg("VGG16x7", &[2, 2, 3, 3, 3], &filters, in_ch, width, backend);
    finish(m, vgg_feat(input_hw, width), classes)
}

// ---------------------------------------------------------------------------
// ResNet family
// ---------------------------------------------------------------------------

fn resnet(label: &str, blocks: &[usize], in_ch: usize, classes: usize, width: usize, backend: Backend) -> Sequential {
    let mut m = Sequential::new(label);
    // CIFAR-style stem: 3×3 unit-stride conv (the 7×7/s2 ImageNet stem
    // would collapse the small synthetic inputs).
    m.push(Conv2d::new(in_ch, width, 3, 1, 1, false, backend, 2000));
    m.push(BatchNorm2d::new(width));
    m.push(LeakyReLU::default());
    let mut ic = width;
    let mut seed = 2100u64;
    for (stage, &count) in blocks.iter().enumerate() {
        let oc = width << stage;
        for b in 0..count {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            m.push(BasicBlock::new(ic, oc, stride, backend, seed));
            ic = oc;
            seed += 7;
        }
    }
    m.push(GlobalAvgPool::new());
    m.push(Flatten::new());
    m.push(Linear::new(ic, classes, 3000));
    m.label = format!("{label}(w{width})");
    m
}

/// ResNet18: stages [2, 2, 2, 2] of basic blocks.
pub fn resnet18(in_ch: usize, classes: usize, width: usize, backend: Backend) -> Sequential {
    resnet("ResNet18", &[2, 2, 2, 2], in_ch, classes, width, backend)
}

/// ResNet34: stages [3, 4, 6, 3] of basic blocks.
pub fn resnet34(in_ch: usize, classes: usize, width: usize, backend: Backend) -> Sequential {
    resnet("ResNet34", &[3, 4, 6, 3], in_ch, classes, width, backend)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_shapes_flow() {
        let mut m = vgg16(32, 3, 10, 8, Backend::Gemm);
        let x = Tensor4::<f32>::random([2, 32, 32, 3], 1, -1.0, 1.0);
        let y = m.forward(&x, false);
        assert_eq!(y.dims(), [2, 1, 1, 10]);
    }

    #[test]
    fn vgg_conv_counts() {
        // VGG16 has 13 conv layers, VGG19 has 16.
        let mut m16 = vgg16(32, 3, 10, 4, Backend::Gemm);
        let c16 = m16.layers.iter().filter(|l| l.name().starts_with("Conv2d")).count();
        assert_eq!(c16, 13);
        let mut m19 = vgg19(32, 3, 10, 4, Backend::Gemm);
        let c19 = m19.layers.iter().filter(|l| l.name().starts_with("Conv2d")).count();
        assert_eq!(c19, 16);
        // 5 BatchNorm layers per §6.3.1.
        let bn = m16.layers.iter().filter(|l| l.name().starts_with("BatchNorm")).count();
        assert_eq!(bn, 5);
        let _ = (m16.param_count(), m19.param_count());
    }

    #[test]
    fn vgg16x7_has_four_wide_convs() {
        let m = vgg16x7(32, 3, 10, 4, Backend::ImcolWinograd);
        let wide = m.layers.iter().filter(|l| l.name().contains("7×7")).count();
        assert_eq!(wide, 4);
    }

    #[test]
    fn resnet18_forward_and_shapes() {
        let mut m = resnet18(3, 10, 8, Backend::Gemm);
        let x = Tensor4::<f32>::random([2, 16, 16, 3], 2, -1.0, 1.0);
        let y = m.forward(&x, false);
        assert_eq!(y.dims(), [2, 1, 1, 10]);
        // 8 basic blocks.
        let blocks = m.layers.iter().filter(|l| l.name().starts_with("BasicBlock")).count();
        assert_eq!(blocks, 8);
    }

    #[test]
    fn resnet34_block_count() {
        let m = resnet34(3, 10, 4, Backend::Gemm);
        let blocks = m.layers.iter().filter(|l| l.name().starts_with("BasicBlock")).count();
        assert_eq!(blocks, 16);
    }

    #[test]
    fn resnet34_has_more_params_than_resnet18() {
        let mut a = resnet18(3, 10, 8, Backend::Gemm);
        let mut b = resnet34(3, 10, 8, Backend::Gemm);
        assert!(b.param_count() > a.param_count());
    }

    #[test]
    fn basic_block_gradcheck_through_skip() {
        let mut blk = BasicBlock::new(4, 4, 1, Backend::Gemm, 77);
        let x = Tensor4::<f32>::random([1, 6, 6, 4], 3, -1.0, 1.0);
        let y = blk.forward(&x, true);
        assert_eq!(y.dims(), x.dims());
        let dx = blk.backward(&y);
        assert_eq!(dx.dims(), x.dims());
        // The skip path must contribute: zero the main branch by zeroing all
        // conv weights; then the block ≈ LReLU(BN-shift + x) and dx ≠ 0.
        assert!(dx.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn downsampling_block_halves_resolution() {
        let mut blk = BasicBlock::new(4, 8, 2, Backend::Gemm, 78);
        let x = Tensor4::<f32>::random([1, 8, 8, 4], 4, -1.0, 1.0);
        let y = blk.forward(&x, true);
        assert_eq!(y.dims(), [1, 4, 4, 8]);
        let dx = blk.backward(&y);
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn global_avg_pool_forward_backward() {
        let mut g = GlobalAvgPool::new();
        let x = Tensor4::from_vec([1, 2, 2, 1], vec![1.0, 2.0, 3.0, 6.0]);
        let y = g.forward(&x, true);
        assert_eq!(y.as_slice(), &[3.0]);
        let dy = Tensor4::from_vec([1, 1, 1, 1], vec![4.0]);
        let dx = g.backward(&dy);
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn winograd_and_gemm_vgg_agree_in_eval() {
        let mut a = vgg16(32, 3, 10, 4, Backend::ImcolWinograd);
        let mut b = vgg16(32, 3, 10, 4, Backend::Gemm);
        let x = Tensor4::<f32>::random([1, 32, 32, 3], 5, -1.0, 1.0);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        let e = iwino_tensor::max_mixed_error(&ya, &yb);
        assert!(e < 1e-2, "{e}");
    }
}
