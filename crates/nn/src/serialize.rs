//! Weight-file serialisation — the "Weight file" column of Tables 4/5.
//!
//! A deliberately simple little-endian binary format:
//!
//! ```text
//! magic  "IWNN"            4 bytes
//! version u32              (= 1)
//! count   u32              number of parameter tensors
//! per parameter: len u32, then len f32 values
//! ```
//!
//! Only parameter *values* are stored (no gradients, no optimiser state),
//! matching what a framework writes to disk after training.

use crate::layer::Layer;
use crate::model::Sequential;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"IWNN";
const VERSION: u32 = 1;

/// Serialise every parameter of `model` into `w`.
pub fn save_weights<W: Write>(model: &mut Sequential, w: &mut W) -> io::Result<()> {
    let params = model.params();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        w.write_all(&(p.value.len() as u32).to_le_bytes())?;
        for v in &p.value {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Load weights saved by [`save_weights`] into a *structurally identical*
/// model. Fails on magic/version/shape mismatch.
pub fn load_weights<R: Read>(model: &mut Sequential, r: &mut R) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let count = read_u32(r)? as usize;
    let mut params = model.params();
    if count != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("parameter count mismatch: file has {count}, model has {}", params.len()),
        ));
    }
    for p in params.iter_mut() {
        let len = read_u32(r)? as usize;
        if len != p.value.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("parameter length mismatch: file {len}, model {}", p.value.len()),
            ));
        }
        let mut buf = [0u8; 4];
        for v in p.value.iter_mut() {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// On-disk size of the model's weight file in bytes, without writing it.
pub fn weight_file_bytes(model: &mut Sequential) -> usize {
    let params = model.params();
    4 + 4 + 4 + params.iter().map(|p| 4 + 4 * p.value.len()).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Backend;
    use crate::model::vgg16;
    use iwino_tensor::Tensor4;

    #[test]
    fn roundtrip_preserves_outputs() {
        let mut a = vgg16(32, 3, 10, 4, Backend::Gemm);
        let mut buf = Vec::new();
        save_weights(&mut a, &mut buf).unwrap();
        assert_eq!(buf.len(), weight_file_bytes(&mut a));

        // A differently-seeded model of the same architecture…
        let mut b = vgg16(32, 3, 10, 4, Backend::Gemm);
        for p in b.params() {
            for v in &mut p.value {
                *v += 0.123;
            }
        }
        let x = Tensor4::<f32>::random([1, 32, 32, 3], 1, -1.0, 1.0);
        let ya = a.forward(&x, false);
        let yb_before = b.forward(&x, false);
        assert_ne!(ya.as_slice(), yb_before.as_slice());

        // …takes on a's behaviour after loading a's weights.
        load_weights(&mut b, &mut buf.as_slice()).unwrap();
        let yb_after = b.forward(&x, false);
        assert_eq!(ya.as_slice(), yb_after.as_slice());
    }

    #[test]
    fn rejects_garbage() {
        let mut m = vgg16(32, 3, 10, 4, Backend::Gemm);
        let junk = b"NOPE____".to_vec();
        assert!(load_weights(&mut m, &mut junk.as_slice()).is_err());
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut a = vgg16(32, 3, 10, 4, Backend::Gemm);
        let mut buf = Vec::new();
        save_weights(&mut a, &mut buf).unwrap();
        let mut wider = vgg16(32, 3, 10, 8, Backend::Gemm);
        assert!(load_weights(&mut wider, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_is_an_error() {
        let mut a = vgg16(32, 3, 10, 4, Backend::Gemm);
        let mut buf = Vec::new();
        save_weights(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_weights(&mut a, &mut buf.as_slice()).is_err());
    }
}
