//! Parameter initialisation: kaiming-uniform (§6.3.1, He et al. 2015).

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Kaiming-uniform: `U(−b, b)` with `b = √(6 / fan_in)` (gain for
/// (leaky-)ReLU networks, matching PyTorch's `kaiming_uniform_` with the
/// default `a = √5`-free convention used for conv layers).
pub fn kaiming_uniform(len: usize, fan_in: usize, seed: u64) -> Vec<f32> {
    assert!(fan_in > 0);
    let bound = (6.0 / fan_in as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
    let dist = Uniform::new(-bound, bound);
    (0..len).map(|_| dist.sample(&mut rng) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_and_determinism() {
        let v = kaiming_uniform(10_000, 64, 1);
        let b = (6.0f64 / 64.0).sqrt() as f32;
        assert!(v.iter().all(|x| x.abs() <= b));
        // Roughly centred.
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.01);
        assert_eq!(v, kaiming_uniform(10_000, 64, 1));
        assert_ne!(v, kaiming_uniform(10_000, 64, 2));
    }

    #[test]
    fn variance_scales_with_fan_in() {
        let narrow = kaiming_uniform(10_000, 16, 3);
        let wide = kaiming_uniform(10_000, 1024, 3);
        let var = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        assert!(var(&narrow) > 10.0 * var(&wide));
    }
}
