//! The layer abstraction: explicit forward/backward with cached
//! activations, and flat parameter/gradient pairs for the optimisers.

use iwino_tensor::Tensor4;

/// A learnable parameter: flat value and gradient buffers of equal length.
#[derive(Clone, Debug, Default)]
pub struct Param {
    pub value: Vec<f32>,
    pub grad: Vec<f32>,
}

impl Param {
    pub fn new(value: Vec<f32>) -> Self {
        let grad = vec![0.0; value.len()];
        Param { value, grad }
    }

    pub fn len(&self) -> usize {
        self.value.len()
    }

    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A differentiable layer. `forward` caches whatever `backward` needs;
/// `backward` consumes the cache, accumulates parameter gradients, and
/// returns the input gradient.
pub trait Layer: Send {
    /// Run the layer. `train` enables training-time behaviour (batch-norm
    /// batch statistics).
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32>;

    /// Back-propagate. Must be called after a `forward(.., train = true)`.
    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32>;

    /// Mutable access to every parameter of this layer (empty by default).
    fn params(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Human-readable layer description.
    fn name(&self) -> String;

    /// Approximate activation-cache bytes currently held (memory report).
    fn cached_bytes(&self) -> usize {
        0
    }
}

/// Total parameter count of a set of layers.
pub fn param_count(layers: &mut [Box<dyn Layer>]) -> usize {
    layers.iter_mut().flat_map(|l| l.params()).map(|p| p.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_basics() {
        let mut p = Param::new(vec![1.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        p.grad = vec![3.0, 4.0];
        p.zero_grad();
        assert_eq!(p.grad, vec![0.0, 0.0]);
    }
}
