//! Optimisers: SGD with momentum and Adam (§6.3.1: "SGDM and Adam were
//! used to train CNNs, with SoftMax and 0.001 learning rate").

use crate::layer::Param;

/// A stateful optimiser over a flat list of parameters. State slot `i`
/// always corresponds to the `i`-th parameter passed to `step`, so callers
/// must keep the parameter order stable across steps.
pub trait Optimizer {
    fn step(&mut self, params: &mut [&mut Param]);

    /// Zero every gradient (called after each step).
    fn zero_grad(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            p.zero_grad();
        }
    }
}

/// SGD with classical momentum: `v ← μ·v + g`, `w ← w − lr·v`.
pub struct Sgdm {
    pub lr: f32,
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgdm {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgdm {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgdm {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter set changed");
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            for ((w, &g), vel) in p.value.iter_mut().zip(&p.grad).zip(v.iter_mut()) {
                *vel = self.momentum * *vel + g;
                *w -= self.lr * *vel;
            }
        }
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter set changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for (((w, &g), mi), vi) in p.value.iter_mut().zip(&p.grad).zip(m.iter_mut()).zip(v.iter_mut()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mh = *mi / bc1;
                let vh = *vi / bc2;
                *w -= self.lr * mh / (vh.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // Minimise f(w) = w²/2 from w = 1; grad = w.
        let mut p = Param::new(vec![1.0]);
        for _ in 0..steps {
            p.grad[0] = p.value[0];
            let mut refs = [&mut p];
            opt.step(&mut refs);
            opt.zero_grad(&mut refs);
        }
        p.value[0]
    }

    #[test]
    fn sgdm_descends_quadratic() {
        let w = quadratic_descent(&mut Sgdm::new(0.1, 0.9), 200);
        assert!(w.abs() < 1e-3, "{w}");
    }

    #[test]
    fn adam_descends_quadratic() {
        let w = quadratic_descent(&mut Adam::new(0.05), 400);
        assert!(w.abs() < 1e-2, "{w}");
    }

    #[test]
    fn sgdm_without_momentum_is_plain_sgd() {
        let mut opt = Sgdm::new(0.5, 0.0);
        let mut p = Param::new(vec![2.0]);
        p.grad[0] = 2.0;
        let mut refs = [&mut p];
        opt.step(&mut refs);
        assert_eq!(p.value[0], 1.0);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgdm::new(1.0, 0.5);
        let mut p = Param::new(vec![0.0]);
        for expected in [-1.0f32, -2.5, -4.25] {
            p.grad[0] = 1.0;
            let mut refs = [&mut p];
            opt.step(&mut refs);
            assert!((p.value[0] - expected).abs() < 1e-6, "{} vs {expected}", p.value[0]);
        }
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, |Δw| of step 1 ≈ lr for any gradient scale.
        for g in [1e-3f32, 1.0, 1e3] {
            let mut opt = Adam::new(0.001);
            let mut p = Param::new(vec![0.0]);
            p.grad[0] = g;
            let mut refs = [&mut p];
            opt.step(&mut refs);
            assert!((p.value[0].abs() - 0.001).abs() < 1e-5, "g={g}: {}", p.value[0]);
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut opt = Adam::new(0.001);
        let mut p = Param::new(vec![0.0]);
        p.grad[0] = 5.0;
        let mut refs = [&mut p];
        opt.zero_grad(&mut refs);
        assert_eq!(p.grad[0], 0.0);
    }
}
