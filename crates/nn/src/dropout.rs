//! Dropout (used by the classic VGG classifier head; available for the
//! model zoo even though the paper's scaled nets train fine without it).

use crate::layer::Layer;
use iwino_tensor::Tensor4;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: at train time each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1−p)`, so eval mode
/// is the identity.
pub struct Dropout {
    pub p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| if self.rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mut y = x.clone();
        for (v, &m) in y.as_mut_slice().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let mut dx = dy.clone();
        if let Some(mask) = self.mask.take() {
            for (g, &m) in dx.as_mut_slice().iter_mut().zip(&mask) {
                *g *= m;
            }
        }
        dx
    }

    fn name(&self) -> String {
        format!("Dropout({})", self.p)
    }

    fn cached_bytes(&self) -> usize {
        self.mask.as_ref().map_or(0, |m| m.len() * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor4::<f32>::random([1, 4, 4, 2], 2, -1.0, 1.0);
        let y = d.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor4::<f32>::from_vec([1, 1, 1, 10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "{frac}");
        // Survivors scaled by 1/0.7.
        let survivor = y.as_slice().iter().find(|&&v| v != 0.0).unwrap();
        assert!((survivor - 1.0 / 0.7).abs() < 1e-6);
        // Expectation preserved.
        let mean: f64 = y.as_slice().iter().map(|&v| v as f64).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "{mean}");
    }

    #[test]
    fn backward_routes_through_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor4::<f32>::from_vec([1, 1, 1, 8], vec![1.0; 8]);
        let y = d.forward(&x, true);
        let dy = Tensor4::<f32>::from_vec([1, 1, 1, 8], vec![1.0; 8]);
        let dx = d.backward(&dy);
        for (g, &v) in dx.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(*g, v, "gradient must use the forward mask");
        }
    }

    #[test]
    fn p_zero_is_identity_even_in_train() {
        let mut d = Dropout::new(0.0, 5);
        let x = Tensor4::<f32>::random([1, 2, 2, 2], 6, -1.0, 1.0);
        assert_eq!(d.forward(&x, true), x);
    }
}
