//! The training loop and the metrics Tables 4/5 and Figures 11/12 report:
//! loss per logging interval, seconds per epoch, train/test accuracy,
//! parameter + activation memory, and weight-file size.

use crate::data::SyntheticDataset;
use crate::layer::Layer;
use crate::loss::SoftmaxCrossEntropy;
use crate::model::Sequential;
use crate::optim::{Adam, Optimizer, Sgdm};
use std::time::Instant;

/// Optimiser selection (§6.3.1 uses both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptKind {
    Sgdm,
    Adam,
}

/// Training configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch: usize,
    pub lr: f32,
    pub opt: OptKind,
    /// Record the loss every `log_every` steps ("The loss-function value
    /// was recorded per 10 steps", §6.3.1).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 2,
            batch: 16,
            lr: 1e-3,
            opt: OptKind::Adam,
            log_every: 10,
        }
    }
}

/// Everything the experiment harness prints.
#[derive(Clone, Debug)]
pub struct TrainReport {
    pub model: String,
    /// `(step, loss)` samples.
    pub losses: Vec<(usize, f32)>,
    pub epoch_seconds: Vec<f64>,
    pub train_accuracy: f64,
    pub test_accuracy: f64,
    /// Parameter + optimiser-state bytes.
    pub param_bytes: usize,
    /// Peak activation-cache bytes observed during training.
    pub peak_activation_bytes: usize,
    /// Weight-file size (parameter values only), Tables 4/5's last column.
    pub weight_bytes: usize,
}

impl TrainReport {
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epoch_seconds.is_empty() {
            return 0.0;
        }
        self.epoch_seconds.iter().sum::<f64>() / self.epoch_seconds.len() as f64
    }

    pub fn final_loss(&self) -> f32 {
        self.losses.last().map(|&(_, l)| l).unwrap_or(f32::NAN)
    }
}

/// Train `model` on `data` and report the §6.3 metrics.
pub fn train(model: &mut Sequential, data: &SyntheticDataset, cfg: &TrainConfig) -> TrainReport {
    let mut opt: Box<dyn Optimizer> = match cfg.opt {
        OptKind::Sgdm => Box::new(Sgdm::new(cfg.lr, 0.9)),
        OptKind::Adam => Box::new(Adam::new(cfg.lr)),
    };
    let mut losses = Vec::new();
    let mut epoch_seconds = Vec::new();
    let mut peak_cache = 0usize;
    let mut step = 0usize;
    let batches = data.train_batches(cfg.batch).max(1);
    for _epoch in 0..cfg.epochs {
        let t0 = Instant::now();
        for i in 0..batches {
            let (x, labels) = data.train_batch(i, cfg.batch);
            let logits = model.forward(&x, true);
            peak_cache = peak_cache.max(model.cached_bytes());
            let (loss, dlogits) = SoftmaxCrossEntropy::forward_backward(&logits, &labels);
            if step.is_multiple_of(cfg.log_every) {
                losses.push((step, loss));
            }
            let _ = model.backward(&dlogits);
            let mut params = model.params();
            opt.step(&mut params);
            opt.zero_grad(&mut params);
            step += 1;
        }
        epoch_seconds.push(t0.elapsed().as_secs_f64());
    }

    let train_accuracy = evaluate(model, data, cfg.batch, false);
    let test_accuracy = evaluate(model, data, cfg.batch, true);

    let weight_bytes = model.weight_bytes();
    // Optimiser state: SGDM keeps one slot per weight, Adam two.
    let opt_state = match cfg.opt {
        OptKind::Sgdm => weight_bytes,
        OptKind::Adam => 2 * weight_bytes,
    };
    TrainReport {
        model: model.label.clone(),
        losses,
        epoch_seconds,
        train_accuracy,
        test_accuracy,
        param_bytes: 2 * weight_bytes + opt_state, // values + grads + state
        peak_activation_bytes: peak_cache,
        weight_bytes,
    }
}

/// Fraction of correctly classified samples over a split.
pub fn evaluate(model: &mut Sequential, data: &SyntheticDataset, batch: usize, test: bool) -> f64 {
    let batches = if test {
        data.test_batches(batch)
    } else {
        data.train_batches(batch)
    }
    .max(1);
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..batches {
        let (x, labels) = if test {
            data.test_batch(i, batch)
        } else {
            data.train_batch(i, batch)
        };
        let logits = model.forward(&x, false);
        for (p, &l) in SoftmaxCrossEntropy::predict(&logits).iter().zip(&labels) {
            correct += usize::from(*p == l);
            total += 1;
        }
    }
    correct as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Backend;
    use crate::layers::{Flatten, LeakyReLU, Linear};
    use crate::Conv2d;

    fn tiny_model(backend: Backend) -> Sequential {
        let mut m = Sequential::new("tiny");
        m.push(Conv2d::new(3, 8, 3, 1, 1, true, backend, 1));
        m.push(LeakyReLU::default());
        m.push(crate::layers::MaxPool2d::new(4));
        m.push(Flatten::new());
        m.push(Linear::new(8 * 8 * 8, 10, 2));
        m
    }

    #[test]
    fn loss_decreases_on_synthetic_data() {
        let data = SyntheticDataset::cifar10_like(160, 40);
        let mut model = tiny_model(Backend::Gemm);
        let cfg = TrainConfig {
            epochs: 3,
            batch: 16,
            lr: 2e-3,
            opt: OptKind::Adam,
            log_every: 1,
        };
        let report = train(&mut model, &data, &cfg);
        let first = report.losses.first().unwrap().1;
        let last = report.final_loss();
        assert!(last < 0.7 * first, "no learning: {first} → {last}");
        assert!(report.test_accuracy > 0.3, "test acc {}", report.test_accuracy);
        assert_eq!(report.epoch_seconds.len(), 3);
        assert!(report.weight_bytes > 0);
        assert!(report.peak_activation_bytes > 0);
    }

    #[test]
    fn winograd_and_gemm_arms_converge_similarly() {
        // The Experiment 3 claim in miniature: identical nets and data,
        // only the conv algorithm differs ⟹ nearly identical loss curves.
        let data = SyntheticDataset::cifar10_like(96, 32);
        let cfg = TrainConfig {
            epochs: 2,
            batch: 16,
            lr: 1e-3,
            opt: OptKind::Adam,
            log_every: 1,
        };
        let mut wino = tiny_model(Backend::ImcolWinograd);
        let mut gemm = tiny_model(Backend::Gemm);
        let rw = train(&mut wino, &data, &cfg);
        let rg = train(&mut gemm, &data, &cfg);
        assert_eq!(rw.losses.len(), rg.losses.len());
        for (&(_, a), &(_, b)) in rw.losses.iter().zip(&rg.losses) {
            assert!((a - b).abs() < 0.15 * b.abs().max(0.5), "diverged: {a} vs {b}");
        }
    }

    #[test]
    fn sgdm_also_trains() {
        let data = SyntheticDataset::cifar10_like(96, 32);
        let mut model = tiny_model(Backend::Gemm);
        let cfg = TrainConfig {
            epochs: 3,
            batch: 16,
            lr: 5e-3,
            opt: OptKind::Sgdm,
            log_every: 1,
        };
        let report = train(&mut model, &data, &cfg);
        assert!(report.final_loss() < report.losses[0].1);
    }
}
