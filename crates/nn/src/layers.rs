//! Non-convolution layers: LeakyReLU, MaxPool2d, BatchNorm2d, Linear,
//! Flatten.

use crate::init::kaiming_uniform;
use crate::layer::{Layer, Param};
use iwino_tensor::Tensor4;

// ---------------------------------------------------------------------------
// LeakyReLU (§6.3.1: "Activation functions are LeakyRelu")
// ---------------------------------------------------------------------------

/// `y = x` for `x > 0`, `y = slope·x` otherwise.
pub struct LeakyReLU {
    pub slope: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyReLU {
    pub fn new(slope: f32) -> Self {
        LeakyReLU { slope, mask: None }
    }
}

impl Default for LeakyReLU {
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl Layer for LeakyReLU {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        if train {
            self.mask = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        let slope = self.slope;
        x.map(|v| if v > 0.0 { v } else { slope * v })
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let mask = self.mask.take().expect("backward without forward");
        let mut dx = dy.clone();
        for (g, &pos) in dx.as_mut_slice().iter_mut().zip(&mask) {
            if !pos {
                *g *= self.slope;
            }
        }
        dx
    }

    fn name(&self) -> String {
        format!("LeakyReLU({})", self.slope)
    }

    fn cached_bytes(&self) -> usize {
        self.mask.as_ref().map_or(0, Vec::len)
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d (VGG down-sampling; "In contrast to VGG, ResNet uses
// non-unit-stride convolution rather than max-pooling", §6.3.2)
// ---------------------------------------------------------------------------

/// `k×k` max pooling with stride `k` (the VGG configuration).
pub struct MaxPool2d {
    pub k: usize,
    argmax: Option<(Vec<u32>, [usize; 4])>,
}

impl MaxPool2d {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        MaxPool2d { k, argmax: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let [n, h, w, c] = x.dims();
        let k = self.k;
        assert!(h >= k && w >= k, "pool window larger than input");
        let (oh, ow) = (h / k, w / k);
        let mut y = Tensor4::<f32>::zeros([n, oh, ow, c]);
        let mut arg = vec![0u32; n * oh * ow * c];
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for ch in 0..c {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0u32;
                        for dy in 0..k {
                            for dx in 0..k {
                                let v = x.at(b, oy * k + dy, ox * k + dx, ch);
                                if v > best {
                                    best = v;
                                    best_idx = x.offset(b, oy * k + dy, ox * k + dx, ch) as u32;
                                }
                            }
                        }
                        *y.at_mut(b, oy, ox, ch) = best;
                        arg[y.offset(b, oy, ox, ch)] = best_idx;
                    }
                }
            }
        }
        if train {
            self.argmax = Some((arg, x.dims()));
        }
        y
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let (arg, x_dims) = self.argmax.take().expect("backward without forward");
        let mut dx = Tensor4::<f32>::zeros(x_dims);
        let dxs = dx.as_mut_slice();
        for (g, &idx) in dy.as_slice().iter().zip(&arg) {
            dxs[idx as usize] += g;
        }
        dx
    }

    fn name(&self) -> String {
        format!("MaxPool2d({0}×{0})", self.k)
    }

    fn cached_bytes(&self) -> usize {
        self.argmax.as_ref().map_or(0, |(a, _)| a.len() * 4)
    }
}

// ---------------------------------------------------------------------------
// BatchNorm2d (§6.3.1: "5 BatchNorm layers were added into VGG")
// ---------------------------------------------------------------------------

/// Per-channel batch normalisation over `N×H×W`.
pub struct BatchNorm2d {
    pub c: usize,
    pub eps: f32,
    pub momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor4<f32>,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    pub fn new(c: usize) -> Self {
        BatchNorm2d {
            c,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(vec![1.0; c]),
            beta: Param::new(vec![0.0; c]),
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            cache: None,
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let [n, h, w, c] = x.dims();
        assert_eq!(c, self.c);
        let count = (n * h * w) as f32;
        let (mean, var) = if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for px in x.as_slice().chunks_exact(c) {
                for (m, &v) in mean.iter_mut().zip(px) {
                    *m += v;
                }
            }
            mean.iter_mut().for_each(|m| *m /= count);
            for px in x.as_slice().chunks_exact(c) {
                for ((s, &v), &m) in var.iter_mut().zip(px).zip(&mean) {
                    *s += (v - m) * (v - m);
                }
            }
            var.iter_mut().for_each(|v| *v /= count);
            for i in 0..c {
                self.running_mean[i] = (1.0 - self.momentum) * self.running_mean[i] + self.momentum * mean[i];
                self.running_var[i] = (1.0 - self.momentum) * self.running_var[i] + self.momentum * var[i];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut y = x.clone();
        let mut x_hat = x.clone();
        for (ypx, hpx) in y
            .as_mut_slice()
            .chunks_exact_mut(c)
            .zip(x_hat.as_mut_slice().chunks_exact_mut(c))
        {
            for i in 0..c {
                let xh = (ypx[i] - mean[i]) * inv_std[i];
                hpx[i] = xh;
                ypx[i] = self.gamma.value[i] * xh + self.beta.value[i];
            }
        }
        if train {
            self.cache = Some(BnCache { x_hat, inv_std });
        }
        y
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let BnCache { x_hat, inv_std } = self.cache.take().expect("backward without forward");
        let [n, h, w, c] = dy.dims();
        let count = (n * h * w) as f32;
        // Per-channel reductions.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for (dpx, hpx) in dy.as_slice().chunks_exact(c).zip(x_hat.as_slice().chunks_exact(c)) {
            for i in 0..c {
                sum_dy[i] += dpx[i];
                sum_dy_xhat[i] += dpx[i] * hpx[i];
            }
        }
        for i in 0..c {
            self.gamma.grad[i] += sum_dy_xhat[i];
            self.beta.grad[i] += sum_dy[i];
        }
        // dx = (γ·inv_std / m)·(m·dy − Σdy − x̂·Σ(dy·x̂))
        let mut dx = dy.clone();
        for (dpx, hpx) in dx
            .as_mut_slice()
            .chunks_exact_mut(c)
            .zip(x_hat.as_slice().chunks_exact(c))
        {
            for i in 0..c {
                let t = count * dpx[i] - sum_dy[i] - hpx[i] * sum_dy_xhat[i];
                dpx[i] = self.gamma.value[i] * inv_std[i] * t / count;
            }
        }
        dx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> String {
        format!("BatchNorm2d({})", self.c)
    }

    fn cached_bytes(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.x_hat.len() * 4)
    }
}

// ---------------------------------------------------------------------------
// Flatten + Linear (classifier head)
// ---------------------------------------------------------------------------

/// `[N, H, W, C] → [N, 1, 1, H·W·C]`.
pub struct Flatten {
    in_dims: Option<[usize; 4]>,
}

impl Flatten {
    pub fn new() -> Self {
        Flatten { in_dims: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let [n, h, w, c] = x.dims();
        if train {
            self.in_dims = Some(x.dims());
        }
        Tensor4::from_vec([n, 1, 1, h * w * c], x.as_slice().to_vec())
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let dims = self.in_dims.take().expect("backward without forward");
        Tensor4::from_vec(dims, dy.as_slice().to_vec())
    }

    fn name(&self) -> String {
        "Flatten".into()
    }
}

/// Fully-connected layer on `[N, 1, 1, F]` activations.
pub struct Linear {
    pub fin: usize,
    pub fout: usize,
    weight: Param, // fout × fin, row-major
    bias: Param,
    cached_x: Option<Tensor4<f32>>,
}

impl Linear {
    pub fn new(fin: usize, fout: usize, seed: u64) -> Self {
        Linear {
            fin,
            fout,
            weight: Param::new(kaiming_uniform(fout * fin, fin, seed)),
            bias: Param::new(vec![0.0; fout]),
            cached_x: None,
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let [n, h, w, f] = x.dims();
        assert_eq!(h * w * f, self.fin, "Linear input size mismatch");
        let mut y = Tensor4::<f32>::zeros([n, 1, 1, self.fout]);
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        for b in 0..n {
            let xr = &xs[b * self.fin..(b + 1) * self.fin];
            let yr = &mut ys[b * self.fout..(b + 1) * self.fout];
            for (o, slot) in yr.iter_mut().enumerate() {
                let wrow = &self.weight.value[o * self.fin..(o + 1) * self.fin];
                let mut acc = self.bias.value[o];
                for (a, b2) in wrow.iter().zip(xr) {
                    acc += a * b2;
                }
                *slot = acc;
            }
        }
        if train {
            self.cached_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let x = self.cached_x.take().expect("backward without forward");
        let [n, ..] = dy.dims();
        let xs = x.as_slice();
        let dys = dy.as_slice();
        let mut dx = Tensor4::<f32>::zeros(x.dims());
        let dxs = dx.as_mut_slice();
        for b in 0..n {
            let xr = &xs[b * self.fin..(b + 1) * self.fin];
            let dyr = &dys[b * self.fout..(b + 1) * self.fout];
            let dxr = &mut dxs[b * self.fin..(b + 1) * self.fin];
            for (o, &g) in dyr.iter().enumerate() {
                self.bias.grad[o] += g;
                let wrow = &self.weight.value[o * self.fin..(o + 1) * self.fin];
                let grow = &mut self.weight.grad[o * self.fin..(o + 1) * self.fin];
                for i in 0..self.fin {
                    grow[i] += g * xr[i];
                    dxr[i] += g * wrow[i];
                }
            }
        }
        dx
    }

    fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> String {
        format!("Linear({}→{})", self.fin, self.fout)
    }

    fn cached_bytes(&self) -> usize {
        self.cached_x.as_ref().map_or(0, |t| t.len() * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaky_relu_forward_backward() {
        let mut l = LeakyReLU::new(0.1);
        let x = Tensor4::from_vec([1, 1, 1, 4], vec![-2.0, -0.5, 0.5, 2.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.as_slice(), &[-0.2, -0.05, 0.5, 2.0]);
        let dy = Tensor4::from_vec([1, 1, 1, 4], vec![1.0; 4]);
        let dx = l.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.1, 0.1, 1.0, 1.0]);
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor4::from_vec([1, 2, 2, 1], vec![1.0, 5.0, 3.0, 2.0]);
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), [1, 1, 1, 1]);
        assert_eq!(y.as_slice(), &[5.0]);
        let dy = Tensor4::from_vec([1, 1, 1, 1], vec![7.0]);
        let dx = p.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn batchnorm_normalises_in_train_mode() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor4::<f32>::random([4, 3, 3, 2], 1, -3.0, 7.0);
        let y = bn.forward(&x, true);
        // Each channel of y should be ~zero mean, unit variance.
        let c = 2;
        for ch in 0..c {
            let vals: Vec<f32> = y.as_slice().iter().skip(ch).step_by(c).copied().collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "ch{ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "ch{ch} var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor4::<f32>::random([8, 4, 4, 1], 2, 4.0, 6.0);
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // Running stats converged to batch stats ⟹ eval output ≈ normalised.
        let mean: f32 = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!(mean.abs() < 0.05, "{mean}");
    }

    #[test]
    fn batchnorm_gradient_check_gamma() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor4::<f32>::random([2, 3, 3, 2], 3, -1.0, 1.0);
        let y = bn.forward(&x, true);
        let _ = bn.backward(&y); // L = Σy²/2
        let analytic = bn.gamma.grad[0] as f64;
        let eps = 1e-3f32;
        bn.gamma.value[0] += eps;
        let lp: f64 = bn
            .forward(&x, true)
            .as_slice()
            .iter()
            .map(|&v| (v as f64).powi(2) / 2.0)
            .sum();
        bn.cache = None;
        bn.gamma.value[0] -= 2.0 * eps;
        let lm: f64 = bn
            .forward(&x, true)
            .as_slice()
            .iter()
            .map(|&v| (v as f64).powi(2) / 2.0)
            .sum();
        bn.cache = None;
        bn.gamma.value[0] += eps;
        let fd = (lp - lm) / (2.0 * eps as f64);
        assert!(
            (fd - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
            "fd {fd} vs {analytic}"
        );
    }

    #[test]
    fn linear_matches_manual() {
        let mut l = Linear::new(2, 2, 9);
        l.weight.value = vec![1.0, 2.0, 3.0, 4.0];
        l.bias.value = vec![0.5, -0.5];
        let x = Tensor4::from_vec([1, 1, 1, 2], vec![1.0, 1.0]);
        let y = l.forward(&x, false);
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn linear_gradient_check() {
        let mut l = Linear::new(3, 2, 10);
        let x = Tensor4::<f32>::random([2, 1, 1, 3], 11, -1.0, 1.0);
        let y = l.forward(&x, true);
        let dx = l.backward(&y);
        assert_eq!(dx.dims(), x.dims());
        let analytic = l.weight.grad[1] as f64;
        let eps = 1e-3f32;
        let orig = l.weight.value[1];
        l.weight.value[1] = orig + eps;
        let lp: f64 = l
            .forward(&x, false)
            .as_slice()
            .iter()
            .map(|&v| (v as f64).powi(2) / 2.0)
            .sum();
        l.weight.value[1] = orig - eps;
        let lm: f64 = l
            .forward(&x, false)
            .as_slice()
            .iter()
            .map(|&v| (v as f64).powi(2) / 2.0)
            .sum();
        l.weight.value[1] = orig;
        let fd = (lp - lm) / (2.0 * eps as f64);
        assert!(
            (fd - analytic).abs() < 1e-2 * analytic.abs().max(1.0),
            "fd {fd} vs {analytic}"
        );
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor4::<f32>::random([2, 3, 4, 5], 12, -1.0, 1.0);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), [2, 1, 1, 60]);
        let dx = f.backward(&y);
        assert_eq!(dx.dims(), x.dims());
        assert_eq!(dx.as_slice(), x.as_slice());
    }
}
