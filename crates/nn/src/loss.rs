//! Softmax cross-entropy with one-hot labels (§6.3.1: "SoftMax", "labels
//! were encoded to one-hot formats").

use iwino_tensor::Tensor4;

/// Combined softmax + cross-entropy head. Numerically stabilised by max
/// subtraction; the backward pass is the classic `softmax − onehot`.
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// `logits`: `[N, 1, 1, C]`; `labels`: class index per sample.
    /// Returns `(mean loss, dlogits)`.
    pub fn forward_backward(logits: &Tensor4<f32>, labels: &[usize]) -> (f32, Tensor4<f32>) {
        let [n, h, w, c] = logits.dims();
        assert_eq!(h * w, 1, "loss expects flattened logits");
        assert_eq!(labels.len(), n);
        let mut dlogits = logits.clone();
        let mut total = 0.0f64;
        for (b, &label) in labels.iter().enumerate() {
            assert!(label < c, "label out of range");
            let row = &mut dlogits.as_mut_slice()[b * c..(b + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                denom += *v;
            }
            // row now holds softmax probabilities.
            for v in row.iter_mut() {
                *v /= denom;
            }
            total += -(row[label].max(1e-30) as f64).ln();
            // d(mean CE)/dlogit = (p − onehot)/N.
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v /= n as f32;
            }
        }
        ((total / n as f64) as f32, dlogits)
    }

    /// Predicted class per sample (argmax over logits).
    pub fn predict(logits: &Tensor4<f32>) -> Vec<usize> {
        let [n, _, _, c] = logits.dims();
        (0..n)
            .map(|b| {
                let row = &logits.as_slice()[b * c..(b + 1) * c];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor4::<f32>::zeros([2, 1, 1, 10]);
        let (loss, dl) = SoftmaxCrossEntropy::forward_backward(&logits, &[3, 7]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
        // Gradient: (0.1 − onehot)/2 per sample.
        assert!((dl.at(0, 0, 0, 3) - (0.1 - 1.0) / 2.0).abs() < 1e-6);
        assert!((dl.at(0, 0, 0, 0) - 0.1 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor4::<f32>::zeros([1, 1, 1, 4]);
        *logits.at_mut(0, 0, 0, 2) = 20.0;
        let (loss, _) = SoftmaxCrossEntropy::forward_backward(&logits, &[2]);
        assert!(loss < 1e-3, "{loss}");
        let (loss_wrong, _) = SoftmaxCrossEntropy::forward_backward(&logits, &[0]);
        assert!(loss_wrong > 10.0, "{loss_wrong}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Tensor4::<f32>::random([2, 1, 1, 5], 1, -1.0, 1.0);
        let labels = [1usize, 4];
        let (_, dl) = SoftmaxCrossEntropy::forward_backward(&logits, &labels);
        let eps = 1e-3f32;
        for probe in [(0usize, 1usize), (1, 0), (1, 4)] {
            let (b, c) = probe;
            let orig = logits.at(b, 0, 0, c);
            *logits.at_mut(b, 0, 0, c) = orig + eps;
            let (lp, _) = SoftmaxCrossEntropy::forward_backward(&logits, &labels);
            *logits.at_mut(b, 0, 0, c) = orig - eps;
            let (lm, _) = SoftmaxCrossEntropy::forward_backward(&logits, &labels);
            *logits.at_mut(b, 0, 0, c) = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = dl.at(b, 0, 0, c);
            assert!((fd - an).abs() < 1e-3, "{probe:?}: fd {fd} vs {an}");
        }
    }

    #[test]
    fn stability_with_huge_logits() {
        let mut logits = Tensor4::<f32>::zeros([1, 1, 1, 3]);
        *logits.at_mut(0, 0, 0, 0) = 1e4;
        *logits.at_mut(0, 0, 0, 1) = -1e4;
        let (loss, dl) = SoftmaxCrossEntropy::forward_backward(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(dl.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn predict_argmax() {
        let logits = Tensor4::from_vec([2, 1, 1, 3], vec![0.1, 0.9, 0.0, 2.0, -1.0, 1.0]);
        assert_eq!(SoftmaxCrossEntropy::predict(&logits), vec![1, 0]);
    }
}
