//! The convolution layer with selectable backend.
//!
//! * [`Backend::ImcolWinograd`] — unit-stride convolutions run the paper's
//!   algorithm (`iwino_core::conv2d`); the backward-data pass runs the
//!   fused-rotation deconvolution (`iwino_core::deconv2d`); non-unit-stride
//!   convolutions fall back to GEMM exactly as §5.7 describes
//!   ("Im2col-Winograd is employed for unit-stride convolution and
//!   deconvolution, while other algorithms handle the non-unit-stride
//!   cases").
//! * [`Backend::Gemm`] — every pass goes through im2col+GEMM / direct
//!   paths: the "PyTorch" control arm of Experiment 3.
//!
//! The backward-filter pass is `iwino_core::filter_grad` for both backends
//! (the paper does not Winograd this pass either).

use crate::init::kaiming_uniform;
use crate::layer::{Layer, Param};
use iwino_baselines::{im2col_conv_nhwc, Im2colPlan};
use iwino_parallel as par;
use iwino_tensor::{ConvShape, Tensor4};

/// Which convolution engine drives the layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The paper's algorithm ("Alpha" arm).
    ImcolWinograd,
    /// im2col + GEMM everywhere ("PyTorch" arm).
    Gemm,
}

/// 2-D convolution layer, NHWC activations, `OC×FH×FW×IC` weights.
pub struct Conv2d {
    pub ic: usize,
    pub oc: usize,
    pub fh: usize,
    pub fw: usize,
    pub stride: usize,
    pub pad: usize,
    pub backend: Backend,
    weight: Param,
    bias: Option<Param>,
    cached_x: Option<Tensor4<f32>>,
    cached_shape: Option<ConvShape>,
}

impl Conv2d {
    /// Kaiming-uniform initialised convolution (§6.3.1).
    #[allow(clippy::too_many_arguments)] // layer hyper-parameters, torch-style ordering
    pub fn new(
        ic: usize,
        oc: usize,
        f: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        backend: Backend,
        seed: u64,
    ) -> Self {
        let fan_in = ic * f * f;
        let weight = Param::new(kaiming_uniform(oc * f * f * ic, fan_in, seed));
        let bias = bias.then(|| Param::new(vec![0.0; oc]));
        Conv2d {
            ic,
            oc,
            fh: f,
            fw: f,
            stride,
            pad,
            backend,
            weight,
            bias,
            cached_x: None,
            cached_shape: None,
        }
    }

    fn shape_for(&self, x: &Tensor4<f32>) -> ConvShape {
        let [n, ih, iw, ic] = x.dims();
        assert_eq!(ic, self.ic, "channel mismatch in {}", self.name());
        ConvShape {
            n,
            ih,
            iw,
            ic,
            oc: self.oc,
            fh: self.fh,
            fw: self.fw,
            ph: self.pad,
            pw: self.pad,
            sh: self.stride,
            sw: self.stride,
        }
    }

    fn weight_tensor(&self) -> Tensor4<f32> {
        Tensor4::from_vec([self.oc, self.fh, self.fw, self.ic], self.weight.value.clone())
    }

    /// Whether this layer's forward runs the Winograd kernels.
    pub fn uses_winograd(&self) -> bool {
        self.backend == Backend::ImcolWinograd && self.stride == 1
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let s = self.shape_for(x);
        let w = self.weight_tensor();
        let mut y = if self.uses_winograd() {
            // Bias is fused into the Winograd row pass (cache-hot epilogue).
            let epilogue = match &self.bias {
                Some(b) => iwino_core::Epilogue::Bias(b.value.clone()),
                None => iwino_core::Epilogue::None,
            };
            iwino_core::conv2d_fused(x, &w, &s, &iwino_core::ConvOptions::default(), &epilogue)
        } else {
            let plan = Im2colPlan::new(&s);
            im2col_conv_nhwc(x, &w, &plan)
        };
        if !self.uses_winograd() {
            if let Some(b) = &self.bias {
                let oc = self.oc;
                let bs = &b.value;
                for px in y.as_mut_slice().chunks_exact_mut(oc) {
                    for (v, &bv) in px.iter_mut().zip(bs) {
                        *v += bv;
                    }
                }
            }
        }
        if train {
            self.cached_x = Some(x.clone());
            self.cached_shape = Some(s);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let x = self.cached_x.take().expect("backward without forward");
        let s = self.cached_shape.take().unwrap();
        let w = self.weight_tensor();
        // dW (shared by both backends; §6.3.2's "computing filter gradients").
        let dw = iwino_core::filter_grad(&x, dy, &s);
        self.weight
            .grad
            .iter_mut()
            .zip(dw.as_slice())
            .for_each(|(g, &v)| *g += v);
        if let Some(b) = &mut self.bias {
            let oc = self.oc;
            for px in dy.as_slice().chunks_exact(oc) {
                for (g, &v) in b.grad.iter_mut().zip(px) {
                    *g += v;
                }
            }
        }
        // dX.
        if self.uses_winograd() {
            iwino_core::deconv2d(dy, &w, &s)
        } else {
            backward_data_direct(dy, &w, &s)
        }
    }

    fn params(&mut self) -> Vec<&mut Param> {
        let mut out = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            out.push(b);
        }
        out
    }

    fn name(&self) -> String {
        format!(
            "Conv2d({}→{}, {}×{}, s{}, p{}, {:?})",
            self.ic, self.oc, self.fh, self.fw, self.stride, self.pad, self.backend
        )
    }

    fn cached_bytes(&self) -> usize {
        self.cached_x.as_ref().map_or(0, |t| t.len() * 4)
    }
}

/// Direct backward-data for arbitrary stride: scatter-free gather form —
/// `dx[b, iy, ix, ic] = Σ_{oc, fh, fw} dy[b, oy, ox, oc] · w[oc, fh, fw, ic]`
/// over the `(oy, ox)` that map onto `(iy, ix)`.
pub fn backward_data_direct(dy: &Tensor4<f32>, w: &Tensor4<f32>, s: &ConvShape) -> Tensor4<f32> {
    let (oh, ow) = (s.oh(), s.ow());
    let mut dx = Tensor4::<f32>::zeros(s.x_dims());
    let dys = dy.as_slice();
    let ws = w.as_slice();
    let row_elems = s.iw * s.ic;
    let parts = par::SliceParts::new(dx.as_mut_slice(), row_elems);
    par::parallel_for(s.n * s.ih, &|row| {
        let out = parts.take(row);
        let b = row / s.ih;
        let iy = row % s.ih;
        let dy_img = &dys[b * oh * ow * s.oc..(b + 1) * oh * ow * s.oc];
        for fh in 0..s.fh {
            // iy = oy·sh + fh − ph  ⟹  oy = (iy + ph − fh) / sh.
            let num = iy as isize + s.ph as isize - fh as isize;
            if num < 0 || !(num as usize).is_multiple_of(s.sh) {
                continue;
            }
            let oy = num as usize / s.sh;
            if oy >= oh {
                continue;
            }
            let dy_row = &dy_img[oy * ow * s.oc..(oy + 1) * ow * s.oc];
            for ix in 0..s.iw {
                let dst = &mut out[ix * s.ic..(ix + 1) * s.ic];
                for fw in 0..s.fw {
                    let num = ix as isize + s.pw as isize - fw as isize;
                    if num < 0 || !(num as usize).is_multiple_of(s.sw) {
                        continue;
                    }
                    let ox = num as usize / s.sw;
                    if ox >= ow {
                        continue;
                    }
                    let dy_px = &dy_row[ox * s.oc..(ox + 1) * s.oc];
                    for (o, &g) in dy_px.iter().enumerate() {
                        if g == 0.0 {
                            continue;
                        }
                        let wrow = &ws[((o * s.fh + fh) * s.fw + fw) * s.ic..((o * s.fh + fh) * s.fw + fw + 1) * s.ic];
                        for (d, &wv) in dst.iter_mut().zip(wrow) {
                            *d += g * wv;
                        }
                    }
                }
            }
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwino_tensor::max_mixed_error;

    #[test]
    fn both_backends_agree_on_forward() {
        let mut a = Conv2d::new(3, 8, 3, 1, 1, true, Backend::ImcolWinograd, 7);
        let mut b = Conv2d::new(3, 8, 3, 1, 1, true, Backend::Gemm, 7);
        // Same seed ⟹ identical weights.
        assert_eq!(a.weight.value, b.weight.value);
        let x = Tensor4::<f32>::random([2, 12, 12, 3], 9, -1.0, 1.0);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        let e = max_mixed_error(&ya, &yb);
        assert!(e < 1e-4, "{e}");
    }

    #[test]
    fn strided_conv_falls_back_to_gemm() {
        let c = Conv2d::new(4, 8, 3, 2, 1, false, Backend::ImcolWinograd, 1);
        assert!(!c.uses_winograd());
        let c = Conv2d::new(4, 8, 3, 1, 1, false, Backend::ImcolWinograd, 1);
        assert!(c.uses_winograd());
    }

    #[test]
    fn backward_data_direct_is_adjoint() {
        for stride in [1usize, 2] {
            let s = ConvShape {
                sh: stride,
                sw: stride,
                ..ConvShape::square(1, 8, 3, 4, 3)
            };
            let x = Tensor4::<f32>::random(s.x_dims(), 20, -1.0, 1.0);
            let w = Tensor4::<f32>::random(s.w_dims(), 21, -1.0, 1.0);
            let dy = Tensor4::<f32>::random(s.y_dims(), 22, -1.0, 1.0);
            let y = iwino_baselines::direct_conv(&x, &w, &s);
            let dx = backward_data_direct(&dy, &w, &s);
            let lhs: f64 = y
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            let rhs: f64 = x
                .as_slice()
                .iter()
                .zip(dx.as_slice())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            assert!(
                (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
                "stride {stride}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn gradient_check_weights() {
        let mut layer = Conv2d::new(2, 3, 3, 1, 1, true, Backend::Gemm, 30);
        let x = Tensor4::<f32>::random([1, 5, 5, 2], 31, -1.0, 1.0);
        let y = layer.forward(&x, true);
        // L = Σ y² / 2 ⟹ dy = y.
        let _ = layer.backward(&y);
        let eps = 1e-2f32;
        let idx = 7usize;
        let analytic = layer.weight.grad[idx] as f64;
        let orig = layer.weight.value[idx];
        layer.weight.value[idx] = orig + eps;
        let lp: f64 = layer
            .forward(&x, false)
            .as_slice()
            .iter()
            .map(|&v| (v as f64).powi(2) / 2.0)
            .sum();
        layer.weight.value[idx] = orig - eps;
        let lm: f64 = layer
            .forward(&x, false)
            .as_slice()
            .iter()
            .map(|&v| (v as f64).powi(2) / 2.0)
            .sum();
        layer.weight.value[idx] = orig;
        let fd = (lp - lm) / (2.0 * eps as f64);
        assert!(
            (fd - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
            "fd {fd} vs {analytic}"
        );
    }

    #[test]
    fn winograd_and_gemm_backends_agree_on_gradients() {
        let x = Tensor4::<f32>::random([1, 8, 8, 4], 40, -1.0, 1.0);
        let mut grads = Vec::new();
        for backend in [Backend::ImcolWinograd, Backend::Gemm] {
            let mut layer = Conv2d::new(4, 6, 3, 1, 1, false, backend, 41);
            let y = layer.forward(&x, true);
            let dx = layer.backward(&y);
            grads.push((layer.weight.grad.clone(), dx));
        }
        let (gw, gx) = (&grads[0], &grads[1]);
        for (a, b) in gw.0.iter().zip(&gx.0) {
            assert!((a - b).abs() < 1e-3 * b.abs().max(1.0));
        }
        let e = max_mixed_error(&gw.1, &gx.1);
        assert!(e < 1e-3, "{e}");
    }

    #[test]
    fn bias_gradient_sums_dy() {
        let mut layer = Conv2d::new(1, 2, 3, 1, 1, true, Backend::Gemm, 50);
        let x = Tensor4::<f32>::random([1, 4, 4, 1], 51, -1.0, 1.0);
        let _ = layer.forward(&x, true);
        let mut dy = Tensor4::<f32>::zeros([1, 4, 4, 2]);
        dy.as_mut_slice().iter_mut().step_by(2).for_each(|v| *v = 1.0);
        let _ = layer.backward(&dy);
        let b = &layer.params()[1];
        assert_eq!(b.grad[0], 16.0);
        assert_eq!(b.grad[1], 0.0);
    }
}
