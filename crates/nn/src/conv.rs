//! The convolution layer, dispatched through the unified `iwino-engine`.
//!
//! The layer holds an [`iwino_engine::Handle`] whose selection policy maps
//! from the historical [`Backend`] enum (kept as a thin constructor alias):
//!
//! * [`Backend::ImcolWinograd`] — the engine's §5.7 heuristic: unit-stride
//!   convolutions run the paper's fused kernels, the backward-data pass the
//!   fused-rotation deconvolution, and non-unit-stride shapes fall back to
//!   the indirect-convolution GEMM (`im2col-indirect`) — "Im2col-Winograd
//!   is employed for unit-stride convolution and deconvolution, while
//!   other algorithms handle the non-unit-stride cases".
//! * [`Backend::Gemm`] — forces the `im2col-gemm-nhwc` registry backend:
//!   the "PyTorch" control arm of Experiment 3.
//!
//! Because plans are cached per `(shape, filter-epoch)` in the engine,
//! repeated same-shape forwards (the serving scenario) reuse the
//! transformed-filter bank instead of rebuilding it per call; weight
//! updates invalidate the cache through [`Layer::params`], the single
//! mutation path the optimisers use.
//!
//! The backward-filter pass is `iwino_core::filter_grad` for both backends
//! (the paper does not Winograd this pass either).

use crate::init::kaiming_uniform;
use crate::layer::{Layer, Param};
use iwino_engine::{Engine, Handle, SelectionPolicy};
use iwino_tensor::{ConvShape, Tensor4};
use std::sync::Arc;

/// Which convolution engine drives the layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The paper's algorithm ("Alpha" arm).
    ImcolWinograd,
    /// im2col + GEMM everywhere ("PyTorch" arm).
    Gemm,
}

impl Backend {
    fn policy(self) -> SelectionPolicy {
        match self {
            Backend::ImcolWinograd => SelectionPolicy::Heuristic,
            Backend::Gemm => SelectionPolicy::Force("im2col-gemm-nhwc".into()),
        }
    }
}

/// 2-D convolution layer, NHWC activations, `OC×FH×FW×IC` weights.
pub struct Conv2d {
    pub ic: usize,
    pub oc: usize,
    pub fh: usize,
    pub fw: usize,
    pub stride: usize,
    pub pad: usize,
    pub backend: Backend,
    handle: Handle,
    weight: Param,
    bias: Option<Param>,
    /// `OC×FH×FW×IC` view of `weight.value`, built once per weight epoch
    /// (the old code cloned the flat weights into a tensor on every call).
    weight_t: Option<Tensor4<f32>>,
    /// Bias epilogue, likewise built once per weight epoch.
    epilogue: Option<iwino_core::Epilogue>,
    cached_x: Option<Arc<Tensor4<f32>>>,
    cached_shape: Option<ConvShape>,
}

impl Conv2d {
    /// Kaiming-uniform initialised convolution (§6.3.1).
    #[allow(clippy::too_many_arguments)] // layer hyper-parameters, torch-style ordering
    pub fn new(
        ic: usize,
        oc: usize,
        f: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        backend: Backend,
        seed: u64,
    ) -> Self {
        let fan_in = ic * f * f;
        let weight = Param::new(kaiming_uniform(oc * f * f * ic, fan_in, seed));
        let bias = bias.then(|| Param::new(vec![0.0; oc]));
        Conv2d {
            ic,
            oc,
            fh: f,
            fw: f,
            stride,
            pad,
            backend,
            handle: Handle::new(backend.policy()),
            weight,
            bias,
            weight_t: None,
            epilogue: None,
            cached_x: None,
            cached_shape: None,
        }
    }

    fn shape_for(&self, x: &Tensor4<f32>) -> ConvShape {
        let [n, ih, iw, ic] = x.dims();
        assert_eq!(ic, self.ic, "channel mismatch in {}", self.name());
        ConvShape {
            n,
            ih,
            iw,
            ic,
            oc: self.oc,
            fh: self.fh,
            fw: self.fw,
            ph: self.pad,
            pw: self.pad,
            sh: self.stride,
            sw: self.stride,
        }
    }

    /// Materialise the weight tensor in `OC×FH×FW×IC`, built lazily once per
    /// weight epoch. Split from the access (`self.weight_t.as_ref()`) so the
    /// caller can borrow `self.handle` alongside it.
    fn ensure_weight_tensor(&mut self) {
        if self.weight_t.is_none() {
            self.weight_t = Some(Tensor4::from_vec(
                [self.oc, self.fh, self.fw, self.ic],
                self.weight.value.clone(),
            ));
        }
    }

    fn bias_epilogue(&mut self) -> &iwino_core::Epilogue {
        if self.epilogue.is_none() {
            self.epilogue = Some(match &self.bias {
                Some(b) => iwino_core::Epilogue::Bias(b.value.clone()),
                None => iwino_core::Epilogue::None,
            });
        }
        self.epilogue.as_ref().unwrap()
    }

    /// Whether this layer's forward runs the Winograd kernels.
    pub fn uses_winograd(&self) -> bool {
        self.backend == Backend::ImcolWinograd && self.stride == 1
    }

    /// The engine handle driving this layer's dispatch (selection policy +
    /// plan-cache identity).
    pub fn engine_handle(&self) -> &Handle {
        &self.handle
    }

    /// A materialised `OC×FH×FW×IC` copy of the current weights — the form
    /// every engine backend consumes. The serving layer registers this as a
    /// bucket's resident filter bank so trained layers can be deployed
    /// without reaching into `Param` internals.
    pub fn export_weights(&self) -> Tensor4<f32> {
        Tensor4::from_vec([self.oc, self.fh, self.fw, self.ic], self.weight.value.clone())
    }

    /// The single-request convolution shape this layer induces for an
    /// `n × ih × iw × ic` input — the shape key a serving bucket is
    /// registered under.
    pub fn serving_shape(&self, n: usize, ih: usize, iw: usize) -> ConvShape {
        ConvShape {
            n,
            ih,
            iw,
            ic: self.ic,
            oc: self.oc,
            fh: self.fh,
            fw: self.fw,
            ph: self.pad,
            pw: self.pad,
            sh: self.stride,
            sw: self.stride,
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let s = self.shape_for(x);
        let name = self.name();
        self.bias_epilogue();
        let epilogue = self.epilogue.clone().unwrap();
        self.ensure_weight_tensor();
        let w = self.weight_t.as_ref().unwrap();
        // Bias/activation are fused into the Winograd row pass (cache-hot
        // epilogue); GEMM-class backends apply the identical arithmetic
        // after their row GEMMs, inside the engine.
        let y = Engine::global()
            .conv(&self.handle, x, w, &s, &epilogue)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if train {
            // Shared, not deep-copied: backward only reads the activation.
            self.cached_x = Some(Arc::new(x.clone()));
            self.cached_shape = Some(s);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let x = self.cached_x.take().expect("backward without forward");
        let s = self.cached_shape.take().unwrap();
        let name = self.name();
        // dW (shared by both backends; §6.3.2's "computing filter gradients").
        let dw = iwino_core::filter_grad(&x, dy, &s);
        self.weight
            .grad
            .iter_mut()
            .zip(dw.as_slice())
            .for_each(|(g, &v)| *g += v);
        if let Some(b) = &mut self.bias {
            let oc = self.oc;
            for px in dy.as_slice().chunks_exact(oc) {
                for (g, &v) in b.grad.iter_mut().zip(px) {
                    *g += v;
                }
            }
        }
        // dX: the engine routes unit-stride winograd-selected shapes through
        // the fused deconvolution and everything else through direct.
        self.ensure_weight_tensor();
        let w = self.weight_t.as_ref().unwrap();
        Engine::global()
            .backward_data(&self.handle, dy, w, &s)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    fn params(&mut self) -> Vec<&mut Param> {
        // Every weight mutation (optimiser step, weight decay, load) flows
        // through these references, so retire the per-epoch caches and the
        // engine's plans built from the old values.
        self.handle.invalidate();
        self.weight_t = None;
        self.epilogue = None;
        let mut out = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            out.push(b);
        }
        out
    }

    fn name(&self) -> String {
        format!(
            "Conv2d({}→{}, {}×{}, s{}, p{}, {:?})",
            self.ic, self.oc, self.fh, self.fw, self.stride, self.pad, self.backend
        )
    }

    fn cached_bytes(&self) -> usize {
        self.cached_x.as_ref().map_or(0, |t| t.len() * 4)
    }
}

/// Direct backward-data for arbitrary stride; lives in `iwino-baselines`
/// now (re-exported here under its historical name for compatibility).
pub use iwino_baselines::direct_backward_data as backward_data_direct;

#[cfg(test)]
mod tests {
    use super::*;
    use iwino_tensor::max_mixed_error;

    #[test]
    fn both_backends_agree_on_forward() {
        let mut a = Conv2d::new(3, 8, 3, 1, 1, true, Backend::ImcolWinograd, 7);
        let mut b = Conv2d::new(3, 8, 3, 1, 1, true, Backend::Gemm, 7);
        // Same seed ⟹ identical weights.
        assert_eq!(a.weight.value, b.weight.value);
        let x = Tensor4::<f32>::random([2, 12, 12, 3], 9, -1.0, 1.0);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        let e = max_mixed_error(&ya, &yb);
        assert!(e < 1e-4, "{e}");
    }

    #[test]
    fn strided_conv_falls_back_to_gemm() {
        let c = Conv2d::new(4, 8, 3, 2, 1, false, Backend::ImcolWinograd, 1);
        assert!(!c.uses_winograd());
        let c = Conv2d::new(4, 8, 3, 1, 1, false, Backend::ImcolWinograd, 1);
        assert!(c.uses_winograd());
    }

    #[test]
    fn backward_data_direct_is_adjoint() {
        for stride in [1usize, 2] {
            let s = ConvShape {
                sh: stride,
                sw: stride,
                ..ConvShape::square(1, 8, 3, 4, 3)
            };
            let x = Tensor4::<f32>::random(s.x_dims(), 20, -1.0, 1.0);
            let w = Tensor4::<f32>::random(s.w_dims(), 21, -1.0, 1.0);
            let dy = Tensor4::<f32>::random(s.y_dims(), 22, -1.0, 1.0);
            let y = iwino_baselines::direct_conv(&x, &w, &s);
            let dx = backward_data_direct(&dy, &w, &s);
            let lhs: f64 = y
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            let rhs: f64 = x
                .as_slice()
                .iter()
                .zip(dx.as_slice())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            assert!(
                (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
                "stride {stride}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn gradient_check_weights() {
        let mut layer = Conv2d::new(2, 3, 3, 1, 1, true, Backend::Gemm, 30);
        let x = Tensor4::<f32>::random([1, 5, 5, 2], 31, -1.0, 1.0);
        let y = layer.forward(&x, true);
        // L = Σ y² / 2 ⟹ dy = y.
        let _ = layer.backward(&y);
        let eps = 1e-2f32;
        let idx = 7usize;
        let analytic = layer.weight.grad[idx] as f64;
        let orig = layer.weight.value[idx];
        // Mutate through params() — the official mutation path — so the
        // engine's cached plans are invalidated like an optimiser step.
        layer.params()[0].value[idx] = orig + eps;
        let lp: f64 = layer
            .forward(&x, false)
            .as_slice()
            .iter()
            .map(|&v| (v as f64).powi(2) / 2.0)
            .sum();
        layer.params()[0].value[idx] = orig - eps;
        let lm: f64 = layer
            .forward(&x, false)
            .as_slice()
            .iter()
            .map(|&v| (v as f64).powi(2) / 2.0)
            .sum();
        layer.params()[0].value[idx] = orig;
        let fd = (lp - lm) / (2.0 * eps as f64);
        assert!(
            (fd - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
            "fd {fd} vs {analytic}"
        );
    }

    #[test]
    fn winograd_and_gemm_backends_agree_on_gradients() {
        let x = Tensor4::<f32>::random([1, 8, 8, 4], 40, -1.0, 1.0);
        let mut grads = Vec::new();
        for backend in [Backend::ImcolWinograd, Backend::Gemm] {
            let mut layer = Conv2d::new(4, 6, 3, 1, 1, false, backend, 41);
            let y = layer.forward(&x, true);
            let dx = layer.backward(&y);
            grads.push((layer.weight.grad.clone(), dx));
        }
        let (gw, gx) = (&grads[0], &grads[1]);
        for (a, b) in gw.0.iter().zip(&gx.0) {
            assert!((a - b).abs() < 1e-3 * b.abs().max(1.0));
        }
        let e = max_mixed_error(&gw.1, &gx.1);
        assert!(e < 1e-3, "{e}");
    }

    #[test]
    fn training_cache_is_shared_not_deep_copied() {
        let mut layer = Conv2d::new(2, 4, 3, 1, 1, false, Backend::ImcolWinograd, 62);
        let x = Tensor4::<f32>::random([1, 6, 6, 2], 63, -1.0, 1.0);
        let _ = layer.forward(&x, true);
        assert_eq!(layer.cached_bytes(), x.len() * 4);
        let dy = Tensor4::<f32>::zeros([1, 6, 6, 4]);
        let _ = layer.backward(&dy);
        assert_eq!(layer.cached_bytes(), 0, "backward consumes the cache");
    }

    #[test]
    fn export_matches_forward_weights_and_shape() {
        let mut layer = Conv2d::new(3, 8, 3, 1, 1, false, Backend::ImcolWinograd, 70);
        let w = layer.export_weights();
        assert_eq!(w.dims(), [8, 3, 3, 3]);
        let s = layer.serving_shape(1, 10, 10);
        assert_eq!(s.x_dims(), [1, 10, 10, 3]);
        assert_eq!(s.w_dims(), w.dims());
        // The exported bank drives the same arithmetic the layer runs: a
        // direct engine call with (w, s) reproduces the layer's forward.
        let x = Tensor4::<f32>::random(s.x_dims(), 71, -1.0, 1.0);
        let y_layer = layer.forward(&x, false);
        let y_engine = Engine::global()
            .conv(layer.engine_handle(), &x, &w, &s, &iwino_core::Epilogue::None)
            .unwrap();
        assert_eq!(y_layer.as_slice(), y_engine.as_slice());
    }

    #[test]
    fn bias_gradient_sums_dy() {
        let mut layer = Conv2d::new(1, 2, 3, 1, 1, true, Backend::Gemm, 50);
        let x = Tensor4::<f32>::random([1, 4, 4, 1], 51, -1.0, 1.0);
        let _ = layer.forward(&x, true);
        let mut dy = Tensor4::<f32>::zeros([1, 4, 4, 2]);
        dy.as_mut_slice().iter_mut().step_by(2).for_each(|v| *v = 1.0);
        let _ = layer.backward(&dy);
        let b = &layer.params()[1];
        assert_eq!(b.grad[0], 16.0);
        assert_eq!(b.grad[1], 0.0);
    }
}
