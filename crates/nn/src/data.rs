//! Synthetic, class-structured image datasets.
//!
//! Cifar10 and ILSVRC2012 are not redistributable/downloadable in this
//! environment, so Experiment 3 runs on synthetic datasets with the same
//! tensor geometry (32×32×3 / 10 classes for the Cifar10 stand-in; a
//! scaled 64×64×3 / 100-class set for the ILSVRC stand-in — see DESIGN.md
//! for the substitution rationale). Every class has a fixed random
//! prototype pattern; samples are `prototype + noise`, linearly scaled to
//! `[−1, 1]` like the paper's preprocessing (§6.3.1). The task is linearly
//! non-trivial but learnable, so loss curves show real convergence and the
//! Winograd-vs-GEMM comparison is meaningful.

use iwino_tensor::Tensor4;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic synthetic classification dataset.
pub struct SyntheticDataset {
    pub hw: usize,
    pub channels: usize,
    pub classes: usize,
    pub train_len: usize,
    pub test_len: usize,
    seed: u64,
    /// `classes × hw·hw·channels` prototype patterns in [−0.8, 0.8].
    prototypes: Vec<f32>,
    /// Sample noise amplitude.
    pub noise: f32,
}

impl SyntheticDataset {
    pub fn new(hw: usize, channels: usize, classes: usize, train_len: usize, test_len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(-0.8f32, 0.8);
        let prototypes = (0..classes * hw * hw * channels)
            .map(|_| dist.sample(&mut rng))
            .collect();
        SyntheticDataset {
            hw,
            channels,
            classes,
            train_len,
            test_len,
            seed,
            prototypes,
            noise: 0.4,
        }
    }

    /// The Cifar10 stand-in: 32×32×3, 10 classes.
    pub fn cifar10_like(train_len: usize, test_len: usize) -> Self {
        Self::new(32, 3, 10, train_len, test_len, 0xc1fa_0010)
    }

    /// The ILSVRC2012 stand-in, scaled: 64×64×3, 100 classes (the paper
    /// trains at 128×128×3 / 1000 classes; the scaling factor is recorded
    /// by the harness).
    pub fn imagenet_like(train_len: usize, test_len: usize) -> Self {
        Self::new(64, 3, 100, train_len, test_len, 0x1157_20c0)
    }

    fn sample_into(&self, global_idx: usize, out: &mut [f32]) -> usize {
        let label = global_idx % self.classes;
        let plane = self.hw * self.hw * self.channels;
        let proto = &self.prototypes[label * plane..(label + 1) * plane];
        let mut rng = StdRng::seed_from_u64(self.seed ^ (global_idx as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let dist = Uniform::new(-self.noise, self.noise);
        for (o, &p) in out.iter_mut().zip(proto) {
            *o = (p + dist.sample(&mut rng)).clamp(-1.0, 1.0);
        }
        label
    }

    /// Training batch `i` of size `batch`: `(images NHWC, labels)`.
    pub fn train_batch(&self, i: usize, batch: usize) -> (Tensor4<f32>, Vec<usize>) {
        self.batch_from(i * batch, batch, 0)
    }

    /// Test batch (disjoint index space from training).
    pub fn test_batch(&self, i: usize, batch: usize) -> (Tensor4<f32>, Vec<usize>) {
        self.batch_from(i * batch, batch, self.train_len)
    }

    fn batch_from(&self, start: usize, batch: usize, offset: usize) -> (Tensor4<f32>, Vec<usize>) {
        let plane = self.hw * self.hw * self.channels;
        let mut x = Tensor4::<f32>::zeros([batch, self.hw, self.hw, self.channels]);
        let mut labels = Vec::with_capacity(batch);
        for b in 0..batch {
            let idx = offset + start + b;
            let dst = &mut x.as_mut_slice()[b * plane..(b + 1) * plane];
            labels.push(self.sample_into(idx, dst));
        }
        (x, labels)
    }

    /// Batches per training epoch at the given batch size.
    pub fn train_batches(&self, batch: usize) -> usize {
        self.train_len / batch
    }

    pub fn test_batches(&self, batch: usize) -> usize {
        self.test_len / batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_batches() {
        let d = SyntheticDataset::cifar10_like(64, 32);
        let (x1, l1) = d.train_batch(0, 8);
        let (x2, l2) = d.train_batch(0, 8);
        assert_eq!(x1, x2);
        assert_eq!(l1, l2);
        let (x3, _) = d.train_batch(1, 8);
        assert_ne!(x1, x3);
    }

    #[test]
    fn shapes_and_labels() {
        let d = SyntheticDataset::cifar10_like(64, 32);
        let (x, labels) = d.train_batch(0, 10);
        assert_eq!(x.dims(), [10, 32, 32, 3]);
        assert_eq!(labels, (0..10).collect::<Vec<_>>());
        assert!(x.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn test_split_is_disjoint_noise() {
        let d = SyntheticDataset::cifar10_like(64, 32);
        let (xtr, _) = d.train_batch(0, 4);
        let (xte, _) = d.test_batch(0, 4);
        assert_ne!(xtr, xte);
    }

    #[test]
    fn same_class_samples_correlate() {
        // Samples of class 0 should correlate with each other far more than
        // with class 1 samples (signal-to-noise sanity).
        let d = SyntheticDataset::cifar10_like(1000, 0);
        let (x, labels) = d.train_batch(0, 22);
        let plane = 32 * 32 * 3;
        let a0 = &x.as_slice()[0..plane]; // class 0
        let b0 = &x.as_slice()[10 * plane..11 * plane]; // class 0 again
        let c1 = &x.as_slice()[plane..2 * plane]; // class 1
        assert_eq!((labels[0], labels[10], labels[1]), (0, 0, 1));
        let dot = |a: &[f32], b: &[f32]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>();
        let same = dot(a0, b0);
        let diff = dot(a0, c1);
        assert!(same > 2.0 * diff.abs(), "same {same} diff {diff}");
    }

    #[test]
    fn imagenet_like_geometry() {
        let d = SyntheticDataset::imagenet_like(200, 100);
        assert_eq!((d.hw, d.channels, d.classes), (64, 3, 100));
        let (x, _) = d.train_batch(0, 2);
        assert_eq!(x.dims(), [2, 64, 64, 3]);
    }
}
