//! Additional training machinery: average pooling, learning-rate
//! schedules, weight decay and gradient clipping. Not required by the
//! paper's exact protocol, but part of any framework a downstream user
//! would adopt (and exercised by the extended tests).

use crate::layer::{Layer, Param};
use iwino_tensor::Tensor4;

// ---------------------------------------------------------------------------
// AvgPool2d
// ---------------------------------------------------------------------------

/// `k×k` average pooling with stride `k`.
pub struct AvgPool2d {
    pub k: usize,
    in_dims: Option<[usize; 4]>,
}

impl AvgPool2d {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        AvgPool2d { k, in_dims: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor4<f32>, train: bool) -> Tensor4<f32> {
        let [n, h, w, c] = x.dims();
        let k = self.k;
        assert!(h >= k && w >= k);
        let (oh, ow) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        let mut y = Tensor4::<f32>::zeros([n, oh, ow, c]);
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for ch in 0..c {
                        let mut acc = 0.0f32;
                        for dy in 0..k {
                            for dx in 0..k {
                                acc += x.at(b, oy * k + dy, ox * k + dx, ch);
                            }
                        }
                        *y.at_mut(b, oy, ox, ch) = acc * inv;
                    }
                }
            }
        }
        if train {
            self.in_dims = Some(x.dims());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor4<f32>) -> Tensor4<f32> {
        let dims = self.in_dims.take().expect("backward without forward");
        let [_, _, _, c] = dims;
        let k = self.k;
        let inv = 1.0 / (k * k) as f32;
        let mut dx = Tensor4::<f32>::zeros(dims);
        let [n, oh, ow, _] = dy.dims();
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for ch in 0..c {
                        let g = dy.at(b, oy, ox, ch) * inv;
                        for ddy in 0..k {
                            for ddx in 0..k {
                                *dx.at_mut(b, oy * k + ddy, ox * k + ddx, ch) += g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn name(&self) -> String {
        format!("AvgPool2d({0}×{0})", self.k)
    }
}

// ---------------------------------------------------------------------------
// Learning-rate schedules
// ---------------------------------------------------------------------------

/// A learning-rate schedule: maps epoch index to a multiplier on the base lr.
pub trait LrSchedule {
    fn factor(&self, epoch: usize) -> f32;
}

/// Constant learning rate.
pub struct ConstantLr;

impl LrSchedule for ConstantLr {
    fn factor(&self, _epoch: usize) -> f32 {
        1.0
    }
}

/// Multiply the lr by `gamma` every `step` epochs.
pub struct StepDecay {
    pub step: usize,
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi((epoch / self.step.max(1)) as i32)
    }
}

/// Cosine annealing from 1 down to `floor` over `total` epochs.
pub struct CosineAnneal {
    pub total: usize,
    pub floor: f32,
}

impl LrSchedule for CosineAnneal {
    fn factor(&self, epoch: usize) -> f32 {
        let t = (epoch as f32 / self.total.max(1) as f32).min(1.0);
        self.floor + (1.0 - self.floor) * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

// ---------------------------------------------------------------------------
// Gradient utilities
// ---------------------------------------------------------------------------

/// Global L2 gradient-norm clipping: if ‖g‖₂ > max_norm, scale all
/// gradients by `max_norm / ‖g‖₂`. Returns the pre-clip norm.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for p in params.iter() {
        for &g in &p.grad {
            sq += (g as f64) * (g as f64);
        }
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            for g in &mut p.grad {
                *g *= scale;
            }
        }
    }
    norm
}

/// Decoupled weight decay (AdamW-style): `w ← w·(1 − lr·λ)` applied before
/// the optimiser step.
pub fn apply_weight_decay(params: &mut [&mut Param], lr: f32, lambda: f32) {
    let f = 1.0 - lr * lambda;
    for p in params.iter_mut() {
        for w in &mut p.value {
            *w *= f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_forward_backward() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor4::from_vec([1, 2, 2, 1], vec![1.0, 3.0, 5.0, 7.0]);
        let y = p.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0]);
        let dy = Tensor4::from_vec([1, 1, 1, 1], vec![8.0]);
        let dx = p.backward(&dy);
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avg_pool_is_adjoint() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor4::<f32>::random([1, 4, 4, 3], 1, -1.0, 1.0);
        let y = p.forward(&x, true);
        let dy = Tensor4::<f32>::random(y.dims(), 2, -1.0, 1.0);
        let dx = p.backward(&dy);
        let lhs: f64 = y
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(dx.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn step_decay_factors() {
        let s = StepDecay { step: 10, gamma: 0.1 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert!((s.factor(10) - 0.1).abs() < 1e-7);
        assert!((s.factor(25) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn cosine_anneal_endpoints() {
        let s = CosineAnneal {
            total: 100,
            floor: 0.01,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!((s.factor(100) - 0.01).abs() < 1e-6);
        assert!(s.factor(50) > 0.01 && s.factor(50) < 1.0);
        // Monotone decreasing.
        assert!(s.factor(25) > s.factor(75));
    }

    #[test]
    fn clipping_caps_the_norm() {
        let mut p = Param::new(vec![0.0; 4]);
        p.grad = vec![3.0, 4.0, 0.0, 0.0]; // norm 5
        let mut refs = [&mut p];
        let norm = clip_grad_norm(&mut refs, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((refs[0].grad[0] - 0.6).abs() < 1e-6);
        assert!((refs[0].grad[1] - 0.8).abs() < 1e-6);
        // Under the cap: untouched.
        let norm = clip_grad_norm(&mut refs, 10.0);
        assert!((norm - 1.0).abs() < 1e-6);
        assert!((refs[0].grad[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new(vec![1.0, -2.0]);
        let mut refs = [&mut p];
        apply_weight_decay(&mut refs, 0.1, 0.5);
        assert!((refs[0].value[0] - 0.95).abs() < 1e-6);
        assert!((refs[0].value[1] + 1.9).abs() < 1e-6);
    }
}
