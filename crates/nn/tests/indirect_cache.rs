//! ISSUE-10 acceptance test (mirror of `engine_cache.rs`): repeated
//! same-shape forwards through the `im2col-indirect` backend must build the
//! indirection table exactly once — it lives in the engine's LRU plan next
//! to the packed filter — and draw zero fresh arena buffers at steady
//! state.
//!
//! Lives in its own integration-test binary, as a single test fn, because
//! the obs counters it asserts on are process-global: a concurrent engine
//! convolution in the same process would race the `== 0` assertions.

use iwino_nn::{Backend, Conv2d, Layer};
use iwino_obs as obs;
use iwino_tensor::{ConvShape, Tensor4};

#[test]
fn indirect_table_builds_once_and_steady_state_misses_nothing() {
    // Stride 2 ⇒ the heuristic resolves to `im2col-indirect`.
    let mut layer = Conv2d::new(3, 8, 3, 2, 1, false, Backend::ImcolWinograd, 80);
    let x = Tensor4::<f32>::random([1, 16, 16, 3], 81, -1.0, 1.0);
    let s = ConvShape {
        sh: 2,
        sw: 2,
        ..ConvShape::square(1, 16, 3, 8, 3)
    };

    // Cold phase: the first forward builds the plan — exactly one
    // indirection table, sized by the shape's (OH·OW × FH·FW) geometry.
    obs::set_enabled(true);
    obs::reset();
    let warm = layer.forward(&x, false);
    let cold = obs::snapshot();
    let table_bytes = (s.oh() * s.ow() * s.fh * s.fw * std::mem::size_of::<usize>()) as u64;
    assert_eq!(
        cold.counter(obs::Counter::IndirectTableBytes),
        table_bytes,
        "cold forward must build exactly one indirection table"
    );
    assert_eq!(cold.counter(obs::Counter::EnginePlanMisses), 1);
    assert!(
        cold.stage_ns(obs::Stage::IndirectSetup) > 0 || cold.counter(obs::Counter::IndirectTableBytes) > 0,
        "table build must be attributed to the IndirectSetup stage"
    );

    // Steady state: same-shape forwards serve the cached plan — no table
    // rebuild, no plan miss, no fresh arena buffer.
    obs::reset();
    for _ in 0..4 {
        let y = layer.forward(&x, false);
        assert_eq!(y.as_slice(), warm.as_slice(), "cached plan must be bit-identical");
    }
    let steady = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(
        steady.counter(obs::Counter::IndirectTableBytes),
        0,
        "steady-state forwards must not rebuild the indirection table"
    );
    assert_eq!(steady.counter(obs::Counter::EnginePlanMisses), 0, "no plan rebuilds");
    assert!(
        steady.counter(obs::Counter::EnginePlanHits) >= 4,
        "forwards must hit the plan cache"
    );
    assert_eq!(
        steady.counter(obs::Counter::ArenaMisses),
        0,
        "steady-state A-panel scratch must come off the arena free list"
    );
    assert_eq!(layer.cached_bytes(), 0, "inference must not cache activations");
}
