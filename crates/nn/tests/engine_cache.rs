//! ISSUE-4 acceptance test: repeated same-shape `Conv2d` inference forwards
//! hit the engine's plan cache and never miss the arena after warmup.
//!
//! Lives in its own integration-test binary on purpose: the obs counters it
//! asserts on are process-global, and the library's unit tests run engine
//! convolutions concurrently — in a shared process their plan misses would
//! race these `== 0` assertions.

use iwino_nn::{Backend, Conv2d, Layer};
use iwino_obs as obs;
use iwino_tensor::Tensor4;

#[test]
fn inference_forwards_hit_plan_cache_with_no_arena_misses() {
    // After a warmup forward, repeated same-shape inference forwards must
    // (a) serve the transformed-filter bank from the engine's plan cache
    // (≥1 hit, 0 misses), (b) draw zero fresh arena buffers, and (c) cache
    // no activations.
    let mut layer = Conv2d::new(3, 8, 3, 1, 1, true, Backend::ImcolWinograd, 60);
    let x = Tensor4::<f32>::random([2, 12, 12, 3], 61, -1.0, 1.0);
    let warm = layer.forward(&x, false); // warmup: builds + caches the plan
    obs::set_enabled(true);
    obs::reset();
    for _ in 0..4 {
        let y = layer.forward(&x, false);
        assert_eq!(y.as_slice(), warm.as_slice());
    }
    let snap = obs::snapshot();
    obs::set_enabled(false);
    assert!(
        snap.counter(obs::Counter::EnginePlanHits) >= 1,
        "steady-state forwards must hit the plan cache"
    );
    assert_eq!(
        snap.counter(obs::Counter::EnginePlanMisses),
        0,
        "no plan rebuilds after warmup"
    );
    assert_eq!(
        snap.counter(obs::Counter::ArenaMisses),
        0,
        "the fused path allocates no workspace; nothing may miss the arena"
    );
    assert_eq!(layer.cached_bytes(), 0, "inference must not cache activations");
}

#[test]
fn strided_gemm_forwards_reuse_arena_after_warmup() {
    // The GEMM fallback draws patch buffers from the engine arena; after
    // the first call every worker's buffer should come off the free list.
    let mut layer = Conv2d::new(3, 4, 3, 2, 1, false, Backend::ImcolWinograd, 70);
    let x = Tensor4::<f32>::random([1, 16, 16, 3], 71, -1.0, 1.0);
    let warm = layer.forward(&x, false);
    let misses_after_warmup = iwino_engine::Engine::global().arena().stats().misses;
    for _ in 0..3 {
        let y = layer.forward(&x, false);
        assert_eq!(y.as_slice(), warm.as_slice());
    }
    let stats = iwino_engine::Engine::global().arena().stats();
    assert_eq!(
        stats.misses, misses_after_warmup,
        "steady-state GEMM forwards must recycle arena buffers"
    );
    assert!(stats.hits > 0, "repeat forwards should reuse pooled buffers");
}
