//! The registered [`ConvAlgorithm`] implementations.
//!
//! One adapter per algorithm family the paper benchmarks (§6.1.1): the
//! fused Im2col-Winograd kernels, im2col+GEMM in both layouts (the
//! `Implicit_Precomp_GEMM` stand-ins), direct convolution, fused 2-D
//! Winograd (`Fused_Winograd`, 3×3-only), FFT, and indirect convolution
//! (Dukhan's indirection-buffer GEMM, the arbitrary-stride path). Every
//! adapter produces a [`ConvPlan`] owning whatever per-shape state is
//! expensive to rebuild — transformed-filter banks, reshaped weights,
//! gather maps, indirection tables — so the engine's cache turns repeat
//! calls into pure execution.

use crate::arena::WorkspacePool;
use crate::{ConvAlgorithm, ConvPlan};
use iwino_baselines as baselines;
use iwino_core::error::expect_dims;
use iwino_core::{AlgorithmClass, ConvError, ConvOptions, Epilogue, PreparedConv};
use iwino_tensor::{nchw_to_nhwc, nhwc_to_nchw, transpose_filter_to_hwio, ConvShape, Tensor4};
use std::sync::Arc;

/// Registry names, in registration order. `Engine::algorithms` mirrors this.
pub const BACKEND_NAMES: [&str; 7] = [
    "im2col-winograd",
    "im2col-gemm-nhwc",
    "im2col-gemm-nchw",
    "direct",
    "winograd2d",
    "fft",
    "im2col-indirect",
];

pub(crate) fn all_backends() -> Vec<Arc<dyn ConvAlgorithm>> {
    vec![
        Arc::new(WinogradBackend::auto()),
        Arc::new(GemmNhwcBackend),
        Arc::new(GemmNchwBackend),
        Arc::new(DirectBackend),
        Arc::new(Winograd2dBackend),
        Arc::new(FftBackend),
        Arc::new(IndirectBackend),
    ]
}

fn unsupported(algorithm: &'static str, reason: impl Into<String>) -> ConvError {
    ConvError::Unsupported {
        algorithm,
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------- winograd

/// The paper's fused Γα(n, r) path, wrapped as a registry backend. By
/// default each shape gets `auto_options`; bench sweeps that force a
/// specific kernel construct [`WinogradBackend::with_options`] directly.
pub struct WinogradBackend {
    opts: Option<ConvOptions>,
}

impl WinogradBackend {
    pub fn auto() -> Self {
        WinogradBackend { opts: None }
    }

    /// Fixed options (forced kernels, α preferences) instead of per-shape
    /// auto-selection. Used by forced-kernel benchmark sweeps, which hold
    /// the returned plan themselves rather than going through the cache.
    pub fn with_options(opts: ConvOptions) -> Self {
        WinogradBackend { opts: Some(opts) }
    }

    fn options_for(&self, s: &ConvShape) -> ConvOptions {
        match &self.opts {
            Some(o) => o.clone(),
            None => iwino_core::auto_options(s),
        }
    }
}

struct WinogradPlan {
    prep: PreparedConv,
    /// The *forward* geometry the caller asked about (for deconv plans the
    /// executed geometry differs; see [`PreparedConv::deconv`]).
    shape: ConvShape,
}

impl ConvAlgorithm for WinogradBackend {
    fn name(&self) -> &'static str {
        "im2col-winograd"
    }

    fn supports(&self, s: &ConvShape) -> bool {
        // Unit stride (§4); the row kernel stack-allocates FH ≤ 16 filter
        // rows; planning covers filter widths 2..=15.
        s.is_unit_stride() && (2..=15).contains(&s.fw) && s.fh <= 16
    }

    fn workspace_class(&self, s: &ConvShape) -> AlgorithmClass {
        let opts = self.options_for(s);
        let plan = opts.plan_for(s.ow(), s.fw, s.oc);
        let alpha = plan.gamma_specs().first().map_or(s.fw, |spec| spec.alpha);
        AlgorithmClass::ImcolWinogradFused { alpha }
    }

    fn plan(&self, w: &Tensor4<f32>, s: &ConvShape, deconv: bool) -> Result<Arc<dyn ConvPlan>, ConvError> {
        if !self.supports(s) {
            return Err(unsupported(self.name(), format!("unsupported shape {s:?}")));
        }
        let opts = self.options_for(s);
        let prep = if deconv {
            PreparedConv::deconv(w, s, &opts)?
        } else {
            PreparedConv::forward(w, s, &opts)?
        };
        Ok(Arc::new(WinogradPlan { prep, shape: *s }))
    }
}

impl ConvPlan for WinogradPlan {
    fn algorithm(&self) -> &'static str {
        "im2col-winograd"
    }

    fn shape(&self) -> &ConvShape {
        &self.shape
    }

    fn resident_bytes(&self) -> usize {
        self.prep.filter_bank_bytes()
    }

    fn run(&self, x: &Tensor4<f32>, epilogue: &Epilogue, arena: &WorkspacePool) -> Result<Tensor4<f32>, ConvError> {
        // The fused Γ path itself draws nothing (the §4.2 zero-workspace
        // property); only a boundary GEMM segment, when the plan has one,
        // checks its patch and panel buffers out of the arena.
        self.prep.execute_scratch(x, epilogue, arena)
    }
}

// ------------------------------------------------------------- im2col NHWC

/// im2col + GEMM in the native NHWC layout. The plan caches the gather
/// maps *and* the HWIO filter pre-packed into GEMM panels (cuDNN's
/// "precomp"), and the patch rows draw from the engine arena.
pub struct GemmNhwcBackend;

struct GemmNhwcPlan {
    plan: baselines::Im2colPlan,
    w_packed: iwino_gemm::PackedB,
}

impl ConvAlgorithm for GemmNhwcBackend {
    fn name(&self) -> &'static str {
        "im2col-gemm-nhwc"
    }

    fn supports(&self, _s: &ConvShape) -> bool {
        true
    }

    fn workspace_class(&self, _s: &ConvShape) -> AlgorithmClass {
        AlgorithmClass::ImplicitPrecompGemm
    }

    fn plan(&self, w: &Tensor4<f32>, s: &ConvShape, deconv: bool) -> Result<Arc<dyn ConvPlan>, ConvError> {
        if deconv {
            return Err(unsupported(self.name(), "backward-data runs through `direct`"));
        }
        expect_dims("filter", w.dims(), s.w_dims())?;
        let wmat = transpose_filter_to_hwio(w);
        Ok(Arc::new(GemmNhwcPlan {
            plan: baselines::Im2colPlan::new(s),
            w_packed: iwino_gemm::PackedB::pack(s.fh * s.fw * s.ic, s.oc, wmat.as_slice()),
        }))
    }
}

impl ConvPlan for GemmNhwcPlan {
    fn algorithm(&self) -> &'static str {
        "im2col-gemm-nhwc"
    }

    fn shape(&self) -> &ConvShape {
        self.plan.shape()
    }

    fn resident_bytes(&self) -> usize {
        self.w_packed.resident_bytes()
    }

    fn run(&self, x: &Tensor4<f32>, epilogue: &Epilogue, arena: &WorkspacePool) -> Result<Tensor4<f32>, ConvError> {
        let s = self.plan.shape();
        expect_dims("input", x.dims(), s.x_dims())?;
        let mut y = baselines::im2col_conv_nhwc_packed(x, &self.w_packed, &self.plan, arena);
        epilogue.apply(y.as_mut_slice(), s.oc);
        Ok(y)
    }
}

// ------------------------------------------------------------- im2col NCHW

/// im2col + GEMM in NCHW/OIHW, wrapped with layout conversion at the edges
/// so it presents the same NHWC interface as every other backend (the
/// benchmark harness compares the two layouts' gather behaviour like the
/// paper compares `Implicit_Precomp_GEMM` in both formats).
pub struct GemmNchwBackend;

struct GemmNchwPlan {
    plan: baselines::Im2colPlan,
    w_oihw: Tensor4<f32>,
}

fn ohwi_to_oihw(w: &Tensor4<f32>) -> Tensor4<f32> {
    let [oc, fh, fw, ic] = w.dims();
    let mut out = Tensor4::zeros([oc, ic, fh, fw]);
    for o in 0..oc {
        for h in 0..fh {
            for x in 0..fw {
                for i in 0..ic {
                    *out.at_mut(o, i, h, x) = w.at(o, h, x, i);
                }
            }
        }
    }
    out
}

impl ConvAlgorithm for GemmNchwBackend {
    fn name(&self) -> &'static str {
        "im2col-gemm-nchw"
    }

    fn supports(&self, _s: &ConvShape) -> bool {
        true
    }

    fn workspace_class(&self, _s: &ConvShape) -> AlgorithmClass {
        AlgorithmClass::ImplicitPrecompGemm
    }

    fn plan(&self, w: &Tensor4<f32>, s: &ConvShape, deconv: bool) -> Result<Arc<dyn ConvPlan>, ConvError> {
        if deconv {
            return Err(unsupported(self.name(), "backward-data runs through `direct`"));
        }
        expect_dims("filter", w.dims(), s.w_dims())?;
        Ok(Arc::new(GemmNchwPlan {
            plan: baselines::Im2colPlan::new(s),
            w_oihw: ohwi_to_oihw(w),
        }))
    }
}

impl ConvPlan for GemmNchwPlan {
    fn algorithm(&self) -> &'static str {
        "im2col-gemm-nchw"
    }

    fn shape(&self) -> &ConvShape {
        self.plan.shape()
    }

    fn resident_bytes(&self) -> usize {
        self.w_oihw.len() * 4
    }

    fn run(&self, x: &Tensor4<f32>, epilogue: &Epilogue, arena: &WorkspacePool) -> Result<Tensor4<f32>, ConvError> {
        let s = self.plan.shape();
        expect_dims("input", x.dims(), s.x_dims())?;
        let y_nchw = baselines::im2col_conv_nchw_scratch(&nhwc_to_nchw(x), &self.w_oihw, &self.plan, arena);
        let mut y = nchw_to_nhwc(&y_nchw);
        epilogue.apply(y.as_mut_slice(), s.oc);
        Ok(y)
    }
}

// ------------------------------------------------------------------ direct

/// Schoolbook convolution: supports everything, fast at nothing. Also the
/// backward-data fallback for strided shapes (§5.7's "other algorithms
/// handle the non-unit-stride cases").
pub struct DirectBackend;

struct DirectPlan {
    w: Tensor4<f32>,
    shape: ConvShape,
    deconv: bool,
}

impl ConvAlgorithm for DirectBackend {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn supports(&self, _s: &ConvShape) -> bool {
        true
    }

    fn workspace_class(&self, _s: &ConvShape) -> AlgorithmClass {
        AlgorithmClass::Direct
    }

    fn plan(&self, w: &Tensor4<f32>, s: &ConvShape, deconv: bool) -> Result<Arc<dyn ConvPlan>, ConvError> {
        expect_dims("filter", w.dims(), s.w_dims())?;
        Ok(Arc::new(DirectPlan {
            w: w.clone(),
            shape: *s,
            deconv,
        }))
    }
}

impl ConvPlan for DirectPlan {
    fn algorithm(&self) -> &'static str {
        "direct"
    }

    fn shape(&self) -> &ConvShape {
        &self.shape
    }

    fn resident_bytes(&self) -> usize {
        self.w.len() * 4
    }

    fn run(&self, x: &Tensor4<f32>, epilogue: &Epilogue, _arena: &WorkspacePool) -> Result<Tensor4<f32>, ConvError> {
        let s = &self.shape;
        if self.deconv {
            expect_dims("dy", x.dims(), s.y_dims())?;
            let mut dx = baselines::direct_backward_data(x, &self.w, s);
            epilogue.apply(dx.as_mut_slice(), s.ic);
            Ok(dx)
        } else {
            expect_dims("input", x.dims(), s.x_dims())?;
            let mut y = baselines::direct_conv(x, &self.w, s);
            epilogue.apply(y.as_mut_slice(), s.oc);
            Ok(y)
        }
    }
}

// -------------------------------------------------------------- winograd2d

/// Fused 2-D Winograd `F(2×2, 3×3)` — the `Fused_Winograd` stand-in, with
/// exactly the 3×3/unit-stride restriction the paper calls out in §6.1.1.
pub struct Winograd2dBackend;

struct Winograd2dPlan {
    w: Tensor4<f32>,
    shape: ConvShape,
}

impl ConvAlgorithm for Winograd2dBackend {
    fn name(&self) -> &'static str {
        "winograd2d"
    }

    fn supports(&self, s: &ConvShape) -> bool {
        s.is_unit_stride() && s.fh == 3 && s.fw == 3
    }

    fn workspace_class(&self, _s: &ConvShape) -> AlgorithmClass {
        AlgorithmClass::Winograd2dNonFused { alpha: 4, n: 2 }
    }

    fn plan(&self, w: &Tensor4<f32>, s: &ConvShape, deconv: bool) -> Result<Arc<dyn ConvPlan>, ConvError> {
        if deconv {
            return Err(unsupported(self.name(), "backward-data runs through `direct`"));
        }
        if !self.supports(s) {
            return Err(unsupported(self.name(), "3×3 unit-stride only (§6.1.1)"));
        }
        expect_dims("filter", w.dims(), s.w_dims())?;
        Ok(Arc::new(Winograd2dPlan {
            w: w.clone(),
            shape: *s,
        }))
    }
}

impl ConvPlan for Winograd2dPlan {
    fn algorithm(&self) -> &'static str {
        "winograd2d"
    }

    fn shape(&self) -> &ConvShape {
        &self.shape
    }

    fn resident_bytes(&self) -> usize {
        self.w.len() * 4
    }

    fn run(&self, x: &Tensor4<f32>, epilogue: &Epilogue, _arena: &WorkspacePool) -> Result<Tensor4<f32>, ConvError> {
        let s = &self.shape;
        expect_dims("input", x.dims(), s.x_dims())?;
        let mut y = baselines::winograd2d_conv(x, &self.w, s, 2);
        epilogue.apply(y.as_mut_slice(), s.oc);
        Ok(y)
    }
}

// --------------------------------------------------------------------- fft

/// FFT convolution (unit stride). Included for algorithm-coverage parity;
/// its frequency-domain filter bank is rebuilt per run, which the
/// `AlgorithmClass::Fft` workspace accounting already charges it for.
pub struct FftBackend;

struct FftPlan {
    w: Tensor4<f32>,
    shape: ConvShape,
}

impl ConvAlgorithm for FftBackend {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn supports(&self, s: &ConvShape) -> bool {
        s.is_unit_stride()
    }

    fn workspace_class(&self, _s: &ConvShape) -> AlgorithmClass {
        AlgorithmClass::Fft
    }

    fn plan(&self, w: &Tensor4<f32>, s: &ConvShape, deconv: bool) -> Result<Arc<dyn ConvPlan>, ConvError> {
        if deconv {
            return Err(unsupported(self.name(), "backward-data runs through `direct`"));
        }
        if !self.supports(s) {
            return Err(ConvError::NonUnitStride {
                algorithm: "fft",
                sh: s.sh,
                sw: s.sw,
            });
        }
        expect_dims("filter", w.dims(), s.w_dims())?;
        Ok(Arc::new(FftPlan {
            w: w.clone(),
            shape: *s,
        }))
    }
}

impl ConvPlan for FftPlan {
    fn algorithm(&self) -> &'static str {
        "fft"
    }

    fn shape(&self) -> &ConvShape {
        &self.shape
    }

    fn resident_bytes(&self) -> usize {
        self.w.len() * 4
    }

    fn run(&self, x: &Tensor4<f32>, epilogue: &Epilogue, _arena: &WorkspacePool) -> Result<Tensor4<f32>, ConvError> {
        let s = &self.shape;
        expect_dims("input", x.dims(), s.x_dims())?;
        let mut y = baselines::fft_conv(x, &self.w, s);
        epilogue.apply(y.as_mut_slice(), s.oc);
        Ok(y)
    }
}

// ---------------------------------------------------------------- indirect

/// Indirect convolution (Dukhan): a shape-keyed indirection table of row
/// offsets replaces im2col's materialised patch matrix, and one blocked
/// GEMM over the gathered A-panels covers the whole batch. The plan caches
/// the table next to the pre-packed HWIO filter — both shape-keyed, both
/// batch-relocatable — and arbitrary stride falls out of the table build,
/// making this the engine's GEMM-class path for strided shapes.
pub struct IndirectBackend;

struct IndirectPlan {
    table: iwino_indirect::IndirectTable,
    w_packed: iwino_gemm::PackedB,
}

impl ConvAlgorithm for IndirectBackend {
    fn name(&self) -> &'static str {
        "im2col-indirect"
    }

    fn supports(&self, _s: &ConvShape) -> bool {
        true
    }

    fn workspace_class(&self, _s: &ConvShape) -> AlgorithmClass {
        // Like cuDNN's precomp GEMM, the per-shape state is an index
        // structure whose size is independent of IC and batch; the A-panel
        // scratch is the GEMM's own and already accounted there.
        AlgorithmClass::ImplicitPrecompGemm
    }

    fn plan(&self, w: &Tensor4<f32>, s: &ConvShape, deconv: bool) -> Result<Arc<dyn ConvPlan>, ConvError> {
        if deconv {
            return Err(unsupported(self.name(), "backward-data runs through `direct`"));
        }
        expect_dims("filter", w.dims(), s.w_dims())?;
        let wmat = transpose_filter_to_hwio(w);
        Ok(Arc::new(IndirectPlan {
            table: iwino_indirect::IndirectTable::build(s),
            w_packed: iwino_gemm::PackedB::pack(s.fh * s.fw * s.ic, s.oc, wmat.as_slice()),
        }))
    }
}

impl ConvPlan for IndirectPlan {
    fn algorithm(&self) -> &'static str {
        "im2col-indirect"
    }

    fn shape(&self) -> &ConvShape {
        self.table.shape()
    }

    fn resident_bytes(&self) -> usize {
        self.table.resident_bytes() + self.w_packed.resident_bytes()
    }

    fn run(&self, x: &Tensor4<f32>, epilogue: &Epilogue, arena: &WorkspacePool) -> Result<Tensor4<f32>, ConvError> {
        let s = self.table.shape();
        expect_dims("input", x.dims(), s.x_dims())?;
        let mut y = iwino_indirect::indirect_conv_nhwc_packed(x, &self.w_packed, &self.table, arena);
        epilogue.apply(y.as_mut_slice(), s.oc);
        Ok(y)
    }
}
