//! Bounded, LRU-evicting plan cache.
//!
//! A [`crate::ConvPlan`] owns the expensive per-shape state — for the fused
//! Winograd path that is the transformed-filter bank (§5.1), for the GEMM
//! paths the HWIO/OIHW-reshaped weights and gather maps. Re-deriving that
//! state per call is what made repeated same-shape forwards pay the
//! `FilterTransform` stage every time; the cache makes it a one-time cost
//! per `(algorithm, shape, filter, direction)` key.

use crate::ConvPlan;
use iwino_obs as obs;
use iwino_tensor::ConvShape;
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of the filter bank a plan was built from. Weight mutation must
/// change the id (the `epoch` component) so stale banks cannot be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FilterId {
    /// The owning [`crate::Handle`] (or an ad-hoc id for handle-less calls).
    pub owner: u64,
    /// Bumped on every weight mutation of the owner.
    pub epoch: u64,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    pub algo: &'static str,
    pub shape: ConvShape,
    pub filter: FilterId,
    pub deconv: bool,
}

struct Entry {
    plan: Arc<dyn ConvPlan>,
    /// Logical timestamp of the last lookup; smallest = least recently used.
    tick: u64,
}

/// LRU map from [`PlanKey`] to a shared plan. All operations run under the
/// engine's cache mutex; this type itself is not synchronised.
pub(crate) struct PlanCache {
    entries: HashMap<PlanKey, Entry>,
    clock: u64,
    bound: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    pub fn new(bound: usize) -> Self {
        assert!(bound > 0);
        PlanCache {
            entries: HashMap::new(),
            clock: 0,
            bound,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<dyn ConvPlan>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.tick = clock;
                self.hits += 1;
                obs::add(obs::Counter::EnginePlanHits, 1);
                Some(Arc::clone(&e.plan))
            }
            None => {
                self.misses += 1;
                obs::add(obs::Counter::EnginePlanMisses, 1);
                None
            }
        }
    }

    pub fn insert(&mut self, key: PlanKey, plan: Arc<dyn ConvPlan>) {
        self.clock += 1;
        if self.entries.len() >= self.bound && !self.entries.contains_key(&key) {
            // Evict the least-recently-used entry to stay within the bound.
            if let Some(victim) = self.entries.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k.clone()) {
                self.entries.remove(&victim);
                self.evictions += 1;
                obs::add(obs::Counter::EnginePlanEvictions, 1);
            }
        }
        self.entries.insert(key, Entry { plan, tick: self.clock });
    }

    pub fn counts(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Bytes resident across every cached plan's filter banks.
    pub fn resident_bytes(&self) -> usize {
        self.entries.values().map(|e| e.plan.resident_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DummyPlan(&'static str);
    impl ConvPlan for DummyPlan {
        fn algorithm(&self) -> &'static str {
            self.0
        }
        fn shape(&self) -> &ConvShape {
            unimplemented!("not used in cache tests")
        }
        fn resident_bytes(&self) -> usize {
            8
        }
        fn run(
            &self,
            _x: &iwino_tensor::Tensor4<f32>,
            _epilogue: &iwino_core::Epilogue,
            _arena: &crate::WorkspacePool,
        ) -> Result<iwino_tensor::Tensor4<f32>, iwino_core::ConvError> {
            unimplemented!("not used in cache tests")
        }
    }

    fn key(i: usize) -> PlanKey {
        PlanKey {
            algo: "direct",
            shape: ConvShape::square(1, 4 + i, 1, 1, 3),
            filter: FilterId { owner: 1, epoch: 0 },
            deconv: false,
        }
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert(key(0), Arc::new(DummyPlan("a")));
        c.insert(key(1), Arc::new(DummyPlan("b")));
        assert!(c.get(&key(0)).is_some()); // key 0 is now most recent
        c.insert(key(2), Arc::new(DummyPlan("c"))); // evicts key 1
        assert!(c.get(&key(0)).is_some());
        assert!(c.get(&key(1)).is_none());
        assert!(c.get(&key(2)).is_some());
        assert_eq!(c.len(), 2);
        let (hits, misses, evictions) = c.counts();
        assert_eq!((hits, misses, evictions), (3, 1, 1));
    }

    #[test]
    fn epoch_change_is_a_different_key() {
        let mut c = PlanCache::new(4);
        c.insert(key(0), Arc::new(DummyPlan("a")));
        let mut stale = key(0);
        stale.filter.epoch = 1;
        assert!(c.get(&stale).is_none(), "bumped epoch must not see the old bank");
    }

    #[test]
    fn resident_bytes_sums_plans() {
        let mut c = PlanCache::new(4);
        c.insert(key(0), Arc::new(DummyPlan("a")));
        c.insert(key(1), Arc::new(DummyPlan("b")));
        assert_eq!(c.resident_bytes(), 16);
    }
}
