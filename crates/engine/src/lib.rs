//! Unified convolution engine: one dispatch surface over every algorithm
//! in the workspace.
//!
//! The paper's §5.5/§5.7 story is that Im2col-Winograd is one algorithm in
//! a *selector* — unit-stride convolutions run Γα(n, r), everything else
//! falls back to GEMM-class paths. This crate is that selector made
//! concrete, in the shape framework integrations actually use (cuDNN's
//! algorithm enum + plan handles; the Indirect Convolution paper's
//! precomputed per-shape state):
//!
//! * [`ConvAlgorithm`] / [`ConvPlan`] — the registry abstraction. An
//!   algorithm inspects a [`ConvShape`] and builds a plan; the plan owns
//!   the expensive per-shape state (transformed-filter banks, reshaped
//!   weights, gather maps) and executes against inputs.
//! * [`Engine`] — the global registry plus a bounded LRU **plan cache**
//!   keyed by `(algorithm, shape, filter-id, direction)`, so repeated
//!   same-shape forwards stop re-transforming filters (the serving hot
//!   path), and an arena-backed [`WorkspacePool`] so GEMM-class scratch
//!   stops hitting the allocator per row.
//! * [`SelectionPolicy`] — §5.7's heuristic by default (unit stride → Γ,
//!   otherwise GEMM), an optional measure-once autotune that times every
//!   eligible backend on first sight of a shape and pins the winner, and
//!   `Force` for driving a specific backend by registry name.
//! * [`Handle`] — per-layer identity: owns the filter-id whose epoch is
//!   bumped on weight mutation, which invalidates cached plans without any
//!   cache walk.

#![forbid(unsafe_code)]

mod arena;
mod backends;
mod cache;

pub use arena::{ArenaStats, WorkspacePool};
pub use backends::{WinogradBackend, BACKEND_NAMES};
pub use cache::FilterId;

use cache::{PlanCache, PlanKey};
use iwino_core::{AlgorithmClass, ConvError, Epilogue};
use iwino_obs as obs;
use iwino_tensor::{ConvShape, Tensor4};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Plans the plan cache retains before LRU eviction. Each entry's dominant
/// cost is its filter bank (`FH×α×IC×OC` floats), so the bound also bounds
/// resident bytes for a fixed model.
const PLAN_CACHE_BOUND: usize = 64;

/// A convolution algorithm the engine can dispatch to.
pub trait ConvAlgorithm: Send + Sync {
    /// Stable registry name (`"im2col-winograd"`, `"direct"`, …).
    fn name(&self) -> &'static str;

    /// Can this algorithm run `s` at all? Selection and autotune consult
    /// this before planning.
    fn supports(&self, s: &ConvShape) -> bool;

    /// Workspace class for the §6.1.1 memory accounting
    /// (`iwino_core::workspace_bytes`).
    fn workspace_class(&self, s: &ConvShape) -> AlgorithmClass;

    /// Build a plan for `shape` around filter `w` (`OC×FH×FW×IC`). With
    /// `deconv`, the plan computes backward-data: its input is `dy` and its
    /// output `dx`. Backends without a deconv path return
    /// [`ConvError::Unsupported`]; the engine reroutes those to `direct`.
    fn plan(&self, w: &Tensor4<f32>, s: &ConvShape, deconv: bool) -> Result<Arc<dyn ConvPlan>, ConvError>;
}

/// An executable convolution plan. Immutable after construction, shared via
/// `Arc` between the cache and in-flight calls.
pub trait ConvPlan: Send + Sync {
    /// Name of the algorithm that built this plan.
    fn algorithm(&self) -> &'static str;

    /// The *forward* geometry this plan answers for.
    fn shape(&self) -> &ConvShape;

    /// Bytes of per-shape state the plan keeps resident (filter banks,
    /// reshaped weights) — what a cache entry costs.
    fn resident_bytes(&self) -> usize;

    /// Execute. `x` is the input (`dy` for deconv plans); scratch buffers
    /// draw from `arena`.
    fn run(&self, x: &Tensor4<f32>, epilogue: &Epilogue, arena: &WorkspacePool) -> Result<Tensor4<f32>, ConvError>;
}

/// How a [`Handle`] picks its backend.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// §5.7: unit-stride shapes the fused kernels can run → Im2col-Winograd;
    /// everything else → im2col+GEMM (NHWC).
    #[default]
    Heuristic,
    /// Time every eligible backend on first sight of a shape, pin the
    /// winner for all subsequent calls (measure-once, like cuDNN's
    /// `cudnnFindConvolutionForwardAlgorithm`).
    Autotune,
    /// Always use the named backend.
    Force(String),
}

static NEXT_HANDLE_ID: AtomicU64 = AtomicU64::new(1);

/// Per-call-site identity for plan caching: a conv layer (or bench loop)
/// holds one `Handle`; its `(id, epoch)` pair keys the filter bank in the
/// plan cache, and [`Handle::invalidate`] retires every cached plan built
/// from previous weights by bumping the epoch.
#[derive(Debug)]
pub struct Handle {
    id: u64,
    epoch: AtomicU64,
    pub policy: SelectionPolicy,
}

impl Handle {
    pub fn new(policy: SelectionPolicy) -> Handle {
        Handle {
            // ORDERING: Relaxed — a unique-id counter; no other data is
            // published through it and ids only need to be distinct.
            id: NEXT_HANDLE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            policy,
        }
    }

    /// The cache key component identifying this handle's current weights.
    pub fn filter_id(&self) -> FilterId {
        FilterId {
            owner: self.id,
            // ORDERING: Relaxed — the epoch is a monotonic generation
            // counter; callers that mutate weights and then call conv do so
            // in program order on the same thread (or across the training
            // step's join barrier), which already orders the bump.
            epoch: self.epoch.load(Ordering::Relaxed),
        }
    }

    /// Call after mutating the weights this handle convolves with: cached
    /// plans built from the old values stop being served (their keys carry
    /// the old epoch and age out of the LRU).
    pub fn invalidate(&self) {
        // ORDERING: Relaxed — monotonic generation counter; readers order
        // it in program order or across a join barrier (see
        // [`Handle::filter_id`]).
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for Handle {
    fn default() -> Self {
        Handle::new(SelectionPolicy::Heuristic)
    }
}

/// Point-in-time engine statistics (plan cache + arena).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub plan_evictions: u64,
    pub plans_cached: usize,
    pub plan_resident_bytes: usize,
    pub arena: ArenaStats,
}

/// The dispatch surface: registry + plan cache + arena + autotune pins.
pub struct Engine {
    registry: Vec<Arc<dyn ConvAlgorithm>>,
    cache: Mutex<PlanCache>,
    arena: WorkspacePool,
    /// Autotune winners, keyed by shape. Deliberately separate from the
    /// plan cache: evicting a plan must not forget the measurement.
    pinned: Mutex<HashMap<ConvShape, &'static str>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// A fresh engine with the standard backend registry. Tests that need
    /// isolated cache statistics construct their own; everything else uses
    /// [`Engine::global`].
    pub fn new() -> Engine {
        Engine::with_plan_capacity(PLAN_CACHE_BOUND)
    }

    /// A fresh engine whose plan cache holds at most `bound` plans. The
    /// serving layer sizes this to its bucket count so steady-state traffic
    /// never evicts a resident plan; `bound` is clamped to at least one.
    pub fn with_plan_capacity(bound: usize) -> Engine {
        Engine {
            registry: backends::all_backends(),
            cache: Mutex::new(PlanCache::new(bound.max(1))),
            arena: WorkspacePool::new(),
            pinned: Mutex::new(HashMap::new()),
        }
    }

    /// The process-wide engine every `nn::Conv2d` and bench loop shares.
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(Engine::new)
    }

    /// Registered backend names, in registration order.
    pub fn algorithms(&self) -> Vec<&'static str> {
        self.registry.iter().map(|a| a.name()).collect()
    }

    /// Look a backend up by name.
    pub fn algorithm(&self, name: &str) -> Result<Arc<dyn ConvAlgorithm>, ConvError> {
        self.registry
            .iter()
            .find(|a| a.name() == name)
            .cloned()
            .ok_or_else(|| ConvError::UnknownAlgorithm { name: name.into() })
    }

    /// The workspace pool backing GEMM-class scratch buffers.
    pub fn arena(&self) -> &WorkspacePool {
        &self.arena
    }

    /// §5.7 heuristic, thresholds re-derived against the packed SGEMM:
    /// fused Winograd wherever it applies — except the deep-K corner
    /// (3×3-and-smaller filters over ≥ 256 input channels), where the
    /// packed im2col GEMM's panel reuse beats short Γ tiles on the
    /// measured frontier (EXPERIMENTS.md, "who wins where"). Everything
    /// the fused path cannot run — strided shapes (small OW), filters
    /// outside the Γ planner's 2..=15 width range (large r) — goes to
    /// `im2col-indirect`: its one batch-wide GEMM amortises the packed-B
    /// panel streaming that the row-at-a-time im2col fallback re-pays
    /// `N·OH` times, and its indirection table handles arbitrary stride
    /// (EXPERIMENTS.md, indirect-vs-im2col frontier).
    pub fn heuristic_choice(&self, s: &ConvShape) -> &'static str {
        if !self.registry[0].supports(s) {
            return "im2col-indirect";
        }
        if s.ic >= 256 && s.fh <= 3 && s.fw <= 3 {
            return "im2col-gemm-nhwc";
        }
        self.registry[0].name() // "im2col-winograd"
    }

    /// The autotune winner pinned for `s`, if one has been measured.
    pub fn pinned_choice(&self, s: &ConvShape) -> Option<&'static str> {
        self.pinned.lock().unwrap().get(s).copied()
    }

    /// The backend a handle's policy resolves to for `s` — without running
    /// anything. Autotune resolves to its pin, or the heuristic choice when
    /// no measurement has happened yet.
    pub fn resolve(&self, policy: &SelectionPolicy, s: &ConvShape) -> Result<Arc<dyn ConvAlgorithm>, ConvError> {
        let name = match policy {
            SelectionPolicy::Heuristic => self.heuristic_choice(s),
            SelectionPolicy::Autotune => self.pinned_choice(s).unwrap_or_else(|| self.heuristic_choice(s)),
            SelectionPolicy::Force(name) => return self.algorithm(name),
        };
        self.algorithm(name)
    }

    /// Fetch a cached plan, or build and cache one.
    pub fn plan(
        &self,
        algo: &Arc<dyn ConvAlgorithm>,
        w: &Tensor4<f32>,
        s: &ConvShape,
        filter: FilterId,
        deconv: bool,
    ) -> Result<Arc<dyn ConvPlan>, ConvError> {
        let _plan_span = obs::span(obs::Stage::EnginePlan);
        // Capability gate: the registry's explicit `supports` query answers
        // for shape capability, so no backend's internal stride/geometry
        // assertion is ever reachable through engine dispatch — a rejected
        // shape gets an error naming the backends that *can* run it.
        if !algo.supports(s) {
            return Err(ConvError::UnsupportedShape {
                algorithm: algo.name(),
                shape: Box::new(*s),
                supported: self
                    .registry
                    .iter()
                    .filter(|a| a.supports(s))
                    .map(|a| a.name())
                    .collect(),
            });
        }
        // Latency histograms split by outcome: a hit is a guarded map
        // lookup, a miss additionally pays the full plan build — averaging
        // the two together would hide exactly the tail the histograms exist
        // to show. The clock is only read while recording.
        let t0 = obs::enabled().then(Instant::now);
        let key = PlanKey {
            algo: algo.name(),
            shape: *s,
            filter,
            deconv,
        };
        if let Some(p) = self.cache.lock().unwrap().get(&key) {
            if let Some(t0) = t0 {
                obs::record_latency(obs::HistSite::EnginePlanHit, t0.elapsed().as_nanos() as u64);
            }
            return Ok(p);
        }
        // Build outside the lock — planning transforms the whole filter.
        let plan = algo.plan(w, s, deconv)?;
        self.cache.lock().unwrap().insert(key, Arc::clone(&plan));
        if let Some(t0) = t0 {
            obs::record_latency(obs::HistSite::EnginePlanMiss, t0.elapsed().as_nanos() as u64);
        }
        Ok(plan)
    }

    /// Forward convolution through a handle's policy, with plan caching.
    pub fn conv(
        &self,
        h: &Handle,
        x: &Tensor4<f32>,
        w: &Tensor4<f32>,
        s: &ConvShape,
        epilogue: &Epilogue,
    ) -> Result<Tensor4<f32>, ConvError> {
        if let SelectionPolicy::Autotune = h.policy {
            if self.pinned_choice(s).is_none() {
                return self.autotune(h, x, w, s, epilogue);
            }
        }
        let algo = self.resolve(&h.policy, s)?;
        self.conv_with(&algo, h.filter_id(), x, w, s, epilogue)
    }

    /// Forward convolution through a specific backend (cache still applies).
    pub fn conv_with(
        &self,
        algo: &Arc<dyn ConvAlgorithm>,
        filter: FilterId,
        x: &Tensor4<f32>,
        w: &Tensor4<f32>,
        s: &ConvShape,
        epilogue: &Epilogue,
    ) -> Result<Tensor4<f32>, ConvError> {
        let plan = self.plan(algo, w, s, filter, false)?;
        let _run = obs::span(obs::Stage::EngineRun);
        plan.run(x, epilogue, &self.arena)
    }

    /// Backward-data through a handle's policy. Shapes the fused deconv can
    /// run (unit stride) use it; everything else — and every backend with
    /// no deconv path — falls back to `direct` (§5.7).
    pub fn backward_data(
        &self,
        h: &Handle,
        dy: &Tensor4<f32>,
        w: &Tensor4<f32>,
        s: &ConvShape,
    ) -> Result<Tensor4<f32>, ConvError> {
        let forward = self.resolve(&h.policy, s)?;
        let algo = if forward.name() == "im2col-winograd" && forward.supports(s) {
            forward
        } else {
            self.algorithm("direct")?
        };
        let plan = self.plan(&algo, w, s, h.filter_id(), true)?;
        let _run = obs::span(obs::Stage::EngineRun);
        plan.run(dy, &Epilogue::None, &self.arena)
    }

    /// Measure every eligible backend once on `(x, w, s)`, pin the winner,
    /// and return its output. Called on autotune's first sight of a shape.
    fn autotune(
        &self,
        h: &Handle,
        x: &Tensor4<f32>,
        w: &Tensor4<f32>,
        s: &ConvShape,
        epilogue: &Epilogue,
    ) -> Result<Tensor4<f32>, ConvError> {
        type Timed = (u128, Arc<dyn ConvAlgorithm>, Arc<dyn ConvPlan>, Tensor4<f32>);
        let mut best: Option<Timed> = None;
        for algo in &self.registry {
            if !algo.supports(s) {
                continue;
            }
            let Ok(plan) = algo.plan(w, s, false) else { continue };
            let t0 = Instant::now();
            let Ok(y) = plan.run(x, epilogue, &self.arena) else {
                continue;
            };
            let dt = t0.elapsed().as_nanos();
            if best.as_ref().is_none_or(|(b, _, _, _)| dt < *b) {
                best = Some((dt, Arc::clone(algo), plan, y));
            }
        }
        let (_, algo, plan, y) = best.ok_or(ConvError::NoEligibleAlgorithm { shape: *s })?;
        self.pinned.lock().unwrap().insert(*s, algo.name());
        // Seed the cache with the winner's plan so the next call is a hit.
        self.cache.lock().unwrap().insert(
            PlanKey {
                algo: algo.name(),
                shape: *s,
                filter: h.filter_id(),
                deconv: false,
            },
            plan,
        );
        Ok(y)
    }

    pub fn stats(&self) -> EngineStats {
        let cache = self.cache.lock().unwrap();
        let (plan_hits, plan_misses, plan_evictions) = cache.counts();
        EngineStats {
            plan_hits,
            plan_misses,
            plan_evictions,
            plans_cached: cache.len(),
            plan_resident_bytes: cache.resident_bytes(),
            arena: self.arena.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensors(s: &ConvShape) -> (Tensor4<f32>, Tensor4<f32>) {
        (
            Tensor4::<f32>::random(s.x_dims(), 1, -1.0, 1.0),
            Tensor4::<f32>::random(s.w_dims(), 2, -1.0, 1.0),
        )
    }

    #[test]
    fn registry_names_match_constant() {
        assert_eq!(Engine::global().algorithms(), BACKEND_NAMES.to_vec());
    }

    #[test]
    fn unknown_algorithm_is_an_error() {
        let Err(e) = Engine::global().algorithm("nope") else {
            panic!("lookup of an unregistered name must fail");
        };
        assert!(matches!(e, ConvError::UnknownAlgorithm { .. }));
    }

    #[test]
    fn repeat_forwards_hit_the_plan_cache() {
        let eng = Engine::new();
        let h = Handle::new(SelectionPolicy::Heuristic);
        let s = ConvShape::square(1, 8, 4, 6, 3);
        let (x, w) = tensors(&s);
        let y1 = eng.conv(&h, &x, &w, &s, &Epilogue::None).unwrap();
        let y2 = eng.conv(&h, &x, &w, &s, &Epilogue::None).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice(), "cached plan must be bit-identical");
        let st = eng.stats();
        assert_eq!(st.plan_misses, 1);
        assert_eq!(st.plan_hits, 1);
        assert!(st.plan_resident_bytes > 0);
    }

    #[test]
    fn invalidate_retires_cached_plans() {
        let eng = Engine::new();
        let h = Handle::new(SelectionPolicy::Heuristic);
        let s = ConvShape::square(1, 8, 3, 4, 3);
        let (x, mut w) = tensors(&s);
        let y1 = eng.conv(&h, &x, &w, &s, &Epilogue::None).unwrap();
        // Mutate weights without telling the engine: the stale bank answers.
        let w2 = {
            w.as_mut_slice().iter_mut().for_each(|v| *v *= 2.0);
            w
        };
        let stale = eng.conv(&h, &x, &w2, &s, &Epilogue::None).unwrap();
        assert_eq!(
            stale.as_slice(),
            y1.as_slice(),
            "without invalidate the old plan serves"
        );
        h.invalidate();
        let fresh = eng.conv(&h, &x, &w2, &s, &Epilogue::None).unwrap();
        assert_ne!(fresh.as_slice(), y1.as_slice(), "invalidate must rebuild the bank");
    }

    #[test]
    fn bad_input_shape_degrades_gracefully() {
        let eng = Engine::new();
        let h = Handle::default();
        let s = ConvShape::square(1, 8, 3, 4, 3);
        let (_, w) = tensors(&s);
        let wrong = Tensor4::<f32>::zeros([1, 7, 8, 3]);
        let e = eng.conv(&h, &wrong, &w, &s, &Epilogue::None).unwrap_err();
        assert!(matches!(e, ConvError::ShapeMismatch { what: "input", .. }), "{e}");
    }

    #[test]
    fn forced_backend_on_unsupported_shape_names_capable_backends() {
        // The engine's capability gate answers before any backend-internal
        // assertion can: forcing a unit-stride-only backend onto a strided
        // shape yields an error listing the backends that do support it.
        let eng = Engine::new();
        let s = ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 9, 3, 4, 3)
        };
        let (x, w) = tensors(&s);
        let fft = eng.algorithm("fft").unwrap();
        let e = eng
            .conv_with(&fft, FilterId { owner: 1, epoch: 0 }, &x, &w, &s, &Epilogue::None)
            .unwrap_err();
        let ConvError::UnsupportedShape {
            algorithm, supported, ..
        } = e
        else {
            panic!("want UnsupportedShape, got {e}");
        };
        assert_eq!(algorithm, "fft");
        assert!(supported.contains(&"im2col-indirect"), "{supported:?}");
        assert!(supported.contains(&"direct"), "{supported:?}");
        assert!(!supported.contains(&"fft"), "{supported:?}");
    }

    #[test]
    fn strided_backward_data_falls_back_to_direct() {
        let eng = Engine::new();
        let h = Handle::default();
        let s = ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 9, 3, 4, 3)
        };
        let (x, w) = tensors(&s);
        let dy = Tensor4::<f32>::random(s.y_dims(), 3, -1.0, 1.0);
        let dx = eng.backward_data(&h, &dy, &w, &s).unwrap();
        assert_eq!(dx.dims(), s.x_dims());
        // Adjoint identity ⟨conv(x), dy⟩ = ⟨x, dx⟩ pins correctness.
        let y = iwino_baselines::direct_conv(&x, &w, &s);
        let lhs: f64 = y
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(dx.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }
}
