//! Arena-backed workspace pool.
//!
//! GEMM-class backends need per-row patch buffers; the fused paths need
//! nothing, which is their §4.2 selling point — but when a GEMM path *is*
//! selected (strided shapes), the serving loop should not hit the allocator
//! on every row of every call. The pool keeps returned buffers on a free
//! list, hands the smallest sufficient one back out on checkout, and
//! reports hits/misses/high-water bytes both through its own counters
//! (always on, for [`crate::Engine::stats`]) and through `iwino-obs`
//! (gated, for the metrics-JSON export).

use iwino_baselines::ScratchProvider;
use iwino_obs as obs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many returned buffers the free list retains. Beyond this, give-backs
/// deallocate — the pool bounds idle memory instead of growing without
/// limit across shape changes.
const FREE_LIST_BOUND: usize = 64;

/// Point-in-time pool statistics (monotonic since construction, except the
/// high-water mark which is a running maximum).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    pub hits: u64,
    pub misses: u64,
    pub bytes_high_water: u64,
}

/// A pool of reusable `Vec<f32>` scratch buffers.
#[derive(Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<Vec<f32>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Peak bytes simultaneously checked out + idle on the free list.
    high_water: AtomicU64,
    held: AtomicU64,
}

impl WorkspacePool {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> ArenaStats {
        // ORDERING: Relaxed — independent monotonic counters read for
        // reporting; no data is published through them.
        ArenaStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_high_water: self.high_water.load(Ordering::Relaxed), // ORDERING: as above
        }
    }

    fn note_held(&self, delta_bytes: i64) {
        // ORDERING: Relaxed — `held` is a statistics gauge; the high-water
        // fetch_max below makes the mark monotone even if two threads race,
        // and nobody takes decisions off a momentarily stale value.
        let now = if delta_bytes >= 0 {
            self.held.fetch_add(delta_bytes as u64, Ordering::Relaxed) + delta_bytes as u64
        } else {
            // ORDERING: Relaxed — same statistics gauge as above.
            self.held.fetch_sub((-delta_bytes) as u64, Ordering::Relaxed) - (-delta_bytes) as u64
        };
        self.high_water.fetch_max(now, Ordering::Relaxed); // ORDERING: as above
        obs::maximize(obs::Counter::ArenaBytesHighWater, now);
    }
}

impl ScratchProvider for WorkspacePool {
    fn checkout(&self, len: usize) -> Vec<f32> {
        // Span + latency histogram + trace event for the checkout itself:
        // a miss is an allocation and a zero-fill, which is precisely the
        // serving-latency tail the arena exists to amortize away.
        let _span = obs::span(obs::Stage::ArenaCheckout);
        let reused = {
            let mut free = self.free.lock().unwrap();
            // Smallest sufficient buffer: avoids burning a huge buffer on a
            // small request while a small one idles.
            let best = free
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= len)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            best.map(|i| free.swap_remove(i))
        };
        match reused {
            Some(mut buf) => {
                // A recycled buffer's bytes are already in `held` (they
                // never left the pool), so only the counters move.
                // ORDERING: Relaxed — monotonic stats counter (see stats()).
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::add(obs::Counter::ArenaHits, 1);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                // ORDERING: Relaxed — monotonic stats counter (see stats()).
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::add(obs::Counter::ArenaMisses, 1);
                self.note_held(len as i64 * 4);
                vec![0.0; len]
            }
        }
    }

    fn give_back(&self, buf: Vec<f32>) {
        let cap = buf.capacity();
        let mut free = self.free.lock().unwrap();
        if free.len() < FREE_LIST_BOUND {
            free.push(buf);
            return;
        }
        drop(free);
        // Free list full: the buffer is dropped, so its bytes leave the pool.
        self.note_held(-(cap as i64) * 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_checkout_is_a_hit() {
        let pool = WorkspacePool::new();
        let b = pool.checkout(100);
        pool.give_back(b);
        let b = pool.checkout(80); // smaller fits in the recycled buffer
        assert_eq!(b.len(), 80);
        assert!(b.iter().all(|&v| v == 0.0), "recycled buffer must be re-zeroed");
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn reused_buffers_are_zeroed_after_writes() {
        let pool = WorkspacePool::new();
        let mut b = pool.checkout(10);
        b.iter_mut().for_each(|v| *v = 7.0);
        pool.give_back(b);
        let b = pool.checkout(10);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn high_water_tracks_concurrent_checkouts() {
        let pool = WorkspacePool::new();
        let a = pool.checkout(100); // 400 bytes
        let b = pool.checkout(50); // 600 total
        pool.give_back(a);
        pool.give_back(b);
        let _c = pool.checkout(25); // reuses; held stays below peak
        assert_eq!(pool.stats().bytes_high_water, 600);
    }

    #[test]
    fn smallest_sufficient_buffer_wins() {
        let pool = WorkspacePool::new();
        let big = pool.checkout(1000);
        let small = pool.checkout(10);
        pool.give_back(big);
        pool.give_back(small);
        let b = pool.checkout(8);
        assert!(b.capacity() < 1000, "should have picked the small buffer");
    }
}
