//! Selection-policy golden tests (ISSUE-4 satellite): the heuristic must
//! mirror §5.7, and autotune's measure-once pin must be stable across
//! repeated lookups — including after its cached plan is evicted.

use iwino_core::Epilogue;
use iwino_engine::{Engine, FilterId, Handle, SelectionPolicy};
use iwino_tensor::{ConvShape, Tensor4};

#[test]
fn heuristic_picks_winograd_for_unit_stride_r2_to_9() {
    let eng = Engine::new();
    for r in 2..=9 {
        let s = ConvShape::square(1, 16, 4, 8, r);
        assert!(s.is_unit_stride());
        assert_eq!(
            eng.heuristic_choice(&s),
            "im2col-winograd",
            "unit-stride r={r} must select the fused path (§5.7)"
        );
    }
}

#[test]
fn heuristic_picks_gemm_for_deep_k_small_filters() {
    // Re-derived frontier (packed SGEMM): 3×3-and-smaller filters over
    // ≥ 256 input channels run faster through the packed im2col GEMM than
    // through short Γ tiles — measured on 12×12×512, 14×14×256, 7×7×512.
    let eng = Engine::new();
    for (hw, c) in [(12usize, 512usize), (14, 256), (7, 512)] {
        let s = ConvShape::square(1, hw, c, c, 3);
        assert!(s.is_unit_stride());
        assert_eq!(
            eng.heuristic_choice(&s),
            "im2col-gemm-nhwc",
            "{hw}x{hw}x{c} r=3 sits on the GEMM side of the measured frontier"
        );
    }
    // The boundary respects both axes: wider filters or fewer channels
    // stay fused.
    assert_eq!(
        eng.heuristic_choice(&ConvShape::square(1, 16, 256, 256, 5)),
        "im2col-winograd"
    );
    assert_eq!(
        eng.heuristic_choice(&ConvShape::square(1, 28, 128, 128, 3)),
        "im2col-winograd"
    );
}

#[test]
fn heuristic_picks_indirect_for_strides_at_least_2() {
    // Strided shapes can't run the fused path; among the GEMM-class
    // backends the indirection-buffer GEMM owns this region — one
    // batch-wide GEMM instead of the im2col fallback's per-row B-panel
    // re-streaming.
    let eng = Engine::new();
    for stride in 2..=4 {
        let s = ConvShape {
            sh: stride,
            sw: stride,
            ..ConvShape::square(1, 17, 4, 8, 3)
        };
        assert_eq!(
            eng.heuristic_choice(&s),
            "im2col-indirect",
            "stride {stride} must fall back to the indirect GEMM (§5.7)"
        );
    }
}

#[test]
fn heuristic_frontier_between_indirect_and_im2col_gemm() {
    // ISSUE-10 satellite: pin both sides of the indirect-vs-im2col
    // frontier the heuristic encodes.
    let eng = Engine::new();
    // Strided ⇒ small OW: indirect wins (BENCH_pr10 pair).
    let strided = ConvShape {
        sh: 2,
        sw: 2,
        ..ConvShape::square(1, 24, 32, 32, 3)
    };
    assert_eq!(eng.heuristic_choice(&strided), "im2col-indirect");
    // Large r beyond the Γ planner's 2..=15 width range: indirect.
    let large_r = ConvShape::square(1, 20, 4, 4, 16);
    assert!(!large_r.is_unit_stride() || large_r.fw > 15);
    assert_eq!(eng.heuristic_choice(&large_r), "im2col-indirect");
    // Deep-K r=3 unit stride stays on the materialising im2col GEMM.
    assert_eq!(
        eng.heuristic_choice(&ConvShape::square(1, 12, 512, 512, 3)),
        "im2col-gemm-nhwc"
    );
}

#[test]
fn heuristic_resolution_matches_what_conv_runs() {
    // `resolve` (the no-run query) and `conv` (the dispatcher) must agree.
    let eng = Engine::new();
    let h = Handle::new(SelectionPolicy::Heuristic);
    let s = ConvShape::square(1, 8, 3, 4, 3);
    let algo = eng.resolve(&h.policy, &s).unwrap();
    assert_eq!(algo.name(), "im2col-winograd");
    let x = Tensor4::<f32>::random(s.x_dims(), 1, -1.0, 1.0);
    let w = Tensor4::<f32>::random(s.w_dims(), 2, -1.0, 1.0);
    let via_policy = eng.conv(&h, &x, &w, &s, &Epilogue::None).unwrap();
    let direct = eng
        .conv_with(&algo, h.filter_id(), &x, &w, &s, &Epilogue::None)
        .unwrap();
    assert_eq!(via_policy.as_slice(), direct.as_slice());
}

#[test]
fn force_policy_always_uses_the_named_backend() {
    let eng = Engine::new();
    let h = Handle::new(SelectionPolicy::Force("direct".into()));
    let s = ConvShape::square(1, 8, 3, 4, 3); // winograd-eligible shape
    assert_eq!(eng.resolve(&h.policy, &s).unwrap().name(), "direct");
}

#[test]
fn autotune_pin_is_stable_across_repeated_lookups_and_eviction() {
    let eng = Engine::new();
    let h = Handle::new(SelectionPolicy::Autotune);
    let s = ConvShape::square(1, 10, 3, 4, 3);
    let x = Tensor4::<f32>::random(s.x_dims(), 5, -1.0, 1.0);
    let w = Tensor4::<f32>::random(s.w_dims(), 6, -1.0, 1.0);

    assert!(eng.pinned_choice(&s).is_none(), "no pin before first sight");
    let y0 = eng.conv(&h, &x, &w, &s, &Epilogue::None).unwrap();
    let winner = eng.pinned_choice(&s).expect("first call must pin a winner");

    // Repeated lookups: the pin never changes, outputs stay identical.
    for _ in 0..5 {
        let y = eng.conv(&h, &x, &w, &s, &Epilogue::None).unwrap();
        assert_eq!(y.as_slice(), y0.as_slice());
        assert_eq!(eng.pinned_choice(&s), Some(winner));
    }

    // Flood the plan cache with other shapes until the pinned shape's plan
    // is evicted; the pin must survive and the refilled plan must agree.
    let flood = eng.algorithm("direct").unwrap();
    let evictions_before = eng.stats().plan_evictions;
    for i in 0..80 {
        let fs = ConvShape::square(1, 6 + i % 13, 1 + i % 3, 1 + (i + 1) % 3, 3);
        let fx = Tensor4::<f32>::random(fs.x_dims(), 1000 + i as u64, -1.0, 1.0);
        let fw = Tensor4::<f32>::random(fs.w_dims(), 2000 + i as u64, -1.0, 1.0);
        eng.conv_with(
            &flood,
            FilterId {
                owner: 7777,
                epoch: i as u64,
            },
            &fx,
            &fw,
            &fs,
            &Epilogue::None,
        )
        .unwrap();
    }
    assert!(
        eng.stats().plan_evictions > evictions_before,
        "flood must actually evict (cache bound exercised)"
    );
    assert_eq!(eng.pinned_choice(&s), Some(winner), "pin survives plan eviction");
    let y = eng.conv(&h, &x, &w, &s, &Epilogue::None).unwrap();
    assert_eq!(y.as_slice(), y0.as_slice(), "refilled plan matches the original");
    assert_eq!(eng.pinned_choice(&s), Some(winner), "refill must not re-measure");
}

#[test]
fn autotune_on_strided_shape_pins_a_gemm_class_backend() {
    let eng = Engine::new();
    let h = Handle::new(SelectionPolicy::Autotune);
    let s = ConvShape {
        sh: 2,
        sw: 2,
        ..ConvShape::square(1, 9, 3, 4, 3)
    };
    let x = Tensor4::<f32>::random(s.x_dims(), 8, -1.0, 1.0);
    let w = Tensor4::<f32>::random(s.w_dims(), 9, -1.0, 1.0);
    eng.conv(&h, &x, &w, &s, &Epilogue::None).unwrap();
    let winner = eng.pinned_choice(&s).unwrap();
    assert!(
        ["im2col-gemm-nhwc", "im2col-gemm-nchw", "direct", "im2col-indirect"].contains(&winner),
        "strided shape pinned {winner}, but only GEMM-class backends are eligible"
    );
}
