//! Shared conformance net: every registered backend, driven purely through
//! the registry, must agree with the f64 direct reference on every shape it
//! claims to support (the ISSUE-4 acceptance gate).

use iwino_core::Epilogue;
use iwino_engine::{Engine, FilterId, BACKEND_NAMES};
use iwino_tensor::{ConvShape, Tensor4};

fn shapes() -> Vec<ConvShape> {
    vec![
        // Unit-stride 3×3 — every backend is eligible here.
        ConvShape::square(2, 10, 3, 5, 3),
        // Unit-stride, wider filter: excludes winograd2d.
        ConvShape::square(1, 12, 4, 3, 5),
        // Even filter width.
        ConvShape::square(1, 9, 2, 4, 2),
        // No padding.
        ConvShape::unit(1, 7, 11, 3, 4, 3, 3, 0, 0),
        // Strided: only the GEMM-class + direct backends remain.
        ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 11, 3, 4, 3)
        },
        // Stride 3 with a wider filter — exercises the indirection table's
        // sparser gather pattern.
        ConvShape {
            sh: 3,
            sw: 3,
            ..ConvShape::square(1, 13, 2, 4, 5)
        },
        // Asymmetric stride (2×3): OH ≠ OW, and the table's row/column
        // geometry diverge.
        ConvShape {
            sh: 2,
            sw: 3,
            ..ConvShape::square(2, 12, 3, 5, 3)
        },
    ]
}

#[test]
fn every_backend_matches_f64_direct_reference() {
    let eng = Engine::new();
    let mut covered = vec![0usize; BACKEND_NAMES.len()];
    for (si, s) in shapes().iter().enumerate() {
        let x = Tensor4::<f32>::random(s.x_dims(), 100 + si as u64, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 200 + si as u64, -1.0, 1.0);
        let want = iwino_baselines::direct_conv_f64_ref(&x, &w, s);
        for (bi, name) in BACKEND_NAMES.iter().enumerate() {
            let algo = eng.algorithm(name).unwrap();
            if !algo.supports(s) {
                continue;
            }
            let filter = FilterId {
                owner: 1,
                epoch: si as u64,
            };
            let y = eng
                .conv_with(&algo, filter, &x, &w, s, &Epilogue::None)
                .unwrap_or_else(|e| panic!("{name} on {s:?}: {e}"));
            let err = iwino_tensor::max_mixed_error(&y, &want);
            assert!(err < 1e-3, "{name} on {s:?}: max error {err}");
            covered[bi] += 1;
        }
    }
    // Every registered backend must have been exercised at least once —
    // a backend whose `supports` rejects everything would silently pass.
    for (name, n) in BACKEND_NAMES.iter().zip(&covered) {
        assert!(*n > 0, "backend {name} was never exercised");
    }
}

#[test]
fn fused_epilogue_matches_post_applied_reference() {
    // The winograd backend fuses the epilogue into the row pass; the others
    // apply it after. Both must produce the same function.
    let eng = Engine::new();
    let s = ConvShape::square(1, 8, 3, 6, 3);
    let x = Tensor4::<f32>::random(s.x_dims(), 7, -1.0, 1.0);
    let w = Tensor4::<f32>::random(s.w_dims(), 8, -1.0, 1.0);
    let bias: Vec<f32> = (0..s.oc).map(|i| i as f32 * 0.25 - 0.5).collect();
    let epi = Epilogue::BiasLeakyRelu(bias.clone(), 0.1);
    let mut outs = Vec::new();
    for name in ["im2col-winograd", "im2col-gemm-nhwc", "direct"] {
        let algo = eng.algorithm(name).unwrap();
        let y = eng
            .conv_with(&algo, FilterId { owner: 9, epoch: 0 }, &x, &w, &s, &epi)
            .unwrap();
        outs.push(y);
    }
    for pair in outs.windows(2) {
        let err = iwino_tensor::max_mixed_error(&pair[0], &pair[1]);
        assert!(err < 1e-4, "epilogue disagreement: {err}");
    }
}

#[test]
fn deconv_through_engine_matches_direct_backward() {
    let eng = Engine::new();
    let h = iwino_engine::Handle::default();
    let s = ConvShape::square(1, 9, 4, 3, 3);
    let w = Tensor4::<f32>::random(s.w_dims(), 31, -1.0, 1.0);
    let dy = Tensor4::<f32>::random(s.y_dims(), 32, -1.0, 1.0);
    let dx = eng.backward_data(&h, &dy, &w, &s).unwrap();
    let want = iwino_baselines::direct_backward_data(&dy, &w, &s);
    let err = iwino_tensor::max_mixed_error(&dx, &want);
    assert!(err < 1e-3, "{err}");
}
