//! SM occupancy calculation.
//!
//! §3 of the paper frames the whole design space as a fight for SMEM and
//! registers: "the outer-product scale and the state-count αᴺ of ND
//! Winograd are mutually constrained". This module computes how many blocks
//! of a kernel fit on one SM and the resulting warp occupancy — the
//! quantity that decides whether a kernel can hide memory latency.

use crate::device::DeviceSpec;

/// Per-block resource demands of a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockResources {
    pub threads: usize,
    /// 32-bit registers per thread.
    pub regs_per_thread: usize,
    /// Shared memory per block, bytes.
    pub smem_bytes: usize,
}

impl BlockResources {
    /// Resources of a `Γα(n,r)` block per §5.1 / Algorithms 1–2:
    /// 16×16 threads (16×8 for `ruse` — "the thread number per block
    /// reduces ... with each thread using twice as many registers"),
    /// `4α(BN+BM)·BK` bytes of SMEM (doubled for the α ∈ {4, 8} double
    /// buffer), 64 accumulators per thread plus tile/index registers.
    pub fn gamma(alpha: usize, bn: usize, bm: usize, ruse: bool) -> Self {
        let bk = 8;
        let double_buffer = alpha <= 8;
        let smem = 4 * alpha * (bn + bm) * bk * if double_buffer { 2 } else { 1 };
        let (threads, regs) = if ruse {
            (16 * 8, 2 * (64 + alpha + 24))
        } else {
            (16 * 16, 64 + alpha + 24)
        };
        BlockResources {
            threads,
            regs_per_thread: regs,
            smem_bytes: smem,
        }
    }

    /// A 2-D Winograd `F(m×m, r×r)` fused block: α² states must live in
    /// SMEM, which is what restricts those kernels to small filters (§2).
    pub fn winograd2d(alpha: usize, bn: usize, bm_tiles: usize) -> Self {
        let bk = 8;
        let smem = 4 * alpha * alpha * (bn + bm_tiles) * bk / 2;
        BlockResources {
            threads: 256,
            regs_per_thread: 96,
            smem_bytes: smem,
        }
    }

    /// An implicit-GEMM block (64×64×8 tile, double-buffered).
    pub fn gemm() -> Self {
        BlockResources {
            threads: 256,
            regs_per_thread: 96,
            smem_bytes: 2 * 4 * (64 + 64) * 8,
        }
    }
}

/// Occupancy outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Concurrent blocks per SM (0 means the kernel cannot launch).
    pub blocks_per_sm: usize,
    /// Resident warps / max warps.
    pub warp_occupancy: f64,
    /// Which resource bound (diagnostic).
    pub limiter: Limiter,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limiter {
    Smem,
    Registers,
    Threads,
    BlockSlots,
    DoesNotFit,
}

/// Compute occupancy of `block` on `dev`.
pub fn occupancy(dev: &DeviceSpec, block: &BlockResources) -> Occupancy {
    if block.smem_bytes > dev.smem_per_block {
        return Occupancy {
            blocks_per_sm: 0,
            warp_occupancy: 0.0,
            limiter: Limiter::DoesNotFit,
        };
    }
    let by_smem = dev.smem_per_sm.checked_div(block.smem_bytes).unwrap_or(usize::MAX);
    let regs_per_block = block.regs_per_thread * block.threads;
    let by_regs = dev.regs_per_sm.checked_div(regs_per_block).unwrap_or(usize::MAX);
    let by_threads = dev.max_threads_per_sm / block.threads;
    let by_slots = dev.max_blocks_per_sm;
    let blocks = by_smem.min(by_regs).min(by_threads).min(by_slots);
    let limiter = if blocks == by_smem && by_smem <= by_regs && by_smem <= by_threads && by_smem <= by_slots {
        Limiter::Smem
    } else if blocks == by_regs && by_regs <= by_threads && by_regs <= by_slots {
        Limiter::Registers
    } else if blocks == by_threads && by_threads <= by_slots {
        Limiter::Threads
    } else {
        Limiter::BlockSlots
    };
    let warps = blocks * block.threads / 32;
    let max_warps = dev.max_threads_per_sm / 32;
    Occupancy {
        blocks_per_sm: blocks,
        warp_occupancy: warps as f64 / max_warps as f64,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constant inequalities ARE the §5.1 claim being pinned
    fn gamma_smem_sizes_match_section_5_1() {
        // §5.1: a block needs 4α(BN+BM)·BK bytes; "When α is 4 or 8, the
        // required SMEM ≤ 1/2 of the max SMEM (24576 bytes), so the
        // double-buffered SMEM is constructed."
        let g8 = BlockResources::gamma(8, 64, 32, false);
        assert_eq!(g8.smem_bytes, 2 * 4 * 8 * (64 + 32) * 8); // 49152 with buffer
        assert!(4 * 8 * (64 + 32) * 8 <= 24576);
        let g16 = BlockResources::gamma(16, 32, 32, false);
        assert_eq!(g16.smem_bytes, 4 * 16 * (32 + 32) * 8); // 32768, single buffer
        let g4 = BlockResources::gamma(4, 64, 64, false);
        assert!(4 * 4 * (64 + 64) * 8 <= 24576);
        assert_eq!(g4.smem_bytes, 2 * 4 * 4 * (64 + 64) * 8);
    }

    #[test]
    fn c64_still_fits_the_block_budget() {
        // §5.6: "Γ16(n,r) still has 16384 bytes SMEM available", so c64's
        // 64×32 block must fit 49152.
        let c64 = BlockResources::gamma(16, 64, 32, false);
        assert_eq!(c64.smem_bytes, 4 * 16 * (64 + 32) * 8);
        assert!(c64.smem_bytes <= 49152);
        let occ = occupancy(&DeviceSpec::rtx3060ti(), &c64);
        assert!(occ.blocks_per_sm >= 1);
    }

    #[test]
    fn all_gamma_kernels_launch_on_both_devices() {
        for dev in [DeviceSpec::rtx3060ti(), DeviceSpec::rtx4090()] {
            for (alpha, bn, bm) in [(4, 64, 64), (8, 64, 32), (16, 32, 32), (16, 64, 32)] {
                for ruse in [false, true] {
                    let occ = occupancy(&dev, &BlockResources::gamma(alpha, bn, bm, ruse));
                    assert!(occ.blocks_per_sm >= 1, "α={alpha} ruse={ruse} on {}", dev.name);
                    assert!(occ.warp_occupancy > 0.0);
                }
            }
        }
    }

    #[test]
    fn oversized_2d_winograd_cannot_launch() {
        // F(8×8, 9×9): α = 16 per axis ⟹ α² = 256 states. Hopelessly over
        // the 48 KiB block budget — the §4.2 flexibility argument.
        let blk = BlockResources::winograd2d(16, 32, 32);
        let occ = occupancy(&DeviceSpec::rtx4090(), &blk);
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.limiter, Limiter::DoesNotFit);
    }

    #[test]
    fn f2x2_3x3_2d_winograd_launches() {
        // α = 4 per axis: the classic fused kernel fits.
        let blk = BlockResources::winograd2d(4, 32, 32);
        let occ = occupancy(&DeviceSpec::rtx3060ti(), &blk);
        assert!(occ.blocks_per_sm >= 1);
    }

    #[test]
    fn ruse_lowers_parallelism() {
        // §5.4: "the number of active threads decreases".
        let dev = DeviceSpec::rtx3060ti();
        let std = occupancy(&dev, &BlockResources::gamma(8, 64, 32, false));
        let ruse = occupancy(&dev, &BlockResources::gamma(8, 64, 32, true));
        assert!(ruse.warp_occupancy <= std.warp_occupancy);
    }

    #[test]
    fn gemm_block_occupancy_is_high() {
        let occ = occupancy(&DeviceSpec::rtx4090(), &BlockResources::gemm());
        assert!(occ.warp_occupancy >= 0.3, "{occ:?}");
    }
}
