//! Shared-memory bank-conflict simulation (§5.2).
//!
//! CUDA shared memory is organised in 32 banks of 4-byte words; a warp's
//! access is serialised into one transaction per *distinct word* competing
//! for the same bank (same-word accesses broadcast for free). Wide accesses
//! split the warp: a 128-bit access is served quarter-warp by quarter-warp.
//!
//! This module provides the generic simulator ([`conflict_transactions`])
//! plus builders for the exact §5.2 access patterns of `Γ8(n,r)`:
//!
//! * the `Ys` output-staging stores, with and without the
//!   `Ys[8][32+1][16+4]` padding;
//! * the `Ds` input-tile stores, with and without the
//!   `Xi ← (Xi + 4·Xk) % 32` remapping (padding is impossible there — `Ds`
//!   and `Gs` already use the maximum SMEM);
//! * the `outerProduct` 128-bit loads, with the Z-shaped laneIdx
//!   arrangement of Figure 4 versus a naive linear arrangement.
//!
//! The ablation experiment (`repro ablation-banks`) prints these counts;
//! the timing model turns them into a bank-efficiency multiplier.

pub const BANKS: usize = 32;
pub const WARP: usize = 32;

/// One warp-wide shared-memory instruction: per lane, the first word index
/// and how many consecutive 4-byte words it touches (1 = 32-bit, 4 = 128-bit).
#[derive(Clone, Debug)]
pub struct AccessPattern {
    /// Base word index per lane (lane count must be ≤ 32).
    pub lane_words: Vec<usize>,
    /// Consecutive words per lane: 1, 2 or 4.
    pub width: usize,
}

impl AccessPattern {
    pub fn new(lane_words: Vec<usize>, width: usize) -> Self {
        assert!(lane_words.len() <= WARP);
        assert!(matches!(width, 1 | 2 | 4), "width must be 1, 2 or 4 words");
        AccessPattern { lane_words, width }
    }
}

/// Number of shared-memory transactions needed to serve the instruction.
/// An ideal (conflict-free) instruction costs `32·width / 32 = width`
/// transaction groups overall — i.e. 1 per lane group.
pub fn conflict_transactions(p: &AccessPattern) -> usize {
    // Wider accesses are served in groups of 32/width lanes.
    let group = WARP / p.width;
    let mut total = 0usize;
    for lanes in p.lane_words.chunks(group) {
        // bank -> set of distinct words requested in this group
        let mut words_per_bank: Vec<Vec<usize>> = vec![Vec::new(); BANKS];
        for &base in lanes {
            for j in 0..p.width {
                let w = base + j;
                let b = w % BANKS;
                if !words_per_bank[b].contains(&w) {
                    words_per_bank[b].push(w);
                }
            }
        }
        total += words_per_bank.iter().map(Vec::len).max().unwrap_or(0).max(1);
    }
    total
}

/// Total transactions over a sequence of instructions, and the ideal count
/// (what a conflict-free layout would need).
pub fn transactions_and_ideal(patterns: &[AccessPattern]) -> (usize, usize) {
    let actual = patterns.iter().map(conflict_transactions).sum();
    let ideal = patterns
        .iter()
        .map(|p| p.lane_words.len().div_ceil(WARP / p.width))
        .sum();
    (actual, ideal)
}

// ---------------------------------------------------------------------------
// §5.2 patterns for Γ8(n, r). Thread indexing: tid = ty·16 + tx; a warp is
// 32 consecutive tids (two ty rows). With α = 8, θ = 16/α = 2:
// [ux, uy] = [ty/θ, 16·(ty%θ) + tx].
// ---------------------------------------------------------------------------

fn gamma8_warp0_uxuy() -> Vec<(usize, usize)> {
    // Warp 0: ty ∈ {0, 1}, tx ∈ 0..16 ⟹ ux = 0, uy = 16·ty + tx = lane.
    (0..WARP).map(|lane| (0usize, lane)).collect()
}

/// The `transformOutput` stores into `Ys[α][BN/2][16]` (Algorithm 1): each
/// thread stores 16 items as four 128-bit stores at `Ys[ux][uy][4k..4k+4]`.
/// Padded layout (§5.2): `Ys[8][32+1][16+4]`.
pub fn ys_store_gamma8(padded: bool) -> Vec<AccessPattern> {
    let (d1, d2) = if padded { (33, 20) } else { (32, 16) };
    let lanes = gamma8_warp0_uxuy();
    (0..4)
        .map(|k| {
            let words = lanes.iter().map(|&(ux, uy)| (ux * d1 + uy) * d2 + 4 * k).collect();
            AccessPattern::new(words, 4)
        })
        .collect()
}

/// The `loadTiles` stores into `Ds[2][BK][α][BM]` (Algorithm 1): thread
/// `(ty, tx)` computes `[Xk, Xi] = [tx%8, (2·ty + 1_{tx>7})·(BM/32)]` and
/// stores its transformed tile column `Ds[buf][Xk][s][Xi]` for s = 0..α —
/// eight 32-bit stores. §5.2: padding is impossible (`Ds`/`Gs` exhaust the
/// SMEM budget), so the fix is the index remap `Xi ← (Xi + 4·Xk) % 32`.
pub fn ds_store_gamma8(adjusted: bool) -> Vec<AccessPattern> {
    const BM: usize = 32;
    const ALPHA: usize = 8;
    let mut out = Vec::new();
    for s in 0..ALPHA {
        let mut words = Vec::with_capacity(WARP);
        for lane in 0..WARP {
            let (ty, tx) = (lane / 16, lane % 16);
            let xk = tx % 8;
            let mut xi = (2 * ty + usize::from(tx > 7)) * (BM / 32);
            if adjusted {
                xi = (xi + 4 * xk) % 32;
            }
            words.push((xk * ALPHA + s) * BM + xi);
        }
        out.push(AccessPattern::new(words, 1));
    }
    out
}

/// The `outerProduct` loads from `Gs[buf][ik][α=ux][BN]`: each thread issues
/// two 128-bit loads at `Gs[...][GIdx + 4k]`. With the Z-shaped laneIdx
/// arrangement (Figure 4), `GIdx = 8·((uy%2) + (uy/θ)·2)` with `θ = BM/8`;
/// lane pairs then request *identical* 128-bit words, which the hardware
/// broadcasts. The naive linear arrangement `GIdx = 8·(uy % 8)` makes those
/// pairs hit the same banks with different words instead.
pub fn gs_load_gamma8(z_shaped: bool) -> Vec<AccessPattern> {
    const BM: usize = 32;
    let theta = BM / 8; // 4
    let lanes = gamma8_warp0_uxuy();
    (0..2)
        .map(|k| {
            let words = lanes
                .iter()
                .map(|&(_, uy)| {
                    let gidx = if z_shaped {
                        8 * ((uy % 2) + (uy / theta) * 2)
                    } else {
                        8 * (uy % 8)
                    };
                    gidx + 4 * k
                })
                .collect();
            AccessPattern::new(words, 4)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §5.2 pattern for Γ16(n, r): Ys[2][16][16+1][16+4]. (The paper also pads
// Γ16's Ds to [8][16][32+4]; its exact lane-to-Xi mapping is not specified
// precisely enough in the text to replay faithfully, so only the Ys store —
// whose indexing Algorithm 2 does pin down — is modelled for Γ16.)
// With α = 16, θ = 16/α = 1: [ux, uy] = [ty, tx] — a warp spans two ux rows
// with uy = tx ∈ 0..16 each.
// ---------------------------------------------------------------------------

/// `transformOutput` stores for Γ16 into `Ys[2][16][16][16]` (unpadded) or
/// the paper's `Ys[2][16][16+1][16+4]`: thread `(ux, uy)` writes 16 items at
/// `Ys[half][ux][uy][4k..4k+4]`.
pub fn ys_store_gamma16(padded: bool) -> Vec<AccessPattern> {
    let (d2, d3) = if padded { (17, 20) } else { (16, 16) };
    // Warp 0: ty ∈ {0,1}, tx ∈ 0..16 ⟹ ux = ty, uy = tx.
    let lanes: Vec<(usize, usize)> = (0..WARP).map(|lane| (lane / 16, lane % 16)).collect();
    (0..4)
        .map(|k| {
            let words = lanes.iter().map(|&(ux, uy)| ((ux * d2) + uy) * d3 + 4 * k).collect();
            AccessPattern::new(words, 4)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_32bit_is_one_transaction() {
        let p = AccessPattern::new((0..32).collect(), 1);
        assert_eq!(conflict_transactions(&p), 1);
    }

    #[test]
    fn same_bank_distinct_words_serialise() {
        // All 32 lanes hit bank 0 with different words: 32 transactions.
        let p = AccessPattern::new((0..32).map(|i| i * 32).collect(), 1);
        assert_eq!(conflict_transactions(&p), 32);
    }

    #[test]
    fn broadcast_is_free() {
        // All lanes read the same word: broadcast, 1 transaction.
        let p = AccessPattern::new(vec![7; 32], 1);
        assert_eq!(conflict_transactions(&p), 1);
    }

    #[test]
    fn conflict_free_128bit_is_four_groups() {
        // Lane i reads words 4i..4i+4: each quarter-warp covers all 32 banks.
        let p = AccessPattern::new((0..32).map(|i| 4 * i).collect(), 4);
        assert_eq!(conflict_transactions(&p), 4);
    }

    #[test]
    fn ys_padding_removes_conflicts() {
        let (bad, ideal) = transactions_and_ideal(&ys_store_gamma8(false));
        let (good, _) = transactions_and_ideal(&ys_store_gamma8(true));
        assert_eq!(ideal, 16); // 4 stores × 4 quarter-warps
        assert_eq!(good, ideal, "padded Ys must be conflict-free");
        assert!(bad >= 4 * ideal, "unpadded Ys should serialise ≥4×: {bad} vs {ideal}");
    }

    #[test]
    fn ds_remap_removes_conflicts() {
        let (bad, ideal) = transactions_and_ideal(&ds_store_gamma8(false));
        let (good, _) = transactions_and_ideal(&ds_store_gamma8(true));
        assert_eq!(ideal, 8);
        assert_eq!(good, ideal, "remapped Ds must be conflict-free");
        assert!(bad >= 4 * ideal, "naive Ds should serialise heavily: {bad}");
    }

    #[test]
    fn z_shape_broadcasts() {
        let (good, ideal) = transactions_and_ideal(&gs_load_gamma8(true));
        let (bad, _) = transactions_and_ideal(&gs_load_gamma8(false));
        assert_eq!(good, ideal, "Z-shaped loads must be conflict-free");
        assert!(bad > good, "linear lane order should conflict: {bad} vs {good}");
    }

    #[test]
    fn partial_warp_counts_one_group_minimum() {
        let p = AccessPattern::new(vec![0, 1, 2], 1);
        assert_eq!(conflict_transactions(&p), 1);
    }

    #[test]
    fn gamma16_ys_padding_removes_conflicts() {
        let (bad, ideal) = transactions_and_ideal(&ys_store_gamma16(false));
        let (good, _) = transactions_and_ideal(&ys_store_gamma16(true));
        assert_eq!(good, ideal, "padded Γ16 Ys must be conflict-free");
        assert!(bad > ideal, "unpadded Γ16 Ys should conflict: {bad} vs {ideal}");
    }
}
