//! The analytic timing model.
//!
//! For every algorithm the model computes a compute leg and a memory leg
//! and takes the max (roofline), with three effects layered on top:
//!
//! * **occupancy** — resident warps must be sufficient to hide latency; the
//!   compute rate is scaled by `min(1, warp_occupancy / 0.25)`;
//! * **bank efficiency** — the §5.2 transaction counts scale the compute
//!   leg (SMEM traffic is on the critical path of the outer products);
//! * **wave quantisation** — the block grid executes in waves of
//!   `SMs × blocks_per_SM`; a ragged final wave wastes the idle SMs. This
//!   term produces the instability the paper reports for cuDNN's
//!   Fused_Winograd on extreme feature-map/channel ratios, and the
//!   consistency advantage of Im2col-Winograd's `OC/BN × (N·OH·OW/n)/BM`
//!   grid (§5.1, §6.1.2).
//!
//! Γ kernels additionally go through the §5.5 segment plan, so shapes with
//! `OW % n ≠ 0` pay for their boundary columns at the slower segment rates —
//! the fluctuation §6.1.2 describes.

use crate::device::DeviceSpec;
use crate::occupancy::{occupancy, BlockResources};
use crate::smem::{ds_store_gamma8, gs_load_gamma8, transactions_and_ideal, ys_store_gamma8};
use iwino_core::plan::{default_kernel_prefs, GammaSpec, KernelChoice, SegmentPlan};
use iwino_core::Variant;
use iwino_tensor::ConvShape;

/// Tensor layout of a baseline algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    Nhwc,
    Nchw,
}

/// The algorithms Figures 8/9 compare.
#[derive(Clone, Debug)]
pub enum Algorithm {
    /// `Γα(n, r)` with the §5.5 boundary plan. `include_transpose` charges
    /// the one-off filter transposition (§5.1) — the series without `*` in
    /// the figures.
    Gamma { spec: GammaSpec, include_transpose: bool },
    /// cuDNN-style `Implicit_Precomp_GEMM`.
    ImplicitGemm { layout: Layout },
    /// cuDNN-style fused 2-D Winograd `F(2×2, 3×3)` (NCHW, r = 3 only).
    FusedWinograd2d,
}

impl Algorithm {
    pub fn label(&self) -> String {
        match self {
            Algorithm::Gamma {
                spec,
                include_transpose,
            } => {
                format!("Im2col-Winograd-{spec}{}", if *include_transpose { "" } else { "*" })
            }
            Algorithm::ImplicitGemm { layout: Layout::Nhwc } => "cuDNN-Implicit-Precomp-GEMM-NHWC".into(),
            Algorithm::ImplicitGemm { layout: Layout::Nchw } => "cuDNN-Implicit-Precomp-GEMM-NCHW".into(),
            Algorithm::FusedWinograd2d => "cuDNN-Fused-Winograd".into(),
        }
    }
}

/// Model output for one (device, shape, algorithm) triple.
#[derive(Clone, Copy, Debug)]
pub struct SimResult {
    /// Standard-convolution FLOPs divided by modelled time — the paper's
    /// Gflop/s metric (§6.1.1), which is why Winograd kernels can exceed
    /// the device's arithmetic peak utilisation.
    pub gflops: f64,
    pub time_s: f64,
    pub compute_s: f64,
    pub mem_s: f64,
    pub warp_occupancy: f64,
    /// Modelled arithmetic intensity (op/byte) of the dominant kernel.
    pub intensity: f64,
}

/// §5.6 arithmetic intensity: `I = α·BN·BM / (2·(BM·L_in + BN·r))` op/byte,
/// with `L_in = α` for the standard kernel and `α − (r−1)/2` under overlap
/// reuse. Reproduces the paper's 10.24 / 12.19 / 15.06 exactly (see tests).
pub fn arithmetic_intensity(alpha: usize, r: usize, bn: usize, bm: usize, ruse: bool) -> f64 {
    let l_in = if ruse {
        alpha as f64 - (r as f64 - 1.0) / 2.0
    } else {
        alpha as f64
    };
    (alpha * bn * bm) as f64 / (2.0 * (bm as f64 * l_in + (bn * r) as f64))
}

/// Block geometry for a Γ spec (§5.1 / §5.6).
fn gamma_geometry(spec: &GammaSpec) -> (usize, usize) {
    match (spec.alpha, spec.variant) {
        (4, _) => (64, 64),
        (8, _) => (64, 32),
        (16, Variant::C64) => (64, 32),
        (16, _) => (32, 32),
        _ => (32, 32),
    }
}

/// Fraction of compute throughput surviving occupancy starvation. `ilp`
/// scales the effective latency-hiding capacity: the ruse kernel halves the
/// thread count but each thread carries two tiles' worth of independent
/// FMA chains (§5.4's trade-off — "higher data-reuse" vs "lower
/// parallelism"), so its warps hide roughly twice the latency each.
fn occupancy_factor(warp_occ: f64, ilp: f64) -> f64 {
    (warp_occ * ilp / 0.25).min(1.0)
}

/// Transform-overhead penalty of a Γ kernel: per input tile and BK-channel
/// slice the kernel spends ≈ α²/2 transform multiplies (§5.3, paired)
/// against α·BN element-wise FMAs, so larger α converts Φ less perfectly —
/// the reason the measured Γ16 speedups (Table 2: ≤ 2.23×) sit well below
/// the ideal Φ = 4.5.
fn transform_penalty(alpha: usize, bn: usize) -> f64 {
    1.0 / (1.0 + alpha as f64 / (2.0 * bn as f64) + 0.02 * alpha as f64)
}

/// Load-issue overhead: tile loads compete with FMAs for issue slots, so a
/// kernel moving more bytes per op (lower intensity) sustains a slightly
/// lower FMA rate even when compute-bound. This is the term that gives the
/// `ruse` variant its measured few-percent edge over the standard kernel
/// in the compute-bound regime (§5.4's "higher data-reuse ... raising the
/// computing intensity").
fn issue_efficiency(intensity: f64) -> f64 {
    intensity / (intensity + 2.0)
}

/// cuDNN's shipped kernels are tuned at the SASS level; the paper's kernels
/// are portable C++ ("this approach may not achieve the max hardware
/// efficiency", §4.1). The baselines get this factor on top of
/// `achievable_fp32`.
const CUDNN_TUNING_BONUS: f64 = 1.25;

/// Effective bandwidth of the tile-load stream: interpolates between L2 and
/// DRAM bandwidth by the fraction of a wave's working set that fits in L2.
/// Large-channel shapes spill ("more robust to L2 cache miss ... in cases
/// with large channels", §6.1.2), which is where the higher-intensity ruse
/// and c64 variants pull ahead.
fn tile_stream_bw(dev: &DeviceSpec, bytes_per_wave: f64) -> f64 {
    let hit = if bytes_per_wave <= 0.0 {
        1.0
    } else {
        (dev.l2_bytes as f64 / bytes_per_wave).min(1.0)
    };
    dev.mem_bw + (dev.l2_bw - dev.mem_bw) * hit
}

/// Wave quantisation: utilisation of the last (partial) wave.
fn wave_utilisation(total_blocks: f64, wave: f64) -> f64 {
    if total_blocks <= 0.0 || wave <= 0.0 {
        return 1.0;
    }
    let waves = (total_blocks / wave).ceil();
    (total_blocks / (waves * wave)).min(1.0)
}

/// Bank-conflict efficiency of the Γ kernels with the §5.2 fixes in place
/// (= 1.0, they are conflict-free) and without.
pub fn gamma_bank_efficiency(mitigated: bool) -> f64 {
    let patterns: Vec<_> = ys_store_gamma8(mitigated)
        .into_iter()
        .chain(ds_store_gamma8(mitigated))
        .chain(gs_load_gamma8(mitigated))
        .collect();
    let (actual, ideal) = transactions_and_ideal(&patterns);
    ideal as f64 / actual as f64
}

/// Estimate the performance of `algo` on `dev` for `shape`.
pub fn estimate(dev: &DeviceSpec, shape: &ConvShape, algo: &Algorithm) -> SimResult {
    let std_flops = shape.flops();
    match algo {
        Algorithm::Gamma {
            spec,
            include_transpose,
        } => estimate_gamma(dev, shape, spec, *include_transpose, std_flops),
        Algorithm::ImplicitGemm { layout } => estimate_gemm(dev, shape, *layout, std_flops),
        Algorithm::FusedWinograd2d => estimate_fused2d(dev, shape, std_flops),
    }
}

fn estimate_gamma(
    dev: &DeviceSpec,
    shape: &ConvShape,
    primary: &GammaSpec,
    include_transpose: bool,
    std_flops: f64,
) -> SimResult {
    let ow = shape.ow();
    // Primary spec first, then the default remainder kernels, then GEMM.
    let mut prefs = vec![*primary];
    for p in default_kernel_prefs(primary.r, primary.alpha == 16) {
        if !prefs.iter().any(|q| q.alpha == p.alpha && q.n == p.n) {
            prefs.push(p);
        }
    }
    let plan = SegmentPlan::build(ow, &prefs);

    let mut time = 0.0f64;
    let mut compute_total = 0.0f64;
    let mut mem_total = 0.0f64;
    let mut primary_intensity = 0.0f64;
    let mut primary_occ = 0.0f64;
    let bank_eff = gamma_bank_efficiency(true); // the paper's kernels are fixed

    for seg in &plan.segments {
        let frac = seg.len as f64 / ow as f64;
        let seg_flops = std_flops * frac;
        match seg.kernel {
            KernelChoice::Gamma(g) => {
                let (bn, bm) = gamma_geometry(&g);
                let phi = g.phi();
                let eff_flops = seg_flops / phi;
                let intensity = arithmetic_intensity(g.alpha, g.r, bn, bm, g.variant == Variant::Ruse);
                let block = BlockResources::gamma(g.alpha, bn, bm, g.variant == Variant::Ruse);
                let occ = occupancy(dev, &block);
                // Grid: OC/BN × (N·OH·OW_seg/n)/BM blocks (§5.1).
                let tiles = (shape.n * shape.oh()) as f64 * (seg.len as f64 / g.n as f64);
                let blocks = (shape.oc as f64 / bn as f64).ceil() * (tiles / bm as f64).ceil();
                let wave = (dev.sms * occ.blocks_per_sm.max(1)) as f64;
                let util = wave_utilisation(blocks, wave);
                let ilp = if g.variant == Variant::Ruse { 2.0 } else { 1.0 };
                let rate = dev.peak_flops()
                    * dev.achievable_fp32
                    * occupancy_factor(occ.warp_occupancy, ilp)
                    * bank_eff
                    * util
                    * transform_penalty(g.alpha, bn)
                    * issue_efficiency(intensity);
                let compute = eff_flops / rate;
                // On-chip leg: the tile-load stream the §5.6 intensity counts
                // is served from L2 while the wave's working set fits — the
                // 1-D tiles keep block working sets adjacent, so "data stays
                // in L2 for a longer period" (§4.2) — and degrades towards
                // DRAM bandwidth when it spills.
                let waves = (blocks / wave).ceil().max(1.0);
                let bytes_per_wave = frac * unique_dram_bytes(shape) / waves;
                let l2 = (eff_flops / intensity) / tile_stream_bw(dev, bytes_per_wave);
                // DRAM leg: each unique byte of ifms/filters/ofms crosses the
                // memory bus about once.
                let dram = frac * unique_dram_bytes(shape) / dev.mem_bw;
                let mem = l2.max(dram);
                if seg.kernel == KernelChoice::Gamma(*primary) {
                    primary_intensity = intensity;
                    primary_occ = occ.warp_occupancy;
                }
                compute_total += compute;
                mem_total += mem;
                time += compute.max(mem) + dev.launch_overhead;
            }
            KernelChoice::Gemm => {
                let r = estimate_gemm_leg(dev, shape, seg_flops, Layout::Nhwc, 0.8);
                compute_total += r.0;
                mem_total += r.1;
                time += r.0.max(r.1) + dev.launch_overhead;
            }
        }
    }

    if include_transpose {
        // One pass read + write over the filter bank (§5.1).
        let filter_bytes = (shape.oc * shape.fh * shape.fw * shape.ic * 4) as f64;
        time += 2.0 * filter_bytes / dev.mem_bw + dev.launch_overhead;
    }

    SimResult {
        gflops: std_flops / time / 1e9,
        time_s: time,
        compute_s: compute_total,
        mem_s: mem_total,
        warp_occupancy: primary_occ,
        intensity: primary_intensity,
    }
}

/// Predicted fraction of a Γ run's work landing in each pipeline stage,
/// derived from scalar operation counts. Stage names match the labels the
/// `iwino-obs` runtime profiler reports, so `repro validate-model` can put
/// the two side by side.
///
/// The accounting mirrors the CPU kernels: the paired §5.3 transforms cost
/// ≈ α²/2 multiplies per input tile and channel (`dt`) and ≈ α·n/2 per
/// output tile and channel (`at`) — the same counts behind
/// [`transform_penalty`] — the outer products cost α FMAs per (tile, ic,
/// oc), the one-off filter transform α·r multiplies per (oc, ic), and the
/// §5.5 GEMM remainder pays full direct-convolution MACs on its columns.
#[derive(Clone, Debug, Default)]
pub struct StageShares {
    pub filter_transform: f64,
    pub input_transform: f64,
    pub outer_product: f64,
    pub output_transform: f64,
    pub gemm_remainder: f64,
}

impl StageShares {
    /// `(stage name, share)` pairs in pipeline order. Names match
    /// `iwino_obs::Stage::name()`.
    pub fn as_pairs(&self) -> [(&'static str, f64); 5] {
        [
            ("filter_transform", self.filter_transform),
            ("input_transform", self.input_transform),
            ("outer_product", self.outer_product),
            ("output_transform", self.output_transform),
            ("gemm_remainder", self.gemm_remainder),
        ]
    }
}

/// Predict the stage shares of running `primary` (plus the default remainder
/// kernels and the GEMM fallback, via the §5.5 plan) over `shape`.
pub fn predicted_stage_shares(shape: &ConvShape, primary: &GammaSpec) -> StageShares {
    let ow = shape.ow();
    let mut prefs = vec![*primary];
    for p in default_kernel_prefs(primary.r, primary.alpha == 16) {
        if !prefs.iter().any(|q| q.alpha == p.alpha && q.n == p.n) {
            prefs.push(p);
        }
    }
    let plan = SegmentPlan::build(ow, &prefs);

    let rows = (shape.n * shape.oh()) as f64;
    let (ic, oc) = (shape.ic as f64, shape.oc as f64);
    let mut s = StageShares::default();
    for seg in &plan.segments {
        match seg.kernel {
            KernelChoice::Gamma(g) => {
                let tiles = rows * (seg.len as f64 / g.n as f64);
                let alpha = g.alpha as f64;
                s.input_transform += tiles * ic * alpha * alpha / 2.0;
                s.outer_product += tiles * ic * oc * alpha;
                s.output_transform += tiles * oc * alpha * g.n as f64 / 2.0;
            }
            KernelChoice::Gemm => {
                s.gemm_remainder += rows * seg.len as f64 * ic * oc * (shape.fh * shape.fw) as f64;
            }
        }
    }
    s.filter_transform = oc * ic * primary.alpha as f64 * primary.r as f64;
    let total = s.filter_transform + s.input_transform + s.outer_product + s.output_transform + s.gemm_remainder;
    if total > 0.0 {
        s.filter_transform /= total;
        s.input_transform /= total;
        s.outer_product /= total;
        s.output_transform /= total;
        s.gemm_remainder /= total;
    }
    s
}

/// Unique DRAM traffic of one convolution: ifms + filters + ofms, f32.
fn unique_dram_bytes(shape: &ConvShape) -> f64 {
    let ifms = shape.n * shape.ih * shape.iw * shape.ic;
    let filt = shape.oc * shape.fh * shape.fw * shape.ic;
    let ofms = shape.n * shape.oh() * shape.ow() * shape.oc;
    (4 * (ifms + filt + ofms)) as f64
}

/// Compute and memory legs of a GEMM-style convolution covering
/// `seg_flops` of standard-convolution work. `quality` derates the boundary
/// GEMM ("our GEMM convolution used for boundary treatment is slower than
/// cuDNN's", §6.1.2).
fn estimate_gemm_leg(dev: &DeviceSpec, shape: &ConvShape, seg_flops: f64, layout: Layout, quality: f64) -> (f64, f64) {
    let block = BlockResources::gemm();
    let occ = occupancy(dev, &block);
    // Classic 64×64×8 tiling: I = 2·64·64·8 / (4·8·(64+64)) = 16 op/byte.
    let intensity = 16.0;
    // Coalescing: NHWC gathers are contiguous over IC (fine once IC ≥ 32);
    // NCHW gathers are contiguous over W.
    let coalesce = match layout {
        Layout::Nhwc => (shape.ic as f64 / 32.0).min(1.0),
        Layout::Nchw => (shape.ow() as f64 / 32.0).min(1.0),
    };
    let rate = dev.peak_flops()
        * dev.achievable_fp32
        * CUDNN_TUNING_BONUS
        * occupancy_factor(occ.warp_occupancy, 1.0)
        * issue_efficiency(intensity)
        * quality;
    let compute = seg_flops / rate;
    let l2 = (seg_flops / intensity) / (dev.l2_bw * coalesce);
    let frac = seg_flops / shape.flops();
    let dram = frac * unique_dram_bytes(shape) / (dev.mem_bw * coalesce);
    (compute, l2.max(dram))
}

fn estimate_gemm(dev: &DeviceSpec, shape: &ConvShape, layout: Layout, std_flops: f64) -> SimResult {
    let block = BlockResources::gemm();
    let occ = occupancy(dev, &block);
    // Wave quantisation over the implicit GEMM grid (GM/64 × GN/64).
    let gm = (shape.n * shape.oh() * shape.ow()) as f64;
    let blocks = (gm / 64.0).ceil() * (shape.oc as f64 / 64.0).ceil();
    let wave = (dev.sms * occ.blocks_per_sm.max(1)) as f64;
    let util = wave_utilisation(blocks, wave);
    let (compute, mem) = estimate_gemm_leg(dev, shape, std_flops, layout, 1.0);
    let compute = compute / util;
    let time = compute.max(mem) + dev.launch_overhead;
    SimResult {
        gflops: std_flops / time / 1e9,
        time_s: time,
        compute_s: compute,
        mem_s: mem,
        warp_occupancy: occ.warp_occupancy,
        intensity: 16.0,
    }
}

fn estimate_fused2d(dev: &DeviceSpec, shape: &ConvShape, std_flops: f64) -> SimResult {
    assert_eq!(shape.fh, 3, "cuDNN Fused_Winograd is 3×3 only (§6.1.1)");
    assert_eq!(shape.fw, 3);
    let alpha = 4usize; // F(2×2, 3×3) per axis
    let phi = (2.0 * 2.0 * 3.0 * 3.0) / (alpha * alpha) as f64; // 2.25
    let eff_flops = std_flops / phi;
    // Intensity analog of §5.6 with 2-D tiles: α² input items per tile,
    // r² filter taps: I = α²·BN·BM / (2·(BM·α² + BN·r²)).
    let (bn, bm) = (32.0, 32.0);
    let intensity = (alpha * alpha) as f64 * bn * bm / (2.0 * (bm * (alpha * alpha) as f64 + bn * 9.0));
    let block = BlockResources::winograd2d(alpha, 32, 32);
    let occ = occupancy(dev, &block);
    // Grid: 2-D tiles × OC/BN. Small feature maps ⟹ few tile rows ⟹ ragged
    // waves: the instability the paper contrasts its blocking against.
    let tiles = (shape.n as f64) * (shape.oh() as f64 / 2.0).ceil() * (shape.ow() as f64 / 2.0).ceil();
    let blocks = (tiles / bm).ceil() * (shape.oc as f64 / bn).ceil();
    let wave = (dev.sms * occ.blocks_per_sm.max(1)) as f64;
    let util = wave_utilisation(blocks, wave);
    let rate = dev.peak_flops()
        * dev.achievable_fp32
        * CUDNN_TUNING_BONUS
        * occupancy_factor(occ.warp_occupancy, 1.0)
        * util
        * transform_penalty(alpha * alpha, bn as usize)
        * issue_efficiency(intensity);
    let compute = eff_flops / rate;
    let l2 = (eff_flops / intensity) / dev.l2_bw;
    let dram = unique_dram_bytes(shape) / dev.mem_bw;
    let mem = l2.max(dram);
    let time = compute.max(mem) + dev.launch_overhead;
    SimResult {
        gflops: std_flops / time / 1e9,
        time_s: time,
        compute_s: compute,
        mem_s: mem,
        warp_occupancy: occ.warp_occupancy,
        intensity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(alpha: usize, n: usize, r: usize, v: Variant) -> GammaSpec {
        GammaSpec::new(alpha, n, r, v)
    }

    #[test]
    fn intensity_pins_from_section_5_6() {
        // Γ16(8,9): 10.24; Γ16^ruse(8,9): 12.19; Γ16^c64(8,9): 15.06.
        let i_std = arithmetic_intensity(16, 9, 32, 32, false);
        assert!((i_std - 10.24).abs() < 0.01, "{i_std}");
        let i_ruse = arithmetic_intensity(16, 9, 32, 32, true);
        assert!((i_ruse - 12.19).abs() < 0.01, "{i_ruse}");
        let i_c64 = arithmetic_intensity(16, 9, 64, 32, false);
        assert!((i_c64 - 15.06).abs() < 0.01, "{i_c64}");
    }

    #[test]
    fn c64_intensity_beats_ruse_beats_standard() {
        // §5.6's ordering for Γ16(8,9).
        let s = arithmetic_intensity(16, 9, 32, 32, false);
        let r = arithmetic_intensity(16, 9, 32, 32, true);
        let c = arithmetic_intensity(16, 9, 64, 32, false);
        assert!(c > r && r > s);
    }

    #[test]
    fn gamma_banks_are_conflict_free_after_fixes() {
        assert_eq!(gamma_bank_efficiency(true), 1.0);
        assert!(gamma_bank_efficiency(false) < 0.5);
    }

    #[test]
    fn winograd_beats_gemm_on_benchmark_shapes() {
        // The headline claim: Γ kernels outrun implicit GEMM for the bulk of
        // the Figure 8 shapes.
        let dev = DeviceSpec::rtx3060ti();
        let s = ConvShape::from_ofms(128, 48, 48, 128, 128, 3);
        let g = estimate(
            &dev,
            &s,
            &Algorithm::Gamma {
                spec: spec(8, 6, 3, Variant::Standard),
                include_transpose: false,
            },
        );
        let base = estimate(&dev, &s, &Algorithm::ImplicitGemm { layout: Layout::Nhwc });
        assert!(g.gflops > base.gflops, "Γ8(6,3) {} vs GEMM {}", g.gflops, base.gflops);
    }

    #[test]
    fn gamma16_outruns_gamma8_like_the_paper() {
        // §6.1.2: "Γ16(n,r) are generally faster than Γ8(n,r)" (higher Φ).
        let dev = DeviceSpec::rtx3060ti();
        let s9 = ConvShape::from_ofms(128, 64, 64, 64, 64, 9);
        let g16 = estimate(
            &dev,
            &s9,
            &Algorithm::Gamma {
                spec: spec(16, 8, 9, Variant::Standard),
                include_transpose: false,
            },
        );
        let s3 = ConvShape::from_ofms(128, 64, 64, 64, 64, 3);
        let g8 = estimate(
            &dev,
            &s3,
            &Algorithm::Gamma {
                spec: spec(8, 6, 3, Variant::Standard),
                include_transpose: false,
            },
        );
        assert!(g16.gflops > g8.gflops, "{} vs {}", g16.gflops, g8.gflops);
    }

    #[test]
    fn gamma8_speed_levels_follow_phi() {
        // §6.1.2's three levels: (4,5)/(5,4) > (6,3)/(3,6) > (7,2)/(2,7).
        let dev = DeviceSpec::rtx4090();
        // One common ofms shape, OW = 84 divisible by n ∈ {4, 6, 7}.
        let gf = |n: usize, r: usize, v: Variant| {
            let s = ConvShape::from_ofms(64, 84, 84, 128, 128, r);
            estimate(
                &dev,
                &s,
                &Algorithm::Gamma {
                    spec: spec(8, n, r, v),
                    include_transpose: false,
                },
            )
            .gflops
        };
        let fast = gf(4, 5, Variant::Ruse);
        let mid = gf(6, 3, Variant::Standard);
        let slow = gf(7, 2, Variant::Standard);
        assert!(fast > mid && mid > slow, "{fast} {mid} {slow}");
    }

    #[test]
    fn boundary_fluctuation() {
        // OW % n ≠ 0 costs performance (§6.1.2).
        let dev = DeviceSpec::rtx3060ti();
        let algo = Algorithm::Gamma {
            spec: spec(8, 6, 3, Variant::Standard),
            include_transpose: false,
        };
        let clean = estimate(&dev, &ConvShape::from_ofms(128, 48, 48, 128, 128, 3), &algo);
        let ragged = estimate(&dev, &ConvShape::from_ofms(128, 48, 47, 128, 128, 3), &algo);
        assert!(clean.gflops > ragged.gflops, "{} vs {}", clean.gflops, ragged.gflops);
    }

    #[test]
    fn transpose_charge_lowers_gflops() {
        let dev = DeviceSpec::rtx3060ti();
        let s = ConvShape::from_ofms(32, 64, 64, 128, 128, 5);
        let with = estimate(
            &dev,
            &s,
            &Algorithm::Gamma {
                spec: spec(8, 4, 5, Variant::Standard),
                include_transpose: true,
            },
        );
        let without = estimate(
            &dev,
            &s,
            &Algorithm::Gamma {
                spec: spec(8, 4, 5, Variant::Standard),
                include_transpose: false,
            },
        );
        assert!(without.gflops > with.gflops);
    }

    #[test]
    fn the_4090_is_faster_than_the_3060ti() {
        let s = ConvShape::from_ofms(128, 64, 64, 128, 128, 3);
        let algo = Algorithm::Gamma {
            spec: spec(8, 6, 3, Variant::Standard),
            include_transpose: false,
        };
        let a = estimate(&DeviceSpec::rtx3060ti(), &s, &algo);
        let b = estimate(&DeviceSpec::rtx4090(), &s, &algo);
        assert!(b.gflops > 2.0 * a.gflops);
    }

    #[test]
    fn stage_shares_sum_to_one_and_outer_product_dominates() {
        // Deep-channel shape: the α FMAs per (tile, ic, oc) swamp the
        // per-channel transforms, as §5.3's amortisation argument requires.
        let s = ConvShape::from_ofms(8, 48, 48, 128, 128, 3);
        let sh = predicted_stage_shares(&s, &spec(8, 6, 3, Variant::Standard));
        let total: f64 = sh.as_pairs().iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12, "{total}");
        for (name, v) in sh.as_pairs() {
            assert!(v >= 0.0, "{name}: {v}");
            assert!(sh.outer_product >= v, "{name} {v} > outer_product {}", sh.outer_product);
        }
        assert_eq!(sh.gemm_remainder, 0.0, "OW = 48 divides n = 6: no GEMM boundary");
    }

    #[test]
    fn ragged_width_shows_up_as_gemm_share() {
        let clean = predicted_stage_shares(
            &ConvShape::from_ofms(8, 48, 48, 64, 64, 3),
            &spec(8, 6, 3, Variant::Standard),
        );
        let ragged = predicted_stage_shares(
            &ConvShape::from_ofms(8, 48, 47, 64, 64, 3),
            &spec(8, 6, 3, Variant::Standard),
        );
        assert_eq!(clean.gemm_remainder, 0.0);
        // OW = 47 = 7·6 + 5: the plan covers the tail with remainder kernels
        // and possibly GEMM; whatever lands in GEMM must cost more per
        // column than the Γ columns (no Φ saving).
        assert!(ragged.gemm_remainder >= 0.0);
        let sum: f64 = ragged.as_pairs().iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shallow_channels_inflate_transform_shares() {
        // ic = oc = 8 vs 128: transforms amortise over channels, so thin
        // shapes spend relatively more time transforming.
        let thin = predicted_stage_shares(
            &ConvShape::from_ofms(8, 48, 48, 8, 8, 3),
            &spec(8, 6, 3, Variant::Standard),
        );
        let deep = predicted_stage_shares(
            &ConvShape::from_ofms(8, 48, 48, 128, 128, 3),
            &spec(8, 6, 3, Variant::Standard),
        );
        assert!(thin.input_transform > deep.input_transform);
        assert!(thin.output_transform > deep.output_transform);
        assert!(thin.outer_product < deep.outer_product);
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(
            Algorithm::Gamma {
                spec: spec(8, 6, 3, Variant::Standard),
                include_transpose: true
            }
            .label(),
            "Im2col-Winograd-Γ8(6,3)"
        );
        assert_eq!(
            Algorithm::Gamma {
                spec: spec(16, 8, 9, Variant::C64),
                include_transpose: false
            }
            .label(),
            "Im2col-Winograd-Γ16^c64(8,9)*"
        );
        assert_eq!(Algorithm::FusedWinograd2d.label(), "cuDNN-Fused-Winograd");
    }
}
