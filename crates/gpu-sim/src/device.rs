//! Device specifications for the two GPUs in the paper's evaluation.

/// The subset of GPU parameters the cost model consumes. Values are the
/// public specifications of the retail boards (boost clocks).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceSpec {
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sms: usize,
    /// FP32 FMA lanes per SM (CUDA cores).
    pub fma_per_sm: usize,
    /// Boost clock in Hz.
    pub clock_hz: f64,
    /// Global memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// L2 / on-chip bandwidth, bytes/s (serves the tile-load stream the
    /// §5.6 intensity counts; Ada's 72 MB L2 is both larger and much
    /// faster than Ampere's).
    pub l2_bw: f64,
    /// L2 cache size, bytes.
    pub l2_bytes: usize,
    /// Max shared memory per block (the 49152-byte limit §4.1 designs for).
    pub smem_per_block: usize,
    /// Shared memory per SM available for occupancy.
    pub smem_per_sm: usize,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
    /// Max resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Max resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Fraction of peak FP32 a hand-tuned C++ (no PTX/SASS) kernel sustains;
    /// the paper notes its implementations trade peak efficiency for
    /// portability (§4.1).
    pub achievable_fp32: f64,
    /// Kernel launch + tail latency charged per kernel, seconds.
    pub launch_overhead: f64,
}

impl DeviceSpec {
    /// Peak FP32 throughput in FLOP/s (2 ops per FMA).
    pub fn peak_flops(&self) -> f64 {
        2.0 * (self.sms * self.fma_per_sm) as f64 * self.clock_hz
    }

    /// RTX 3060 Ti (Ampere GA104: 38 SMs × 128 cores, 1.665 GHz boost,
    /// 448 GB/s GDDR6, 4 MB L2).
    pub fn rtx3060ti() -> Self {
        DeviceSpec {
            name: "RTX 3060 Ti",
            sms: 38,
            fma_per_sm: 128,
            clock_hz: 1.665e9,
            mem_bw: 448.0e9,
            l2_bw: 2.0e12,
            l2_bytes: 4 << 20,
            smem_per_block: 49152,
            smem_per_sm: 100 << 10,
            regs_per_sm: 65536,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            achievable_fp32: 0.55,
            launch_overhead: 4.0e-6,
        }
    }

    /// RTX 4090 (Ada AD102: 128 SMs × 128 cores, 2.52 GHz boost,
    /// 1008 GB/s GDDR6X, 72 MB L2).
    pub fn rtx4090() -> Self {
        DeviceSpec {
            name: "RTX 4090",
            sms: 128,
            fma_per_sm: 128,
            clock_hz: 2.52e9,
            mem_bw: 1008.0e9,
            l2_bw: 8.0e12,
            l2_bytes: 72 << 20,
            smem_per_block: 49152,
            smem_per_sm: 100 << 10,
            regs_per_sm: 65536,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 24,
            achievable_fp32: 0.55,
            launch_overhead: 4.0e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_match_public_specs() {
        // 3060 Ti ≈ 16.2 TFLOPS FP32; 4090 ≈ 82.6 TFLOPS.
        let a = DeviceSpec::rtx3060ti().peak_flops() / 1e12;
        assert!((a - 16.2).abs() < 0.3, "{a}");
        let b = DeviceSpec::rtx4090().peak_flops() / 1e12;
        assert!((b - 82.6).abs() < 1.0, "{b}");
    }

    #[test]
    fn the_4090_is_strictly_bigger() {
        let a = DeviceSpec::rtx3060ti();
        let b = DeviceSpec::rtx4090();
        assert!(b.peak_flops() > a.peak_flops());
        assert!(b.mem_bw > a.mem_bw);
        assert!(b.l2_bw > a.l2_bw);
        assert!(b.l2_bytes > a.l2_bytes);
        // But the per-block SMEM budget — the constraint that bounds α — is
        // the same 48 KiB on both (§4.1's design point).
        assert_eq!(a.smem_per_block, b.smem_per_block);
    }
}
