//! GPU cost-model substrate for the performance experiments.
//!
//! The paper evaluates its CUDA kernels on an RTX 3060 Ti and an RTX 4090;
//! this environment has no GPU, so (per the reproduction's substitution
//! rule, see DESIGN.md) the *shape* of Figures 8/9 and Table 2 is
//! regenerated with an analytic model built from the paper's own quantities:
//!
//! * **Arithmetic intensity** — §5.6 gives concrete op/byte numbers for
//!   `Γ16(8,9)`: 10.24 (standard), 12.19 (`ruse`), 15.06 (`c64`). All three
//!   are reproduced exactly by
//!   `I = α·BN·BM / (2·(BM·L_in + BN·r))` with `L_in = α` (standard) or
//!   `α − (r−1)/2` (`ruse`) — see [`model::arithmetic_intensity`] and its
//!   pinning tests. The model's memory leg is `bytes = ops / I`.
//! * **Multiplication reduction** — `Φ = n·r/α` (§6.1.2) scales the compute
//!   leg: the Winograd kernels execute `std_flops / Φ` effective FMA work.
//! * **Occupancy** — SMEM/registers/threads per block (Algorithms 1/2)
//!   against the device limits ([`occupancy`]).
//! * **Bank behaviour** — a 32-bank shared-memory simulator ([`smem`])
//!   replays the §5.2 store/load patterns with and without the paper's
//!   paddings and Z-shaped lane arrangement, yielding a conflict
//!   transaction multiplier.
//! * **Boundary treatment** — the §5.5 segment plan composes per-segment
//!   rates, reproducing the `OW % n` performance fluctuations of §6.1.2.
//!
//! Absolute Gflop/s from a model are *estimates*; the claims this substrate
//! supports are ordinal (who wins, crossovers, variant ordering), which is
//! what EXPERIMENTS.md records.

#![forbid(unsafe_code)]

pub mod device;
pub mod model;
pub mod occupancy;
pub mod smem;
pub mod trace;

pub use device::DeviceSpec;
pub use model::{estimate, Algorithm, SimResult};
pub use occupancy::{occupancy, BlockResources, Occupancy};
pub use smem::{conflict_transactions, AccessPattern};
pub use trace::{gamma8_block_trace, trace_breakdown, trace_totals};
