//! Whole-iteration SMEM trace for a `Γ8(n, r)` block.
//!
//! §5.2's point is not any single access but the *sum* of SMEM traffic on a
//! block's critical path: the `loadTiles` stores, the `BK = 8` rounds of
//! `outerProduct` loads, and the `transformOutput` staging stores. This
//! module assembles the complete warp-level trace of one block iteration —
//! with and without the paper's three mitigations — and reports total
//! transactions, which the `repro ablation-banks` experiment prints and the
//! timing model consumes as an efficiency multiplier.

use crate::smem::{conflict_transactions, ds_store_gamma8, gs_load_gamma8, ys_store_gamma8, AccessPattern, WARP};

/// One labelled instruction of the trace.
pub struct TraceStep {
    pub label: &'static str,
    pub pattern: AccessPattern,
}

/// The `outerProduct` loads from `Ds[buf][ik][ux][BM]`. With the store-side
/// `Xi ← (Xi + 4·Xk) % 32` remap, the load index is compensated as
/// `b[idx] ← Ds[buf][ik][ux][(DIdx + 4·ik + idx) % 32]` (§5.2). Without the
/// remap, loads are plain 128-bit at `DIdx + 4k`.
pub fn ds_load_gamma8(remapped: bool, ik: usize) -> Vec<AccessPattern> {
    const BM: usize = 32;
    let theta = BM / 8; // 4
                        // Warp 0: uy = lane.
    let didx: Vec<usize> = (0..WARP).map(|uy| 8 * ((uy % theta) / 2)).collect();
    if remapped {
        // The %32 wrap can split the 4-word groups, so model as the 8
        // single-word accesses the compensation produces.
        (0..8)
            .map(|idx| {
                let words = didx.iter().map(|&d| (d + 4 * ik + idx) % BM).collect();
                AccessPattern::new(words, 1)
            })
            .collect()
    } else {
        (0..2)
            .map(|k| {
                let words = didx.iter().map(|&d| d + 4 * k).collect();
                AccessPattern::new(words, 4)
            })
            .collect()
    }
}

/// Assemble one full block iteration of `Γ8(n, r)`:
/// `loadTiles` (Ds stores) + 8 `outerProduct` rounds (Gs + Ds loads) +
/// `transformOutput` (Ys stores).
pub fn gamma8_block_trace(mitigated: bool) -> Vec<TraceStep> {
    let mut steps = Vec::new();
    for p in ds_store_gamma8(mitigated) {
        steps.push(TraceStep {
            label: "loadTiles: Ds store",
            pattern: p,
        });
    }
    for ik in 0..8 {
        for p in gs_load_gamma8(mitigated) {
            steps.push(TraceStep {
                label: "outerProduct: Gs load",
                pattern: p,
            });
        }
        for p in ds_load_gamma8(mitigated, ik) {
            steps.push(TraceStep {
                label: "outerProduct: Ds load",
                pattern: p,
            });
        }
    }
    for p in ys_store_gamma8(mitigated) {
        steps.push(TraceStep {
            label: "transformOutput: Ys store",
            pattern: p,
        });
    }
    steps
}

/// Total and ideal transactions of a trace.
pub fn trace_totals(steps: &[TraceStep]) -> (usize, usize) {
    let actual: usize = steps.iter().map(|s| conflict_transactions(&s.pattern)).sum();
    let ideal: usize = steps
        .iter()
        .map(|s| s.pattern.lane_words.len().div_ceil(WARP / s.pattern.width))
        .sum();
    (actual, ideal)
}

/// Per-label breakdown `(label, actual, ideal)`.
pub fn trace_breakdown(steps: &[TraceStep]) -> Vec<(&'static str, usize, usize)> {
    let mut out: Vec<(&'static str, usize, usize)> = Vec::new();
    for s in steps {
        let a = conflict_transactions(&s.pattern);
        let i = s.pattern.lane_words.len().div_ceil(WARP / s.pattern.width);
        match out.iter_mut().find(|(l, _, _)| *l == s.label) {
            Some(slot) => {
                slot.1 += a;
                slot.2 += i;
            }
            None => out.push((s.label, a, i)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitigated_trace_is_nearly_ideal() {
        let steps = gamma8_block_trace(true);
        let (actual, ideal) = trace_totals(&steps);
        // The remapped Ds loads pay a small modelling overhead (single-word
        // accesses), but no serialisation: actual == ideal.
        assert_eq!(actual, ideal, "mitigated block must be conflict-free");
    }

    #[test]
    fn naive_trace_serialises_heavily() {
        let (bad, _) = trace_totals(&gamma8_block_trace(false));
        let (good, _) = trace_totals(&gamma8_block_trace(true));
        // The §5.2 fixes should save a large fraction of SMEM transactions
        // over the whole iteration.
        assert!(bad as f64 > 1.3 * good as f64, "bad {bad} vs good {good}");
    }

    #[test]
    fn ds_load_compensation_is_conflict_free() {
        for ik in 0..8 {
            for p in ds_load_gamma8(true, ik) {
                assert_eq!(conflict_transactions(&p), 1, "ik = {ik}");
            }
        }
    }

    #[test]
    fn breakdown_covers_all_labels() {
        let steps = gamma8_block_trace(true);
        let bd = trace_breakdown(&steps);
        let labels: Vec<&str> = bd.iter().map(|(l, _, _)| *l).collect();
        assert!(labels.contains(&"loadTiles: Ds store"));
        assert!(labels.contains(&"outerProduct: Gs load"));
        assert!(labels.contains(&"outerProduct: Ds load"));
        assert!(labels.contains(&"transformOutput: Ys store"));
        let total: usize = bd.iter().map(|(_, a, _)| a).sum();
        let (actual, _) = trace_totals(&steps);
        assert_eq!(total, actual);
    }
}
