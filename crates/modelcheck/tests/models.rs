//! Model-checker acceptance net (debug-friendly budgets; the full-depth
//! pinned runs live in scripts/check.sh).

use modelcheck::explore::{replay, run_exhaustive, run_random};
use modelcheck::models;
use modelcheck::sched::Outcome;

#[test]
fn ticket_handoff_holds_under_exhaustive_exploration() {
    let build = models::ticket_handoff(1);
    let report = run_exhaustive(&build, 30, 2000);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.exhausted,
        "small tree should be covered, got {}",
        report.schedules
    );
    assert!(report.schedules >= 10, "explored only {}", report.schedules);
    assert_eq!(report.distinct, report.schedules);
}

#[test]
fn coalescer_drain_holds_under_exhaustive_exploration() {
    let build = models::coalescer_drain(1, 1, 2);
    let report = run_exhaustive(&build, 30, 2000);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.schedules >= 50, "explored only {}", report.schedules);
}

#[test]
fn correct_notify_holds_under_exhaustive_exploration() {
    let build = models::correct_notify();
    let report = run_exhaustive(&build, 30, 2000);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    // The bounded tree of this two-thread model is small enough to finish.
    assert!(
        report.exhausted,
        "expected full coverage, got {} schedules",
        report.schedules
    );
}

#[test]
fn buggy_notify_is_caught_and_replays() {
    let build = models::buggy_notify();
    let report = run_exhaustive(&build, 30, 2000);
    let failure = report.failure.expect("the seeded missed-wakeup bug must be found");
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
    // The failing choice vector replays to the same outcome.
    match replay(&build, &failure.schedule) {
        Outcome::Deadlock(msg) => assert!(msg.contains("waiting on condvar"), "{msg}"),
        other => panic!("replay diverged: {other:?}"),
    }
}

#[test]
fn buggy_notify_is_caught_by_random_exploration_too() {
    let build = models::buggy_notify();
    let report = run_random(&build, 42, 500, 30);
    assert!(
        report.failure.is_some(),
        "random search missed the seeded bug in 500 schedules"
    );
}

#[test]
fn random_exploration_is_seed_deterministic() {
    let build = models::ticket_handoff(1);
    let a = run_random(&build, 7, 200, 30);
    let b = run_random(&build, 7, 200, 30);
    assert!(a.failure.is_none());
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.distinct, b.distinct);
    assert!(
        a.distinct >= 20,
        "only {} distinct schedules from 200 random runs",
        a.distinct
    );
    // A different seed explores a different (but equally clean) sample.
    let c = run_random(&build, 8, 200, 30);
    assert!(c.failure.is_none());
}

#[test]
fn exhaustive_exploration_exhausts_small_models() {
    // One producer, one consumer, one slot: the depth-bounded tree is
    // fully covered and every schedule distinct.
    let build = models::ticket_handoff(1);
    let report = run_exhaustive(&build, 60, 2_000_000);
    assert!(
        report.exhausted,
        "tree not exhausted after {} schedules",
        report.schedules
    );
    assert!(report.failure.is_none());
    assert_eq!(report.distinct, report.schedules);
}
