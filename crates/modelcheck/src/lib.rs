//! `modelcheck` — a loom-lite deterministic interleaving model checker.
//!
//! The static concurrency passes in `crates/analyzer` prove *shape*
//! properties of the serving stack (lock order acyclic, waits re-check
//! predicates, orderings classified); this crate is their dynamic
//! complement. Protocol kernels extracted from `crates/serve` — the
//! ticket `slot`/`ready` handoff and the coalescer `wake`/shutdown drain
//! loop — are rebuilt on *shim* primitives ([`sync::McMutex`],
//! [`sync::McCondvar`], [`sync::McAtomic`]) whose every visible operation
//! yields to a cooperative [scheduler](sched). The scheduler runs the
//! model threads one at a time and picks which thread proceeds at each
//! decision point, so an execution is a pure function of its choice
//! sequence — and the [explorer](explore) can enumerate choice sequences
//! exhaustively up to a depth bound, or sample them with a seeded RNG,
//! while asserting the protocol's invariants (exactly-once resolution, no
//! lost wakeups) in every schedule.
//!
//! What the shims model — and deliberately do not:
//!
//! - `McCondvar::wait` atomically releases the mutex and enqueues the
//!   waiter; a notify with no waiter enqueued is **lost**, exactly like a
//!   real condvar. There are **no spurious wakeups** — a woken thread was
//!   notified. (Spurious wakeups only *weaken* the schedules a bug needs,
//!   so their absence cannot hide a lost-wakeup bug; it just means a bare
//!   `wait` without a loop is not flagged dynamically — that is the
//!   static pass's job.)
//! - `McAtomic` is sequentially consistent (a plain value under the
//!   scheduler). Weak-memory reorderings are out of scope; the checker
//!   explores *interleavings*, not memory models — the static atomics
//!   pass owns ordering-strength claims.
//! - A state where no thread is runnable but some are blocked is reported
//!   as a deadlock; for these models that is precisely the missed-wakeup
//!   shape ([`models::buggy_notify`] seeds one and must be caught).
//!
//! Everything is safe Rust: the shims wrap `std::sync` primitives for
//! storage and rely on the scheduler (not `unsafe`) for exclusivity.

#![forbid(unsafe_code)]

pub mod explore;
pub mod models;
pub mod sched;
pub mod sync;
