//! The cooperative scheduler: one runnable model thread at a time, a
//! token handed out at every decision point by an external chooser.
//!
//! Model threads are real OS threads (so model code is ordinary blocking
//! Rust), but they only ever run one at a time: each shim operation calls
//! [`Ctrl::pause`], which surrenders the scheduling token and parks until
//! the scheduler grants it back. The scheduler (the thread that called
//! [`run_model`]) waits for every thread to park, asks the chooser to
//! pick among the runnable ones, and hands the token over. Blocking
//! operations (mutex acquisition, condvar waits) park the thread in a
//! *non-runnable* state until the resource is released or notified, so
//! the chooser never selects a thread that cannot make progress — and a
//! state with no runnable threads while some are still blocked is
//! reported as a deadlock (for condvar models: a missed wakeup).
//!
//! Failure protocol: the first panicking model thread records its message
//! and flips `aborted`; every parked thread then unwinds out of model
//! code with the [`SchedAbort`] sentinel (caught by the thread wrapper,
//! not reported as a failure itself). Poisoned `std` mutexes along that
//! unwind are expected and recovered with `into_inner`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel panic payload used to unwind parked threads after a failure
/// or deadlock elsewhere; never reported as a model failure.
pub struct SchedAbort;

thread_local! {
    static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The calling model thread's id (its spawn index). `None` on the
/// scheduler thread — shims treat that as finale mode.
pub fn current_tid() -> Option<usize> {
    TID.with(|t| t.get())
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum TState {
    /// Spawned but not yet at its start gate.
    Starting,
    /// Parked at a decision point, eligible for the token.
    Ready,
    /// Parked until the lock is released.
    WantLock(usize),
    /// Parked in a condvar queue until notified.
    WaitCv(usize),
    Done,
    Panicked,
}

struct SchedState {
    threads: Vec<TState>,
    /// The token: the one thread currently allowed to run.
    current: Option<usize>,
    /// Per-lock holder (`None` = free).
    locks: Vec<Option<usize>>,
    /// Per-condvar FIFO of `(thread, lock to reacquire)` waiters.
    cvs: Vec<Vec<(usize, usize)>>,
    aborted: bool,
    /// Set after all threads joined: shim operations become plain,
    /// single-threaded accesses for the model's final assertions.
    finale: bool,
    failure: Option<String>,
}

/// Shared scheduler handle; one per execution.
pub struct Ctrl {
    m: Mutex<SchedState>,
    cv: Condvar,
}

impl Default for Ctrl {
    fn default() -> Self {
        Self::new()
    }
}

impl Ctrl {
    pub fn new() -> Ctrl {
        Ctrl {
            m: Mutex::new(SchedState {
                threads: Vec::new(),
                current: None,
                locks: Vec::new(),
                cvs: Vec::new(),
                aborted: false,
                finale: false,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn state(&self) -> MutexGuard<'_, SchedState> {
        // Panicking model threads poison this mutex on their way out; the
        // state itself stays consistent (mutations are single-assignment
        // under the guard), so recover it.
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait_state<'a>(&self, g: MutexGuard<'a, SchedState>) -> MutexGuard<'a, SchedState> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }

    /// Register a new shim mutex; returns its lock id.
    pub(crate) fn register_lock(&self) -> usize {
        let mut st = self.state();
        st.locks.push(None);
        st.locks.len() - 1
    }

    /// Register a new shim condvar; returns its id.
    pub(crate) fn register_cv(&self) -> usize {
        let mut st = self.state();
        st.cvs.push(Vec::new());
        st.cvs.len() - 1
    }

    fn set_thread_count(&self, n: usize) {
        self.state().threads = vec![TState::Starting; n];
    }

    fn set_finale(&self) {
        self.state().finale = true;
    }

    fn is_finale(&self) -> bool {
        self.state().finale
    }

    /// Park until the scheduler grants this thread the token. Unwinds
    /// with [`SchedAbort`] if the execution was aborted meanwhile.
    fn wait_for_token<'a>(&self, id: usize, mut st: MutexGuard<'a, SchedState>) -> MutexGuard<'a, SchedState> {
        while st.current != Some(id) {
            if st.aborted {
                drop(st);
                // resume_unwind skips the panic hook: aborts are routine
                // (every failing schedule unwinds the parked threads) and
                // must not spam backtraces.
                std::panic::resume_unwind(Box::new(SchedAbort));
            }
            st = self.wait_state(st);
        }
        st
    }

    /// Decision point: surrender the token, park as runnable, and return
    /// once the scheduler hands the token back.
    pub(crate) fn pause(&self) {
        let mut st = self.state();
        if st.finale {
            return;
        }
        let id = current_tid().expect("modelcheck shim used outside a model thread");
        if st.current == Some(id) {
            st.current = None;
        }
        st.threads[id] = TState::Ready;
        self.cv.notify_all();
        let _st = self.wait_for_token(id, st);
    }

    /// Acquire `lock` for the calling thread, parking while it is held.
    /// One decision point before the acquisition attempt.
    pub(crate) fn lock_acquire(&self, lock: usize) {
        self.pause();
        let mut st = self.state();
        if st.finale {
            return;
        }
        let id = current_tid().expect("modelcheck shim used outside a model thread");
        loop {
            if st.locks[lock].is_none() {
                st.locks[lock] = Some(id);
                return;
            }
            st.threads[id] = TState::WantLock(lock);
            st.current = None;
            self.cv.notify_all();
            st = self.wait_for_token(id, st);
        }
    }

    fn release_in(st: &mut SchedState, lock: usize) {
        st.locks[lock] = None;
        for t in st.threads.iter_mut() {
            if *t == TState::WantLock(lock) {
                *t = TState::Ready;
            }
        }
    }

    /// Release `lock`, waking its blocked acquirers. Not a decision point
    /// (the next shim operation on this thread is one).
    pub(crate) fn lock_release(&self, lock: usize) {
        let mut st = self.state();
        if st.finale {
            return;
        }
        Self::release_in(&mut st, lock);
        self.cv.notify_all();
    }

    /// Atomically release `lock` and enqueue on condvar `cvid`; park until
    /// notified, then reacquire `lock`. One decision point on entry.
    pub(crate) fn cv_wait(&self, cvid: usize, lock: usize) {
        self.pause();
        let mut st = self.state();
        if st.finale {
            return;
        }
        let id = current_tid().expect("modelcheck shim used outside a model thread");
        // The release and the enqueue happen under one scheduler guard:
        // there is no window where the lock is free but this thread is
        // not yet waiting — the atomic-release property of a real condvar.
        Self::release_in(&mut st, lock);
        st.cvs[cvid].push((id, lock));
        st.threads[id] = TState::WaitCv(cvid);
        st.current = None;
        self.cv.notify_all();
        st = self.wait_for_token(id, st);
        // Notified: reacquire the mutex, racing other acquirers.
        loop {
            if st.locks[lock].is_none() {
                st.locks[lock] = Some(id);
                return;
            }
            st.threads[id] = TState::WantLock(lock);
            st.current = None;
            self.cv.notify_all();
            st = self.wait_for_token(id, st);
        }
    }

    /// Notify waiters of condvar `cvid` (FIFO). A notify with no waiters
    /// is lost, exactly like the real primitive. One decision point.
    pub(crate) fn cv_notify(&self, cvid: usize, all: bool) {
        self.pause();
        let mut st = self.state();
        if st.finale {
            return;
        }
        let n = if all {
            st.cvs[cvid].len()
        } else {
            st.cvs[cvid].len().min(1)
        };
        for _ in 0..n {
            let (t, l) = st.cvs[cvid].remove(0);
            st.threads[t] = if st.locks[l].is_none() {
                TState::Ready
            } else {
                TState::WantLock(l)
            };
        }
        self.cv.notify_all();
    }

    fn thread_done(&self, id: usize, panic_msg: Option<String>) {
        let mut st = self.state();
        match panic_msg {
            None => st.threads[id] = TState::Done,
            Some(msg) => {
                st.threads[id] = TState::Panicked;
                if st.failure.is_none() {
                    st.failure = Some(msg);
                }
            }
        }
        if st.current == Some(id) {
            st.current = None;
        }
        self.cv.notify_all();
    }
}

/// One execution's worth of model code: the concurrent thread bodies plus
/// a finale run single-threaded after they all join (final assertions).
pub struct ModelInstance {
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    pub finale: Box<dyn FnOnce() + Send>,
}

/// How one execution ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every thread finished and the finale's assertions held.
    Ok,
    /// A model assertion panicked (message attached).
    Failure(String),
    /// No thread runnable, some still blocked — for condvar models, a
    /// missed wakeup.
    Deadlock(String),
}

fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

/// Run one execution of the model under `choose`: at each decision point
/// with `n` runnable threads, `choose(n)` picks the index (into the
/// ascending-by-id runnable list) of the thread to grant the token.
/// Deterministic: the outcome is a pure function of the choice sequence.
pub fn run_model(build: &dyn Fn(&Arc<Ctrl>) -> ModelInstance, choose: &mut dyn FnMut(usize) -> usize) -> Outcome {
    let ctrl = Arc::new(Ctrl::new());
    let inst = build(&ctrl);
    ctrl.set_thread_count(inst.threads.len());

    let outcome = std::thread::scope(|s| {
        for (i, body) in inst.threads.into_iter().enumerate() {
            let ctrl = Arc::clone(&ctrl);
            s.spawn(move || {
                TID.with(|t| t.set(Some(i)));
                // Start gate: park at a decision point before the first
                // model operation, so the initial runnable set is the full
                // thread list regardless of OS spawn timing.
                let gate = catch_unwind(AssertUnwindSafe(|| ctrl.pause()));
                let r = match gate {
                    Ok(()) => catch_unwind(AssertUnwindSafe(body)),
                    Err(e) => Err(e),
                };
                match r {
                    Ok(()) => ctrl.thread_done(i, None),
                    Err(e) if e.is::<SchedAbort>() => ctrl.thread_done(i, None),
                    Err(e) => ctrl.thread_done(i, Some(panic_msg(e))),
                }
            });
        }

        let mut st = ctrl.state();
        loop {
            while st.current.is_some() || st.threads.contains(&TState::Starting) {
                st = ctrl.wait_state(st);
            }
            if st.failure.is_some() || st.threads.iter().all(|t| matches!(t, TState::Done | TState::Panicked)) {
                let settled = st.threads.iter().all(|t| matches!(t, TState::Done | TState::Panicked));
                if !settled {
                    // A thread failed while others are parked: unwind them.
                    st.aborted = true;
                    ctrl.cv.notify_all();
                    while !st.threads.iter().all(|t| matches!(t, TState::Done | TState::Panicked)) {
                        st = ctrl.wait_state(st);
                    }
                }
                break match st.failure.clone() {
                    Some(msg) => Outcome::Failure(msg),
                    None => Outcome::Ok,
                };
            }
            let runnable: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| **t == TState::Ready)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t {
                        TState::WantLock(l) => Some(format!("thread {i} blocked on lock {l}")),
                        TState::WaitCv(c) => Some(format!("thread {i} waiting on condvar {c}")),
                        _ => None,
                    })
                    .collect();
                st.aborted = true;
                ctrl.cv.notify_all();
                while !st.threads.iter().all(|t| matches!(t, TState::Done | TState::Panicked)) {
                    st = ctrl.wait_state(st);
                }
                break Outcome::Deadlock(format!("deadlock (missed wakeup): {}", blocked.join("; ")));
            }
            let k = choose(runnable.len()).min(runnable.len() - 1);
            st.current = Some(runnable[k]);
            ctrl.cv.notify_all();
        }
    });

    if outcome != Outcome::Ok {
        return outcome;
    }
    // Final single-threaded assertions over the shims' end state.
    ctrl.set_finale();
    debug_assert!(ctrl.is_finale());
    match catch_unwind(AssertUnwindSafe(inst.finale)) {
        Ok(()) => Outcome::Ok,
        Err(e) => Outcome::Failure(panic_msg(e)),
    }
}
