//! Shim synchronization primitives: `std::sync` look-alikes whose every
//! visible operation is a scheduler decision point.
//!
//! Storage is plain `std::sync` (a `Mutex<T>` for values, never
//! contended in practice because the scheduler admits one thread at a
//! time); *blocking and wakeup semantics* live entirely in the scheduler
//! tables, which is what makes executions deterministic and explorable.

use crate::sched::Ctrl;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};

/// A model mutex. `lock` is a decision point and parks while held.
pub struct McMutex<T> {
    ctrl: Arc<Ctrl>,
    id: usize,
    value: Mutex<T>,
}

impl<T> McMutex<T> {
    pub fn new(ctrl: &Arc<Ctrl>, value: T) -> McMutex<T> {
        McMutex {
            ctrl: Arc::clone(ctrl),
            id: ctrl.register_lock(),
            value: Mutex::new(value),
        }
    }

    pub fn lock(&self) -> McGuard<'_, T> {
        self.ctrl.lock_acquire(self.id);
        McGuard {
            mutex: self,
            inner: Some(self.value.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

/// Guard for [`McMutex`]; releases the scheduler-side lock on drop.
pub struct McGuard<'a, T> {
    mutex: &'a McMutex<T>,
    /// `None` only transiently, while `McCondvar::wait` has taken the
    /// guard apart (the "defused" state — drop then releases nothing).
    inner: Option<MutexGuard<'a, T>>,
}

impl<T> Deref for McGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("defused guard")
    }
}

impl<T> DerefMut for McGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("defused guard")
    }
}

impl<T> Drop for McGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.mutex.ctrl.lock_release(self.mutex.id);
        }
    }
}

/// A model condvar: `wait` atomically releases the guard's mutex and
/// enqueues; a notify with no enqueued waiter is lost.
pub struct McCondvar {
    ctrl: Arc<Ctrl>,
    id: usize,
}

impl McCondvar {
    pub fn new(ctrl: &Arc<Ctrl>) -> McCondvar {
        McCondvar {
            ctrl: Arc::clone(ctrl),
            id: ctrl.register_cv(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: McGuard<'a, T>) -> McGuard<'a, T> {
        let mutex = guard.mutex;
        // Defuse: drop the value guard without the scheduler-side release;
        // cv_wait performs release + enqueue atomically under the
        // scheduler state, then parks and reacquires.
        drop(guard.inner.take());
        self.ctrl.cv_wait(self.id, mutex.id);
        McGuard {
            mutex,
            inner: Some(mutex.value.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Wait while `pred` holds, re-checking after every wakeup — the
    /// discipline the static condvar pass enforces on the real code.
    pub fn wait_while<'a, T>(&self, mut guard: McGuard<'a, T>, mut pred: impl FnMut(&mut T) -> bool) -> McGuard<'a, T> {
        while pred(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    pub fn notify_one(&self) {
        self.ctrl.cv_notify(self.id, false);
    }

    pub fn notify_all(&self) {
        self.ctrl.cv_notify(self.id, true);
    }
}

/// A model atomic `u64`: sequentially consistent, every access a decision
/// point. Ordering strength is not modeled (the static pass owns that);
/// there are deliberately no `Ordering` tokens in this API.
pub struct McAtomic {
    ctrl: Arc<Ctrl>,
    v: Mutex<u64>,
}

impl McAtomic {
    pub fn new(ctrl: &Arc<Ctrl>, v: u64) -> McAtomic {
        McAtomic {
            ctrl: Arc::clone(ctrl),
            v: Mutex::new(v),
        }
    }

    fn cell(&self) -> MutexGuard<'_, u64> {
        self.v.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn load(&self) -> u64 {
        self.ctrl.pause();
        *self.cell()
    }

    pub fn store(&self, v: u64) {
        self.ctrl.pause();
        *self.cell() = v;
    }

    pub fn fetch_add(&self, v: u64) -> u64 {
        self.ctrl.pause();
        let mut g = self.cell();
        let old = *g;
        *g = old.wrapping_add(v);
        old
    }

    pub fn fetch_max(&self, v: u64) -> u64 {
        self.ctrl.pause();
        let mut g = self.cell();
        let old = *g;
        *g = old.max(v);
        old
    }
}
