//! Protocol models extracted from `crates/serve/src/server.rs`, rebuilt
//! on the shim primitives, plus a seeded-bug model the checker must
//! catch.
//!
//! Each model is a [`Builder`]-shaped function: it creates fresh shims on
//! the execution's [`Ctrl`], returns the concurrent thread bodies, and a
//! finale closure holding the whole-execution assertions (run
//! single-threaded after every thread joins).

use crate::explore::Builder;
use crate::sched::{Ctrl, ModelInstance};
use crate::sync::{McAtomic, McCondvar, McMutex};
use std::sync::Arc;

/// The `Ticket` `slot`/`ready` handoff: a resolver publishes each answer
/// into a one-shot `Mutex<Option<_>>` slot and notifies; the ticket
/// holder takes it in a predicate loop (`Ticket::wait` in the serving
/// stack). `pairs` independent tickets share one resolver thread.
///
/// Asserted in every schedule: each ticket is resolved exactly once, each
/// waiter receives its value exactly once, and no waiter sleeps forever
/// (a lost wakeup would surface as a deadlock).
pub fn ticket_handoff(pairs: usize) -> Box<Builder> {
    Box::new(move |ctrl: &Arc<Ctrl>| {
        let slots: Vec<Arc<McMutex<Option<u64>>>> = (0..pairs).map(|_| Arc::new(McMutex::new(ctrl, None))).collect();
        let readys: Vec<Arc<McCondvar>> = (0..pairs).map(|_| Arc::new(McCondvar::new(ctrl))).collect();
        let resolved = Arc::new(McAtomic::new(ctrl, 0));
        let received = Arc::new(McAtomic::new(ctrl, 0));

        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        // The resolver (the coalescer's role): fill each slot under its
        // lock, notify under the same lock — the protocol the static
        // passes hold the real code to.
        {
            let slots = slots.clone();
            let readys = readys.clone();
            let resolved = Arc::clone(&resolved);
            threads.push(Box::new(move || {
                for (slot, ready) in slots.iter().zip(&readys) {
                    let mut g = slot.lock();
                    assert!(g.is_none(), "ticket resolved twice");
                    *g = Some(7);
                    ready.notify_one();
                    drop(g);
                    resolved.fetch_add(1);
                }
            }));
        }
        // One waiter per ticket: `Ticket::wait`'s take-or-wait loop.
        for (slot, ready) in slots.iter().zip(&readys) {
            let slot = Arc::clone(slot);
            let ready = Arc::clone(ready);
            let received = Arc::clone(&received);
            threads.push(Box::new(move || {
                let mut g = slot.lock();
                let v = loop {
                    if let Some(v) = g.take() {
                        break v;
                    }
                    g = ready.wait(g);
                };
                drop(g);
                assert_eq!(v, 7, "handoff delivered the wrong value");
                received.fetch_add(1);
            }));
        }

        let finale = {
            let slots = slots.clone();
            Box::new(move || {
                assert_eq!(resolved.load(), pairs as u64, "every ticket resolved exactly once");
                assert_eq!(received.load(), pairs as u64, "every waiter received exactly once");
                for slot in &slots {
                    assert!(slot.lock().is_none(), "answers are consumed, not left behind");
                }
            })
        };
        ModelInstance { threads, finale }
    })
}

/// Queue + shutdown flag behind the coalescer's single state mutex.
struct DrainState {
    queue: Vec<u64>,
    shutdown: bool,
    rejected: u64,
}

/// The coalescer `wake`/shutdown drain loop: submitters push under the
/// state lock and notify; a shutdown thread raises the flag and
/// `notify_all`s; the coalescer drains batches in a predicate loop and
/// only returns once the queue is empty *and* shutdown is raised —
/// `coalescer_loop` in the serving stack. Submissions that arrive after
/// shutdown are rejected (the admission path's check).
///
/// Asserted in every schedule: `processed + rejected == submitted`, the
/// queue is empty when the coalescer exits (no stranded requests), and
/// the coalescer always exits (a lost shutdown or submit wakeup would
/// deadlock).
pub fn coalescer_drain(submitters: usize, items_each: usize, max_batch: usize) -> Box<Builder> {
    Box::new(move |ctrl: &Arc<Ctrl>| {
        let state = Arc::new(McMutex::new(
            ctrl,
            DrainState {
                queue: Vec::new(),
                shutdown: false,
                rejected: 0,
            },
        ));
        let wake = Arc::new(McCondvar::new(ctrl));
        let processed = Arc::new(McAtomic::new(ctrl, 0));

        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for _ in 0..submitters {
            let state = Arc::clone(&state);
            let wake = Arc::clone(&wake);
            threads.push(Box::new(move || {
                for item in 0..items_each as u64 {
                    let mut g = state.lock();
                    if g.shutdown {
                        g.rejected += 1;
                    } else {
                        g.queue.push(item);
                        wake.notify_one();
                    }
                }
            }));
        }
        {
            let state = Arc::clone(&state);
            let wake = Arc::clone(&wake);
            threads.push(Box::new(move || {
                let mut g = state.lock();
                g.shutdown = true;
                wake.notify_all();
            }));
        }
        {
            let state = Arc::clone(&state);
            let wake = Arc::clone(&wake);
            let processed = Arc::clone(&processed);
            threads.push(Box::new(move || loop {
                let batch = {
                    let mut g = state.lock();
                    loop {
                        if !g.queue.is_empty() {
                            let take = g.queue.len().min(max_batch);
                            break g.queue.drain(..take).collect::<Vec<u64>>();
                        }
                        if g.shutdown {
                            return;
                        }
                        g = wake.wait(g);
                    }
                };
                for _item in batch {
                    processed.fetch_add(1);
                }
            }));
        }

        let finale = Box::new(move || {
            let g = state.lock();
            let total = (submitters * items_each) as u64;
            assert!(
                g.queue.is_empty(),
                "coalescer exited with requests stranded in the queue"
            );
            assert_eq!(
                processed.load() + g.rejected,
                total,
                "every submitted request is processed or rejected exactly once"
            );
        });
        ModelInstance { threads, finale }
    })
}

/// Seeded bug: the producer mutates the waited-on predicate (an atomic
/// flag) and notifies **without holding the mutex**. The consumer checks
/// the predicate under the lock, but the producer's store+notify can land
/// between that check and the wait — the notify finds no waiter enqueued
/// and is lost, and the consumer sleeps forever. The checker must find a
/// schedule that deadlocks.
pub fn buggy_notify() -> Box<Builder> {
    Box::new(move |ctrl: &Arc<Ctrl>| {
        let m: Arc<McMutex<()>> = Arc::new(McMutex::new(ctrl, ()));
        let cv = Arc::new(McCondvar::new(ctrl));
        let flag = Arc::new(McAtomic::new(ctrl, 0));

        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        {
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            threads.push(Box::new(move || {
                flag.store(1);
                cv.notify_one();
            }));
        }
        {
            let m = Arc::clone(&m);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            threads.push(Box::new(move || {
                let mut g = m.lock();
                while flag.load() == 0 {
                    g = cv.wait(g);
                }
            }));
        }
        let finale = Box::new(move || assert_eq!(flag.load(), 1));
        ModelInstance { threads, finale }
    })
}

/// The corrected twin of [`buggy_notify`]: the producer stores and
/// notifies under the mutex, closing the check-to-wait window. Every
/// schedule must pass — the control that shows the checker flags the bug,
/// not the protocol.
pub fn correct_notify() -> Box<Builder> {
    Box::new(move |ctrl: &Arc<Ctrl>| {
        let m: Arc<McMutex<()>> = Arc::new(McMutex::new(ctrl, ()));
        let cv = Arc::new(McCondvar::new(ctrl));
        let flag = Arc::new(McAtomic::new(ctrl, 0));

        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        {
            let m = Arc::clone(&m);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            threads.push(Box::new(move || {
                let g = m.lock();
                flag.store(1);
                cv.notify_one();
                drop(g);
            }));
        }
        {
            let m = Arc::clone(&m);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            threads.push(Box::new(move || {
                let mut g = m.lock();
                while flag.load() == 0 {
                    g = cv.wait(g);
                }
            }));
        }
        let finale = Box::new(move || assert_eq!(flag.load(), 1));
        ModelInstance { threads, finale }
    })
}
