//! `cargo run -p modelcheck --bin mc -- --model MODEL [options]`
//!
//! Drives the interleaving explorer over the extracted serving-stack
//! protocol models. Exit codes: 0 all selected models behaved as
//! expected, 1 a property was violated (or an `--expect-failure` model
//! failed to fail), 2 usage error.

#![forbid(unsafe_code)]

use modelcheck::explore::{run_exhaustive, run_random, Builder, Report};
use modelcheck::models;
use std::process::ExitCode;

const USAGE: &str = "usage: mc --model ticket|coalescer|buggy-notify|all \
[--strategy exhaustive|random] [--max-schedules N] [--depth N] [--seed N] [--min-distinct N] [--expect-failure]";

struct Cli {
    models: Vec<&'static str>,
    strategy: String,
    max_schedules: u64,
    depth: usize,
    seed: u64,
    min_distinct: u64,
    expect_failure: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        models: Vec::new(),
        strategy: "exhaustive".to_string(),
        max_schedules: 5000,
        depth: 40,
        seed: 0xC0FFEE,
        min_distinct: 0,
        expect_failure: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().cloned().ok_or(format!("{name} requires a value"));
        match arg.as_str() {
            "--model" => {
                cli.models = match value("--model")?.as_str() {
                    "ticket" => vec!["ticket"],
                    "coalescer" => vec!["coalescer"],
                    "buggy-notify" => vec!["buggy-notify"],
                    "all" => vec!["ticket", "coalescer"],
                    other => return Err(format!("unknown model {other:?}\n{USAGE}")),
                };
            }
            "--strategy" => {
                cli.strategy = value("--strategy")?;
                if cli.strategy != "exhaustive" && cli.strategy != "random" {
                    return Err(format!("unknown strategy {:?}\n{USAGE}", cli.strategy));
                }
            }
            "--max-schedules" => cli.max_schedules = value("--max-schedules")?.parse().map_err(|e| format!("{e}"))?,
            "--depth" => cli.depth = value("--depth")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => cli.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--min-distinct" => cli.min_distinct = value("--min-distinct")?.parse().map_err(|e| format!("{e}"))?,
            "--expect-failure" => cli.expect_failure = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if cli.models.is_empty() {
        return Err(format!("--model is required\n{USAGE}"));
    }
    Ok(cli)
}

fn builder_for(name: &str) -> Box<Builder> {
    match name {
        // Two tickets sharing a resolver exercises the cross-ticket
        // interleavings; the coalescer sizes mirror a small burst.
        "ticket" => models::ticket_handoff(2),
        "coalescer" => models::coalescer_drain(2, 1, 2),
        "buggy-notify" => models::buggy_notify(),
        _ => unreachable!("validated in parse_args"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut violated = false;
    for name in &cli.models {
        let build = builder_for(name);
        let report: Report = if cli.strategy == "random" {
            run_random(&build, cli.seed, cli.max_schedules, cli.depth)
        } else {
            run_exhaustive(&build, cli.depth, cli.max_schedules)
        };
        let result = match (&report.failure, cli.expect_failure) {
            (Some(_), true) => "ok (failed as expected)",
            (None, false) => "ok",
            (Some(_), false) => {
                violated = true;
                "FAIL"
            }
            (None, true) => {
                violated = true;
                "FAIL (expected a failure, found none)"
            }
        };
        println!(
            "mc: model={name} strategy={} schedules={} distinct={} exhausted={} result={result}",
            cli.strategy, report.schedules, report.distinct, report.exhausted
        );
        if let Some(f) = &report.failure {
            println!("mc:   {}", f.message);
            println!(
                "mc:   schedule: [{}]",
                f.schedule.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(", ")
            );
        }
        if report.distinct < cli.min_distinct {
            println!(
                "mc:   FAIL: only {} distinct schedules explored (need >= {})",
                report.distinct, cli.min_distinct
            );
            violated = true;
        }
    }

    if violated {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
