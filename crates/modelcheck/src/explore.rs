//! Schedule exploration: exhaustive DFS over choice sequences (up to a
//! depth bound) and seeded randomized sampling.
//!
//! An execution is a pure function of its choice sequence (see
//! [`crate::sched::run_model`]), so exploration is search over sequences:
//!
//! - **Exhaustive**: depth-first with forced-prefix replay. Each run
//!   records `(chosen, options)` at every decision point; backtracking
//!   increments the deepest incrementable choice and truncates. Decision
//!   points past `max_depth` always take choice 0 and record a single
//!   option, so the tree is exhausted *up to the depth bound*. Every
//!   schedule visited is distinct by construction.
//! - **Random**: one xorshift64\* stream per execution, derived from the
//!   base seed and the execution index — re-running with the same seed
//!   reproduces the exact schedule set. Distinct schedules are counted
//!   via the recorded choice vectors.
//!
//! Exploration stops at the first failing schedule (the choice vector in
//! [`Failure::schedule`] replays it deterministically) or when the budget
//! is spent.

use crate::sched::{run_model, Ctrl, ModelInstance, Outcome};
use std::collections::HashSet;
use std::sync::Arc;

/// A failing schedule: the chooser picks that reproduce it, plus the
/// assertion or deadlock message.
#[derive(Clone, Debug)]
pub struct Failure {
    pub schedule: Vec<usize>,
    pub message: String,
}

/// Exploration summary.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions run.
    pub schedules: u64,
    /// Distinct choice sequences among them (== `schedules` for
    /// exhaustive exploration).
    pub distinct: u64,
    /// Exhaustive only: the whole depth-bounded tree was covered within
    /// the schedule budget.
    pub exhausted: bool,
    pub failure: Option<Failure>,
}

/// A model: builds a fresh [`ModelInstance`] per execution.
pub type Builder = dyn Fn(&Arc<Ctrl>) -> ModelInstance;

fn failure_of(outcome: Outcome, schedule: Vec<usize>) -> Option<Failure> {
    match outcome {
        Outcome::Ok => None,
        Outcome::Failure(message) | Outcome::Deadlock(message) => Some(Failure { schedule, message }),
    }
}

/// Exhaustively explore choice sequences up to `max_depth` decision
/// points, running at most `max_schedules` executions.
pub fn run_exhaustive(build: &Builder, max_depth: usize, max_schedules: u64) -> Report {
    let mut forced: Vec<(usize, usize)> = Vec::new();
    let mut schedules = 0u64;
    loop {
        let mut recorded: Vec<(usize, usize)> = Vec::new();
        let outcome = run_model(build, &mut |n| {
            let depth = recorded.len();
            let k = if depth < forced.len() {
                forced[depth].0.min(n - 1)
            } else {
                0
            };
            // Past the depth bound the walk is deterministic: record a
            // single option so backtracking never branches there.
            let options = if depth >= max_depth { 1 } else { n };
            recorded.push((k, options));
            k
        });
        schedules += 1;
        if let Some(failure) = failure_of(outcome, recorded.iter().map(|(k, _)| *k).collect()) {
            return Report {
                schedules,
                distinct: schedules,
                exhausted: false,
                failure: Some(failure),
            };
        }
        if schedules >= max_schedules {
            return Report {
                schedules,
                distinct: schedules,
                exhausted: false,
                failure: None,
            };
        }
        // Backtrack: bump the deepest incrementable choice.
        forced = recorded;
        loop {
            match forced.last_mut() {
                None => {
                    return Report {
                        schedules,
                        distinct: schedules,
                        exhausted: true,
                        failure: None,
                    }
                }
                Some(top) if top.0 + 1 < top.1 => {
                    top.0 += 1;
                    break;
                }
                Some(_) => {
                    forced.pop();
                }
            }
        }
    }
}

fn xorshift64(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Run `schedules` executions with seeded-random choices, counting
/// distinct choice sequences.
pub fn run_random(build: &Builder, seed: u64, schedules: u64, max_depth: usize) -> Report {
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    for i in 0..schedules {
        let mut s = seed ^ (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        if s == 0 {
            s = 0x9e37_79b9_7f4a_7c15;
        }
        let mut recorded: Vec<usize> = Vec::new();
        let outcome = run_model(build, &mut |n| {
            // Deterministic tail past the depth bound, as in exhaustive.
            let k = if recorded.len() >= max_depth {
                0
            } else {
                (xorshift64(&mut s) % n as u64) as usize
            };
            recorded.push(k);
            k
        });
        if let Some(failure) = failure_of(outcome, recorded.clone()) {
            seen.insert(recorded);
            return Report {
                schedules: i + 1,
                distinct: seen.len() as u64,
                exhausted: false,
                failure: Some(failure),
            };
        }
        seen.insert(recorded);
    }
    Report {
        schedules,
        distinct: seen.len() as u64,
        exhausted: false,
        failure: None,
    }
}

/// Replay one specific schedule (a [`Failure::schedule`] vector); picks
/// past the vector's end take choice 0.
pub fn replay(build: &Builder, schedule: &[usize]) -> Outcome {
    let mut pos = 0usize;
    run_model(build, &mut |n| {
        let k = schedule.get(pos).copied().unwrap_or(0).min(n - 1);
        pos += 1;
        k
    })
}
