//! Property sweep over indirection-table geometry (ISSUE-10 satellite):
//! padding rows hitting the zero-row, `OW < NR` edge tiles, `K = FH·FW·IC`
//! straddling the GEMM's KC chunk, asymmetric strides and pads. The
//! indirect path must be **bitwise** equal to the materialising im2col
//! baseline on every draw — both feed the same packed GEMM in the same
//! ascending-k order. check.sh runs this net on both dispatch lanes
//! (native and `IWINO_FORCE_SCALAR=1`).

use iwino_baselines::{im2col_conv_nhwc, Im2colPlan};
use iwino_indirect::indirect_conv;
use iwino_tensor::{ConvShape, Tensor4};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn indirect_bitwise_matches_im2col_over_geometry(
        n in 1usize..3,
        ih in 5usize..14,
        iw in 5usize..14,
        // 29 and 64 push K = FH·FW·IC past KC = 256 for 3×3 and 5×5 taps.
        ici in 0usize..4,
        oci in 0usize..3,
        ri in 0usize..3,
        sh in 1usize..4,
        sw in 1usize..4,
        ph in 0usize..3,
        pw in 0usize..3,
        seed in 0u64..500,
    ) {
        let ic = [1usize, 3, 29, 64][ici];
        let oc = [1usize, 5, 17][oci];
        let r = [1usize, 3, 5][ri];
        let s = ConvShape { n, ih, iw, ic, oc, fh: r, fw: r, ph, pw, sh, sw };
        prop_assume!(ih + 2 * ph >= r && iw + 2 * pw >= r);
        let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), seed + 1, -1.0, 1.0);
        let got = indirect_conv(&x, &w, &s);
        let want = im2col_conv_nhwc(&x, &w, &Im2colPlan::new(&s));
        prop_assert_eq!(got.dims(), s.y_dims());
        for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "{:?} idx {}: {:?} vs im2col {:?}", s, i, a, b
            );
        }
    }
}
