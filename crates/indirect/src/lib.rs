//! Indirect convolution (Dukhan, *The Indirect Convolution Algorithm*):
//! replace im2col's materialised patch matrix with a shape-keyed
//! **indirection table** of row offsets.
//!
//! The table holds one entry per (output pixel, filter tap): the
//! image-relative float offset of the `IC`-long channel vector that tap
//! reads, or [`GATHER_PAD`] when the tap falls in the padding. Offsets —
//! not raw pointers — keep the crate under `#![forbid(unsafe_code)]` and
//! make the table *batch-relocatable*: entries are relative to one image,
//! so a single `OH·OW × FH·FW` table serves every image in the batch (and
//! every request in a serve bucket). Its size is independent of both the
//! input-channel count and the batch, the constant memory overhead the
//! paper's im2col comparison lacks.
//!
//! Execution is one blocked GEMM: `iwino-gemm` gathers the indirected
//! A-panels straight into its packing buffers
//! ([`iwino_gemm::sgemm_gather_prepacked`]), multiplies against the
//! plan-time [`PackedB`] filter, and the row-major `C[N·OH·OW × OC]` *is*
//! the NHWC output — no copy-out. Because NHWC puts channels innermost,
//! every indirected row segment is a contiguous channel vector, and
//! arbitrary stride falls out of the table build for free.

#![forbid(unsafe_code)]

use iwino_gemm::{sgemm_gather_prepacked, GatherA, PackedB, ScratchProvider, GATHER_PAD};
use iwino_obs as obs;
use iwino_tensor::{transpose_filter_to_hwio, ConvShape, Tensor4};

/// The per-shape indirection table: `OH·OW` rows × `FH·FW` taps of
/// image-relative float offsets (or [`GATHER_PAD`]). Built once per shape
/// and cached in the engine's LRU plan next to the packed filter.
pub struct IndirectTable {
    shape: ConvShape,
    offsets: Vec<usize>,
}

impl IndirectTable {
    /// Build the table for `shape`. Reported to obs as an
    /// [`obs::Stage::IndirectSetup`] span plus an
    /// [`obs::Counter::IndirectTableBytes`] increment, so the plan-cache
    /// regression net can pin "built exactly once per shape".
    pub fn build(shape: &ConvShape) -> IndirectTable {
        let _t = obs::span(obs::Stage::IndirectSetup);
        let s = *shape;
        let (oh, ow) = (s.oh(), s.ow());
        let mut offsets = Vec::with_capacity(oh * ow * s.fh * s.fw);
        for oy in 0..oh {
            for ox in 0..ow {
                for fy in 0..s.fh {
                    let iy = (oy * s.sh + fy) as isize - s.ph as isize;
                    let row_ok = iy >= 0 && iy < s.ih as isize;
                    for fx in 0..s.fw {
                        let ix = (ox * s.sw + fx) as isize - s.pw as isize;
                        if row_ok && ix >= 0 && ix < s.iw as isize {
                            offsets.push((iy as usize * s.iw + ix as usize) * s.ic);
                        } else {
                            offsets.push(GATHER_PAD);
                        }
                    }
                }
            }
        }
        obs::add(
            obs::Counter::IndirectTableBytes,
            (offsets.len() * std::mem::size_of::<usize>()) as u64,
        );
        IndirectTable { shape: s, offsets }
    }

    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The raw table, row-major `(oy·OW + ox) · FH·FW + (fy·FW + fx)`.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Resident size, for plan-cache accounting.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
    }

    /// The [`GatherA`] view of input `xs` (the whole NHWC batch slice).
    fn gather<'a>(&'a self, xs: &'a [f32]) -> GatherA<'a> {
        let s = &self.shape;
        GatherA {
            base: xs,
            offsets: &self.offsets,
            taps: s.fh * s.fw,
            seg: s.ic,
            rows_per_block: s.oh() * s.ow(),
            block_stride: s.ih * s.iw * s.ic,
        }
    }
}

/// Indirect convolution, NHWC, against a filter already packed into GEMM
/// panels — the serving-engine entry point: the engine's plan caches both
/// the [`IndirectTable`] and the [`PackedB`], and its arena recycles the
/// A-panel buffers, so steady-state calls do no heap allocation beyond the
/// output tensor. One blocked GEMM covers the whole batch; MC-row-block
/// parallelism comes from the GEMM driver's `SliceParts` split.
pub fn indirect_conv_nhwc_packed(
    x: &Tensor4<f32>,
    pb: &PackedB,
    table: &IndirectTable,
    scratch: &dyn ScratchProvider,
) -> Tensor4<f32> {
    let s = *table.shape();
    assert_eq!(x.dims(), s.x_dims());
    assert_eq!(pb.k(), s.fh * s.fw * s.ic, "packed filter K mismatch");
    assert_eq!(pb.n(), s.oc, "packed filter OC mismatch");
    let _b = obs::span(obs::Stage::Baseline);
    obs::add(obs::Counter::Flops, s.flops() as u64);
    let mut y = Tensor4::<f32>::zeros(s.y_dims());
    let g = table.gather(x.as_slice());
    // C[N·OH·OW × OC] row-major is exactly the NHWC output layout.
    sgemm_gather_prepacked(s.n * s.oh() * s.ow(), &g, pb, y.as_mut_slice(), false, scratch);
    y
}

/// One-shot indirect convolution: builds the table and packs the native
/// `OC×FH×FW×IC` filter per call. Library callers with repeated shapes
/// should go through the engine, which caches both in its LRU plan.
pub fn indirect_conv(x: &Tensor4<f32>, w: &Tensor4<f32>, shape: &ConvShape) -> Tensor4<f32> {
    assert_eq!(w.dims(), shape.w_dims(), "filter dims");
    let table = IndirectTable::build(shape);
    let wmat = transpose_filter_to_hwio(w);
    let pb = PackedB::pack(shape.fh * shape.fw * shape.ic, shape.oc, wmat.as_slice());
    indirect_conv_nhwc_packed(x, &pb, &table, &iwino_gemm::AllocScratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_geometry_marks_padding_and_maps_interior() {
        // 3×3 filter, pad 1, stride 2 on a 5×5 input: OH = OW = 3.
        let s = ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 5, 2, 3, 3)
        };
        let t = IndirectTable::build(&s);
        let taps = s.fh * s.fw;
        assert_eq!(t.offsets().len(), s.oh() * s.ow() * taps);
        assert_eq!(t.resident_bytes(), std::mem::size_of_val(t.offsets()));
        // Output pixel (0,0), tap (0,0) reads input (-1,-1): padding.
        assert_eq!(t.offsets()[0], GATHER_PAD);
        // Output pixel (0,0), tap (1,1) reads input (0,0).
        assert_eq!(t.offsets()[s.fw + 1], 0);
        // Output pixel (1,1), tap (0,0) reads input (1,1) = offset (1·5+1)·IC.
        let px = (s.ow() + 1) * taps;
        assert_eq!(t.offsets()[px], (s.iw + 1) * s.ic);
        // Every non-PAD entry stays inside one image.
        let img = s.ih * s.iw * s.ic;
        assert!(t.offsets().iter().all(|&o| o == GATHER_PAD || o + s.ic <= img));
    }

    #[test]
    fn matches_im2col_bitwise_across_strides() {
        // Both paths drive the same packed GEMM with the same ascending-k
        // accumulation order, so indirect output must be bitwise equal to
        // the materialising im2col baseline — unit stride and strided.
        for s in [
            ConvShape::square(2, 9, 3, 5, 3),
            ConvShape {
                sh: 2,
                sw: 2,
                ..ConvShape::square(1, 11, 4, 7, 3)
            },
            ConvShape {
                sh: 3,
                sw: 3,
                ..ConvShape::square(2, 13, 2, 4, 5)
            },
            ConvShape {
                sh: 2,
                sw: 3,
                ..ConvShape::square(1, 12, 3, 8, 3)
            },
        ] {
            let x = Tensor4::<f32>::random(s.x_dims(), 91, -1.0, 1.0);
            let w = Tensor4::<f32>::random(s.w_dims(), 92, -1.0, 1.0);
            let got = indirect_conv(&x, &w, &s);
            let plan = iwino_baselines::Im2colPlan::new(&s);
            let want = iwino_baselines::im2col_conv_nhwc(&x, &w, &plan);
            assert_eq!(got.dims(), s.y_dims());
            for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{s:?} idx {i}: {a:?} vs im2col {b:?}");
            }
        }
    }

    #[test]
    fn strided_shape_tracks_f64_direct_reference() {
        let s = ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 10, 6, 4, 3)
        };
        let x = Tensor4::<f32>::random(s.x_dims(), 93, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 94, -1.0, 1.0);
        let got = indirect_conv(&x, &w, &s);
        let want = iwino_baselines::direct_conv_f64_ref(&x, &w, &s);
        let mut max = 0.0f64;
        for (&a, &b) in got.as_slice().iter().zip(want.as_slice()) {
            max = max.max((a as f64 - b).abs());
        }
        assert!(max < 1e-3, "max mixed-precision error {max}");
    }
}
