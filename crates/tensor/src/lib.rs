//! 4-D tensors in NHWC layout plus the filter layouts, shape bookkeeping,
//! layout conversion and error statistics used throughout the
//! Im2col-Winograd reproduction.
//!
//! Terminology follows the paper (Table 1):
//!
//! * ifms `X ∈ R^{N×IH×IW×IC}` — input feature maps, NHWC;
//! * filters `W ∈ R^{OC×FH×FW×IC}` — and the transposed `FH×FW×IC×OC`
//!   layout used by forward convolution (§5.1);
//! * ofms `Y ∈ R^{N×OH×OW×OC}`.

#![forbid(unsafe_code)]

pub mod layout;
pub mod shape;
pub mod stats;
pub mod tensor5;

pub use layout::{chwn_to_nhwc, nchw_to_nhwc, nhwc_to_chwn, nhwc_to_nchw, rotate_filter_180, transpose_filter_to_hwio};
pub use shape::ConvShape;
pub use stats::{max_mixed_error, relative_error_histogram, ErrorStats};
pub use tensor5::{Conv3dShape, Tensor5};

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Element scalar for tensors: `f32` for the production kernels, `f64` for
/// the reference convolution used as ground truth in Experiment 2.
pub trait Scalar: Copy + Default + PartialOrd + Send + Sync + 'static {
    const ZERO: Self;
    const ONE: Self;
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn mul_add_(self, a: Self, b: Self) -> Self;
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn mul_add_(self, a: f32, b: f32) -> f32 {
        a.mul_add(b, self)
    }
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    fn from_f64(v: f64) -> f64 {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn mul_add_(self, a: f64, b: f64) -> f64 {
        a.mul_add(b, self)
    }
}

/// A dense 4-D tensor. The axis meaning is by convention of the caller
/// (NHWC for feature maps, OC·FH·FW·IC or FH·FW·IC·OC for filters); helper
/// constructors make the intent explicit.
#[derive(Clone, PartialEq)]
pub struct Tensor4<T: Scalar = f32> {
    dims: [usize; 4],
    data: Vec<T>,
}

impl<T: Scalar> Tensor4<T> {
    /// Zero-filled tensor of shape `dims`.
    pub fn zeros(dims: [usize; 4]) -> Self {
        let len = dims.iter().product();
        Tensor4 {
            dims,
            data: vec![T::ZERO; len],
        }
    }

    /// Build from an existing buffer; `data.len()` must equal the volume.
    pub fn from_vec(dims: [usize; 4], data: Vec<T>) -> Self {
        assert_eq!(data.len(), dims.iter().product::<usize>(), "shape/volume mismatch");
        Tensor4 { dims, data }
    }

    /// NHWC feature-map constructor (documentation aid).
    pub fn nhwc(n: usize, h: usize, w: usize, c: usize) -> Self {
        Self::zeros([n, h, w, c])
    }

    /// Filter in the paper's native `OC×FH×FW×IC` layout.
    pub fn filter_ohwi(oc: usize, fh: usize, fw: usize, ic: usize) -> Self {
        Self::zeros([oc, fh, fw, ic])
    }

    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major strides for the current dims.
    pub fn strides(&self) -> [usize; 4] {
        let d = self.dims;
        [d[1] * d[2] * d[3], d[2] * d[3], d[3], 1]
    }

    #[inline]
    pub fn offset(&self, i: usize, j: usize, k: usize, l: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2] && l < self.dims[3]);
        ((i * self.dims[1] + j) * self.dims[2] + k) * self.dims[3] + l
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize, l: usize) -> T {
        self.data[self.offset(i, j, k, l)]
    }

    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize, k: usize, l: usize) -> &mut T {
        let o = self.offset(i, j, k, l);
        &mut self.data[o]
    }

    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Fill with i.i.d. uniform values in `[lo, hi)` from a seeded RNG.
    /// Experiment 2 uses `[1, 2)` exactly as §6.2.1 specifies.
    pub fn fill_uniform(&mut self, seed: u64, lo: f64, hi: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(lo, hi);
        for v in &mut self.data {
            *v = T::from_f64(dist.sample(&mut rng));
        }
    }

    /// Constructor convenience: `zeros` then `fill_uniform`.
    pub fn random(dims: [usize; 4], seed: u64, lo: f64, hi: f64) -> Self {
        let mut t = Self::zeros(dims);
        t.fill_uniform(seed, lo, hi);
        t
    }

    /// Elementwise conversion to another scalar type.
    pub fn cast<U: Scalar>(&self) -> Tensor4<U> {
        Tensor4 {
            dims: self.dims,
            data: self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// Map every element.
    pub fn map(&self, f: impl Fn(T) -> T) -> Self {
        Tensor4 {
            dims: self.dims,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl<T: Scalar> std::fmt::Debug for Tensor4<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor4{:?} ({} elems)", self.dims, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor4::<f32>::zeros([2, 3, 4, 5]);
        *t.at_mut(1, 2, 3, 4) = 7.0;
        assert_eq!(t.at(1, 2, 3, 4), 7.0);
        assert_eq!(t.offset(0, 0, 0, 1), 1);
        assert_eq!(t.offset(0, 0, 1, 0), 5);
        assert_eq!(t.offset(0, 1, 0, 0), 20);
        assert_eq!(t.offset(1, 0, 0, 0), 60);
        assert_eq!(t.strides(), [60, 20, 5, 1]);
    }

    #[test]
    fn fill_uniform_is_deterministic_and_in_range() {
        let a = Tensor4::<f32>::random([1, 4, 4, 3], 42, 1.0, 2.0);
        let b = Tensor4::<f32>::random([1, 4, 4, 3], 42, 1.0, 2.0);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (1.0..2.0).contains(&v)));
        let c = Tensor4::<f32>::random([1, 4, 4, 3], 43, 1.0, 2.0);
        assert_ne!(a, c);
    }

    #[test]
    fn cast_preserves_values() {
        let a = Tensor4::<f32>::random([1, 2, 2, 2], 1, -1.0, 1.0);
        let d = a.cast::<f64>();
        for (x, y) in a.as_slice().iter().zip(d.as_slice()) {
            assert_eq!(*x as f64, *y);
        }
        let back = d.cast::<f32>();
        assert_eq!(a, back);
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_volume() {
        let _ = Tensor4::<f32>::from_vec([2, 2, 2, 2], vec![0.0; 15]);
    }
}
