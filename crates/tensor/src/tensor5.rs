//! 5-D tensors in NDHWC layout, for the ND extension of Im2col-Winograd
//! (§4.2: "Im2col-Winograd can be applied to ND convolution, by expanding
//! Stage1 Im2col to ND, while remaining Stage2 unchanged").

use crate::Scalar;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense 5-D tensor (`N×D×H×W×C` for volumetric feature maps,
/// `OC×FD×FH×FW×IC` for 3-D filters).
#[derive(Clone, PartialEq)]
pub struct Tensor5<T: Scalar = f32> {
    dims: [usize; 5],
    data: Vec<T>,
}

impl<T: Scalar> Tensor5<T> {
    pub fn zeros(dims: [usize; 5]) -> Self {
        let len = dims.iter().product();
        Tensor5 {
            dims,
            data: vec![T::ZERO; len],
        }
    }

    pub fn from_vec(dims: [usize; 5], data: Vec<T>) -> Self {
        assert_eq!(data.len(), dims.iter().product::<usize>(), "shape/volume mismatch");
        Tensor5 { dims, data }
    }

    pub fn random(dims: [usize; 5], seed: u64, lo: f64, hi: f64) -> Self {
        let mut t = Self::zeros(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(lo, hi);
        for v in &mut t.data {
            *v = T::from_f64(dist.sample(&mut rng));
        }
        t
    }

    pub fn dims(&self) -> [usize; 5] {
        self.dims
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn offset(&self, i: usize, j: usize, k: usize, l: usize, m: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2] && l < self.dims[3] && m < self.dims[4]);
        (((i * self.dims[1] + j) * self.dims[2] + k) * self.dims[3] + l) * self.dims[4] + m
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize, l: usize, m: usize) -> T {
        self.data[self.offset(i, j, k, l, m)]
    }

    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize, k: usize, l: usize, m: usize) -> &mut T {
        let o = self.offset(i, j, k, l, m);
        &mut self.data[o]
    }

    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    pub fn cast<U: Scalar>(&self) -> Tensor5<U> {
        Tensor5 {
            dims: self.dims,
            data: self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

impl<T: Scalar> std::fmt::Debug for Tensor5<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor5{:?} ({} elems)", self.dims, self.data.len())
    }
}

/// Shape of a unit-stride 3-D convolution,
/// `Y[N, OD, OH, OW, OC] = X[N, ID, IH, IW, IC] ∗ W[OC, FD, FH, FW, IC]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv3dShape {
    pub n: usize,
    pub id: usize,
    pub ih: usize,
    pub iw: usize,
    pub ic: usize,
    pub oc: usize,
    pub fd: usize,
    pub fh: usize,
    pub fw: usize,
    pub pd: usize,
    pub ph: usize,
    pub pw: usize,
}

impl Conv3dShape {
    /// Cubic unit-stride shape with an `r×r×r` filter and `⌊r/2⌋` padding.
    pub fn cube(n: usize, dhw: usize, ic: usize, oc: usize, r: usize) -> Self {
        Conv3dShape {
            n,
            id: dhw,
            ih: dhw,
            iw: dhw,
            ic,
            oc,
            fd: r,
            fh: r,
            fw: r,
            pd: r / 2,
            ph: r / 2,
            pw: r / 2,
        }
    }

    pub fn od(&self) -> usize {
        self.id + 2 * self.pd + 1 - self.fd
    }

    pub fn oh(&self) -> usize {
        self.ih + 2 * self.ph + 1 - self.fh
    }

    pub fn ow(&self) -> usize {
        self.iw + 2 * self.pw + 1 - self.fw
    }

    pub fn x_dims(&self) -> [usize; 5] {
        [self.n, self.id, self.ih, self.iw, self.ic]
    }

    pub fn w_dims(&self) -> [usize; 5] {
        [self.oc, self.fd, self.fh, self.fw, self.ic]
    }

    pub fn y_dims(&self) -> [usize; 5] {
        [self.n, self.od(), self.oh(), self.ow(), self.oc]
    }

    /// Standard-algorithm FLOPs: `2·N·OC·OD·OH·OW·FD·FH·FW·IC`.
    pub fn flops(&self) -> f64 {
        2.0 * (self.n * self.oc * self.od() * self.oh() * self.ow()) as f64
            * (self.fd * self.fh * self.fw * self.ic) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing() {
        let mut t = Tensor5::<f32>::zeros([2, 3, 4, 5, 6]);
        *t.at_mut(1, 2, 3, 4, 5) = 9.0;
        assert_eq!(t.at(1, 2, 3, 4, 5), 9.0);
        assert_eq!(t.offset(0, 0, 0, 0, 1), 1);
        assert_eq!(t.offset(0, 0, 0, 1, 0), 6);
        assert_eq!(t.offset(0, 0, 1, 0, 0), 30);
        assert_eq!(t.offset(0, 1, 0, 0, 0), 120);
        assert_eq!(t.offset(1, 0, 0, 0, 0), 360);
    }

    #[test]
    fn cube_shape_same_padding() {
        for r in [3usize, 5, 7] {
            let s = Conv3dShape::cube(1, 10, 4, 4, r);
            assert_eq!((s.od(), s.oh(), s.ow()), (10, 10, 10));
        }
    }

    #[test]
    fn flops_formula() {
        let s = Conv3dShape::cube(2, 4, 3, 5, 3);
        assert_eq!(s.flops(), 2.0 * (2 * 5 * 4 * 4 * 4) as f64 * (27 * 3) as f64);
    }

    #[test]
    fn random_deterministic() {
        let a = Tensor5::<f32>::random([1, 2, 2, 2, 2], 9, -1.0, 1.0);
        let b = Tensor5::<f32>::random([1, 2, 2, 2, 2], 9, -1.0, 1.0);
        assert_eq!(a, b);
    }
}
