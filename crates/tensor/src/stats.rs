//! Error statistics for the accuracy experiment (§6.2).
//!
//! The paper quantifies accuracy as the *average relative error* against an
//! FP64-CPU convolution, and Figure 10 plots the distribution of relative
//! errors. [`ErrorStats`] computes both from a result tensor and a ground
//! truth tensor.

use crate::{Scalar, Tensor4};

/// Summary statistics of `|got − want| / |want|` over all elements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorStats {
    /// Mean relative error (the paper's Table 3 metric).
    pub mean: f64,
    /// Maximum relative error.
    pub max: f64,
    /// Root-mean-square relative error.
    pub rms: f64,
    /// Number of elements compared.
    pub count: usize,
}

impl ErrorStats {
    /// Compare a result against the ground truth element by element.
    ///
    /// Elements whose true value is exactly zero are compared by absolute
    /// error instead (they cannot occur in the paper's uniform-[1,2] setup,
    /// where every output is a sum of positive products, but the library
    /// should not divide by zero on other inputs).
    pub fn between<T: Scalar, U: Scalar>(got: &Tensor4<T>, want: &Tensor4<U>) -> ErrorStats {
        assert_eq!(got.dims(), want.dims(), "shape mismatch");
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut max = 0.0f64;
        let n = got.len();
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            let g = g.to_f64();
            let w = w.to_f64();
            let rel = if w == 0.0 { (g - w).abs() } else { ((g - w) / w).abs() };
            sum += rel;
            sum_sq += rel * rel;
            if rel > max {
                max = rel;
            }
        }
        ErrorStats {
            mean: if n > 0 { sum / n as f64 } else { 0.0 },
            max,
            rms: if n > 0 { (sum_sq / n as f64).sqrt() } else { 0.0 },
            count: n,
        }
    }
}

/// Maximum *mixed* error `|got − want| / (|want| + 1)` over all elements —
/// robust to near-zero true values (where the pure relative error of a
/// correct f32 result is unbounded due to cancellation). Used by tests that
/// feed sign-varying inputs; the paper's Experiment 2 avoids the issue by
/// sampling inputs from `[1, 2)`.
pub fn max_mixed_error<T: Scalar, U: Scalar>(got: &Tensor4<T>, want: &Tensor4<U>) -> f64 {
    assert_eq!(got.dims(), want.dims(), "shape mismatch");
    got.as_slice()
        .iter()
        .zip(want.as_slice())
        .map(|(g, w)| {
            let (g, w) = (g.to_f64(), w.to_f64());
            (g - w).abs() / (w.abs() + 1.0)
        })
        .fold(0.0, f64::max)
}

/// Histogram of relative errors for Figure 10: `bins` equal-width buckets
/// over `[0, hi)`, returning the *percentage* of elements per bucket
/// (Figure 10's y-axis is %). Errors ≥ `hi` land in the last bucket.
pub fn relative_error_histogram<T: Scalar, U: Scalar>(
    got: &Tensor4<T>,
    want: &Tensor4<U>,
    bins: usize,
    hi: f64,
) -> Vec<f64> {
    assert_eq!(got.dims(), want.dims());
    assert!(bins > 0 && hi > 0.0);
    let mut counts = vec![0usize; bins];
    let n = got.len();
    for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
        let g = g.to_f64();
        let w = w.to_f64();
        let rel = if w == 0.0 { (g - w).abs() } else { ((g - w) / w).abs() };
        let b = ((rel / hi * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    counts.into_iter().map(|c| 100.0 * c as f64 / n.max(1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_is_zero_error() {
        let a = Tensor4::<f32>::random([1, 2, 2, 2], 3, 1.0, 2.0);
        let s = ErrorStats::between(&a, &a);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn known_relative_errors() {
        let want = Tensor4::<f64>::from_vec([1, 1, 1, 2], vec![1.0, 2.0]);
        let got = Tensor4::<f64>::from_vec([1, 1, 1, 2], vec![1.1, 1.9]);
        let s = ErrorStats::between(&got, &want);
        assert!((s.mean - (0.1 + 0.05) / 2.0).abs() < 1e-12);
        assert!((s.max - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_uses_absolute_error() {
        let want = Tensor4::<f64>::from_vec([1, 1, 1, 1], vec![0.0]);
        let got = Tensor4::<f64>::from_vec([1, 1, 1, 1], vec![0.25]);
        let s = ErrorStats::between(&got, &want);
        assert_eq!(s.mean, 0.25);
    }

    #[test]
    fn histogram_sums_to_100_percent() {
        let want = Tensor4::<f32>::random([1, 8, 8, 4], 5, 1.0, 2.0);
        let got = want.map(|v| v * 1.0001);
        let h = relative_error_histogram(&got, &want, 10, 1e-3);
        let total: f64 = h.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        // All errors ≈ 1e-4 land in the first couple of buckets of [0, 1e-3)
        // split into 10 (f32 rounding scatters them around the 1e-4 mark).
        assert!(h[0] + h[1] + h[2] > 99.0, "{h:?}");
        assert!(h[9] == 0.0, "{h:?}");
    }

    #[test]
    fn histogram_clamps_outliers_into_last_bin() {
        let want = Tensor4::<f64>::from_vec([1, 1, 1, 2], vec![1.0, 1.0]);
        let got = Tensor4::<f64>::from_vec([1, 1, 1, 2], vec![1.0, 3.0]);
        let h = relative_error_histogram(&got, &want, 4, 0.1);
        assert_eq!(h[0], 50.0);
        assert_eq!(h[3], 50.0);
    }
}
