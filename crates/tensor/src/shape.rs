//! Convolution shape bookkeeping (Table 1 notation).

/// The shape of one 2-D convolution: `Y[N, OH, OW, OC] = X[N, IH, IW, IC] ∗
/// W[OC, FH, FW, IC]` with padding `(ph, pw)` and stride `(sh, sw)`.
///
/// Im2col-Winograd itself handles the unit-stride case; non-unit strides are
/// carried so the GEMM fallback (and the `nn` crate's down-sampling layers)
/// share this type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvShape {
    pub n: usize,
    pub ih: usize,
    pub iw: usize,
    pub ic: usize,
    pub oc: usize,
    pub fh: usize,
    pub fw: usize,
    pub ph: usize,
    pub pw: usize,
    pub sh: usize,
    pub sw: usize,
}

impl ConvShape {
    /// Unit-stride shape (the case Im2col-Winograd accelerates).
    #[allow(clippy::too_many_arguments)] // mirrors the paper's (N, IH, IW, IC, OC, FH, FW, PH, PW) tuple
    pub fn unit(
        n: usize,
        ih: usize,
        iw: usize,
        ic: usize,
        oc: usize,
        fh: usize,
        fw: usize,
        ph: usize,
        pw: usize,
    ) -> Self {
        ConvShape {
            n,
            ih,
            iw,
            ic,
            oc,
            fh,
            fw,
            ph,
            pw,
            sh: 1,
            sw: 1,
        }
    }

    /// Square unit-stride shape with `r×r` filter and the "same-ish" padding
    /// `⌊r/2⌋` the paper's experiments use (§6).
    pub fn square(n: usize, hw: usize, ic: usize, oc: usize, r: usize) -> Self {
        Self::unit(n, hw, hw, ic, oc, r, r, r / 2, r / 2)
    }

    pub fn oh(&self) -> usize {
        assert!(self.ih + 2 * self.ph >= self.fh, "filter taller than padded input");
        (self.ih + 2 * self.ph - self.fh) / self.sh + 1
    }

    pub fn ow(&self) -> usize {
        assert!(self.iw + 2 * self.pw >= self.fw, "filter wider than padded input");
        (self.iw + 2 * self.pw - self.fw) / self.sw + 1
    }

    pub fn is_unit_stride(&self) -> bool {
        self.sh == 1 && self.sw == 1
    }

    /// Input dims `[N, IH, IW, IC]`.
    pub fn x_dims(&self) -> [usize; 4] {
        [self.n, self.ih, self.iw, self.ic]
    }

    /// Filter dims in the native `OC×FH×FW×IC` layout.
    pub fn w_dims(&self) -> [usize; 4] {
        [self.oc, self.fh, self.fw, self.ic]
    }

    /// Output dims `[N, OH, OW, OC]`.
    pub fn y_dims(&self) -> [usize; 4] {
        [self.n, self.oh(), self.ow(), self.oc]
    }

    /// FLOPs of the standard algorithm: `2·N·OC·OH·OW·FH·FW·IC` (§6.1.1).
    /// Gflop/s figures in the paper divide this count by wall time for every
    /// algorithm, Winograd included.
    pub fn flops(&self) -> f64 {
        2.0 * self.n as f64
            * self.oc as f64
            * self.oh() as f64
            * self.ow() as f64
            * self.fh as f64
            * self.fw as f64
            * self.ic as f64
    }

    /// A shape quoted by its ofms, the format Figures 8/9 use
    /// (`N×OH×OW×OC`), for square feature maps: recover the input dims from
    /// the output dims for a unit-stride `r×r`/`⌊r/2⌋`-padding convolution.
    pub fn from_ofms(n: usize, oh: usize, ow: usize, oc: usize, ic: usize, r: usize) -> Self {
        let p = r / 2;
        // oh = ih + 2p − r + 1  ⟹  ih = oh + r − 1 − 2p
        let ih = oh + r - 1 - 2 * p;
        let iw = ow + r - 1 - 2 * p;
        ConvShape {
            n,
            ih,
            iw,
            ic,
            oc,
            fh: r,
            fw: r,
            ph: p,
            pw: p,
            sh: 1,
            sw: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_keeps_size_for_odd_filters() {
        for r in [3usize, 5, 7, 9] {
            let s = ConvShape::square(2, 32, 16, 16, r);
            assert_eq!(s.oh(), 32, "r = {r}");
            assert_eq!(s.ow(), 32);
        }
    }

    #[test]
    fn even_filters_shrink_by_one_with_floor_padding() {
        for r in [2usize, 4, 6, 8] {
            let s = ConvShape::square(1, 32, 8, 8, r);
            assert_eq!(s.oh(), 32 + 2 * (r / 2) - r + 1);
        }
    }

    #[test]
    fn from_ofms_roundtrip() {
        for r in 2..=9usize {
            let s = ConvShape::from_ofms(32, 64, 64, 128, 64, r);
            assert_eq!(s.oh(), 64, "r = {r}");
            assert_eq!(s.ow(), 64);
            assert_eq!(s.y_dims(), [32, 64, 64, 128]);
        }
    }

    #[test]
    fn flops_formula() {
        let s = ConvShape::unit(1, 4, 4, 2, 3, 3, 3, 1, 1);
        assert_eq!(s.flops(), 2.0 * 3.0 * 4.0 * 4.0 * 3.0 * 3.0 * 2.0);
    }

    #[test]
    fn strided_output_dims() {
        let s = ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 32, 8, 8, 3)
        };
        assert_eq!(s.oh(), 16);
        assert_eq!(s.ow(), 16);
    }

    #[test]
    #[should_panic]
    fn oversized_filter_panics() {
        let s = ConvShape::unit(1, 2, 2, 1, 1, 5, 5, 0, 0);
        let _ = s.oh();
    }
}
