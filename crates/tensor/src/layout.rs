//! Layout transformations: filter transposition (§5.1), 180° filter rotation
//! (deconvolution, §5.1), and NHWC ⇄ NCHW conversion (baseline comparisons).

use crate::{Scalar, Tensor4};

/// Transpose filters from the native `OC×FH×FW×IC` layout to the
/// `FH×FW×IC×OC` layout the forward kernels consume (§5.1: "filters are
/// transposed into FH×FW×IC×OC format, to achieve more vectorized and
/// continuous data loads").
pub fn transpose_filter_to_hwio<T: Scalar>(w: &Tensor4<T>) -> Tensor4<T> {
    let [oc, fh, fw, ic] = w.dims();
    let mut out = Tensor4::zeros([fh, fw, ic, oc]);
    for o in 0..oc {
        for h in 0..fh {
            for x in 0..fw {
                for i in 0..ic {
                    *out.at_mut(h, x, i, o) = w.at(o, h, x, i);
                }
            }
        }
    }
    out
}

/// Rotate a filter bank by 180° in the spatial axes and swap the channel
/// roles (`OC×FH×FW×IC → IC×FH×FW×OC` with reversed `fh`/`fw`). This is the
/// filter used by deconvolution / backward-data: the paper folds this
/// rotation into the filter transformation (§5.1); this standalone version
/// is the reference the fused path is tested against.
pub fn rotate_filter_180<T: Scalar>(w: &Tensor4<T>) -> Tensor4<T> {
    let [oc, fh, fw, ic] = w.dims();
    let mut out = Tensor4::zeros([ic, fh, fw, oc]);
    for o in 0..oc {
        for h in 0..fh {
            for x in 0..fw {
                for i in 0..ic {
                    *out.at_mut(i, fh - 1 - h, fw - 1 - x, o) = w.at(o, h, x, i);
                }
            }
        }
    }
    out
}

/// Convert a feature map from NHWC to NCHW.
pub fn nhwc_to_nchw<T: Scalar>(x: &Tensor4<T>) -> Tensor4<T> {
    let [n, h, w, c] = x.dims();
    let mut out = Tensor4::zeros([n, c, h, w]);
    for b in 0..n {
        for i in 0..h {
            for j in 0..w {
                for k in 0..c {
                    *out.at_mut(b, k, i, j) = x.at(b, i, j, k);
                }
            }
        }
    }
    out
}

/// Convert a feature map from NCHW to NHWC.
pub fn nchw_to_nhwc<T: Scalar>(x: &Tensor4<T>) -> Tensor4<T> {
    let [n, c, h, w] = x.dims();
    let mut out = Tensor4::zeros([n, h, w, c]);
    for b in 0..n {
        for k in 0..c {
            for i in 0..h {
                for j in 0..w {
                    *out.at_mut(b, i, j, k) = x.at(b, k, i, j);
                }
            }
        }
    }
    out
}

/// Convert a feature map from NHWC to CHWN (the third layout the paper's
/// conclusion mentions as a porting target).
pub fn nhwc_to_chwn<T: Scalar>(x: &Tensor4<T>) -> Tensor4<T> {
    let [n, h, w, c] = x.dims();
    let mut out = Tensor4::zeros([c, h, w, n]);
    for b in 0..n {
        for i in 0..h {
            for j in 0..w {
                for k in 0..c {
                    *out.at_mut(k, i, j, b) = x.at(b, i, j, k);
                }
            }
        }
    }
    out
}

/// Convert a feature map from CHWN back to NHWC.
pub fn chwn_to_nhwc<T: Scalar>(x: &Tensor4<T>) -> Tensor4<T> {
    let [c, h, w, n] = x.dims();
    let mut out = Tensor4::zeros([n, h, w, c]);
    for k in 0..c {
        for i in 0..h {
            for j in 0..w {
                for b in 0..n {
                    *out.at_mut(b, i, j, k) = x.at(k, i, j, b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_filter_moves_entries() {
        let mut w = Tensor4::<f32>::filter_ohwi(2, 3, 3, 4);
        *w.at_mut(1, 2, 0, 3) = 9.0;
        let t = transpose_filter_to_hwio(&w);
        assert_eq!(t.dims(), [3, 3, 4, 2]);
        assert_eq!(t.at(2, 0, 3, 1), 9.0);
    }

    #[test]
    fn rotate_180_twice_swaps_back() {
        let w = Tensor4::<f32>::random([3, 2, 5, 4], 7, -1.0, 1.0);
        let r = rotate_filter_180(&w);
        assert_eq!(r.dims(), [4, 2, 5, 3]);
        let rr = rotate_filter_180(&r);
        assert_eq!(rr, w);
    }

    #[test]
    fn rotate_180_entry_mapping() {
        let mut w = Tensor4::<f32>::filter_ohwi(1, 3, 3, 1);
        *w.at_mut(0, 0, 0, 0) = 5.0;
        let r = rotate_filter_180(&w);
        assert_eq!(r.at(0, 2, 2, 0), 5.0);
    }

    #[test]
    fn nhwc_chwn_roundtrip() {
        let x = Tensor4::<f32>::random([2, 3, 4, 5], 13, -2.0, 2.0);
        let chwn = nhwc_to_chwn(&x);
        assert_eq!(chwn.dims(), [5, 3, 4, 2]);
        assert_eq!(chwn_to_nhwc(&chwn), x);
        assert_eq!(chwn.at(4, 2, 3, 1), x.at(1, 2, 3, 4));
    }

    #[test]
    fn nhwc_nchw_roundtrip() {
        let x = Tensor4::<f32>::random([2, 3, 4, 5], 11, -2.0, 2.0);
        let nchw = nhwc_to_nchw(&x);
        assert_eq!(nchw.dims(), [2, 5, 3, 4]);
        assert_eq!(nchw_to_nhwc(&nchw), x);
        // Spot-check one entry.
        assert_eq!(nchw.at(1, 4, 2, 3), x.at(1, 2, 3, 4));
    }
}
