//! The §5.3 "simplified data transformation".
//!
//! For the paper's interpolation-point ordering, the rows of `G` and `Dᵀ`
//! associated with points `+p` and `−p` are adjacent and satisfy: equal
//! entries at even column positions, opposite entries at odd positions
//! (powers of `−p` flip sign exactly at odd exponents, and the Lagrange
//! numerator polynomials over a symmetric point set inherit the same
//! even/odd structure). Both rows can therefore be produced from one even
//! partial sum `e` and one odd partial sum `o` as `e + o` / `e − o`,
//! reusing every multiplication — "reducing the number of necessary
//! multiplications by nearly half" (§5.3).
//!
//! [`PairedTransform`] detects the pairing from an arbitrary rational
//! matrix, provides f32/f64 executors, and reports the multiplication count
//! used by the `ablation-transforms` experiment.

use crate::Matrix;
use iwino_simd as simd;

/// Vector lane width of the strided executors: 8 f32 = one 256-bit register.
/// Must equal `iwino_core::plan::LANE` (checked by a test there); the kernels
/// size their channel panels in multiples of it so the lane loops below run
/// `chunks_exact` with no per-chunk remainder handling.
pub const LANE: usize = 8;

/// Upper bound on the transform dimension `α` the strided executor's stack
/// coefficient buffer holds. Every kernel in this repo has `α ≤ 16`; the
/// headroom keeps the bound out of the way of experiments.
const MAX_COLS: usize = 64;

/// Channel-chunk width of the strided executor: 8 lanes. The accumulators
/// are `[f32; CHUNK]` stack arrays, sized so the per-coefficient loop
/// overhead (zero-skip branch, slice bounds) amortises over a long
/// vectorised inner loop — at [`LANE`]-sized chunks that overhead is paid
/// once per 256-bit op and dominates the transform.
const CHUNK: usize = 8 * LANE;

// The chunk geometry is shared with the dispatched microkernels: a
// `transform_step` entry accepts any width up to the SIMD crate's chunk,
// and both crates must agree on the lane width the blocks are cut to.
const _: () = assert!(
    CHUNK == simd::TRANSFORM_CHUNK,
    "paired executor chunk must match iwino-simd"
);
const _: () = assert!(LANE == simd::LANE, "paired executor lane width must match iwino-simd");

/// One step of a paired transform plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanStep {
    /// Rows `row` and `row + 1` are produced together from shared partial sums.
    Pair { row: usize },
    /// Row `row` is produced by a plain dot product.
    Single { row: usize },
}

/// A transform matrix together with its even/odd row-pairing plan.
#[derive(Clone, Debug)]
pub struct PairedTransform {
    rows: usize,
    cols: usize,
    /// Row-major f64 copy of the source matrix (exact for all paper entries).
    data: Vec<f64>,
    plan: Vec<PlanStep>,
}

impl PairedTransform {
    /// Detect adjacent row pairs with the even/odd mirror structure.
    pub fn from_matrix(m: &Matrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut plan = Vec::new();
        let mut i = 0;
        while i < rows {
            if i + 1 < rows && Self::is_mirror_pair(m, i) {
                plan.push(PlanStep::Pair { row: i });
                i += 2;
            } else {
                plan.push(PlanStep::Single { row: i });
                i += 1;
            }
        }
        PairedTransform {
            rows,
            cols,
            data: m.to_f64(),
            plan,
        }
    }

    fn is_mirror_pair(m: &Matrix, i: usize) -> bool {
        (0..m.cols()).all(|j| {
            let a = m[(i, j)];
            let b = m[(i + 1, j)];
            if j % 2 == 0 {
                a == b
            } else {
                a == -b
            }
        })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn plan(&self) -> &[PlanStep] {
        &self.plan
    }

    /// Number of row pairs found.
    pub fn pair_count(&self) -> usize {
        self.plan.iter().filter(|s| matches!(s, PlanStep::Pair { .. })).count()
    }

    #[inline]
    fn coeff(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Multiplications performed per transformed vector when using the plan:
    /// paired rows pay for their non-trivial coefficients once.
    pub fn mul_count(&self) -> usize {
        let is_trivial = |c: f64| c == 0.0 || c == 1.0 || c == -1.0;
        self.plan
            .iter()
            .map(|step| match *step {
                PlanStep::Pair { row } => (0..self.cols).filter(|&j| !is_trivial(self.coeff(row, j))).count(),
                PlanStep::Single { row } => (0..self.cols).filter(|&j| !is_trivial(self.coeff(row, j))).count(),
            })
            .sum()
    }

    /// Apply the transform to a single f32 vector: `out = M · x`.
    pub fn apply_f32(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for step in &self.plan {
            match *step {
                PlanStep::Pair { row } => {
                    let mut even = 0.0f32;
                    let mut odd = 0.0f32;
                    for (j, &xj) in x.iter().enumerate() {
                        let term = self.coeff(row, j) as f32 * xj;
                        if j % 2 == 0 {
                            even += term;
                        } else {
                            odd += term;
                        }
                    }
                    out[row] = even + odd;
                    out[row + 1] = even - odd;
                }
                PlanStep::Single { row } => {
                    let mut acc = 0.0f32;
                    for (j, &xj) in x.iter().enumerate() {
                        acc += self.coeff(row, j) as f32 * xj;
                    }
                    out[row] = acc;
                }
            }
        }
    }

    /// Apply the transform to `width` interleaved vectors at once:
    /// `x[j*stride + c]` holds component `j` of lane `c`, `c < width`.
    ///
    /// This is the NHWC-friendly layout: the lanes are contiguous channels,
    /// so the inner loops vectorise along the channel axis, exactly the
    /// access-continuity argument of §3/§4.2. Channels are swept in
    /// [`CHUNK`]-wide blocks (8 SIMD lanes) held in stack accumulators — no
    /// heap traffic on this hot path — with one remainder block for
    /// `width % CHUNK`; each block runs on the runtime-dispatched
    /// `iwino_simd` `transform_step` microkernel (AVX2/NEON/scalar, all
    /// bit-for-bit identical), in which the coefficient loop is outermost
    /// so its zero-skip branch amortises over a long vectorised inner loop.
    /// Per output element the summation order is identical to the scalar
    /// executor: even/odd partial sums in column order, then `e + o` /
    /// `e − o`.
    pub fn apply_f32_strided(&self, x: &[f32], x_stride: usize, out: &mut [f32], out_stride: usize, width: usize) {
        assert!(x_stride >= width && out_stride >= width);
        assert!(x.len() >= (self.cols - 1) * x_stride + width);
        assert!(out.len() >= (self.rows - 1) * out_stride + width);
        assert!(
            self.cols <= MAX_COLS,
            "transform dimension {} exceeds the lane executor's coefficient buffer ({MAX_COLS}); \
             every Γα(n,r) kernel has α ≤ 16",
            self.cols
        );
        // One dispatch lookup per call; the per-chunk work below runs on
        // the selected microkernel. When scalar is dispatched the
        // (inlinable) fallback is called directly rather than through the
        // table's function pointer, preserving pre-dispatch codegen.
        let mk = simd::kernels();
        let use_scalar = mk.isa == simd::Isa::Scalar;
        let mut mbuf = [0.0f32; MAX_COLS];
        for c0 in (0..width).step_by(CHUNK) {
            let w = CHUNK.min(width - c0);
            for step in &self.plan {
                let row = match *step {
                    PlanStep::Pair { row } | PlanStep::Single { row } => row,
                };
                for (j, m) in mbuf[..self.cols].iter_mut().enumerate() {
                    *m = self.coeff(row, j) as f32;
                }
                let paired = matches!(*step, PlanStep::Pair { .. });
                if use_scalar {
                    simd::scalar::transform_step(&mbuf[..self.cols], paired, x, x_stride, out, out_stride, row, c0, w);
                } else {
                    (mk.transform_step)(&mbuf[..self.cols], paired, x, x_stride, out, out_stride, row, c0, w);
                }
            }
        }
    }

    /// f64 single-vector application (reference kernels).
    pub fn apply_f64(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for step in &self.plan {
            match *step {
                PlanStep::Pair { row } => {
                    let mut even = 0.0f64;
                    let mut odd = 0.0f64;
                    for (j, &xj) in x.iter().enumerate() {
                        let term = self.coeff(row, j) * xj;
                        if j % 2 == 0 {
                            even += term;
                        } else {
                            odd += term;
                        }
                    }
                    out[row] = even + odd;
                    out[row + 1] = even - odd;
                }
                PlanStep::Single { row } => {
                    out[row] = (0..self.cols).map(|j| self.coeff(row, j) * x[j]).sum();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WinogradTransform;

    #[test]
    fn detects_pairs_in_dt8() {
        // F(6,3): α = 8, points 0, ±1, ±2, ±1/2, ∞ ⟹ pairs at rows (1,2), (3,4), (5,6).
        let t = WinogradTransform::generate(6, 3);
        let p = t.dt_paired();
        assert_eq!(
            p.plan(),
            &[
                PlanStep::Single { row: 0 },
                PlanStep::Pair { row: 1 },
                PlanStep::Pair { row: 3 },
                PlanStep::Pair { row: 5 },
                PlanStep::Single { row: 7 },
            ]
        );
        assert_eq!(p.pair_count(), 3);
    }

    #[test]
    fn paired_apply_matches_dense() {
        for (n, r) in [(2usize, 3usize), (6, 3), (4, 5), (2, 7), (8, 9), (10, 7)] {
            let t = WinogradTransform::generate(n, r);
            let dt = t.dt_paired();
            let dense = t.dt.to_f64();
            let alpha = t.alpha;
            let x: Vec<f64> = (0..alpha).map(|i| (i as f64 * 0.37 - 1.1).sin()).collect();
            let mut got = vec![0.0f64; alpha];
            dt.apply_f64(&x, &mut got);
            for i in 0..alpha {
                let want: f64 = (0..alpha).map(|j| dense[i * alpha + j] * x[j]).sum();
                assert!(
                    (got[i] - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "F({n},{r}) row {i}: {} vs {}",
                    got[i],
                    want
                );
            }
        }
    }

    #[test]
    fn strided_apply_matches_per_lane() {
        let t = WinogradTransform::generate(6, 3);
        let dt = t.dt_paired();
        let alpha = t.alpha;
        let width = 5;
        let stride = 7;
        let x: Vec<f32> = (0..alpha * stride).map(|i| (i as f32 * 0.13).cos()).collect();
        let mut out = vec![0.0f32; alpha * stride];
        dt.apply_f32_strided(&x, stride, &mut out, stride, width);
        for c in 0..width {
            let lane: Vec<f32> = (0..alpha).map(|j| x[j * stride + c]).collect();
            let mut want = vec![0.0f32; alpha];
            dt.apply_f32(&lane, &mut want);
            for i in 0..alpha {
                assert!((out[i * stride + c] - want[i]).abs() <= 1e-5, "lane {c} row {i}");
            }
        }
    }

    #[test]
    fn mul_count_nearly_halved() {
        // §5.3: pairing should cut the multiply count roughly in half for the
        // big transforms.
        for (n, r) in [(6usize, 3usize), (8, 9), (10, 7)] {
            let t = WinogradTransform::generate(n, r);
            let dense = t.dt.mul_count();
            let paired = t.dt_paired().mul_count();
            assert!(
                (paired as f64) <= 0.62 * dense as f64,
                "F({n},{r}): paired {paired} vs dense {dense}"
            );
        }
    }
}
