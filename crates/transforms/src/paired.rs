//! The §5.3 "simplified data transformation".
//!
//! For the paper's interpolation-point ordering, the rows of `G` and `Dᵀ`
//! associated with points `+p` and `−p` are adjacent and satisfy: equal
//! entries at even column positions, opposite entries at odd positions
//! (powers of `−p` flip sign exactly at odd exponents, and the Lagrange
//! numerator polynomials over a symmetric point set inherit the same
//! even/odd structure). Both rows can therefore be produced from one even
//! partial sum `e` and one odd partial sum `o` as `e + o` / `e − o`,
//! reusing every multiplication — "reducing the number of necessary
//! multiplications by nearly half" (§5.3).
//!
//! [`PairedTransform`] detects the pairing from an arbitrary rational
//! matrix, provides f32/f64 executors, and reports the multiplication count
//! used by the `ablation-transforms` experiment.

use crate::Matrix;

/// One step of a paired transform plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanStep {
    /// Rows `row` and `row + 1` are produced together from shared partial sums.
    Pair { row: usize },
    /// Row `row` is produced by a plain dot product.
    Single { row: usize },
}

/// A transform matrix together with its even/odd row-pairing plan.
#[derive(Clone, Debug)]
pub struct PairedTransform {
    rows: usize,
    cols: usize,
    /// Row-major f64 copy of the source matrix (exact for all paper entries).
    data: Vec<f64>,
    plan: Vec<PlanStep>,
}

impl PairedTransform {
    /// Detect adjacent row pairs with the even/odd mirror structure.
    pub fn from_matrix(m: &Matrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut plan = Vec::new();
        let mut i = 0;
        while i < rows {
            if i + 1 < rows && Self::is_mirror_pair(m, i) {
                plan.push(PlanStep::Pair { row: i });
                i += 2;
            } else {
                plan.push(PlanStep::Single { row: i });
                i += 1;
            }
        }
        PairedTransform {
            rows,
            cols,
            data: m.to_f64(),
            plan,
        }
    }

    fn is_mirror_pair(m: &Matrix, i: usize) -> bool {
        (0..m.cols()).all(|j| {
            let a = m[(i, j)];
            let b = m[(i + 1, j)];
            if j % 2 == 0 {
                a == b
            } else {
                a == -b
            }
        })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn plan(&self) -> &[PlanStep] {
        &self.plan
    }

    /// Number of row pairs found.
    pub fn pair_count(&self) -> usize {
        self.plan.iter().filter(|s| matches!(s, PlanStep::Pair { .. })).count()
    }

    #[inline]
    fn coeff(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Multiplications performed per transformed vector when using the plan:
    /// paired rows pay for their non-trivial coefficients once.
    pub fn mul_count(&self) -> usize {
        let is_trivial = |c: f64| c == 0.0 || c == 1.0 || c == -1.0;
        self.plan
            .iter()
            .map(|step| match *step {
                PlanStep::Pair { row } => (0..self.cols).filter(|&j| !is_trivial(self.coeff(row, j))).count(),
                PlanStep::Single { row } => (0..self.cols).filter(|&j| !is_trivial(self.coeff(row, j))).count(),
            })
            .sum()
    }

    /// Apply the transform to a single f32 vector: `out = M · x`.
    pub fn apply_f32(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for step in &self.plan {
            match *step {
                PlanStep::Pair { row } => {
                    let mut even = 0.0f32;
                    let mut odd = 0.0f32;
                    for (j, &xj) in x.iter().enumerate() {
                        let term = self.coeff(row, j) as f32 * xj;
                        if j % 2 == 0 {
                            even += term;
                        } else {
                            odd += term;
                        }
                    }
                    out[row] = even + odd;
                    out[row + 1] = even - odd;
                }
                PlanStep::Single { row } => {
                    let mut acc = 0.0f32;
                    for (j, &xj) in x.iter().enumerate() {
                        acc += self.coeff(row, j) as f32 * xj;
                    }
                    out[row] = acc;
                }
            }
        }
    }

    /// Apply the transform to `width` interleaved vectors at once:
    /// `x[j*stride + c]` holds component `j` of lane `c`, `c < width`.
    ///
    /// This is the NHWC-friendly layout: the lanes are contiguous channels,
    /// so the inner loops vectorise along the channel axis, exactly the
    /// access-continuity argument of §3/§4.2.
    pub fn apply_f32_strided(&self, x: &[f32], x_stride: usize, out: &mut [f32], out_stride: usize, width: usize) {
        assert!(x_stride >= width && out_stride >= width);
        assert!(x.len() >= (self.cols - 1) * x_stride + width);
        assert!(out.len() >= (self.rows - 1) * out_stride + width);
        let mut even = vec![0.0f32; width];
        let mut odd = vec![0.0f32; width];
        for step in &self.plan {
            match *step {
                PlanStep::Pair { row } => {
                    even.fill(0.0);
                    odd.fill(0.0);
                    for j in 0..self.cols {
                        let m = self.coeff(row, j) as f32;
                        if m == 0.0 {
                            continue;
                        }
                        let src = &x[j * x_stride..j * x_stride + width];
                        let dst = if j % 2 == 0 { &mut even } else { &mut odd };
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += m * s;
                        }
                    }
                    let (lo, hi) = out.split_at_mut((row + 1) * out_stride);
                    let o0 = &mut lo[row * out_stride..row * out_stride + width];
                    for c in 0..width {
                        o0[c] = even[c] + odd[c];
                    }
                    let o1 = &mut hi[..width];
                    for (c, o) in o1.iter_mut().enumerate() {
                        *o = even[c] - odd[c];
                    }
                }
                PlanStep::Single { row } => {
                    let dst_base = row * out_stride;
                    out[dst_base..dst_base + width].fill(0.0);
                    for j in 0..self.cols {
                        let m = self.coeff(row, j) as f32;
                        if m == 0.0 {
                            continue;
                        }
                        let src_base = j * x_stride;
                        for c in 0..width {
                            out[dst_base + c] += m * x[src_base + c];
                        }
                    }
                }
            }
        }
    }

    /// f64 single-vector application (reference kernels).
    pub fn apply_f64(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for step in &self.plan {
            match *step {
                PlanStep::Pair { row } => {
                    let mut even = 0.0f64;
                    let mut odd = 0.0f64;
                    for (j, &xj) in x.iter().enumerate() {
                        let term = self.coeff(row, j) * xj;
                        if j % 2 == 0 {
                            even += term;
                        } else {
                            odd += term;
                        }
                    }
                    out[row] = even + odd;
                    out[row + 1] = even - odd;
                }
                PlanStep::Single { row } => {
                    out[row] = (0..self.cols).map(|j| self.coeff(row, j) * x[j]).sum();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WinogradTransform;

    #[test]
    fn detects_pairs_in_dt8() {
        // F(6,3): α = 8, points 0, ±1, ±2, ±1/2, ∞ ⟹ pairs at rows (1,2), (3,4), (5,6).
        let t = WinogradTransform::generate(6, 3);
        let p = t.dt_paired();
        assert_eq!(
            p.plan(),
            &[
                PlanStep::Single { row: 0 },
                PlanStep::Pair { row: 1 },
                PlanStep::Pair { row: 3 },
                PlanStep::Pair { row: 5 },
                PlanStep::Single { row: 7 },
            ]
        );
        assert_eq!(p.pair_count(), 3);
    }

    #[test]
    fn paired_apply_matches_dense() {
        for (n, r) in [(2usize, 3usize), (6, 3), (4, 5), (2, 7), (8, 9), (10, 7)] {
            let t = WinogradTransform::generate(n, r);
            let dt = t.dt_paired();
            let dense = t.dt.to_f64();
            let alpha = t.alpha;
            let x: Vec<f64> = (0..alpha).map(|i| (i as f64 * 0.37 - 1.1).sin()).collect();
            let mut got = vec![0.0f64; alpha];
            dt.apply_f64(&x, &mut got);
            for i in 0..alpha {
                let want: f64 = (0..alpha).map(|j| dense[i * alpha + j] * x[j]).sum();
                assert!(
                    (got[i] - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "F({n},{r}) row {i}: {} vs {}",
                    got[i],
                    want
                );
            }
        }
    }

    #[test]
    fn strided_apply_matches_per_lane() {
        let t = WinogradTransform::generate(6, 3);
        let dt = t.dt_paired();
        let alpha = t.alpha;
        let width = 5;
        let stride = 7;
        let x: Vec<f32> = (0..alpha * stride).map(|i| (i as f32 * 0.13).cos()).collect();
        let mut out = vec![0.0f32; alpha * stride];
        dt.apply_f32_strided(&x, stride, &mut out, stride, width);
        for c in 0..width {
            let lane: Vec<f32> = (0..alpha).map(|j| x[j * stride + c]).collect();
            let mut want = vec![0.0f32; alpha];
            dt.apply_f32(&lane, &mut want);
            for i in 0..alpha {
                assert!((out[i * stride + c] - want[i]).abs() <= 1e-5, "lane {c} row {i}");
            }
        }
    }

    #[test]
    fn mul_count_nearly_halved() {
        // §5.3: pairing should cut the multiply count roughly in half for the
        // big transforms.
        for (n, r) in [(6usize, 3usize), (8, 9), (10, 7)] {
            let t = WinogradTransform::generate(n, r);
            let dense = t.dt.mul_count();
            let paired = t.dt_paired().mul_count();
            assert!(
                (paired as f64) <= 0.62 * dense as f64,
                "F({n},{r}): paired {paired} vs dense {dense}"
            );
        }
    }
}
