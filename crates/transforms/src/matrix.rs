//! A small dense rational matrix with f32/f64 export.

use iwino_rational::Rational;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix over [`Rational`].
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Build from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<Rational>]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Parse from strings like `"1 0 -21/4 0"` (one string per row). Test aid.
    pub fn parse(rows: &[&str]) -> Self {
        let parsed: Vec<Vec<Rational>> = rows
            .iter()
            .map(|row| {
                row.split_whitespace()
                    .map(|tok| tok.parse().unwrap_or_else(|e| panic!("bad token {tok:?}: {e}")))
                    .collect()
            })
            .collect();
        Matrix::from_rows(&parsed)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, i: usize) -> &[Rational] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Exact matrix–vector product.
    pub fn mat_vec(&self, v: &[Rational]) -> Vec<Rational> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .fold(Rational::ZERO, |acc, (&m, &x)| acc + m * x)
            })
            .collect()
    }

    /// Exact matrix–matrix product.
    pub fn mat_mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows);
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Row-major f32 export (what the conv kernels consume).
    pub fn to_f32(&self) -> Vec<f32> {
        self.data.iter().map(Rational::to_f32).collect()
    }

    /// Row-major f64 export (what the f64 reference kernels consume).
    pub fn to_f64(&self) -> Vec<f64> {
        self.data.iter().map(Rational::to_f64).collect()
    }

    /// Number of multiplications a naive dense application performs per
    /// input vector: count of nonzero, non-±1 entries (additions of ±1
    /// entries are free of multiplies). Basis for the §5.3 ablation.
    pub fn mul_count(&self) -> usize {
        self.data
            .iter()
            .filter(|c| !c.is_zero() && c.abs() != Rational::ONE)
            .count()
    }

    /// Count of nonzero entries (total FMA work of a dense application).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|c| !c.is_zero()).count()
    }

    /// Largest absolute entry. A coefficient typo in a generated transform
    /// almost always moves this (the analyzer snapshots it per `(n, r)`).
    pub fn max_abs(&self) -> Rational {
        self.data.iter().map(Rational::abs).max().unwrap_or(Rational::ZERO)
    }

    /// Operator ∞-norm: the maximum absolute row sum. For `y = M·x` this
    /// bounds `‖y‖∞ ≤ ‖M‖∞ · ‖x‖∞`, which is what makes it the right
    /// factor in the Winograd error-amplification bound.
    pub fn inf_norm(&self) -> Rational {
        (0..self.rows)
            .map(|i| self.row(i).iter().fold(Rational::ZERO, |acc, c| acc + c.abs()))
            .max()
            .unwrap_or(Rational::ZERO)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ri(v: i128) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn parse_and_index() {
        let m = Matrix::parse(&["1 0 -21/4", "0 1/2 1"]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 2)], Rational::new(-21, 4));
        assert_eq!(m[(1, 1)], Rational::new(1, 2));
    }

    #[test]
    fn mat_vec_and_mul() {
        let m = Matrix::parse(&["1 2", "3 4"]);
        assert_eq!(m.mat_vec(&[ri(1), ri(1)]), vec![ri(3), ri(7)]);
        let p = m.mat_mul(&Matrix::parse(&["1 0", "0 1"]));
        assert_eq!(p, m);
        let sq = m.mat_mul(&m);
        assert_eq!(sq, Matrix::parse(&["7 10", "15 22"]));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::parse(&["1 2 3", "4 5 6"]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], ri(6));
    }

    #[test]
    fn mul_count_ignores_unit_entries() {
        let m = Matrix::parse(&["1 -1 0 1/2", "2 0 0 1"]);
        assert_eq!(m.mul_count(), 2); // 1/2 and 2
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn norms() {
        let m = Matrix::parse(&["1 -1 0 1/2", "2 0 0 1"]);
        assert_eq!(m.max_abs(), ri(2));
        // Row sums: 1 + 1 + 0 + 1/2 = 5/2 and 2 + 0 + 0 + 1 = 3.
        assert_eq!(m.inf_norm(), ri(3));
        assert_eq!(Matrix::zeros(2, 2).inf_norm(), Rational::ZERO);
        assert_eq!(Matrix::zeros(2, 2).max_abs(), Rational::ZERO);
    }

    #[test]
    fn float_export() {
        let m = Matrix::parse(&["-21/4 1/2"]);
        assert_eq!(m.to_f64(), vec![-5.25, 0.5]);
        assert_eq!(m.to_f32(), vec![-5.25f32, 0.5]);
    }
}
