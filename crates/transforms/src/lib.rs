//! Winograd minimal-filtering transform matrices for `F(n, r)`.
//!
//! The 1D Winograd algorithm computes the `n` outputs of a correlation of an
//! `α = n + r − 1` long input `d` with an `r`-tap filter `g` as
//!
//! ```text
//! y = Aᵀ [ (G·g) ⊙ (Dᵀ·d) ]
//! ```
//!
//! using only `α` element-wise multiplications instead of `n·r`. This crate
//! generates `Aᵀ`, `G` and `Dᵀ` **exactly** (rational arithmetic) using the
//! Cook–Toom construction at the interpolation points the paper lists in
//! §5.3: `{0, 1, −1, 2, −2, ½, −½, 3, −3, ⅓, −⅓, 4, −4, ¼, −¼}` plus the
//! point at infinity, with the paper's normalisation convention (the filter
//! transform `G` absorbs the Lagrange denominators; the first rows of `G`
//! and `Dᵀ` are sign-fixed to be positive).
//!
//! It also implements the §5.3 "simplified data transformations": rows of
//! the transform matrices for points `+p` / `−p` agree at even columns and
//! differ only in sign at odd columns, so both rows can be produced from one
//! set of multiplications. [`PairedTransform`] precomputes that pairing and
//! nearly halves the multiplication count (see
//! [`PairedTransform::mul_count`] vs [`Matrix::mul_count`]).

#![forbid(unsafe_code)]

pub mod matrix;
pub mod opcount;
pub mod paired;

pub use matrix::Matrix;
pub use opcount::{effective_phi, gamma_op_count, standard_op_count, OpCount};
pub use paired::{PairedTransform, LANE};

use iwino_rational::{Poly, Rational};

/// Maximum supported state count. `α ≤ 16` per the paper (SMEM constraint:
/// `4α(32+32)·8 ≤ 49152` ⟹ `α ≤ 24`, powers of two preferred ⟹ 4/8/16).
pub const MAX_ALPHA: usize = 16;

/// The paper's interpolation points, in order. The first `α − 1` of these are
/// used for `F(n, r)` with `α = n + r − 1`; the `α`-th point is ∞.
pub fn interpolation_points(count: usize) -> Vec<Rational> {
    const SEQ: [(i128, i128); 15] = [
        (0, 1),
        (1, 1),
        (-1, 1),
        (2, 1),
        (-2, 1),
        (1, 2),
        (-1, 2),
        (3, 1),
        (-3, 1),
        (1, 3),
        (-1, 3),
        (4, 1),
        (-4, 1),
        (1, 4),
        (-1, 4),
    ];
    assert!(
        count <= SEQ.len(),
        "at most {} finite interpolation points are defined (requested {count})",
        SEQ.len()
    );
    SEQ[..count].iter().map(|&(n, d)| Rational::new(n, d)).collect()
}

/// The complete transform set for a 1D Winograd algorithm `F(n, r)`.
///
/// Shapes: `at` is `n × α`, `g` is `α × r`, `dt` is `α × α`.
#[derive(Clone, Debug)]
pub struct WinogradTransform {
    /// Number of outputs produced per tile.
    pub n: usize,
    /// Filter width.
    pub r: usize,
    /// State count `α = n + r − 1`.
    pub alpha: usize,
    /// Output transform, `n × α`.
    pub at: Matrix,
    /// Filter transform, `α × r`.
    pub g: Matrix,
    /// Input transform, `α × α`.
    pub dt: Matrix,
}

impl WinogradTransform {
    /// Generate the transforms for `F(n, r)`.
    ///
    /// # Panics
    /// If `n < 1`, `r < 2`, or `n + r − 1 > MAX_ALPHA`.
    pub fn generate(n: usize, r: usize) -> Self {
        assert!(n >= 1, "F(n,r) needs n >= 1");
        assert!(r >= 2, "F(n,r) needs r >= 2 (r = 1 is a pointwise product)");
        let alpha = n + r - 1;
        assert!(
            alpha <= MAX_ALPHA,
            "alpha = n + r - 1 = {alpha} exceeds MAX_ALPHA = {MAX_ALPHA}"
        );
        let points = interpolation_points(alpha - 1);

        // m(x) = Π (x − p_k) over the finite points; ℓ_k numerator = m/(x−p_k).
        let m = Poly::from_roots(&points);

        // N_k = Π_{j≠k} (p_k − p_j): the Lagrange denominator for point k.
        let denoms: Vec<Rational> = (0..points.len())
            .map(|k| {
                points
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != k)
                    .fold(Rational::ONE, |acc, (_, &pj)| acc * (points[k] - pj))
            })
            .collect();

        // --- G (α × r): row k = [1, p, …, p^{r−1}] / N_k; ∞ row = e_{r−1}. ---
        let mut g = Matrix::zeros(alpha, r);
        for (k, &p) in points.iter().enumerate() {
            let inv = denoms[k].recip();
            let mut pw = Rational::ONE;
            for j in 0..r {
                g[(k, j)] = pw * inv;
                pw *= p;
            }
        }
        g[(alpha - 1, r - 1)] = Rational::ONE;

        // --- Dᵀ (α × α): row k = coefficients of Π_{j≠k}(x − p_j)
        //     (= N_k · ℓ_k(x)), padded with 0 at degree α−1.
        //     ∞ row: the product polynomial c(x) = g(x)·h(x) has its leading
        //     coefficient equal to the evaluation at ∞; interpolation of the
        //     remaining part gives row_∞ = e_{α−1} − Σ_k p_k^{α−1} ℓ_k. ---
        let mut dt = Matrix::zeros(alpha, alpha);
        let mut ell_coeffs: Vec<Vec<Rational>> = Vec::with_capacity(points.len());
        for (k, &p) in points.iter().enumerate() {
            let num = m.divide_by_linear_root(p);
            let mut row = vec![Rational::ZERO; alpha];
            for (j, item) in row.iter_mut().enumerate().take(alpha - 1) {
                *item = num.coeff(j);
            }
            for (j, item) in row.iter().enumerate() {
                dt[(k, j)] = *item;
            }
            // ℓ_k = row / N_k (unscaled Lagrange basis coefficients).
            let inv = denoms[k].recip();
            ell_coeffs.push(row.iter().map(|&c| c * inv).collect());
        }
        {
            let top = alpha - 1;
            dt[(top, top)] = Rational::ONE;
            for (k, &p) in points.iter().enumerate() {
                let w = p.pow(top as i32);
                if w.is_zero() {
                    continue;
                }
                for j in 0..alpha {
                    let delta = w * ell_coeffs[k][j];
                    dt[(top, j)] -= delta;
                }
            }
        }

        // --- Aᵀ (n × α): column j = [1, p_j, …, p_j^{n−1}]; ∞ column = e_{n−1}. ---
        let mut at = Matrix::zeros(n, alpha);
        for (j, &p) in points.iter().enumerate() {
            let mut pw = Rational::ONE;
            for i in 0..n {
                at[(i, j)] = pw;
                pw *= p;
            }
        }
        at[(n - 1, alpha - 1)] = Rational::ONE;

        // Sign fix (wincnn convention, matches the paper's Figure 5): if the
        // leading entry of G's first row is negative, negate the first rows
        // of both G and Dᵀ. Their product f_0 is unchanged.
        if g[(0, 0)].is_negative() {
            for j in 0..r {
                g[(0, j)] = -g[(0, j)];
            }
            for j in 0..alpha {
                dt[(0, j)] = -dt[(0, j)];
            }
        }

        WinogradTransform { n, r, alpha, at, g, dt }
    }

    /// Apply the full 1D algorithm exactly (rational arithmetic):
    /// `y = Aᵀ[(G g) ⊙ (Dᵀ d)]`. Used for testing and for generating
    /// reference vectors; the f32 kernels live in `iwino-core`.
    pub fn apply_exact(&self, g: &[Rational], d: &[Rational]) -> Vec<Rational> {
        assert_eq!(g.len(), self.r);
        assert_eq!(d.len(), self.alpha);
        let tg = self.g.mat_vec(g);
        let td = self.dt.mat_vec(d);
        let prod: Vec<Rational> = tg.iter().zip(&td).map(|(&a, &b)| a * b).collect();
        self.at.mat_vec(&prod)
    }

    /// The theoretical multiplication reduction `Φ = n·r / α` (§6.1.2).
    pub fn theoretical_speedup(&self) -> f64 {
        (self.n * self.r) as f64 / self.alpha as f64
    }

    /// Items loaded per output: `α / n` (the paper compares `33/6` for
    /// `Γ8(6,3)` against `25/4` for `F(2×2, 3×3)`; per-axis this is `α/n`).
    pub fn loads_per_output(&self) -> f64 {
        self.alpha as f64 / self.n as f64
    }

    /// Largest absolute coefficient across `Aᵀ`, `G` and `Dᵀ`.
    pub fn max_abs_coeff(&self) -> Rational {
        self.at.max_abs().max(self.g.max_abs()).max(self.dt.max_abs())
    }

    /// Worst-case error-amplification bound `‖Aᵀ‖∞ · ‖G‖∞ · ‖Dᵀ‖∞`
    /// (DWM, arXiv:2002.00552 uses the same product-of-norms shape): a
    /// relative perturbation of the inputs is magnified by at most this
    /// factor through the transform→product→inverse-transform pipeline.
    /// Growing α drives it up — the quantitative face of the Table 3 /
    /// Figure 10 accuracy degradation at large tiles.
    pub fn error_amplification(&self) -> Rational {
        self.at.inf_norm() * self.g.inf_norm() * self.dt.inf_norm()
    }

    /// Input transform as a [`PairedTransform`] (simplified transformation).
    pub fn dt_paired(&self) -> PairedTransform {
        PairedTransform::from_matrix(&self.dt)
    }

    /// Filter transform as a [`PairedTransform`].
    pub fn g_paired(&self) -> PairedTransform {
        PairedTransform::from_matrix(&self.g)
    }

    /// Output transform as a [`PairedTransform`]. (`Aᵀ` columns — not rows —
    /// carry the ±p pairing, so gains here are smaller; the paper applies the
    /// simplification to `A`, `G`, `Dᵀ` row-wise where present.)
    pub fn at_paired(&self) -> PairedTransform {
        PairedTransform::from_matrix(&self.at)
    }
}

/// Convenience: the `Γα(n, r)` naming from the paper. Returns the `F(n, r)`
/// transform checked against the requested state count.
pub fn gamma(alpha: usize, n: usize, r: usize) -> WinogradTransform {
    assert_eq!(alpha, n + r - 1, "Γα(n,r) requires α = n + r − 1");
    WinogradTransform::generate(n, r)
}

/// Direct (schoolbook) correlation used as the semantic reference:
/// `y_i = Σ_j g_j · d_{i+j}`.
pub fn direct_correlation(g: &[Rational], d: &[Rational]) -> Vec<Rational> {
    let n = d.len() + 1 - g.len();
    (0..n)
        .map(|i| {
            g.iter()
                .enumerate()
                .fold(Rational::ZERO, |acc, (j, &gj)| acc + gj * d[i + j])
        })
        .collect()
}

#[cfg(test)]
mod tests;
