//! Arithmetic cost accounting for the `Γα(n, r)` pipeline.
//!
//! Counts the multiplications each stage performs per output element, which
//! is the quantity behind the paper's complexity statements: the elem-mul
//! stage dominates at large channels ("the time complexity of Winograd
//! primarily arises from the elem-mul stage", §2), while transforms are the
//! fixed tax the §5.3 simplification halves.

use crate::{PairedTransform, WinogradTransform};

/// Multiplication counts per *output element* of a 2-D convolution run as
/// `Γα(n, r)` over an `r×r` filter with `IC` input channels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpCount {
    /// Element-wise multiply stage: `α·r·IC / n` per output.
    pub elem_mul: f64,
    /// Input transform (per output, amortised over the tile; paired plan).
    pub input_transform: f64,
    /// Output transform (per output; paired plan).
    pub output_transform: f64,
    /// Filter transform per output at batch `n_batch` (amortised over the
    /// whole ofms — vanishes for big batches).
    pub filter_transform: f64,
}

impl OpCount {
    pub fn total(&self) -> f64 {
        self.elem_mul + self.input_transform + self.output_transform + self.filter_transform
    }
}

/// Cost of `Γα(n, r)` per output element.
///
/// * `ic` — input channels (elem-mul and input transform scale with it);
/// * `oc` — output channels *sharing* each transformed input tile (the
///   outer-product width `BN`; transformed tiles are shared across the
///   whole block, which is why transforms vanish at scale, §2);
/// * `outputs_per_filter_use` — `N·OH·OW / (FH·…)` scale over which the
///   filter transform amortises; pass `f64::INFINITY` to ignore it.
pub fn gamma_op_count(t: &WinogradTransform, fh: usize, ic: usize, oc: usize, outputs_per_filter_use: f64) -> OpCount {
    let alpha = t.alpha as f64;
    let n = t.n as f64;
    // Elem-mul: α states per tile, accumulated over FH·IC — α·FH·IC muls
    // per tile of n outputs.
    let elem_mul = alpha * fh as f64 * ic as f64 / n;
    // Input transform: one Dᵀ application per (tile, fh, ic), shared by
    // the oc outputs of the block.
    let dt_muls = PairedTransform::from_matrix(&t.dt).mul_count() as f64;
    let input_transform = dt_muls * fh as f64 * ic as f64 / n / oc as f64;
    // Output transform: one Aᵀ application per (tile, oc): n·α-ish muls for
    // n outputs — per output, divided by nothing else.
    let at_muls = PairedTransform::from_matrix(&t.at).mul_count() as f64;
    let output_transform = at_muls / n;
    // Filter transform: α·r muls per (fh, ic, oc) element set, amortised.
    let filter_transform = if outputs_per_filter_use.is_finite() {
        alpha * t.r as f64 * fh as f64 * ic as f64 / outputs_per_filter_use
    } else {
        0.0
    };
    OpCount {
        elem_mul,
        input_transform,
        output_transform,
        filter_transform,
    }
}

/// Multiplications per output of the standard (direct/GEMM) algorithm.
pub fn standard_op_count(fh: usize, fw: usize, ic: usize) -> f64 {
    (fh * fw * ic) as f64
}

/// Effective multiplication reduction including transform overhead — the
/// realistic Φ the kernels can convert, as opposed to the ideal `n·r/α`.
pub fn effective_phi(t: &WinogradTransform, fh: usize, fw: usize, ic: usize, oc: usize) -> f64 {
    let ops = gamma_op_count(t, fh, ic, oc, f64::INFINITY);
    standard_op_count(fh, fw, ic) / ops.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_mul_matches_phi_at_large_channels() {
        // With IC → ∞ the transforms amortise away and the effective Φ
        // approaches the ideal n·r/α — the §2 "ideal conditions" statement.
        let t = WinogradTransform::generate(6, 3);
        let ideal = t.theoretical_speedup();
        let eff_small = effective_phi(&t, 3, 3, 4, 8);
        let eff_big = effective_phi(&t, 3, 3, 4096, 64);
        assert!(eff_big > eff_small);
        assert!(ideal - eff_big < 0.15, "eff {eff_big} vs ideal {ideal}");
        assert!(ideal - eff_small > 0.3, "transforms must hurt at IC = 4");
    }

    #[test]
    fn gamma16_pays_more_transform_tax() {
        // Γ16's bigger transforms eat more of its Φ at equal channels —
        // the op-count view of the §6.1.2 magnitudes.
        let g8 = WinogradTransform::generate(6, 3);
        let g16 = WinogradTransform::generate(8, 9);
        let tax = |t: &WinogradTransform, fh: usize, fw: usize| {
            let eff = effective_phi(t, fh, fw, 64, 32);
            eff / t.theoretical_speedup()
        };
        assert!(tax(&g8, 3, 3) > tax(&g16, 9, 9), "Γ8 should convert Φ better");
    }

    #[test]
    fn op_count_components_are_positive_and_ordered() {
        let t = WinogradTransform::generate(4, 5);
        let ops = gamma_op_count(&t, 5, 128, 64, 1e6);
        assert!(ops.elem_mul > 0.0);
        assert!(ops.input_transform > 0.0);
        assert!(ops.output_transform > 0.0);
        assert!(ops.filter_transform > 0.0);
        // At 128 channels the elem-mul stage dominates (§2).
        assert!(ops.elem_mul > ops.output_transform);
        assert!(ops.total() < standard_op_count(5, 5, 128));
    }

    #[test]
    fn filter_transform_amortises() {
        let t = WinogradTransform::generate(6, 3);
        let few = gamma_op_count(&t, 3, 64, 64, 100.0);
        let many = gamma_op_count(&t, 3, 64, 64, 1e9);
        assert!(few.filter_transform > 1000.0 * many.filter_transform.max(1e-12));
        assert_eq!(few.elem_mul, many.elem_mul);
    }
}
