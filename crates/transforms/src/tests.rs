//! Unit + property tests for transform generation.
//!
//! The pinning tests check generated matrices against the matrices printed
//! in the paper's Figure 5 (same interpolation points, same normalisation,
//! same sign convention), entry for entry.

use super::*;
use iwino_rational::Rational;
use proptest::prelude::*;

fn ri(v: i128) -> Rational {
    Rational::from_int(v)
}

fn r(n: i128, d: i128) -> Rational {
    Rational::new(n, d)
}

#[test]
fn points_sequence_matches_paper() {
    let p = interpolation_points(15);
    let expect = [
        ri(0),
        ri(1),
        ri(-1),
        ri(2),
        ri(-2),
        r(1, 2),
        r(-1, 2),
        ri(3),
        ri(-3),
        r(1, 3),
        r(-1, 3),
        ri(4),
        ri(-4),
        r(1, 4),
        r(-1, 4),
    ];
    assert_eq!(p, expect);
}

#[test]
#[should_panic]
fn too_many_points_panics() {
    let _ = interpolation_points(16);
}

// --- Figure 5 pinning: α = 4 ---

#[test]
fn pin_a_4_3_transposed() {
    // A(4,3)ᵀ is the output transform of F(3, 2).
    let t = WinogradTransform::generate(3, 2);
    let expect = Matrix::parse(&["1 1 1 0", "0 1 -1 0", "0 1 1 1"]);
    assert_eq!(t.at, expect, "A(4,3)^T mismatch: {:?}", t.at);
}

#[test]
fn pin_d_4_transposed() {
    // D(4)ᵀ depends only on α = 4.
    let expect = Matrix::parse(&["1 0 -1 0", "0 1 1 0", "0 -1 1 0", "0 -1 0 1"]);
    for (n, rr) in [(2usize, 3usize), (3, 2)] {
        let t = WinogradTransform::generate(n, rr);
        assert_eq!(t.dt, expect, "D(4)^T mismatch for F({n},{rr}): {:?}", t.dt);
    }
}

#[test]
fn pin_g_4_3() {
    // G(4,3) is the filter transform of F(2, 3).
    let t = WinogradTransform::generate(2, 3);
    let expect = Matrix::parse(&["1 0 0", "1/2 1/2 1/2", "1/2 -1/2 1/2", "0 0 1"]);
    assert_eq!(t.g, expect, "G(4,3) mismatch: {:?}", t.g);
}

// --- Figure 5 pinning: α = 8 ---

#[test]
fn pin_a_8_7_transposed() {
    let t = WinogradTransform::generate(7, 2);
    let expect = Matrix::parse(&[
        "1 1 1 1 1 1 1 0",
        "0 1 -1 2 -2 1/2 -1/2 0",
        "0 1 1 4 4 1/4 1/4 0",
        "0 1 -1 8 -8 1/8 -1/8 0",
        "0 1 1 16 16 1/16 1/16 0",
        "0 1 -1 32 -32 1/32 -1/32 0",
        "0 1 1 64 64 1/64 1/64 1",
    ]);
    assert_eq!(t.at, expect, "A(8,7)^T mismatch: {:?}", t.at);
}

#[test]
fn pin_g_8_7() {
    let t = WinogradTransform::generate(2, 7);
    let expect = Matrix::parse(&[
        "1 0 0 0 0 0 0",
        "-2/9 -2/9 -2/9 -2/9 -2/9 -2/9 -2/9",
        "-2/9 2/9 -2/9 2/9 -2/9 2/9 -2/9",
        "1/90 2/90 4/90 8/90 16/90 32/90 64/90",
        "1/90 -2/90 4/90 -8/90 16/90 -32/90 64/90",
        "64/90 32/90 16/90 8/90 4/90 2/90 1/90",
        "64/90 -32/90 16/90 -8/90 4/90 -2/90 1/90",
        "0 0 0 0 0 0 1",
    ]);
    assert_eq!(t.g, expect, "G(8,7) mismatch: {:?}", t.g);
}

#[test]
fn pin_d_8_transposed() {
    let expect = Matrix::parse(&[
        "1 0 -21/4 0 21/4 0 -1 0",
        "0 1 1 -17/4 -17/4 1 1 0",
        "0 -1 1 17/4 -17/4 -1 1 0",
        "0 1/2 1/4 -5/2 -5/4 2 1 0",
        "0 -1/2 1/4 5/2 -5/4 -2 1 0",
        "0 2 4 -5/2 -5 1/2 1 0",
        "0 -2 4 5/2 -5 -1/2 1 0",
        "0 -1 0 21/4 0 -21/4 0 1",
    ]);
    for (n, rr) in [(2usize, 7usize), (6, 3), (4, 5), (7, 2)] {
        let t = WinogradTransform::generate(n, rr);
        assert_eq!(t.dt, expect, "D(8)^T mismatch for F({n},{rr}): {:?}", t.dt);
    }
}

// --- Figure 5 pinning: α = 16 (spot checks on the giant matrices) ---

#[test]
fn pin_a_16_15_rows() {
    let t = WinogradTransform::generate(15, 2);
    assert_eq!(t.alpha, 16);
    // Row 0: all ones over finite points, 0 at ∞.
    for j in 0..15 {
        assert_eq!(t.at[(0, j)], ri(1));
    }
    assert_eq!(t.at[(0, 15)], ri(0));
    // Row 1 = the points themselves.
    let pts = interpolation_points(15);
    for (j, &p) in pts.iter().enumerate() {
        assert_eq!(t.at[(1, j)], p);
    }
    // Row 14 (i = 14): p^14; paper shows 4^14 = 268435456 and 3^14 = 4782969.
    assert_eq!(t.at[(14, 11)], ri(268_435_456));
    assert_eq!(t.at[(14, 7)], ri(4_782_969));
    assert_eq!(t.at[(14, 13)], r(1, 268_435_456));
    assert_eq!(t.at[(14, 15)], ri(1));
}

#[test]
fn pin_g_16_15_rows() {
    let t = WinogradTransform::generate(2, 15);
    assert_eq!(t.alpha, 16);
    // Paper row for p = 1: all entries −1/450.
    for j in 0..15 {
        assert_eq!(t.g[(1, j)], r(-1, 450), "G(16,15) row1 col{j}");
    }
    // Paper row for p = 2: 2^(j+1) / 165375 (N₂ = 165375/2).
    for j in 0..15 {
        assert_eq!(t.g[(3, j)], r(2i128 << j, 165_375), "G(16,15) row3 col{j}");
    }
    // Paper row for p = 3: −3^j / 3503500.
    assert_eq!(t.g[(7, 0)], r(-1, 3_503_500));
    assert_eq!(t.g[(7, 14)], r(-4_782_969, 3_503_500));
    // Paper row for p = 4: 4^j / 160810650.
    assert_eq!(t.g[(11, 0)], r(1, 160_810_650));
    assert_eq!(t.g[(11, 14)], r(268_435_456, 160_810_650));
    // ∞ row.
    assert_eq!(t.g[(15, 14)], ri(1));
    assert_eq!(t.g[(15, 0)], ri(0));
}

#[test]
fn pin_d_16_rows() {
    let t = WinogradTransform::generate(8, 9);
    assert_eq!(t.alpha, 16);
    // Paper D(16)ᵀ row 0:
    let row0 = [
        "1",
        "0",
        "-4381/144",
        "0",
        "164597/576",
        "0",
        "-539803/576",
        "0",
        "539803/576",
        "0",
        "-164597/576",
        "0",
        "4381/144",
        "0",
        "-1",
        "0",
    ];
    for (j, s) in row0.iter().enumerate() {
        let want: Rational = s.parse().unwrap();
        assert_eq!(t.dt[(0, j)], want, "D(16)^T row0 col{j}");
    }
    // Paper D(16)ᵀ row 1:
    let row1 = [
        "0",
        "1",
        "1",
        "-4237/144",
        "-4237/144",
        "147649/576",
        "147649/576",
        "-65359/96",
        "-65359/96",
        "147649/576",
        "147649/576",
        "-4237/144",
        "-4237/144",
        "1",
        "1",
        "0",
    ];
    for (j, s) in row1.iter().enumerate() {
        let want: Rational = s.parse().unwrap();
        assert_eq!(t.dt[(1, j)], want, "D(16)^T row1 col{j}");
    }
    // ∞ row mirrors row 0 with flipped interior signs (paper's last row).
    let row15 = [
        "0",
        "-1",
        "0",
        "4381/144",
        "0",
        "-164597/576",
        "0",
        "539803/576",
        "0",
        "-539803/576",
        "0",
        "164597/576",
        "0",
        "-4381/144",
        "0",
        "1",
    ];
    for (j, s) in row15.iter().enumerate() {
        let want: Rational = s.parse().unwrap();
        assert_eq!(t.dt[(15, j)], want, "D(16)^T row15 col{j}");
    }
}

// --- Semantics: the generated algorithm computes correlation, exactly ---

#[test]
fn all_supported_shapes_are_exact() {
    for alpha in [4usize, 8, 16] {
        for rr in 2..alpha {
            let n = alpha + 1 - rr;
            let t = WinogradTransform::generate(n, rr);
            assert_eq!(t.alpha, alpha);
            // A deterministic but non-trivial rational input set.
            let g: Vec<Rational> = (0..rr).map(|i| r(2 * i as i128 - 3, 1 + i as i128)).collect();
            let d: Vec<Rational> = (0..alpha).map(|i| r(i as i128 + 1, 2 + (i as i128 % 3))).collect();
            let got = t.apply_exact(&g, &d);
            let want = direct_correlation(&g, &d);
            assert_eq!(got, want, "F({n},{rr}) exactness");
        }
    }
}

#[test]
fn theoretical_speedup_values() {
    // §6.1.2: Φ = n·r/α; Γ8(4,5)/Γ8(5,4) maximise Φ for α = 8 (20/8 = 2.5);
    // Γ8(6,3) = 18/8 = 2.25; Γ8(2,7)/Γ8(7,2) = 14/8 = 1.75.
    assert_eq!(WinogradTransform::generate(4, 5).theoretical_speedup(), 2.5);
    assert_eq!(WinogradTransform::generate(5, 4).theoretical_speedup(), 2.5);
    assert_eq!(WinogradTransform::generate(6, 3).theoretical_speedup(), 2.25);
    assert_eq!(WinogradTransform::generate(2, 7).theoretical_speedup(), 1.75);
    // Γ16(8,9)/Γ16(9,8) maximise for α = 16 (72/16 = 4.5) > Γ16(10,7) (70/16).
    assert_eq!(WinogradTransform::generate(8, 9).theoretical_speedup(), 4.5);
    assert_eq!(WinogradTransform::generate(10, 7).theoretical_speedup(), 4.375);
}

#[test]
fn amplification_grows_with_alpha() {
    // The error-amplification bound is the analyzer's snapshot quantity;
    // pin its qualitative behaviour (monotone in α for fixed r) and a
    // closed-form small case. For F(2,3): Aᵀ row sums max 3, G max 1,
    // Dᵀ max 2 ⟹ amplification 6 — but check via the definition instead
    // of hard-coding, so the test documents rather than duplicates.
    let small = WinogradTransform::generate(2, 3);
    assert_eq!(
        small.error_amplification(),
        small.at.inf_norm() * small.g.inf_norm() * small.dt.inf_norm()
    );
    let a8 = WinogradTransform::generate(6, 3).error_amplification();
    let a16 = WinogradTransform::generate(14, 3).error_amplification();
    assert!(small.error_amplification() < a8);
    assert!(a8 < a16, "amplification must grow with α: {a8} vs {a16}");
    // Max-abs coefficient: Γ8(6,3)'s Dᵀ tops out at ±21/4 (Figure 5);
    // across all three matrices the largest entry is Aᵀ's 2⁵ = 32 (the
    // p = ±2 column raised to the n−1 = 5th power).
    let g863 = WinogradTransform::generate(6, 3);
    assert_eq!(g863.dt.max_abs(), r(21, 4));
    assert_eq!(g863.max_abs_coeff(), ri(32));
}

#[test]
fn gamma_checks_alpha() {
    let t = gamma(8, 6, 3);
    assert_eq!((t.n, t.r, t.alpha), (6, 3, 8));
}

#[test]
#[should_panic]
fn gamma_rejects_bad_alpha() {
    let _ = gamma(8, 6, 4);
}

#[test]
fn f32_export_matches_known_values() {
    let t = WinogradTransform::generate(6, 3);
    let dt = t.dt.to_f32();
    // D(8)ᵀ[0][2] = −21/4 = −5.25 exactly in f32; [0][4] = 21/4.
    assert_eq!(dt[2], -5.25f32);
    assert_eq!(dt[4], 5.25f32);
}

proptest! {
    #[test]
    fn winograd_equals_correlation(
        alpha_sel in 0usize..3,
        rr in 2usize..9,
        seed in proptest::collection::vec(-50i128..50, 32)
    ) {
        let alpha = [4usize, 8, 16][alpha_sel];
        prop_assume!(rr < alpha);
        let n = alpha + 1 - rr;
        let t = WinogradTransform::generate(n, rr);
        let g: Vec<Rational> = seed[..rr].iter().map(|&v| Rational::new(v, 7)).collect();
        let d: Vec<Rational> = seed[rr..rr + alpha].iter().map(|&v| Rational::new(v, 5)).collect();
        prop_assert_eq!(t.apply_exact(&g, &d), direct_correlation(&g, &d));
    }

    #[test]
    fn f64_matrices_accurate(rr in 2usize..9, vals in proptest::collection::vec(-2.0f64..2.0, 32)) {
        // The float-exported pipeline must agree with direct correlation to
        // near machine precision for α = 8 (Table 3 reports ~1e-7 in f32).
        let alpha = 8usize;
        prop_assume!(rr < alpha);
        let n = alpha + 1 - rr;
        let t = WinogradTransform::generate(n, rr);
        let g = &vals[..rr];
        let d = &vals[rr..rr + alpha];
        let gm = t.g.to_f64();
        let dm = t.dt.to_f64();
        let am = t.at.to_f64();
        let tg: Vec<f64> = (0..alpha).map(|i| (0..rr).map(|j| gm[i * rr + j] * g[j]).sum()).collect();
        let td: Vec<f64> = (0..alpha).map(|i| (0..alpha).map(|j| dm[i * alpha + j] * d[j]).sum()).collect();
        let prod: Vec<f64> = tg.iter().zip(&td).map(|(a, b)| a * b).collect();
        for i in 0..n {
            let y: f64 = (0..alpha).map(|j| am[i * alpha + j] * prod[j]).sum();
            let want: f64 = (0..rr).map(|j| g[j] * d[i + j]).sum();
            prop_assert!((y - want).abs() < 1e-10 * want.abs().max(1.0), "row {}: {} vs {}", i, y, want);
        }
    }
}
