//! Pass 5 — condvar discipline for the serving-stack crates.
//!
//! Three rules over `crates/{serve,parallel,obs}` production code:
//!
//! 1. **Waits re-check their predicate** — every `Condvar::wait` /
//!    `wait_timeout` must either be `wait_while` or sit lexically inside a
//!    `loop`/`while` block, so a spurious or stolen wakeup re-evaluates
//!    the condition instead of proceeding on stale state.
//! 2. **Waited-on condvars are notified somewhere** — a condvar with a
//!    wait site but no `notify_one`/`notify_all` anywhere in the crate's
//!    production code can only ever wake spuriously.
//! 3. **Predicate mutations pair with a notify** — the mutex a condvar
//!    waits with guards the predicate; any mutation made through that
//!    mutex's guard is a state change a waiter may be sleeping on. A
//!    function that mutates such state must also notify one of the
//!    associated condvars, or carry an explicit `// NO-NOTIFY:`
//!    justification (within [`crate::unsafe_audit::DOC_WINDOW`] code
//!    lines) saying why no sleeper cares — e.g. a consumer-side drain
//!    nobody waits on. This is the classic missed-wakeup shape: flip the
//!    flag, forget the notify.
//!
//! Mutation detection is lexical (assignments and a list of mutating
//! collection methods through a guard binding or a
//! `.lock().unwrap()`-temporary) and deliberately conservative: derived
//! borrows (`let q = &mut guard.field; q.push(…)`) are not chased, so the
//! pass under-reports rather than spraying false positives. The protocols
//! it cannot see are exactly what `crates/modelcheck` explores
//! dynamically.

use crate::diag::{Finding, Pass};
use crate::lockorder::{crate_of, in_scope};
use crate::scan::{documented, fn_spans, ident_after, ident_before, innermost_fn, production_len, ScannedFile};
use crate::unsafe_audit::DOC_WINDOW;
use std::collections::{BTreeMap, BTreeSet};

/// Methods that mutate the receiver — through a guard, a predicate change.
const MUT_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "swap_remove",
    "drain",
    "clear",
    "take",
    "replace",
    "extend",
    "truncate",
];

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// One `cv.wait(guard)`-shaped site.
#[derive(Clone, Debug)]
struct WaitSite {
    file: usize,
    line: usize,
    cv: String,
    guard: Option<String>,
    in_loop: bool,
    wait_while: bool,
}

#[derive(Clone, Debug)]
struct NotifySite {
    file: usize,
    line: usize,
    cv: String,
}

/// Aggregate counts for the JSON report (proof the pass saw something).
#[derive(Clone, Copy, Debug, Default)]
pub struct CondvarSummary {
    pub waits: usize,
    pub notifies: usize,
    pub guarded_mutations: usize,
}

/// Word-boundary occurrences of `pat` (a `.method(`-shaped pattern) in
/// `code`, as byte offsets of the leading `.`.
fn method_sites(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(pat) {
        out.push(from + p);
        from = from + p + 1;
    }
    out
}

/// Does an assignment operator (`=`, `+=`, `-=`, … but not `==`, `!=`,
/// `<=`, `>=`, `=>`) appear in `code[from..]`?
fn has_assignment_after(code: &str, from: usize) -> bool {
    let bytes = code.as_bytes();
    for i in from..bytes.len() {
        if bytes[i] != b'=' {
            continue;
        }
        let prev = if i > 0 { bytes[i - 1] } else { b' ' };
        let next = bytes.get(i + 1).copied().unwrap_or(b' ');
        if next == b'=' || matches!(prev, b'=' | b'!' | b'<' | b'>') || next == b'>' {
            continue;
        }
        return true;
    }
    false
}

/// Does `code[from..]` (the tail after a guard reference) call a mutating
/// method — `.push_back(`, `.take(`, …? The leading `.` and trailing `(`
/// in the pattern give exact-method matching (`.pop_front(` is its own
/// entry and never counts as `.pop(`).
fn has_mut_method_after(code: &str, from: usize) -> bool {
    MUT_METHODS.iter().any(|m| code[from..].contains(&format!(".{m}(")))
}

/// Lint the in-scope files; returns findings plus summary counts.
pub fn lint_condvars(files: &[ScannedFile]) -> (Vec<Finding>, CondvarSummary) {
    let mut findings = Vec::new();
    let mut summary = CondvarSummary::default();
    let mut waits: Vec<WaitSite> = Vec::new();
    let mut notifies: Vec<NotifySite> = Vec::new();
    // (crate, guard-binding mutex) → condvars waited with it.
    let mut assoc: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();

    // Phase 1: collect wait / notify sites with loop context.
    for (fidx, file) in files.iter().enumerate() {
        if !in_scope(&file.rel_path) {
            continue;
        }
        let n = production_len(&file.lines);
        let spans = fn_spans(&file.lines[..n]);
        let mut depth = 0usize;
        // Depths at which `loop`/`while` blocks are currently open.
        let mut loop_blocks: Vec<usize> = Vec::new();
        let mut armed_loop = false;
        for (idx, line) in file.lines[..n].iter().enumerate() {
            let code = &line.code;
            let bytes = code.as_bytes();
            let mut word = String::new();
            let mut i = 0usize;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if is_ident(c) {
                    word.push(c);
                    i += 1;
                    continue;
                }
                if word == "loop" || word == "while" {
                    armed_loop = true;
                } else if word == "fn" {
                    armed_loop = false;
                }
                word.clear();
                for (pat, wait_while) in [(".wait(", false), (".wait_timeout(", false), (".wait_while(", true)] {
                    if code[i..].starts_with(pat) {
                        if let Some(cv) = ident_before(code, i) {
                            waits.push(WaitSite {
                                file: fidx,
                                line: idx + 1,
                                cv: format!("{}::{cv}", crate_of(&file.rel_path)),
                                guard: ident_after(code, i + pat.len()),
                                in_loop: !loop_blocks.is_empty() || armed_loop,
                                wait_while,
                            });
                        }
                    }
                }
                for pat in [".notify_one(", ".notify_all("] {
                    if code[i..].starts_with(pat) {
                        if let Some(cv) = ident_before(code, i) {
                            notifies.push(NotifySite {
                                file: fidx,
                                line: idx + 1,
                                cv: format!("{}::{cv}", crate_of(&file.rel_path)),
                            });
                        }
                    }
                }
                match c {
                    '{' => {
                        if armed_loop {
                            loop_blocks.push(depth);
                            armed_loop = false;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        while loop_blocks.last().is_some_and(|d| *d >= depth) {
                            loop_blocks.pop();
                        }
                    }
                    ';' => armed_loop = false,
                    _ => {}
                }
                i += 1;
            }
            if word == "loop" || word == "while" {
                armed_loop = true;
            }
        }

        // Associate each wait's guard with the mutex it was locked from,
        // searching upward within the innermost function.
        for w in waits.iter().filter(|w| w.file == fidx) {
            let Some(guard) = &w.guard else { continue };
            let idx = w.line - 1;
            let span = innermost_fn(&spans, idx);
            let start = span.map(|s| s.open).unwrap_or(0);
            for k in (start..=idx).rev() {
                let code = &file.lines[k].code;
                let binds = code
                    .trim_start()
                    .strip_prefix("let ")
                    .map(|r| {
                        r.trim_start()
                            .strip_prefix("mut ")
                            .unwrap_or(r.trim_start())
                            .trim_start()
                    })
                    .is_some_and(|r| r.starts_with(guard.as_str()) && !r[guard.len()..].starts_with(is_ident));
                if binds {
                    // `let guard = cv.wait(guard)…` rebinds the same guard —
                    // transparent for association; keep searching upward for
                    // the `.lock()` that created it.
                    if code.contains(".wait(") && !code.contains(".lock()") {
                        continue;
                    }
                    if let Some(p) = code.find(".lock()") {
                        if let Some(mutex) = ident_before(code, p) {
                            assoc
                                .entry((crate_of(&file.rel_path).to_string(), mutex))
                                .or_default()
                                .insert(w.cv.clone());
                        }
                    }
                    break;
                }
            }
        }
    }
    summary.waits = waits.len();
    summary.notifies = notifies.len();

    // Rule 1: waits re-check their predicate.
    for w in &waits {
        if !w.wait_while && !w.in_loop {
            findings.push(Finding::new(
                Pass::CondvarDiscipline,
                &files[w.file].rel_path,
                w.line,
                format!(
                    "bare `{}.wait(…)` outside a predicate loop — use `wait_while` or re-check the \
                     predicate in a `loop`/`while`",
                    w.cv.rsplit("::").next().unwrap_or(&w.cv),
                ),
            ));
        }
    }

    // Rule 2: every waited-on condvar is notified somewhere in scope.
    let notified: BTreeSet<&str> = notifies.iter().map(|n| n.cv.as_str()).collect();
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for w in &waits {
        if !notified.contains(w.cv.as_str()) && reported.insert(w.cv.as_str()) {
            findings.push(Finding::new(
                Pass::CondvarDiscipline,
                &files[w.file].rel_path,
                w.line,
                format!("Condvar `{}` is waited on but never notified in production code", w.cv),
            ));
        }
    }

    // Rule 3: guard mutations of waited-on state pair with a notify.
    for (fidx, file) in files.iter().enumerate() {
        if !in_scope(&file.rel_path) {
            continue;
        }
        let krate = crate_of(&file.rel_path).to_string();
        let watched: Vec<(&String, &BTreeSet<String>)> = assoc
            .iter()
            .filter(|((c, _), _)| *c == krate)
            .map(|((_, m), cvs)| (m, cvs))
            .collect();
        if watched.is_empty() {
            continue;
        }
        let n = production_len(&file.lines);
        let spans = fn_spans(&file.lines[..n]);
        for (idx, line) in file.lines[..n].iter().enumerate() {
            let code = &line.code;
            let mut hit: Option<(&String, &BTreeSet<String>)> = None;

            // Temporary-guard form: `….mutex.lock().unwrap()` followed by
            // an assignment or a mutating method in the same statement.
            for p in method_sites(code, ".lock()") {
                let Some(mutex) = ident_before(code, p) else { continue };
                let Some(entry) = watched.iter().find(|(m, _)| **m == mutex) else {
                    continue;
                };
                let after = p + ".lock()".len();
                if has_assignment_after(code, after) || has_mut_method_after(code, after) {
                    hit = Some(*entry);
                }
            }

            // Named-guard form: find a guard binding of a watched mutex in
            // the enclosing function, then look for mutations through it.
            if hit.is_none() {
                if let Some(span) = innermost_fn(&spans, idx) {
                    for (mutex, cvs) in &watched {
                        let guard = (span.open..idx).rev().find_map(|k| {
                            let c = &file.lines[k].code;
                            let name = c.trim_start().strip_prefix("let ").and_then(|r| {
                                let r = r.trim_start();
                                let r = r.strip_prefix("mut ").unwrap_or(r).trim_start();
                                let end = r.find(|ch: char| !is_ident(ch)).unwrap_or(r.len());
                                (end > 0).then(|| r[..end].to_string())
                            })?;
                            let p = c.find(".lock()")?;
                            (ident_before(c, p)? == **mutex).then_some(name)
                        });
                        let Some(guard) = guard else { continue };
                        // Occurrences of the guard name followed by `.` and
                        // a mutation, or `*guard = …`.
                        let mut from = 0;
                        while let Some(p) = code[from..].find(guard.as_str()) {
                            let start = from + p;
                            let end = start + guard.len();
                            from = start + 1;
                            let left = start == 0 || !is_ident(code.as_bytes()[start - 1] as char);
                            let right_char = code.as_bytes().get(end).map(|b| *b as char);
                            if !left || right_char.is_some_and(is_ident) {
                                continue;
                            }
                            let deref = start > 0 && code.as_bytes()[start - 1] == b'*';
                            match right_char {
                                Some('.') if has_assignment_after(code, end) || has_mut_method_after(code, end) => {
                                    hit = Some((mutex, cvs));
                                }
                                _ if deref && has_assignment_after(code, end) => hit = Some((mutex, cvs)),
                                _ => {}
                            }
                        }
                    }
                }
            }

            let Some((mutex, cvs)) = hit else { continue };
            summary.guarded_mutations += 1;
            let span = innermost_fn(&spans, idx);
            let fn_has_notify = notifies.iter().any(|nt| {
                nt.file == fidx
                    && cvs.contains(&nt.cv)
                    && span.map(|s| s.open < nt.line && nt.line - 1 <= s.close).unwrap_or(true)
            });
            if fn_has_notify || documented(&file.lines, idx, "NO-NOTIFY:", DOC_WINDOW) {
                continue;
            }
            let cv_list: Vec<&str> = cvs.iter().map(String::as_str).collect();
            findings.push(Finding::new(
                Pass::CondvarDiscipline,
                &file.rel_path,
                idx + 1,
                format!(
                    "mutation through `{}::{mutex}` guard — state waited on by {{{}}} — without a paired \
                     notify in this function; add a `notify_*` or a `// NO-NOTIFY:` justification",
                    krate,
                    cv_list.join(", "),
                ),
            ));
        }
    }

    (findings, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_str;

    fn file(rel_path: &str, src: &str) -> ScannedFile {
        ScannedFile {
            rel_path: rel_path.to_string(),
            lines: scan_str(src),
        }
    }

    #[test]
    fn bare_wait_is_flagged_loop_wait_is_not() {
        let bare = file(
            "crates/serve/src/x.rs",
            "fn f(&self) {\n    let mut g = self.state.lock().unwrap();\n    g = self.cv.wait(g).unwrap();\n    self.cv.notify_all();\n}\n",
        );
        let (findings, s) = lint_condvars(&[bare]);
        assert_eq!(s.waits, 1);
        assert!(
            findings.iter().any(|f| f.line == 3 && f.message.contains("bare")),
            "{findings:?}"
        );

        let looped = file(
            "crates/serve/src/x.rs",
            "fn f(&self) {\n    let mut g = self.state.lock().unwrap();\n    while !g.ready {\n        g = self.cv.wait(g).unwrap();\n    }\n    self.cv.notify_all();\n}\n",
        );
        let (findings, _) = lint_condvars(&[looped]);
        assert!(findings.iter().all(|f| !f.message.contains("bare")), "{findings:?}");

        let wait_while = file(
            "crates/serve/src/x.rs",
            "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    let g = self.cv.wait_while(g, |s| !s.ready).unwrap();\n    self.cv.notify_all();\n}\n",
        );
        let (findings, _) = lint_condvars(&[wait_while]);
        assert!(findings.iter().all(|f| !f.message.contains("bare")), "{findings:?}");
    }

    #[test]
    fn never_notified_condvar_is_flagged() {
        let f = file(
            "crates/serve/src/x.rs",
            "fn f(&self) {\n    let mut g = self.state.lock().unwrap();\n    loop {\n        g = self.cv.wait(g).unwrap();\n    }\n}\n",
        );
        let (findings, _) = lint_condvars(&[f]);
        assert!(
            findings.iter().any(|f| f.message.contains("never notified")),
            "{findings:?}"
        );
    }

    #[test]
    fn unpaired_predicate_mutation_is_flagged() {
        // One fn waits on state via cv; another mutates state without
        // notifying and without a NO-NOTIFY justification.
        let src = "fn w(&self) {\n    let mut g = self.state.lock().unwrap();\n    while !g.done {\n        g = self.cv.wait(g).unwrap();\n    }\n}\nfn m(&self) {\n    self.state.lock().unwrap().done = true;\n}\nfn ok(&self) {\n    self.state.lock().unwrap().done = true;\n    self.cv.notify_all();\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (findings, s) = lint_condvars(&[f]);
        assert_eq!(s.guarded_mutations, 2);
        let flagged: Vec<usize> = findings
            .iter()
            .filter(|f| f.message.contains("paired"))
            .map(|f| f.line)
            .collect();
        assert_eq!(flagged, vec![8], "{findings:?}");
        // A NO-NOTIFY justification silences it.
        let src = src.replace(
            "fn m(&self) {\n    self.state.lock().unwrap().done = true;",
            "fn m(&self) {\n    // NO-NOTIFY: consumer-side take; nobody sleeps on `done` becoming true.\n    self.state.lock().unwrap().done = true;",
        );
        let f = file("crates/serve/src/x.rs", src.as_str());
        let (findings, _) = lint_condvars(&[f]);
        assert!(findings.iter().all(|f| !f.message.contains("paired")), "{findings:?}");
    }

    #[test]
    fn named_guard_mutations_and_rebinding() {
        // Rebinding the guard through wait() is not a mutation; a real
        // field assignment through the named guard is.
        let src = "fn w(&self) {\n    let mut g = self.state.lock().unwrap();\n    while !g.done {\n        g = self.cv.wait(g).unwrap();\n    }\n}\nfn m(&self) {\n    let mut g = self.state.lock().unwrap();\n    g.count += 1;\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (findings, s) = lint_condvars(&[f]);
        assert_eq!(s.guarded_mutations, 1, "{findings:?}");
        assert!(findings.iter().any(|f| f.line == 9), "{findings:?}");
        // Comparisons and reads through the guard are not mutations.
        let src = "fn w(&self) {\n    let mut g = self.state.lock().unwrap();\n    while !g.done {\n        g = self.cv.wait(g).unwrap();\n    }\n    self.cv.notify_all();\n}\nfn r(&self) {\n    let g = self.state.lock().unwrap();\n    let _n = g.queue.len();\n    if g.count == 3 {}\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (_, s) = lint_condvars(&[f]);
        assert_eq!(s.guarded_mutations, 0);
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let f = file(
            "crates/engine/src/lib.rs",
            "fn f(&self) { let g = self.state.lock().unwrap(); let g = self.cv.wait(g).unwrap(); }\n",
        );
        let (findings, s) = lint_condvars(&[f]);
        assert!(findings.is_empty());
        assert_eq!(s.waits, 0);
    }
}
