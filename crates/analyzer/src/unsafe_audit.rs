//! Pass 2 — the `unsafe` audit.
//!
//! Three rules, mirroring the workspace's safety story (`crates/parallel`,
//! `crates/simd` and `crates/gemm` are the only crates allowed to hold
//! `unsafe`: parallel because the scoped thread-pool lifetime erasure and
//! the disjoint-slice splitter cannot be expressed in safe Rust without
//! rayon, simd and gemm because explicit AVX2/NEON intrinsics are
//! `unsafe fn` behind `#[target_feature]` and raw-pointer microkernel
//! loops):
//!
//! 1. the token `unsafe` may appear only in [`UNSAFE_ALLOWLIST`] files;
//! 2. every line containing `unsafe` in an allowlisted file must carry a
//!    `// SAFETY:` justification on the same line or within the
//!    [`DOC_WINDOW`] preceding lines;
//! 3. every other workspace crate root must declare
//!    `#![forbid(unsafe_code)]`, so the compiler — not just this audit —
//!    rejects regressions.

use crate::diag::{Finding, Pass};
use crate::scan::{documented, has_word, ScannedFile};

/// The only files in which `unsafe` is tolerated (workspace-relative).
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/gemm/src/avx2.rs",
    "crates/gemm/src/neon.rs",
    "crates/parallel/src/lib.rs",
    "crates/parallel/src/slice_parts.rs",
    "crates/simd/src/avx2.rs",
    "crates/simd/src/neon.rs",
];

/// How many preceding *code* lines a `// SAFETY:` (or `// ORDERING:`)
/// marker may sit above its site (comment and blank lines are free — see
/// [`crate::scan::documented`]). Three code lines lets one justification
/// cover a small cluster of adjacent sites without letting unrelated
/// comments far above count.
pub const DOC_WINDOW: usize = 3;

/// Crates whose root is exempt from the `#![forbid(unsafe_code)]`
/// requirement — exactly the crates owning allowlisted unsafe files.
const FORBID_EXEMPT_PREFIXES: &[&str] = &["crates/gemm/", "crates/parallel/", "crates/simd/"];

/// Rules 1 and 2: allowlist membership and `// SAFETY:` adjacency.
pub fn audit_unsafe(files: &[ScannedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let allowlisted = UNSAFE_ALLOWLIST.contains(&file.rel_path.as_str());
        for (idx, line) in file.lines.iter().enumerate() {
            if !has_word(&line.code, "unsafe") {
                continue;
            }
            if !allowlisted {
                findings.push(Finding::new(
                    Pass::UnsafeAudit,
                    &file.rel_path,
                    idx + 1,
                    "`unsafe` outside the allowlist (only crates/parallel, crates/simd and crates/gemm may use it)",
                ));
            } else if !documented(&file.lines, idx, "SAFETY:", DOC_WINDOW) {
                findings.push(Finding::new(
                    Pass::UnsafeAudit,
                    &file.rel_path,
                    idx + 1,
                    format!("`unsafe` without an adjacent `// SAFETY:` justification (within {DOC_WINDOW} lines)"),
                ));
            }
        }
    }
    findings
}

/// Rule 3: every non-exempt crate root carries `#![forbid(unsafe_code)]`.
///
/// Crate roots are recognised structurally: `src/lib.rs` at the workspace
/// root (the umbrella crate) and `crates/<name>/src/lib.rs`.
pub fn audit_forbid(files: &[ScannedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !is_crate_root(&file.rel_path) {
            continue;
        }
        if FORBID_EXEMPT_PREFIXES.iter().any(|p| file.rel_path.starts_with(p)) {
            continue;
        }
        let has_forbid = file
            .lines
            .iter()
            .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
        if !has_forbid {
            findings.push(Finding::new(
                Pass::UnsafeAudit,
                &file.rel_path,
                1,
                "crate root is missing `#![forbid(unsafe_code)]`",
            ));
        }
    }
    findings
}

fn is_crate_root(rel_path: &str) -> bool {
    if rel_path == "src/lib.rs" {
        return true;
    }
    let parts: Vec<&str> = rel_path.split('/').collect();
    parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_str;

    fn file(rel_path: &str, src: &str) -> ScannedFile {
        ScannedFile {
            rel_path: rel_path.to_string(),
            lines: scan_str(src),
        }
    }

    #[test]
    fn flags_unsafe_outside_allowlist() {
        let f = file("crates/core/src/kernel.rs", "fn f() {\n    unsafe { danger() }\n}\n");
        let findings = audit_unsafe(&[f]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("allowlist"));
    }

    #[test]
    fn allowlisted_unsafe_needs_safety_comment() {
        let undocumented = file("crates/parallel/src/lib.rs", "fn f() {\n    unsafe { danger() }\n}\n");
        assert_eq!(audit_unsafe(&[undocumented]).len(), 1);
        let documented = file(
            "crates/parallel/src/lib.rs",
            "fn f() {\n    // SAFETY: danger() is fine because …\n    unsafe { danger() }\n}\n",
        );
        assert!(audit_unsafe(&[documented]).is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let f = file(
            "crates/core/src/lib.rs",
            "// unsafe in prose is fine\nlet msg = \"unsafe in a string\";\n/* unsafe in a block */\n",
        );
        assert!(audit_unsafe(&[f]).is_empty());
    }

    #[test]
    fn forbid_attr_required_on_crate_roots() {
        let missing = file("crates/tensor/src/lib.rs", "pub mod shape;\n");
        let present = file("crates/obs/src/lib.rs", "#![forbid(unsafe_code)]\npub mod json;\n");
        let exempt = file("crates/parallel/src/lib.rs", "pub mod slice_parts;\n");
        let not_root = file("crates/tensor/src/shape.rs", "pub struct S;\n");
        let findings = audit_forbid(&[missing, present, exempt, not_root]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/tensor/src/lib.rs");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn umbrella_root_is_a_crate_root() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/nn/src/lib.rs"));
        assert!(!is_crate_root("crates/nn/src/layers.rs"));
        assert!(!is_crate_root("src/main.rs"));
    }
}
