//! Findings and rustc-style diagnostics.

use iwino_obs::Json;
use std::fmt;

/// Which analysis pass produced a finding. The code strings appear inside
/// the `error[...]` bracket of the printed diagnostic and as the `"pass"`
/// field of the JSON report, so they are part of the tool's interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// Symbolic Γα(n, r) transform verification + coefficient-bound snapshot.
    TransformVerify,
    /// `unsafe` allowlist / `// SAFETY:` adjacency / `#![forbid(unsafe_code)]`.
    UnsafeAudit,
    /// `Ordering::*` site classification + `// ORDERING:` justification lint.
    AtomicsLint,
    /// Static lock-nesting graph: cycles, committed total order snapshot,
    /// `// LOCK ORDER:` comments at multi-lock sites.
    LockOrder,
    /// Condvar discipline: waits in predicate loops, waited-on predicate
    /// mutations paired with a `notify_*` (or an explicit `// NO-NOTIFY:`).
    CondvarDiscipline,
}

impl Pass {
    pub fn code(self) -> &'static str {
        match self {
            Pass::TransformVerify => "transform-verify",
            Pass::UnsafeAudit => "unsafe-audit",
            Pass::AtomicsLint => "atomics-lint",
            Pass::LockOrder => "lock-order",
            Pass::CondvarDiscipline => "condvar-discipline",
        }
    }
}

/// One diagnostic, anchored to a `file:line` inside the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub pass: Pass,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number (0 when the finding is file-level).
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(pass: Pass, file: impl Into<String>, line: usize, message: impl Into<String>) -> Finding {
        Finding {
            pass,
            file: file.into(),
            line,
            message: message.into(),
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("pass", Json::from(self.pass.code())),
            ("file", Json::from(self.file.as_str())),
            ("line", Json::from(self.line)),
            ("message", Json::from(self.message.as_str())),
        ])
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.pass.code(), self.message)?;
        if self.line > 0 {
            write!(f, "  --> {}:{}", self.file, self.line)
        } else {
            write!(f, "  --> {}", self.file)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_rustc_shaped() {
        let f = Finding::new(
            Pass::UnsafeAudit,
            "crates/x/src/lib.rs",
            42,
            "`unsafe` outside the allowlist",
        );
        let s = format!("{f}");
        assert_eq!(
            s,
            "error[unsafe-audit]: `unsafe` outside the allowlist\n  --> crates/x/src/lib.rs:42"
        );
        let file_level = Finding::new(
            Pass::TransformVerify,
            "crates/analyzer/transform_bounds.snap",
            0,
            "stale",
        );
        assert!(format!("{file_level}").ends_with("--> crates/analyzer/transform_bounds.snap"));
    }

    #[test]
    fn json_fields() {
        let f = Finding::new(Pass::AtomicsLint, "a.rs", 7, "m");
        let j = f.to_json().pretty();
        assert!(j.contains("\"pass\": \"atomics-lint\""));
        assert!(j.contains("\"line\": 7"));
    }
}
