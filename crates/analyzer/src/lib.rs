//! `iwino-analyze` — the workspace static-analysis suite.
//!
//! Five passes, run offline with no external tooling:
//!
//! 1. **Symbolic transform verification** ([`symbolic`]) — proves, over
//!    exact rationals with indeterminate inputs, the Winograd identity and
//!    the Γ-decomposition FH-accumulation identity for every `(n, r)` pair
//!    the planner can select, and snapshots the per-pair coefficient /
//!    error-amplification bounds.
//! 2. **Unsafe audit** ([`unsafe_audit`]) — `unsafe` only in the
//!    `crates/parallel` allowlist, always with an adjacent `// SAFETY:`
//!    comment; every other crate root carries `#![forbid(unsafe_code)]`.
//! 3. **Atomics lint** ([`atomics`]) — every atomic-ordering site in
//!    production code carries a `// ORDERING:` justification that
//!    *classifies* it (counter / flag / handoff / external-hb); `Relaxed`
//!    on an implied Release/Acquire handoff is flagged.
//! 4. **Lock order** ([`lockorder`]) — the static lock-nesting graph of
//!    `crates/{serve,parallel,obs}` must be acyclic, every multi-lock
//!    site carries a `// LOCK ORDER:` comment, and the total order is
//!    committed to `crates/analyzer/lock_order.snap`.
//! 5. **Condvar discipline** ([`condvar`]) — waits re-check their
//!    predicate, waited-on condvars are notified, and predicate mutations
//!    pair with a notify (or an explicit `// NO-NOTIFY:` justification).
//!
//! The static passes prove shape properties; their dynamic complement is
//! `crates/modelcheck`, which exhaustively explores interleavings of
//! extracted protocol models under a deterministic scheduler.
//!
//! Findings print rustc-style to stderr and export as JSON (schema v2,
//! `"kind": "analysis"`) for `scripts/check.sh`, which fails the gate on
//! any finding.

#![forbid(unsafe_code)]

pub mod atomics;
pub mod condvar;
pub mod diag;
pub mod lockorder;
pub mod scan;
pub mod symbolic;
pub mod unsafe_audit;

pub use diag::{Finding, Pass};

use iwino_obs::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Workspace-relative location of the committed coefficient-bound snapshot.
pub const SNAPSHOT_REL_PATH: &str = "crates/analyzer/transform_bounds.snap";

/// Workspace-relative location of the committed lock-order snapshot.
pub const LOCK_SNAPSHOT_REL_PATH: &str = "crates/analyzer/lock_order.snap";

/// Analyzer configuration.
pub struct Options {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Rewrite the coefficient-bound snapshot instead of diffing it.
    pub fix_snapshot: bool,
}

/// The result of one full analysis run.
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub bounds: Vec<symbolic::BoundsRow>,
    pub files_scanned: usize,
    pub pairs_verified: usize,
    /// Set when `--fix-snapshot` rewrote the snapshot file(s).
    pub snapshot_written: bool,
    /// Static lock-nesting graph of the serving-stack crates.
    pub lock_graph: lockorder::LockGraph,
    /// Classified atomic-ordering sites.
    pub atomic_sites: Vec<atomics::AtomicSite>,
    /// Condvar wait/notify/mutation counts.
    pub condvar_summary: condvar::CondvarSummary,
}

impl Analysis {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// JSON report. Schema v2 documents carry a `"kind"` discriminator;
    /// analyzer reports use `"analysis"` (the obs metrics exporter uses
    /// `"metrics"`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::from(iwino_obs::SCHEMA_VERSION)),
            ("kind", Json::from("analysis")),
            ("files_scanned", Json::from(self.files_scanned)),
            ("pairs_verified", Json::from(self.pairs_verified)),
            ("clean", Json::from(self.is_clean())),
            (
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
            (
                "concurrency",
                Json::obj(vec![
                    ("locks", Json::from(self.lock_graph.locks.len())),
                    (
                        "lock_edges",
                        Json::Arr(
                            self.lock_graph
                                .edges
                                .keys()
                                .map(|(o, i)| Json::from(format!("{o} -> {i}").as_str()))
                                .collect(),
                        ),
                    ),
                    ("atomic_sites", Json::from(self.atomic_sites.len())),
                    (
                        "relaxed_sites",
                        Json::from(self.atomic_sites.iter().filter(|s| s.relaxed).count()),
                    ),
                    ("condvar_waits", Json::from(self.condvar_summary.waits)),
                    ("condvar_notifies", Json::from(self.condvar_summary.notifies)),
                    ("guarded_mutations", Json::from(self.condvar_summary.guarded_mutations)),
                ]),
            ),
            (
                "transform_bounds",
                Json::Arr(
                    self.bounds
                        .iter()
                        .map(|b| {
                            Json::obj(vec![
                                ("alpha", Json::from(b.alpha)),
                                ("n", Json::from(b.n)),
                                ("r", Json::from(b.r)),
                                ("max_coeff", Json::from(b.max_coeff.to_string())),
                                ("amp", Json::from(b.amp.to_string())),
                                ("amp_f64", Json::from(b.amp.to_f64())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Run all five passes over the workspace at `opts.root`.
pub fn analyze_workspace(opts: &Options) -> io::Result<Analysis> {
    let snapshot_path = opts.root.join(SNAPSHOT_REL_PATH);
    let mut findings = Vec::new();
    let mut snapshot_written = false;

    // Pass 1 — symbolic verification + bounds snapshot.
    let (sym_findings, bounds) = if opts.fix_snapshot {
        let (mut f, rows) = symbolic::run(None, SNAPSHOT_REL_PATH);
        // The missing/stale snapshot finding is the one we are here to fix;
        // genuine identity failures must still be reported.
        f.retain(|x| !x.message.contains("snapshot"));
        fs::write(&snapshot_path, symbolic::render_snapshot(&rows))?;
        snapshot_written = true;
        (f, rows)
    } else {
        let committed = fs::read_to_string(&snapshot_path).ok();
        symbolic::run(committed.as_deref(), SNAPSHOT_REL_PATH)
    };
    let pairs_verified = bounds.len();
    findings.extend(sym_findings);

    // Passes 2 and 3 — source scanning.
    let files = scan_sources(&opts.root)?;
    findings.extend(unsafe_audit::audit_unsafe(&files));
    findings.extend(unsafe_audit::audit_forbid(&files));
    let (atomic_findings, atomic_sites) = atomics::lint_atomics_classified(&files);
    findings.extend(atomic_findings);

    // Pass 4 — lock order + snapshot.
    let lock_snapshot_path = opts.root.join(LOCK_SNAPSHOT_REL_PATH);
    let (lock_findings, lock_graph) = if opts.fix_snapshot {
        let (mut f, graph) = lockorder::run(&files, None, LOCK_SNAPSHOT_REL_PATH);
        f.retain(|x| !x.message.contains("snapshot"));
        fs::write(&lock_snapshot_path, lockorder::render_snapshot(&graph))?;
        snapshot_written = true;
        (f, graph)
    } else {
        let committed = fs::read_to_string(&lock_snapshot_path).ok();
        lockorder::run(&files, committed.as_deref(), LOCK_SNAPSHOT_REL_PATH)
    };
    findings.extend(lock_findings);

    // Pass 5 — condvar discipline.
    let (cv_findings, condvar_summary) = condvar::lint_condvars(&files);
    findings.extend(cv_findings);

    // Deterministic report order: pass, then file, then line.
    findings.sort_by(|a, b| (a.pass.code(), &a.file, a.line).cmp(&(b.pass.code(), &b.file, b.line)));

    Ok(Analysis {
        findings,
        bounds,
        files_scanned: files.len(),
        pairs_verified,
        snapshot_written,
        lock_graph,
        atomic_sites,
        condvar_summary,
    })
}

/// Collect and lex every workspace `.rs` file.
pub fn scan_sources(root: &Path) -> io::Result<Vec<scan::ScannedFile>> {
    scan::workspace_rs_files(root)?
        .iter()
        .map(|p| scan::scan_file(root, p))
        .collect()
}
