//! `iwino-analyze` — the workspace static-analysis suite.
//!
//! Three passes, run offline with no external tooling:
//!
//! 1. **Symbolic transform verification** ([`symbolic`]) — proves, over
//!    exact rationals with indeterminate inputs, the Winograd identity and
//!    the Γ-decomposition FH-accumulation identity for every `(n, r)` pair
//!    the planner can select, and snapshots the per-pair coefficient /
//!    error-amplification bounds.
//! 2. **Unsafe audit** ([`unsafe_audit`]) — `unsafe` only in the
//!    `crates/parallel` allowlist, always with an adjacent `// SAFETY:`
//!    comment; every other crate root carries `#![forbid(unsafe_code)]`.
//! 3. **Atomics lint** ([`atomics`]) — every `Ordering::Relaxed` /
//!    `static mut` in production code carries a `// ORDERING:`
//!    justification.
//!
//! Findings print rustc-style to stderr and export as JSON (schema v2,
//! `"kind": "analysis"`) for `scripts/check.sh`, which fails the gate on
//! any finding.

#![forbid(unsafe_code)]

pub mod atomics;
pub mod diag;
pub mod scan;
pub mod symbolic;
pub mod unsafe_audit;

pub use diag::{Finding, Pass};

use iwino_obs::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Workspace-relative location of the committed coefficient-bound snapshot.
pub const SNAPSHOT_REL_PATH: &str = "crates/analyzer/transform_bounds.snap";

/// Analyzer configuration.
pub struct Options {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Rewrite the coefficient-bound snapshot instead of diffing it.
    pub fix_snapshot: bool,
}

/// The result of one full analysis run.
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub bounds: Vec<symbolic::BoundsRow>,
    pub files_scanned: usize,
    pub pairs_verified: usize,
    /// Set when `--fix-snapshot` rewrote the snapshot file.
    pub snapshot_written: bool,
}

impl Analysis {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// JSON report. Schema v2 documents carry a `"kind"` discriminator;
    /// analyzer reports use `"analysis"` (the obs metrics exporter uses
    /// `"metrics"`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::from(iwino_obs::SCHEMA_VERSION)),
            ("kind", Json::from("analysis")),
            ("files_scanned", Json::from(self.files_scanned)),
            ("pairs_verified", Json::from(self.pairs_verified)),
            ("clean", Json::from(self.is_clean())),
            (
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
            (
                "transform_bounds",
                Json::Arr(
                    self.bounds
                        .iter()
                        .map(|b| {
                            Json::obj(vec![
                                ("alpha", Json::from(b.alpha)),
                                ("n", Json::from(b.n)),
                                ("r", Json::from(b.r)),
                                ("max_coeff", Json::from(b.max_coeff.to_string())),
                                ("amp", Json::from(b.amp.to_string())),
                                ("amp_f64", Json::from(b.amp.to_f64())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Run all three passes over the workspace at `opts.root`.
pub fn analyze_workspace(opts: &Options) -> io::Result<Analysis> {
    let snapshot_path = opts.root.join(SNAPSHOT_REL_PATH);
    let mut findings = Vec::new();
    let mut snapshot_written = false;

    // Pass 1 — symbolic verification + bounds snapshot.
    let (sym_findings, bounds) = if opts.fix_snapshot {
        let (mut f, rows) = symbolic::run(None, SNAPSHOT_REL_PATH);
        // The missing/stale snapshot finding is the one we are here to fix;
        // genuine identity failures must still be reported.
        f.retain(|x| !x.message.contains("snapshot"));
        fs::write(&snapshot_path, symbolic::render_snapshot(&rows))?;
        snapshot_written = true;
        (f, rows)
    } else {
        let committed = fs::read_to_string(&snapshot_path).ok();
        symbolic::run(committed.as_deref(), SNAPSHOT_REL_PATH)
    };
    let pairs_verified = bounds.len();
    findings.extend(sym_findings);

    // Passes 2 and 3 — source scanning.
    let files = scan_sources(&opts.root)?;
    findings.extend(unsafe_audit::audit_unsafe(&files));
    findings.extend(unsafe_audit::audit_forbid(&files));
    findings.extend(atomics::lint_atomics(&files));

    // Deterministic report order: pass, then file, then line.
    findings.sort_by(|a, b| (a.pass.code(), &a.file, a.line).cmp(&(b.pass.code(), &b.file, b.line)));

    Ok(Analysis {
        findings,
        bounds,
        files_scanned: files.len(),
        pairs_verified,
        snapshot_written,
    })
}

/// Collect and lex every workspace `.rs` file.
pub fn scan_sources(root: &Path) -> io::Result<Vec<scan::ScannedFile>> {
    scan::workspace_rs_files(root)?
        .iter()
        .map(|p| scan::scan_file(root, p))
        .collect()
}
