//! Pass 4 — static lock-order analysis for the serving-stack crates.
//!
//! Scans `crates/{serve,parallel,obs}` production code for `Mutex`
//! acquisition sites (`.lock()`), tracks which guards are still live when
//! each acquisition happens (a purely lexical scope walk: `let`-bound
//! guards die when their block closes or they are `drop`ped, temporaries
//! at the end of their statement), and builds the static nesting graph
//! `outer → inner`. The pass then enforces three rules:
//!
//! 1. **No cycles** (and no re-entrant acquisition of a lock already
//!    held) — a cycle in the static graph is a latent deadlock.
//! 2. **Every multi-lock site is annotated** — an acquisition made while
//!    another guard is live must carry a `// LOCK ORDER:` comment (within
//!    [`crate::unsafe_audit::DOC_WINDOW`] code lines) naming both the held
//!    and the acquired lock, so the nesting is a reviewed decision rather
//!    than an accident.
//! 3. **The total order is committed** — the graph is rendered to
//!    `crates/analyzer/lock_order.snap` (topological order plus the edge
//!    list) and diffed against the committed snapshot, exactly like the
//!    transform-bounds snapshot: a new lock or a new nesting edge changes
//!    the file and must be re-committed via `--fix-snapshot`.
//!
//! Lock identity is `crate::field` (the identifier preceding `.lock()`),
//! which is unambiguous in this workspace (e.g. `serve::state` vs
//! `parallel::state`). The walk is line-oriented — rustfmt at
//! `max_width = 120` keeps every acquisition statement on one line — and
//! deliberately over-approximates liveness (an `if`-condition temporary is
//! held through the `if` body), which can only add edges, never hide one.

use crate::diag::{Finding, Pass};
use crate::scan::{documented, is_test_path, justification, production_len, ScannedFile};
use crate::unsafe_audit::DOC_WINDOW;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose synchronization protocols the concurrency passes govern.
pub const SCOPE_PREFIXES: &[&str] = &["crates/serve/", "crates/parallel/", "crates/obs/"];

/// True for production files the concurrency passes analyze.
pub fn in_scope(rel_path: &str) -> bool {
    !is_test_path(rel_path) && SCOPE_PREFIXES.iter().any(|p| rel_path.starts_with(p))
}

/// The crate a workspace-relative path belongs to (`crates/serve/…` →
/// `serve`), or `root` for the top-level package.
pub fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("root")
    } else {
        "root"
    }
}

/// One `.lock()` acquisition site.
#[derive(Clone, Debug)]
pub struct LockSite {
    pub file: String,
    /// 1-based.
    pub line: usize,
    /// Qualified `crate::field` identity of the acquired lock.
    pub lock: String,
    /// Locks whose guards are live at this acquisition (outer locks).
    pub held: Vec<String>,
}

/// The static nesting graph: all locks seen, and `outer → inner` edges
/// mapped to the first site exhibiting them.
#[derive(Clone, Debug, Default)]
pub struct LockGraph {
    pub locks: BTreeSet<String>,
    pub edges: BTreeMap<(String, String), (String, usize)>,
}

impl LockGraph {
    /// Total order: Kahn's topological sort, smallest name first among the
    /// ready set, so the committed order is deterministic. Locks caught in
    /// a cycle (if any — that's a finding) are appended alphabetically so
    /// the render stays total.
    pub fn total_order(&self) -> Vec<String> {
        let mut remaining: BTreeSet<&str> = self.locks.iter().map(String::as_str).collect();
        let mut order = Vec::new();
        loop {
            // Ready = no incoming edge from a still-remaining lock.
            let next = remaining
                .iter()
                .copied()
                .find(|l| {
                    !self
                        .edges
                        .keys()
                        .any(|(o, i)| i.as_str() == *l && remaining.contains(o.as_str()))
                })
                .map(str::to_string);
            match next {
                Some(l) => {
                    remaining.remove(l.as_str());
                    order.push(l);
                }
                None => break,
            }
        }
        // Cyclic leftovers, alphabetical (BTreeSet iteration order).
        order.extend(remaining.iter().map(|l| l.to_string()));
        order
    }

    /// Locks on at least one cycle: iteratively trim sources and sinks
    /// (relative to the remaining set); what survives is the union of the
    /// graph's cycles.
    pub fn cyclic_locks(&self) -> BTreeSet<String> {
        let mut remaining: BTreeSet<&str> = self.locks.iter().map(String::as_str).collect();
        loop {
            let trim: Vec<&str> = remaining
                .iter()
                .copied()
                .filter(|l| {
                    let has_in = self
                        .edges
                        .keys()
                        .any(|(o, i)| i.as_str() == *l && remaining.contains(o.as_str()));
                    let has_out = self
                        .edges
                        .keys()
                        .any(|(o, i)| o.as_str() == *l && remaining.contains(i.as_str()));
                    !(has_in && has_out)
                })
                .collect();
            if trim.is_empty() {
                break;
            }
            for l in trim {
                remaining.remove(l);
            }
        }
        remaining.iter().map(|l| l.to_string()).collect()
    }
}

/// A live guard during the scope walk.
struct Guard {
    lock: String,
    /// Brace depth at the acquisition.
    depth: usize,
    /// `let`-binding name; `None` for a statement temporary.
    name: Option<String>,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The `let`-binding name a line introduces, if any (`let mut st = …` →
/// `st`).
fn let_binding(code: &str) -> Option<String> {
    let rest = code.trim_start().strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest.find(|c: char| !is_ident(c)).unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(rest[..end].to_string())
    }
}

/// Collect every acquisition site and the nesting graph from the in-scope
/// production code.
pub fn collect(files: &[ScannedFile]) -> (Vec<LockSite>, LockGraph) {
    let mut sites = Vec::new();
    let mut graph = LockGraph::default();
    for file in files {
        if !in_scope(&file.rel_path) {
            continue;
        }
        let krate = crate_of(&file.rel_path).to_string();
        let n = production_len(&file.lines);
        let mut depth = 0usize;
        let mut guards: Vec<Guard> = Vec::new();
        for (idx, line) in file.lines[..n].iter().enumerate() {
            let code = &line.code;
            let let_name = let_binding(code);
            let mut first_acq = true;
            let bytes = code.as_bytes();
            let mut i = 0usize;
            while i < bytes.len() {
                if code[i..].starts_with(".lock()") {
                    if let Some(name) = crate::scan::ident_before(code, i) {
                        let lock = format!("{krate}::{name}");
                        let mut held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                        held.sort();
                        held.dedup();
                        for outer in &held {
                            graph
                                .edges
                                .entry((outer.clone(), lock.clone()))
                                .or_insert_with(|| (file.rel_path.clone(), idx + 1));
                        }
                        graph.locks.insert(lock.clone());
                        sites.push(LockSite {
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            lock: lock.clone(),
                            held,
                        });
                        guards.push(Guard {
                            lock,
                            depth,
                            name: if first_acq { let_name.clone() } else { None },
                        });
                        first_acq = false;
                    }
                    i += ".lock()".len();
                    continue;
                }
                if code[i..].starts_with("drop(") && (i == 0 || !is_ident(bytes[i - 1] as char)) {
                    if let Some(dropped) = crate::scan::ident_after(code, i + "drop(".len()) {
                        guards.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
                    }
                }
                match bytes[i] as char {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        // Named guards die when their block closes;
                        // temporaries also die when a block at their own
                        // depth closes (end of a `for`/`if` statement whose
                        // header created them).
                        guards.retain(|g| {
                            if g.name.is_some() {
                                g.depth <= depth
                            } else {
                                g.depth < depth
                            }
                        });
                    }
                    ';' => guards.retain(|g| g.name.is_some() || g.depth < depth),
                    _ => {}
                }
                i += 1;
            }
        }
    }
    (sites, graph)
}

/// Render the committed snapshot: the total order, then the edge list.
pub fn render_snapshot(graph: &LockGraph) -> String {
    let mut out = String::new();
    out.push_str("# iwino-analyze lock-order snapshot.\n");
    out.push_str("# Committed total order of the serving-stack locks (crates/serve,\n");
    out.push_str("# crates/parallel, crates/obs) and the static nesting edges observed.\n");
    out.push_str("# Regenerate: cargo run -p analyzer -- --workspace --fix-snapshot\n");
    for lock in graph.total_order() {
        out.push_str(&format!("order {lock}\n"));
    }
    for ((outer, inner), (file, line)) in &graph.edges {
        out.push_str(&format!("edge {outer} -> {inner}  # first seen {file}:{line}\n"));
    }
    out
}

/// Run the pass: site/annotation/cycle findings plus the snapshot diff
/// against `committed` (reported under `snap_rel_path`, mirroring the
/// transform-bounds snapshot workflow).
pub fn run(files: &[ScannedFile], committed: Option<&str>, snap_rel_path: &str) -> (Vec<Finding>, LockGraph) {
    let (sites, graph) = collect(files);
    let mut findings = Vec::new();

    // Rule 2: annotated multi-lock sites.
    let by_file: BTreeMap<&str, &ScannedFile> = files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    for site in &sites {
        if site.held.is_empty() {
            continue;
        }
        if site.held.contains(&site.lock) {
            findings.push(Finding::new(
                Pass::LockOrder,
                &site.file,
                site.line,
                format!(
                    "re-entrant acquisition: `{}` is locked while its own guard is live",
                    site.lock
                ),
            ));
            continue;
        }
        let file = by_file[site.file.as_str()];
        let idx = site.line - 1;
        let annotated = documented(&file.lines, idx, "LOCK ORDER:", DOC_WINDOW)
            && justification(&file.lines, idx, "LOCK ORDER:", DOC_WINDOW)
                .map(|(_, text)| text.contains(&site.lock) && site.held.iter().all(|h| text.contains(h)))
                .unwrap_or(false);
        if !annotated {
            findings.push(Finding::new(
                Pass::LockOrder,
                &site.file,
                site.line,
                format!(
                    "`{}` acquired while holding {} without a `// LOCK ORDER:` comment naming both locks \
                     (within {DOC_WINDOW} lines)",
                    site.lock,
                    site.held.join(", "),
                ),
            ));
        }
    }

    // Rule 1: no cycles.
    let cyclic = graph.cyclic_locks();
    if !cyclic.is_empty() {
        let involved: Vec<&String> = cyclic.iter().collect();
        let anchor = graph
            .edges
            .iter()
            .find(|((o, i), _)| cyclic.contains(o) && cyclic.contains(i))
            .map(|(_, (f, l))| (f.clone(), *l))
            .unwrap_or_default();
        findings.push(Finding::new(
            Pass::LockOrder,
            anchor.0,
            anchor.1,
            format!(
                "lock-order cycle among {{{}}} — the static nesting graph must stay acyclic",
                involved.iter().map(|l| l.as_str()).collect::<Vec<_>>().join(", "),
            ),
        ));
    }

    // Rule 3: snapshot diff.
    let generated = render_snapshot(&graph);
    match committed {
        None => findings.push(Finding::new(
            Pass::LockOrder,
            snap_rel_path,
            0,
            "lock-order snapshot missing; run with --fix-snapshot to create it",
        )),
        Some(committed) if committed != generated => {
            let diff_line = committed
                .lines()
                .zip(generated.lines())
                .position(|(a, b)| a != b)
                .map(|p| p + 1)
                .unwrap_or_else(|| committed.lines().count().min(generated.lines().count()) + 1);
            let got = generated.lines().nth(diff_line - 1).unwrap_or("<end of file>");
            let want = committed.lines().nth(diff_line - 1).unwrap_or("<end of file>");
            findings.push(Finding::new(
                Pass::LockOrder,
                snap_rel_path,
                diff_line,
                format!(
                    "lock-order snapshot is stale: committed `{want}` vs generated `{got}`; \
                     review the new nesting and run --fix-snapshot"
                ),
            ));
        }
        Some(_) => {}
    }

    (findings, graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_str;

    fn file(rel_path: &str, src: &str) -> ScannedFile {
        ScannedFile {
            rel_path: rel_path.to_string(),
            lines: scan_str(src),
        }
    }

    #[test]
    fn single_locks_have_no_edges() {
        let f = file(
            "crates/serve/src/x.rs",
            "fn a(&self) {\n    let st = self.state.lock().unwrap();\n    drop(st);\n    let q = self.queue.lock().unwrap();\n}\n",
        );
        let (sites, graph) = collect(&[f]);
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| s.held.is_empty()));
        assert!(graph.edges.is_empty());
        assert_eq!(graph.locks.len(), 2);
    }

    #[test]
    fn nesting_produces_edge_and_requires_comment() {
        let src = "fn a(&self) {\n    let a = self.alpha.lock().unwrap();\n    let b = self.beta.lock().unwrap();\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (findings, graph) = run(&[f], None, "lock_order.snap");
        assert!(graph.edges.contains_key(&("serve::alpha".into(), "serve::beta".into())));
        assert!(
            findings
                .iter()
                .any(|f| f.line == 3 && f.message.contains("LOCK ORDER:")),
            "{findings:?}"
        );
        // Annotated twin is clean (modulo the missing snapshot).
        let src = "fn a(&self) {\n    let a = self.alpha.lock().unwrap();\n    // LOCK ORDER: serve::alpha -> serve::beta.\n    let b = self.beta.lock().unwrap();\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (findings, _) = run(&[f], None, "lock_order.snap");
        assert!(
            findings.iter().all(|f| !f.message.contains("LOCK ORDER:")),
            "{findings:?}"
        );
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let src = "fn a(&self) {\n    {\n        let a = self.alpha.lock().unwrap();\n    }\n    let b = self.beta.lock().unwrap();\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (sites, graph) = collect(&[f]);
        assert!(sites.iter().all(|s| s.held.is_empty()), "{sites:?}");
        assert!(graph.edges.is_empty());
    }

    #[test]
    fn temporary_guard_dies_with_its_statement() {
        let src = "fn a(&self) {\n    self.alpha.lock().unwrap().bump();\n    let b = self.beta.lock().unwrap();\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (sites, _) = collect(&[f]);
        assert!(sites.iter().all(|s| s.held.is_empty()), "{sites:?}");
        // …but a `for`-header temporary is held through the body.
        let src = "fn a(&self) {\n    for x in self.alpha.lock().unwrap().iter() {\n        let b = self.beta.lock().unwrap();\n    }\n    let c = self.gamma.lock().unwrap();\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (sites, _) = collect(&[f]);
        assert_eq!(sites[1].held, vec!["serve::alpha".to_string()]);
        assert!(sites[2].held.is_empty(), "for-temporary must die at the loop close");
    }

    #[test]
    fn cycle_is_detected() {
        let src = "fn a(&self) {\n    let a = self.alpha.lock().unwrap();\n    // LOCK ORDER: serve::alpha -> serve::beta.\n    let b = self.beta.lock().unwrap();\n}\nfn b(&self) {\n    let b = self.beta.lock().unwrap();\n    // LOCK ORDER: serve::beta -> serve::alpha.\n    let a = self.alpha.lock().unwrap();\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (findings, graph) = run(&[f], None, "lock_order.snap");
        assert_eq!(graph.cyclic_locks().len(), 2);
        assert!(findings.iter().any(|f| f.message.contains("cycle")), "{findings:?}");
    }

    #[test]
    fn snapshot_roundtrip_and_staleness() {
        let src = "fn a(&self) {\n    let a = self.alpha.lock().unwrap();\n    // LOCK ORDER: serve::alpha -> serve::beta.\n    let b = self.beta.lock().unwrap();\n}\n";
        let f = file("crates/serve/src/x.rs", src);
        let (_, graph) = collect(std::slice::from_ref(&f));
        let snap = render_snapshot(&graph);
        let (findings, _) = run(std::slice::from_ref(&f), Some(&snap), "lock_order.snap");
        assert!(findings.is_empty(), "{findings:?}");
        let tampered = snap.replace("order serve::alpha", "order serve::omega");
        let (findings, _) = run(&[f], Some(&tampered), "lock_order.snap");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stale"));
    }

    #[test]
    fn tests_and_other_crates_are_out_of_scope() {
        let t = file(
            "crates/serve/tests/net.rs",
            "fn a() { let a = X.lock().unwrap(); let b = Y.lock().unwrap(); }\n",
        );
        let e = file(
            "crates/engine/src/lib.rs",
            "fn a() { let a = X.lock().unwrap(); let b = Y.lock().unwrap(); }\n",
        );
        let (sites, graph) = collect(&[t, e]);
        assert!(sites.is_empty());
        assert!(graph.locks.is_empty());
    }
}
