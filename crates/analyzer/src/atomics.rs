//! Pass 3 — the atomics / concurrency lint, with site classification.
//!
//! Every atomic-ordering site in production code — any `Ordering::*`
//! argument, any bare imported `Relaxed`, and any `static mut` — must
//! carry a `// ORDERING:` justification on the same line or in an
//! adjacent comment (within [`crate::unsafe_audit::DOC_WINDOW`] code
//! lines). Beyond mere presence, the justification must *classify* the
//! site, because the class determines which orderings are sound:
//!
//! - **counter** — monotone statistics (counters, accumulators,
//!   high-water marks, gauges) read for reporting. `Relaxed` is sound.
//! - **flag** — an independent boolean/configuration cell where tearing
//!   or lateness is tolerated (gates, cached detection results).
//!   `Relaxed` is sound.
//! - **handoff** — the atomic itself publishes other data to another
//!   thread: a Release store paired with an Acquire load. `Relaxed` here
//!   is a bug — the data race the pairing exists to prevent — and is
//!   flagged.
//! - **external-hb** — ordering is supplied by an external happens-before
//!   edge (mutex, join, quiesce protocol); the atomic itself may be
//!   `Relaxed`.
//!
//! The class is read from the justification text: an explicit
//! `[counter]` / `[flag]` / `[handoff]` / `[external-hb]` tag wins;
//! otherwise characteristic vocabulary decides (e.g. "monotonic
//! counter", "independent flag", "happens-before"). Handoff is only ever
//! claimed explicitly (the tag or the word "handoff") — external-hb
//! justifications routinely *mention* a mutex's release/acquire edge and
//! must not be misread as the atomic itself publishing. A justification
//! that matches no class is itself a finding — it is not an argument,
//! just a comment.
//!
//! Shorthand: `// ORDERING: as above` resolves to the nearest full
//! justification *earlier in the same function* (or earlier in the file
//! for item-level sites). A shorthand whose resolution crosses a function
//! boundary is dangling and flagged — the referent a reader finds first
//! may be a different protocol entirely.
//!
//! Scope: test code is exempt — files under `tests/`, `benches/` or
//! `examples/` directories, and everything at or below the first
//! `#[cfg(test)]` line of a library file.

use crate::diag::{Finding, Pass};
use crate::scan::{fn_spans, has_word, innermost_fn, is_test_path, justification, ScannedFile};
use crate::unsafe_audit::DOC_WINDOW;

/// What a justification says the atomic site is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteClass {
    Counter,
    Flag,
    Handoff,
    ExternalHb,
}

impl SiteClass {
    pub fn name(self) -> &'static str {
        match self {
            SiteClass::Counter => "counter",
            SiteClass::Flag => "flag",
            SiteClass::Handoff => "handoff",
            SiteClass::ExternalHb => "external-hb",
        }
    }
}

/// Classify a justification text. Explicit `[tag]`s win; otherwise
/// characteristic vocabulary, most-specific class first (handoff, then
/// counter, then flag, then external happens-before).
pub fn classify(text: &str) -> Option<SiteClass> {
    let t = text.to_ascii_lowercase();
    for (tag, class) in [
        ("[handoff]", SiteClass::Handoff),
        ("[counter]", SiteClass::Counter),
        ("[flag]", SiteClass::Flag),
        ("[external-hb]", SiteClass::ExternalHb),
    ] {
        if t.contains(tag) {
            return Some(class);
        }
    }
    // Handoff is deliberately narrow: only the explicit tag or the word
    // itself. External-hb justifications routinely *mention* the
    // release/acquire edge a mutex supplies, and must not be pulled into
    // the handoff class by that vocabulary.
    const HANDOFF: &[&str] = &["hands off", "handoff"];
    const COUNTER: &[&str] = &[
        "counter",
        "monotonic",
        "high-water",
        "accumulator",
        "accounting",
        "gauge",
        "statistic",
        "unique-id",
    ];
    const FLAG: &[&str] = &["flag", "gate", "configuration", "config store", "cache", "toggle"];
    const EXTERNAL: &[&str] = &["happens-before", "quiesce", "mutex", "join", "barrier", "owning thread"];
    for (words, class) in [
        (HANDOFF, SiteClass::Handoff),
        (COUNTER, SiteClass::Counter),
        (FLAG, SiteClass::Flag),
        (EXTERNAL, SiteClass::ExternalHb),
    ] {
        if words.iter().any(|w| t.contains(w)) {
            return Some(class);
        }
    }
    None
}

/// One classified atomic site (exported for the JSON report's counts).
#[derive(Clone, Debug)]
pub struct AtomicSite {
    pub file: String,
    pub line: usize,
    pub relaxed: bool,
    pub class: Option<SiteClass>,
}

fn is_exempt_path(rel_path: &str) -> bool {
    is_test_path(rel_path)
}

/// Is this line an atomic-ordering site, and does it use `Relaxed`?
/// Matching the five atomic variants (not bare `Ordering::`) keeps
/// `std::cmp::Ordering::Less` and friends out of scope.
fn ordering_site(code: &str) -> Option<bool> {
    let relaxed = has_word(code, "Relaxed");
    let atomic = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .any(|v| code.contains(&format!("Ordering::{v}")));
    if relaxed || atomic || code.contains("static mut ") {
        Some(relaxed)
    } else {
        None
    }
}

/// Resolve the justification for site `idx`, following one `as above`
/// hop within the innermost function (or the file prefix for item-level
/// sites). Returns the effective text, or an error message.
fn resolve_justification(file: &ScannedFile, idx: usize) -> Result<String, String> {
    let Some((mline, text)) = justification(&file.lines, idx, "ORDERING:", DOC_WINDOW) else {
        return Err(format!(
            "atomic-ordering site without an adjacent `// ORDERING:` justification (within {DOC_WINDOW} lines)"
        ));
    };
    if !text.trim_start().starts_with("as above") {
        return Ok(text);
    }
    let spans = fn_spans(&file.lines);
    let start = innermost_fn(&spans, idx).map(|s| s.open).unwrap_or(0);
    for k in (start..mline).rev() {
        if !file.lines[k].comment.contains("ORDERING:") {
            continue;
        }
        if let Some((_, full)) = justification(&file.lines, k, "ORDERING:", 1) {
            if !full.trim_start().starts_with("as above") {
                return Ok(full);
            }
        }
    }
    Err("dangling `// ORDERING: as above` shorthand — no full justification earlier in the same function".to_string())
}

/// Lint every file; returns one finding per violation plus the classified
/// site list.
pub fn lint_atomics_classified(files: &[ScannedFile]) -> (Vec<Finding>, Vec<AtomicSite>) {
    let mut findings = Vec::new();
    let mut sites = Vec::new();
    for file in files {
        if is_exempt_path(&file.rel_path) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.code.contains("#[cfg(test)]") {
                break;
            }
            let Some(relaxed) = ordering_site(&line.code) else {
                continue;
            };
            let what = if line.code.contains("static mut ") {
                "`static mut`"
            } else if relaxed {
                "`Ordering::Relaxed`"
            } else {
                "atomic-ordering"
            };
            let class = match resolve_justification(file, idx) {
                Err(msg) => {
                    findings.push(Finding::new(
                        Pass::AtomicsLint,
                        &file.rel_path,
                        idx + 1,
                        format!("{what} site: {msg}"),
                    ));
                    None
                }
                Ok(text) => match classify(&text) {
                    None => {
                        findings.push(Finding::new(
                            Pass::AtomicsLint,
                            &file.rel_path,
                            idx + 1,
                            format!(
                                "{what} site: `// ORDERING:` justification does not classify the site \
                                 (counter / flag / handoff / external-hb — tag it or use the class vocabulary)"
                            ),
                        ));
                        None
                    }
                    Some(class) => {
                        if relaxed && class == SiteClass::Handoff {
                            findings.push(Finding::new(
                                Pass::AtomicsLint,
                                &file.rel_path,
                                idx + 1,
                                "`Ordering::Relaxed` on a site whose justification implies a Release/Acquire \
                                 handoff — the pairing it names cannot exist at Relaxed",
                            ));
                        }
                        Some(class)
                    }
                },
            };
            sites.push(AtomicSite {
                file: file.rel_path.clone(),
                line: idx + 1,
                relaxed,
                class,
            });
        }
    }
    (findings, sites)
}

/// Back-compat entry point: findings only.
pub fn lint_atomics(files: &[ScannedFile]) -> Vec<Finding> {
    lint_atomics_classified(files).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_str;

    fn file(rel_path: &str, src: &str) -> ScannedFile {
        ScannedFile {
            rel_path: rel_path.to_string(),
            lines: scan_str(src),
        }
    }

    #[test]
    fn flags_undocumented_relaxed() {
        let f = file(
            "crates/obs/src/lib.rs",
            "fn bump(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        let findings = lint_atomics(&[f]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("ORDERING:"));
    }

    #[test]
    fn documented_relaxed_passes_and_classifies() {
        let f = file(
            "crates/obs/src/lib.rs",
            "fn bump(c: &AtomicU64) {\n    // ORDERING: monotonic counter, no data published through it.\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        let (findings, sites) = lint_atomics_classified(&[f]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].class, Some(SiteClass::Counter));
    }

    #[test]
    fn explicit_tags_win() {
        assert_eq!(classify("[flag] despite the word counter"), Some(SiteClass::Flag));
        assert_eq!(classify(" Relaxed — monotonic counter."), Some(SiteClass::Counter));
        assert_eq!(
            classify(" the flag hands off the claimed range."),
            Some(SiteClass::Handoff)
        );
        assert_eq!(
            classify(" the registry mutex supplies the release/acquire edge."),
            Some(SiteClass::ExternalHb),
        );
        assert_eq!(
            classify(" values read after the workload quiesces."),
            Some(SiteClass::ExternalHb)
        );
        assert_eq!(classify(" trust me."), None);
    }

    #[test]
    fn relaxed_handoff_is_flagged() {
        let f = file(
            "crates/parallel/src/slice_parts.rs",
            "fn publish(c: &AtomicU8) {\n    // ORDERING: [handoff] consumers acquire the buffer this releases.\n    c.store(1, Ordering::Relaxed);\n}\n",
        );
        let findings = lint_atomics(&[f]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("handoff"));
        // The same justification on a Release store is clean.
        let f = file(
            "crates/parallel/src/slice_parts.rs",
            "fn publish(c: &AtomicU8) {\n    // ORDERING: [handoff] consumers acquire the buffer this releases.\n    c.store(1, Ordering::Release);\n}\n",
        );
        assert!(lint_atomics(&[f]).is_empty());
    }

    #[test]
    fn non_relaxed_sites_need_justification_too() {
        let f = file(
            "crates/parallel/src/lib.rs",
            "fn set(c: &AtomicBool) {\n    c.store(true, Ordering::Release);\n}\n",
        );
        let findings = lint_atomics(&[f]);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn unclassifiable_justification_is_flagged() {
        let f = file(
            "crates/obs/src/lib.rs",
            "fn bump(c: &AtomicU64) {\n    // ORDERING: this is fine.\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        let findings = lint_atomics(&[f]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("classify"));
    }

    #[test]
    fn shorthand_resolves_within_function() {
        let ok = file(
            "crates/obs/src/lib.rs",
            "fn bump(a: &AtomicU64, b: &AtomicU64) {\n    // ORDERING: independent monotonic counters.\n    a.fetch_add(1, Ordering::Relaxed);\n    let x = 1;\n    let y = 2;\n    let z = 3;\n    b.fetch_add(1, Ordering::Relaxed); // ORDERING: as above\n}\n",
        );
        let (findings, sites) = lint_atomics_classified(&[ok]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(sites[1].class, Some(SiteClass::Counter));
    }

    #[test]
    fn shorthand_dangling_across_functions_is_flagged() {
        let f = file(
            "crates/obs/src/lib.rs",
            "fn a(c: &AtomicU64) {\n    // ORDERING: independent monotonic counters.\n    c.fetch_add(1, Ordering::Relaxed);\n}\nfn b(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed); // ORDERING: as above\n}\n",
        );
        let findings = lint_atomics(&[f]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("dangling"));
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn one_comment_covers_a_cluster() {
        let f = file(
            "crates/parallel/src/lib.rs",
            "// ORDERING: all three are monotonic counters.\na.store(0, Ordering::Relaxed);\nb.store(0, Ordering::Relaxed);\nc.store(0, Ordering::Relaxed);\n",
        );
        assert!(lint_atomics(&[f]).is_empty());
    }

    #[test]
    fn static_mut_is_flagged() {
        let f = file("crates/core/src/lib.rs", "static mut GLOBAL: u32 = 0;\n");
        let findings = lint_atomics(&[f]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("static mut"));
    }

    #[test]
    fn test_code_is_exempt() {
        let in_tests_dir = file(
            "crates/parallel/tests/stress.rs",
            "c.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert!(lint_atomics(&[in_tests_dir]).is_empty());
        let after_cfg_test = file(
            "crates/obs/src/lib.rs",
            "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { c.load(Ordering::Relaxed); }\n}\n",
        );
        assert!(lint_atomics(&[after_cfg_test]).is_empty());
        // …but production code *above* the cfg(test) marker is still linted.
        let above = file(
            "crates/obs/src/lib.rs",
            "pub fn bad() { c.load(Ordering::Relaxed); }\n#[cfg(test)]\nmod tests {}\n",
        );
        assert_eq!(lint_atomics(&[above]).len(), 1);
    }
}
