//! Pass 3 — the atomics / concurrency lint.
//!
//! Every `Ordering::Relaxed` (or bare imported `Relaxed`) and every
//! `static mut` in production code must carry a `// ORDERING:`
//! justification on the same line or in an adjacent comment (within
//! [`crate::unsafe_audit::DOC_WINDOW`] code lines) — the argument for why no
//! stronger ordering is needed (counter monotonicity, gate-tearing
//! tolerance, an external happens-before edge like a mutex or a join).
//!
//! Scope: test code is exempt. That means files under `tests/`, `benches/`
//! or `examples/` directories, and — inside library files — everything at
//! or below the first `#[cfg(test)]` line. (The workspace convention puts
//! the `#[cfg(test)] mod tests` block at the end of the file, which the
//! workspace's own clean run depends on; the heuristic is deliberately
//! conservative in that direction — it can only under-lint test code,
//! never skip production code.)

use crate::diag::{Finding, Pass};
use crate::scan::{documented, has_word, ScannedFile};
use crate::unsafe_audit::DOC_WINDOW;

/// Path components that mark a file as test/bench/example code.
const EXEMPT_DIRS: &[&str] = &["tests", "benches", "examples"];

fn is_exempt_path(rel_path: &str) -> bool {
    rel_path.split('/').any(|part| EXEMPT_DIRS.contains(&part))
}

/// Lint every file, returning one finding per undocumented site.
pub fn lint_atomics(files: &[ScannedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if is_exempt_path(&file.rel_path) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.code.contains("#[cfg(test)]") {
                break;
            }
            let relaxed = has_word(&line.code, "Relaxed");
            let static_mut = line.code.contains("static mut ");
            if !(relaxed || static_mut) {
                continue;
            }
            if documented(&file.lines, idx, "ORDERING:", DOC_WINDOW) {
                continue;
            }
            let what = if static_mut {
                "`static mut`"
            } else {
                "`Ordering::Relaxed`"
            };
            findings.push(Finding::new(
                Pass::AtomicsLint,
                &file.rel_path,
                idx + 1,
                format!("{what} without an adjacent `// ORDERING:` justification (within {DOC_WINDOW} lines)"),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_str;

    fn file(rel_path: &str, src: &str) -> ScannedFile {
        ScannedFile {
            rel_path: rel_path.to_string(),
            lines: scan_str(src),
        }
    }

    #[test]
    fn flags_undocumented_relaxed() {
        let f = file(
            "crates/obs/src/lib.rs",
            "fn bump(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        let findings = lint_atomics(&[f]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("ORDERING:"));
    }

    #[test]
    fn documented_relaxed_passes() {
        let f = file(
            "crates/obs/src/lib.rs",
            "fn bump(c: &AtomicU64) {\n    // ORDERING: monotonic counter, no data published through it.\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        assert!(lint_atomics(&[f]).is_empty());
    }

    #[test]
    fn one_comment_covers_a_cluster() {
        let f = file(
            "crates/parallel/src/lib.rs",
            "// ORDERING: all three are monotonic counters.\na.store(0, Ordering::Relaxed);\nb.store(0, Ordering::Relaxed);\nc.store(0, Ordering::Relaxed);\n",
        );
        assert!(lint_atomics(&[f]).is_empty());
    }

    #[test]
    fn static_mut_is_flagged() {
        let f = file("crates/core/src/lib.rs", "static mut GLOBAL: u32 = 0;\n");
        let findings = lint_atomics(&[f]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("static mut"));
    }

    #[test]
    fn test_code_is_exempt() {
        let in_tests_dir = file(
            "crates/parallel/tests/stress.rs",
            "c.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert!(lint_atomics(&[in_tests_dir]).is_empty());
        let after_cfg_test = file(
            "crates/obs/src/lib.rs",
            "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { c.load(Ordering::Relaxed); }\n}\n",
        );
        assert!(lint_atomics(&[after_cfg_test]).is_empty());
        // …but production code *above* the cfg(test) marker is still linted.
        let above = file(
            "crates/obs/src/lib.rs",
            "pub fn bad() { c.load(Ordering::Relaxed); }\n#[cfg(test)]\nmod tests {}\n",
        );
        assert_eq!(lint_atomics(&[above]).len(), 1);
    }
}
