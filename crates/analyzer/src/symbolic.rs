//! Pass 1 — symbolic Γα(n, r) transform verification over ℚ.
//!
//! `tests/gamma_conformance.rs` *samples* the kernels; this pass *proves*
//! the transform matrices. The filter taps `g_j` and data items `d_i` are
//! left as indeterminates (see [`iwino_rational::MPoly`]) and the exact
//! rational transform entries are folded through both sides of
//!
//! ```text
//! Aᵀ[(G·g) ⊙ (Dᵀ·d)]  =  conv(g, d)
//! ```
//!
//! Both sides are bilinear forms in `(g, d)`; the identity therefore holds
//! for **every** real input iff the symbolic difference is the zero
//! polynomial — which is what [`verify_matrices`] checks, coefficient by
//! coefficient, in exact arithmetic. A single wrong entry anywhere in
//! `Aᵀ`, `G` or `Dᵀ` leaves a nonzero residual monomial and is reported
//! with its magnitude.
//!
//! [`verify_fh_accumulation`] proves the Γ-decomposition identity the same
//! way: summing Winograd-domain products over the filter-height planes
//! before the single output transform (Algorithm 1's defining trick) equals
//! summing the per-plane 1-D convolutions afterwards. By linearity the same
//! argument covers the input-channel accumulation.
//!
//! Coverage is exactly the planner's reachable kernel set: every `(n, r)`
//! that [`iwino_core::plan::default_kernel_prefs`] can emit for
//! `r ∈ 2..=9` (both α-preference flags). For each pair the pass also
//! derives the max-|coefficient| and the `‖Aᵀ‖∞·‖G‖∞·‖Dᵀ‖∞`
//! error-amplification bound, and diffs the table against the committed
//! snapshot (`crates/analyzer/transform_bounds.snap`).

use crate::diag::{Finding, Pass};
use iwino_core::plan::default_kernel_prefs;
use iwino_rational::{MPoly, Rational};
use iwino_transforms::{Matrix, WinogradTransform};
use std::collections::BTreeSet;

/// Variable-id base for the data symbols `d_i` (filter symbols start at 0).
/// Plane `fh` of the FH-accumulation check shifts both families by
/// `fh · PLANE_STRIDE`.
const DATA_BASE: u32 = 64;
const PLANE_STRIDE: u32 = 128;

/// One row of the coefficient-bound table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundsRow {
    pub alpha: usize,
    pub n: usize,
    pub r: usize,
    /// Largest |entry| across Aᵀ, G, Dᵀ.
    pub max_coeff: Rational,
    /// `‖Aᵀ‖∞ · ‖G‖∞ · ‖Dᵀ‖∞` error-amplification bound.
    pub amp: Rational,
}

/// Every `(n, r)` pair the §5.5 planner can select for `r ∈ 2..=9`,
/// sorted by `(r, n)`.
pub fn plan_reachable_pairs() -> Vec<(usize, usize)> {
    let mut pairs = BTreeSet::new();
    for r in 2..=9usize {
        for prefer_alpha16 in [false, true] {
            for spec in default_kernel_prefs(r, prefer_alpha16) {
                pairs.insert((spec.r, spec.n));
            }
        }
    }
    pairs.into_iter().map(|(r, n)| (n, r)).collect()
}

fn sym_vars(count: usize, base: u32) -> Vec<MPoly> {
    (0..count).map(|i| MPoly::var(base + i as u32)).collect()
}

/// Exact symbolic matrix–vector product `M · v`.
fn mat_vec_sym(m: &Matrix, v: &[MPoly]) -> Vec<MPoly> {
    assert_eq!(m.cols(), v.len());
    (0..m.rows())
        .map(|i| {
            m.row(i)
                .iter()
                .zip(v)
                .filter(|(c, _)| !c.is_zero())
                .fold(MPoly::zero(), |acc, (&c, p)| &acc + &p.scale(c))
        })
        .collect()
}

/// Symbolic schoolbook correlation `y_i = Σ_j g_j · d_{i+j}`.
fn sym_correlation(g: &[MPoly], d: &[MPoly]) -> Vec<MPoly> {
    let n = d.len() + 1 - g.len();
    (0..n)
        .map(|i| {
            g.iter()
                .enumerate()
                .fold(MPoly::zero(), |acc, (j, gj)| &acc + &(gj * &d[i + j]))
        })
        .collect()
}

/// Symbolic Winograd pipeline `Aᵀ[(G·g) ⊙ (Dᵀ·d)]`.
fn sym_winograd(at: &Matrix, g_mat: &Matrix, dt: &Matrix, g: &[MPoly], d: &[MPoly]) -> Vec<MPoly> {
    let tg = mat_vec_sym(g_mat, g);
    let td = mat_vec_sym(dt, d);
    let prod: Vec<MPoly> = tg.iter().zip(&td).map(|(a, b)| a * b).collect();
    mat_vec_sym(at, &prod)
}

/// Prove `Aᵀ[(G·g) ⊙ (Dᵀ·d)] = conv(g, d)` for all inputs, given the
/// three matrices of an `F(n, r)` algorithm. Returns a description of the
/// first nonzero residual on failure — exercised by the analyzer's
/// broken-fixture tests with deliberately typo'd coefficients.
pub fn verify_matrices(n: usize, r: usize, at: &Matrix, g_mat: &Matrix, dt: &Matrix) -> Result<(), String> {
    let alpha = n + r - 1;
    let g = sym_vars(r, 0);
    let d = sym_vars(alpha, DATA_BASE);
    let got = sym_winograd(at, g_mat, dt, &g, &d);
    let want = sym_correlation(&g, &d);
    for (i, (y, c)) in got.iter().zip(&want).enumerate() {
        let residual = y - c;
        if !residual.is_zero() {
            return Err(format!(
                "F({n},{r}) output {i}: Aᵀ[(G·g) ⊙ (Dᵀ·d)] − conv(g, d) = {residual} (max |coeff| {})",
                residual.max_abs_coeff()
            ));
        }
    }
    Ok(())
}

/// Prove the identity for a generated transform.
pub fn verify_transform(t: &WinogradTransform) -> Result<(), String> {
    verify_matrices(t.n, t.r, &t.at, &t.g, &t.dt)
}

/// Prove the Γ-decomposition accumulation identity over `fh_planes`
/// symbolic filter-height planes:
///
/// ```text
/// Aᵀ[ Σ_fh (G·g⁽ᶠʰ⁾) ⊙ (Dᵀ·d⁽ᶠʰ⁾) ]  =  Σ_fh conv(g⁽ᶠʰ⁾, d⁽ᶠʰ⁾)
/// ```
///
/// i.e. accumulating in the Winograd domain across `fh` (and, by the same
/// linearity, across input channels) commutes with the single output
/// transform — the fusion §4 builds the whole algorithm on.
pub fn verify_fh_accumulation(t: &WinogradTransform, fh_planes: usize) -> Result<(), String> {
    assert!(fh_planes >= 1);
    let mut winograd_sum: Vec<MPoly> = vec![MPoly::zero(); t.alpha];
    let mut conv_sum: Vec<MPoly> = vec![MPoly::zero(); t.n];
    for fh in 0..fh_planes {
        let base = fh as u32 * PLANE_STRIDE;
        let g = sym_vars(t.r, base);
        let d = sym_vars(t.alpha, base + DATA_BASE);
        let tg = mat_vec_sym(&t.g, &g);
        let td = mat_vec_sym(&t.dt, &d);
        for (acc, (a, b)) in winograd_sum.iter_mut().zip(tg.iter().zip(&td)) {
            *acc = &*acc + &(a * b);
        }
        for (acc, c) in conv_sum.iter_mut().zip(sym_correlation(&g, &d)) {
            *acc = &*acc + &c;
        }
    }
    let got = mat_vec_sym(&t.at, &winograd_sum);
    for (i, (y, c)) in got.iter().zip(&conv_sum).enumerate() {
        let residual = y - c;
        if !residual.is_zero() {
            return Err(format!(
                "Γ{}({},{}) FH-accumulation output {i}: residual {residual} over {fh_planes} planes",
                t.alpha, t.n, t.r
            ));
        }
    }
    Ok(())
}

/// Coefficient-bound row for one transform.
pub fn bounds_row(t: &WinogradTransform) -> BoundsRow {
    BoundsRow {
        alpha: t.alpha,
        n: t.n,
        r: t.r,
        max_coeff: t.max_abs_coeff(),
        amp: t.error_amplification(),
    }
}

/// Render the coefficient-bound table in its committed snapshot format.
/// Exact rationals plus a rounded decimal so humans can eyeball growth.
pub fn render_snapshot(rows: &[BoundsRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "# Per-(n,r) transform coefficient bounds — regenerate with `cargo run -p analyzer -- --fix-snapshot`.\n",
    );
    out.push_str("# max_coeff = largest |entry| across At/G/Dt; amp = inf-norm product error-amplification bound.\n");
    for row in rows {
        out.push_str(&format!(
            "Gamma{}({},{}) max_coeff={} amp={} amp~{:.3e}\n",
            row.alpha,
            row.n,
            row.r,
            row.max_coeff,
            row.amp,
            row.amp.to_f64()
        ));
    }
    out
}

/// Run the full pass: prove both identities for every planner-reachable
/// pair and diff the bounds table against `committed_snapshot` (pass
/// `None` when the snapshot file is missing).
pub fn run(committed_snapshot: Option<&str>, snapshot_rel_path: &str) -> (Vec<Finding>, Vec<BoundsRow>) {
    let mut findings = Vec::new();
    let mut rows = Vec::new();
    for (n, r) in plan_reachable_pairs() {
        let t = WinogradTransform::generate(n, r);
        if let Err(msg) = verify_transform(&t) {
            findings.push(Finding::new(
                Pass::TransformVerify,
                "crates/transforms/src/lib.rs",
                0,
                msg,
            ));
        }
        if let Err(msg) = verify_fh_accumulation(&t, 3) {
            findings.push(Finding::new(
                Pass::TransformVerify,
                "crates/transforms/src/lib.rs",
                0,
                msg,
            ));
        }
        rows.push(bounds_row(&t));
    }
    let rendered = render_snapshot(&rows);
    match committed_snapshot {
        None => findings.push(Finding::new(
            Pass::TransformVerify,
            snapshot_rel_path,
            0,
            "coefficient-bound snapshot is missing — run with --fix-snapshot and commit it",
        )),
        Some(committed) if committed != rendered => {
            let line = committed
                .lines()
                .zip(rendered.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or_else(|| committed.lines().count().min(rendered.lines().count()) + 1);
            findings.push(Finding::new(
                Pass::TransformVerify,
                snapshot_rel_path,
                line,
                "coefficient-bound snapshot is stale — regenerate with --fix-snapshot and review the diff",
            ));
        }
        Some(_) => {}
    }
    (findings, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachable_pairs_cover_r_2_through_9() {
        let pairs = plan_reachable_pairs();
        for r in 2..=9 {
            assert!(pairs.iter().any(|&(_, pr)| pr == r), "no pair for r = {r}");
        }
        // The paper's flagship kernels are reachable.
        assert!(pairs.contains(&(6, 3)), "Γ8(6,3)");
        assert!(pairs.contains(&(8, 9)), "Γ16(8,9)");
        assert!(pairs.contains(&(2, 3)), "Γ4(2,3)");
        // And every pair is a valid spec (n ≥ 2, α ≤ 16).
        for &(n, r) in &pairs {
            assert!(n >= 2 && n + r - 1 <= 16, "bad pair ({n},{r})");
        }
    }

    #[test]
    fn identity_holds_for_flagship_kernels() {
        for (n, r) in [(6, 3), (2, 3), (4, 5), (8, 9)] {
            let t = WinogradTransform::generate(n, r);
            verify_transform(&t).unwrap();
            verify_fh_accumulation(&t, 3).unwrap();
        }
    }

    #[test]
    fn single_coefficient_typo_is_caught() {
        let t = WinogradTransform::generate(6, 3);
        // Perturb one G entry by the smallest typo a reviewer would miss.
        let mut g_bad = t.g.clone();
        g_bad[(3, 1)] += Rational::new(1, 576);
        let err = verify_matrices(t.n, t.r, &t.at, &g_bad, &t.dt).unwrap_err();
        assert!(err.contains("F(6,3)"), "err: {err}");
        // A Dᵀ typo and an Aᵀ typo are caught too.
        let mut dt_bad = t.dt.clone();
        dt_bad[(0, 2)] = -dt_bad[(0, 2)];
        assert!(verify_matrices(t.n, t.r, &t.at, &t.g, &dt_bad).is_err());
        let mut at_bad = t.at.clone();
        at_bad[(5, 7)] = Rational::ZERO;
        assert!(verify_matrices(t.n, t.r, &at_bad, &t.g, &t.dt).is_err());
    }

    #[test]
    fn snapshot_roundtrip_and_staleness() {
        let rows: Vec<BoundsRow> = [(2usize, 3usize), (6, 3)]
            .iter()
            .map(|&(n, r)| bounds_row(&WinogradTransform::generate(n, r)))
            .collect();
        let rendered = render_snapshot(&rows);
        assert!(rendered.contains("Gamma8(6,3)"));
        // Identical snapshot → silent; tampered snapshot → one finding with
        // the first differing line.
        let tampered = rendered.replace("Gamma8", "Gamma9");
        assert_ne!(rendered, tampered);
    }
}
