//! `cargo run -p analyzer -- --workspace [--json PATH] [--fix-snapshot] [--root DIR]`
//!
//! Exit codes: 0 clean, 1 findings, 2 usage / I/O error.

#![forbid(unsafe_code)]

use analyzer::{analyze_workspace, Options, LOCK_SNAPSHOT_REL_PATH, SNAPSHOT_REL_PATH};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: analyzer --workspace [--json PATH] [--fix-snapshot] [--root DIR]";

struct Cli {
    opts: Options,
    json_path: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut workspace = false;
    let mut fix_snapshot = false;
    let mut json_path = None;
    let mut root = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--fix-snapshot" => fix_snapshot = true,
            "--json" => {
                let p = it.next().ok_or("--json requires a path")?;
                json_path = Some(PathBuf::from(p));
            }
            "--root" => {
                let p = it.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(p));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if !workspace {
        return Err(format!("--workspace is required\n{USAGE}"));
    }
    let root = match root {
        Some(r) => r,
        // Default to the workspace root: the manifest dir is
        // crates/analyzer, two levels down.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    Ok(Cli {
        opts: Options { root, fix_snapshot },
        json_path,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let analysis = match analyze_workspace(&cli.opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyzer: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if analysis.snapshot_written {
        eprintln!("analyzer: wrote {SNAPSHOT_REL_PATH} and {LOCK_SNAPSHOT_REL_PATH}");
    }

    for finding in &analysis.findings {
        eprintln!("{finding}\n");
    }

    if let Some(path) = &cli.json_path {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("analyzer: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, analysis.to_json().pretty()) {
            eprintln!("analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    eprintln!(
        "analyzer: {} files scanned, {} (n,r) pairs verified, {} finding(s)",
        analysis.files_scanned,
        analysis.pairs_verified,
        analysis.findings.len()
    );

    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
